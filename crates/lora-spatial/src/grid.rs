//! A uniform cell index over device sites.
//!
//! [`CellGrid`] buckets every device of a [`Topology`] into square cells
//! of a fixed edge length, stored in CSR form: `members(cell)` yields the
//! device ids of one cell in ascending id order, and
//! [`CellGrid::neighborhood`] walks a cell plus its boundary ring. Both
//! iterations are pure functions of the topology and the cell size, so
//! everything built on top of the grid — contention-group counting,
//! per-cell allocation partitions — is deterministic.
//!
//! The grid also hosts the cell-indexed replacement for the allocator's
//! dense `O(N²)` neighbor counting: with a cell edge at least as large as
//! the neighborhood radius, every neighbor of a device lies in its 3×3
//! cell block, so scanning that block reproduces the dense counts
//! *exactly* (the same distance predicate over the same pairs).

use lora_sim::Topology;

/// A uniform grid over the bounding box of a topology's device sites.
#[derive(Debug, Clone, PartialEq)]
pub struct CellGrid {
    min_x: f64,
    min_y: f64,
    cell_size_m: f64,
    nx: usize,
    ny: usize,
    /// CSR starts, length `nx·ny + 1`.
    starts: Vec<u32>,
    /// Device ids grouped by cell, ascending id within each cell.
    order: Vec<u32>,
    /// Cell index per device.
    cell_of: Vec<u32>,
}

impl CellGrid {
    /// Buckets every device of `topology` into square cells of edge
    /// `cell_size_m`.
    ///
    /// # Panics
    ///
    /// Panics when `cell_size_m` is not a positive finite number, when a
    /// device position is not finite, or when the population exceeds
    /// `u32::MAX` devices.
    pub fn build(topology: &Topology, cell_size_m: f64) -> Self {
        assert!(
            cell_size_m.is_finite() && cell_size_m > 0.0,
            "cell size must be positive and finite, got {cell_size_m}"
        );
        let sites = topology.devices();
        assert!(
            u32::try_from(sites.len()).is_ok(),
            "cell grid addresses devices as u32"
        );
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for site in sites {
            let (x, y) = (site.position.x, site.position.y);
            assert!(x.is_finite() && y.is_finite(), "non-finite device position");
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
        if sites.is_empty() {
            return CellGrid {
                min_x: 0.0,
                min_y: 0.0,
                cell_size_m,
                nx: 1,
                ny: 1,
                starts: vec![0, 0],
                order: Vec::new(),
                cell_of: Vec::new(),
            };
        }
        let axis_cells = |min: f64, max: f64| -> usize {
            // Devices sitting exactly on the max edge fold into the last
            // cell (see `clamp` in `cell_coords`).
            (((max - min) / cell_size_m).floor() as usize + 1).max(1)
        };
        let nx = axis_cells(min_x, max_x);
        let ny = axis_cells(min_y, max_y);
        let mut grid = CellGrid {
            min_x,
            min_y,
            cell_size_m,
            nx,
            ny,
            starts: vec![0; nx * ny + 1],
            order: Vec::with_capacity(sites.len()),
            cell_of: Vec::with_capacity(sites.len()),
        };
        // Counting sort by cell keeps ids ascending within each cell.
        for site in sites {
            let c = grid.cell_at(site.position.x, site.position.y);
            grid.cell_of.push(c as u32);
            grid.starts[c + 1] += 1;
        }
        for c in 0..nx * ny {
            grid.starts[c + 1] += grid.starts[c];
        }
        let mut cursor: Vec<u32> = grid.starts[..nx * ny].to_vec();
        grid.order.resize(sites.len(), 0);
        for (id, &c) in grid.cell_of.iter().enumerate() {
            let slot = cursor[c as usize];
            grid.order[slot as usize] = id as u32;
            cursor[c as usize] += 1;
        }
        grid
    }

    /// The cell edge length, metres.
    pub fn cell_size_m(&self) -> f64 {
        self.cell_size_m
    }

    /// Grid shape `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Total number of cells (occupied or not).
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Number of indexed devices.
    pub fn device_count(&self) -> usize {
        self.cell_of.len()
    }

    /// The cell index of a coordinate (clamped to the grid).
    pub fn cell_at(&self, x: f64, y: f64) -> usize {
        let cx = (((x - self.min_x) / self.cell_size_m).floor() as usize).min(self.nx - 1);
        let cy = (((y - self.min_y) / self.cell_size_m).floor() as usize).min(self.ny - 1);
        cy * self.nx + cx
    }

    /// The cell holding device `id`.
    pub fn cell_of(&self, id: usize) -> usize {
        self.cell_of[id] as usize
    }

    /// Device ids of one cell, ascending.
    pub fn members(&self, cell: usize) -> &[u32] {
        let lo = self.starts[cell] as usize;
        let hi = self.starts[cell + 1] as usize;
        &self.order[lo..hi]
    }

    /// Centre coordinate of a cell.
    pub fn cell_center(&self, cell: usize) -> (f64, f64) {
        let cx = cell % self.nx;
        let cy = cell / self.nx;
        (
            self.min_x + (cx as f64 + 0.5) * self.cell_size_m,
            self.min_y + (cy as f64 + 0.5) * self.cell_size_m,
        )
    }

    /// Cells with at least one member, ascending cell index.
    pub fn occupied_cells(&self) -> Vec<usize> {
        (0..self.cell_count())
            .filter(|&c| self.starts[c + 1] > self.starts[c])
            .collect()
    }

    /// The cells of the `(2·ring+1)²` block centred on `cell`, clipped to
    /// the grid, in ascending cell index (row-major) order. `ring = 0`
    /// yields just the cell itself; `ring = 1` adds the boundary ring.
    pub fn neighborhood(&self, cell: usize, ring: usize) -> Vec<usize> {
        let cx = (cell % self.nx) as isize;
        let cy = (cell / self.nx) as isize;
        let r = ring as isize;
        let mut cells = Vec::with_capacity((2 * ring + 1) * (2 * ring + 1));
        for dy in -r..=r {
            let y = cy + dy;
            if y < 0 || y >= self.ny as isize {
                continue;
            }
            for dx in -r..=r {
                let x = cx + dx;
                if x < 0 || x >= self.nx as isize {
                    continue;
                }
                cells.push(y as usize * self.nx + x as usize);
            }
        }
        cells
    }

    /// Device ids in the boundary ring of `cell` (the `ring`-neighborhood
    /// *excluding* the cell itself), ascending id.
    pub fn ring_members(&self, cell: usize, ring: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .neighborhood(cell, ring)
            .into_iter()
            .filter(|&c| c != cell)
            .flat_map(|c| self.members(c).iter().copied())
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// Cell-indexed neighbor counting, byte-identical to the dense scan.
///
/// Counts, for every device, how many other devices lie within
/// `radius_m`, by scanning the 3×3 cell block around each device on a
/// grid whose cell edge is `max(radius_m, ε)`. Every pair within the
/// radius shares a block, and the distance predicate is evaluated with
/// the same expression as the dense double loop, so the counts are
/// *identical* — not approximately, exactly.
pub fn neighbor_counts(topology: &Topology, radius_m: f64) -> Vec<usize> {
    let sites = topology.devices();
    let n = sites.len();
    let mut counts = vec![0usize; n];
    if n == 0 {
        return counts;
    }
    let cell = if radius_m.is_finite() && radius_m > 0.0 {
        radius_m
    } else {
        // Degenerate radius: nothing is within a non-positive radius
        // except exact co-location, which any grid handles.
        1.0
    };
    let grid = CellGrid::build(topology, cell);
    for i in 0..n {
        let home = grid.cell_of(i);
        for c in grid.neighborhood(home, 1) {
            for &j in grid.members(c) {
                let j = j as usize;
                if j == i {
                    continue;
                }
                if sites[i].position.distance_to(&sites[j].position) <= radius_m {
                    counts[i] += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::path_loss::LinkEnvironment;
    use lora_sim::{DeviceSite, Position, SimConfig};

    fn site(x: f64, y: f64) -> DeviceSite {
        DeviceSite {
            position: Position::new(x, y),
            environment: LinkEnvironment::LineOfSight,
        }
    }

    fn dense_counts(topology: &Topology, radius_m: f64) -> Vec<usize> {
        let sites = topology.devices();
        let n = sites.len();
        let mut counts = vec![0usize; n];
        for i in 0..n {
            for j in i + 1..n {
                if sites[i].position.distance_to(&sites[j].position) <= radius_m {
                    counts[i] += 1;
                    counts[j] += 1;
                }
            }
        }
        counts
    }

    #[test]
    fn members_partition_the_population() {
        let config = SimConfig::default();
        let topo = Topology::disc(200, 1, 4_000.0, &config, 9);
        let grid = CellGrid::build(&topo, 700.0);
        let mut seen: Vec<u32> = (0..grid.cell_count())
            .flat_map(|c| grid.members(c).iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<u32>>());
        for c in 0..grid.cell_count() {
            let m = grid.members(c);
            assert!(m.windows(2).all(|w| w[0] < w[1]), "ascending ids per cell");
            for &id in m {
                assert_eq!(grid.cell_of(id as usize), c);
            }
        }
    }

    #[test]
    fn neighborhood_is_clipped_and_sorted() {
        let sites: Vec<DeviceSite> = (0..9)
            .map(|i| site((i % 3) as f64 * 100.0, (i / 3) as f64 * 100.0))
            .collect();
        let topo = Topology::from_sites(sites, vec![Position::new(0.0, 0.0)], 1_000.0);
        let grid = CellGrid::build(&topo, 100.0);
        assert_eq!(grid.shape(), (3, 3));
        // Corner cell: 2×2 block.
        assert_eq!(grid.neighborhood(0, 1), vec![0, 1, 3, 4]);
        // Centre cell: all nine.
        assert_eq!(grid.neighborhood(4, 1), (0..9).collect::<Vec<usize>>());
        // Ring excludes the cell itself.
        assert_eq!(grid.ring_members(4, 1).len(), 8);
    }

    #[test]
    fn empty_topology_yields_empty_grid() {
        let topo = Topology::from_sites(Vec::new(), vec![Position::new(0.0, 0.0)], 1_000.0);
        let grid = CellGrid::build(&topo, 100.0);
        assert_eq!(grid.device_count(), 0);
        assert!(grid.occupied_cells().is_empty());
        assert!(neighbor_counts(&topo, 100.0).is_empty());
    }

    #[test]
    fn gridded_counts_match_dense_exactly() {
        let config = SimConfig::default();
        for seed in [1u64, 7, 23] {
            let topo = Topology::disc(300, 1, 5_000.0, &config, seed);
            for radius in [120.0, 500.0, 2_000.0, 20_000.0] {
                assert_eq!(
                    neighbor_counts(&topo, radius),
                    dense_counts(&topo, radius),
                    "seed {seed} radius {radius}"
                );
            }
        }
    }

    #[test]
    fn colocated_devices_are_counted() {
        let sites = vec![site(10.0, 10.0), site(10.0, 10.0), site(10.0, 10.0)];
        let topo = Topology::from_sites(sites, vec![Position::new(0.0, 0.0)], 100.0);
        assert_eq!(neighbor_counts(&topo, 5.0), vec![2, 2, 2]);
    }

    #[test]
    fn max_edge_devices_fold_into_last_cell() {
        let sites = vec![site(0.0, 0.0), site(300.0, 300.0)];
        let topo = Topology::from_sites(sites, vec![Position::new(0.0, 0.0)], 1_000.0);
        let grid = CellGrid::build(&topo, 100.0);
        assert_eq!(grid.cell_of(1), grid.cell_count() - 1);
        let (cx, cy) = grid.cell_center(grid.cell_of(1));
        assert!(cx > 200.0 && cy > 200.0);
    }
}
