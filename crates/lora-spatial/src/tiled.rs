//! Blocked/streamed attenuation: per-cell row tiles instead of the dense
//! `[device][gateway]` matrix.
//!
//! The dense [`lora_sim::AttenuationMatrix`] is O(devices × gateways) —
//! fine at 10k devices, ruinous at 1M × many gateways. A
//! [`TiledAttenuation`] materializes rows *per cell* and only against the
//! gateways that matter for that cell (those within the attenuation
//! horizon of it, as chosen by the caller), so memory scales with
//! occupancy × local gateway count rather than population².
//!
//! Every stored entry is produced by the same
//! [`lora_sim::attenuation_row`] kernel as the dense build, so a tile
//! entry is bitwise identical to the corresponding dense matrix entry.

use crate::grid::CellGrid;
use lora_parallel::par_map_indexed;
use lora_sim::{SimConfig, Topology};

/// Per-cell attenuation tiles over a [`CellGrid`].
///
/// Tile `c` holds a row-major block `[member][local gateway]` for the
/// devices of cell `c` (in [`CellGrid::members`] order) against the
/// cell's gateway subset (global gateway ids, ascending).
#[derive(Debug, Clone, PartialEq)]
pub struct TiledAttenuation {
    gateways: Vec<Vec<u32>>,
    blocks: Vec<Vec<f64>>,
}

impl TiledAttenuation {
    /// Builds the tiles for `grid` over `topology`, one tile per cell,
    /// against `gateway_sets[cell]` (global gateway indices). Cells build
    /// in parallel across `threads` workers; each tile is a pure function
    /// of its cell, so the result is identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics when `gateway_sets` is not `grid.cell_count()` long, when
    /// the grid does not index `topology`, or when a gateway id is out of
    /// range.
    pub fn build(
        config: &SimConfig,
        topology: &Topology,
        grid: &CellGrid,
        gateway_sets: &[Vec<u32>],
        threads: usize,
    ) -> Self {
        assert_eq!(
            gateway_sets.len(),
            grid.cell_count(),
            "one gateway set per cell"
        );
        assert_eq!(
            grid.device_count(),
            topology.devices().len(),
            "grid must index this topology"
        );
        let n_gw = topology.gateways().len();
        let tiles = par_map_indexed(grid.cell_count(), threads.max(1), |cell| {
            let gws = &gateway_sets[cell];
            let members = grid.members(cell);
            if gws.is_empty() || members.is_empty() {
                return Vec::new();
            }
            let positions: Vec<_> = gws
                .iter()
                .map(|&g| {
                    assert!((g as usize) < n_gw, "gateway id {g} out of range");
                    topology.gateways()[g as usize]
                })
                .collect();
            let mut block = Vec::with_capacity(members.len() * gws.len());
            for &dev in members {
                lora_sim::attenuation_row(
                    config,
                    &topology.devices()[dev as usize],
                    &positions,
                    &mut block,
                );
            }
            block
        });
        TiledAttenuation {
            gateways: gateway_sets.to_vec(),
            blocks: tiles,
        }
    }

    /// The gateway subset (global ids) tile `cell` was built against.
    pub fn gateways(&self, cell: usize) -> &[u32] {
        &self.gateways[cell]
    }

    /// The row-major `[member][local gateway]` block for `cell`, in
    /// [`CellGrid::members`] order.
    pub fn block(&self, cell: usize) -> &[f64] {
        &self.blocks[cell]
    }

    /// The attenuation row of one member of `cell` (by position within
    /// [`CellGrid::members`]) against the cell's gateway subset.
    pub fn row(&self, cell: usize, member: usize) -> &[f64] {
        let width = self.gateways[cell].len();
        &self.blocks[cell][member * width..(member + 1) * width]
    }

    /// Looks up the attenuation of device `id` toward global gateway
    /// `gateway`, or `None` when the gateway is outside the device's
    /// cell tile (i.e. priced as far field).
    pub fn at(&self, grid: &CellGrid, id: usize, gateway: u32) -> Option<f64> {
        let cell = grid.cell_of(id);
        let local = self.gateways[cell].binary_search(&gateway).ok()?;
        let member = grid
            .members(cell)
            .binary_search(&(id as u32))
            .expect("device belongs to its own cell");
        Some(self.row(cell, member)[local])
    }

    /// Approximate heap footprint of the tiles, bytes.
    pub fn approx_bytes(&self) -> usize {
        let data: usize = self.blocks.iter().map(|b| b.len() * 8).sum();
        let ids: usize = self.gateways.iter().map(|g| g.len() * 4).sum();
        data + ids + (self.blocks.capacity() + self.gateways.capacity()) * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_sim::attenuation_matrix;

    fn setup(n: usize, seed: u64) -> (SimConfig, Topology) {
        let config = SimConfig::default();
        let topology = Topology::disc(n, 3, 4_000.0, &config, seed);
        (config, topology)
    }

    #[test]
    fn tiles_match_dense_entries_bitwise() {
        let (config, topology) = setup(200, 7);
        let grid = CellGrid::build(&topology, 1_500.0);
        let all: Vec<u32> = (0..topology.gateways().len() as u32).collect();
        let sets = vec![all; grid.cell_count()];
        let tiled = TiledAttenuation::build(&config, &topology, &grid, &sets, 3);
        let dense = attenuation_matrix(&config, &topology);
        for id in 0..topology.devices().len() {
            for g in 0..topology.gateways().len() {
                let t = tiled.at(&grid, id, g as u32).expect("full sets cover all");
                assert_eq!(t.to_bits(), dense.at(id, g).to_bits(), "dev {id} gw {g}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_tiles() {
        let (config, topology) = setup(150, 11);
        let grid = CellGrid::build(&topology, 1_000.0);
        let all: Vec<u32> = (0..topology.gateways().len() as u32).collect();
        let sets = vec![all; grid.cell_count()];
        let one = TiledAttenuation::build(&config, &topology, &grid, &sets, 1);
        let four = TiledAttenuation::build(&config, &topology, &grid, &sets, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn subset_tiles_report_missing_gateways_as_far_field() {
        let (config, topology) = setup(100, 3);
        let grid = CellGrid::build(&topology, 2_000.0);
        // Only gateway 0 everywhere.
        let sets = vec![vec![0u32]; grid.cell_count()];
        let tiled = TiledAttenuation::build(&config, &topology, &grid, &sets, 2);
        let dense = attenuation_matrix(&config, &topology);
        for id in 0..topology.devices().len() {
            assert_eq!(
                tiled.at(&grid, id, 0).unwrap().to_bits(),
                dense.at(id, 0).to_bits()
            );
            assert!(tiled.at(&grid, id, 1).is_none());
        }
    }

    #[test]
    fn footprint_tracks_occupancy_not_population_squared() {
        let (config, topology) = setup(400, 5);
        let grid = CellGrid::build(&topology, 800.0);
        let sets = vec![vec![0u32]; grid.cell_count()];
        let tiled = TiledAttenuation::build(&config, &topology, &grid, &sets, 2);
        // 400 devices × 1 gateway ≈ 3.2 kB of f64s, far below dense×all.
        let data: usize = (0..grid.cell_count()).map(|c| tiled.block(c).len()).sum();
        assert_eq!(data, 400);
        assert!(tiled.approx_bytes() < 1 << 20);
    }
}
