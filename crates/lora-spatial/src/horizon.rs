//! The attenuation horizon and the cell-sizing rule derived from it.
//!
//! The horizon is the distance beyond which even a maximum-power
//! transmitter's mean received power drops below a fraction `ε` of the
//! noise floor — past it, a device's contribution to any gateway's
//! interference or occupancy is negligible compared to thermal noise.
//! It bounds how far *exact* pairwise terms need to reach; everything
//! beyond is priced analytically by [`crate::farfield`].
//!
//! Cells are sized from the horizon, then clamped so the *expected* cell
//! occupancy under a uniform deployment stays near a target — the horizon
//! controls the physics, the occupancy cap controls per-cell solve cost.

use lora_phy::link::noise_floor_dbm;
use lora_phy::{dbm_to_mw, Bandwidth};
use lora_sim::SimConfig;

/// Default relevance threshold: contributions below 1 % of the noise
/// floor are far field.
pub const DEFAULT_HORIZON_EPSILON: f64 = 1e-2;

/// The distance (metres) at which the mean received power of a
/// maximum-power transmitter falls to `epsilon` times the noise floor,
/// under the *slowest-decaying* configured path-loss exponent (the
/// farthest-reaching environment, so the horizon upper-bounds relevance
/// for every device).
///
/// Found by bisection on the monotone attenuation curve; clamped to
/// `[1, 1e6]` metres.
pub fn attenuation_horizon_m(config: &SimConfig, epsilon: f64) -> f64 {
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "horizon epsilon must be positive, got {epsilon}"
    );
    let max_p_mw = config
        .region
        .tx_power_levels()
        .last()
        .expect("regions define at least one TP level")
        .milliwatts();
    let noise_mw = dbm_to_mw(noise_floor_dbm(Bandwidth::Bw125, config.noise_figure_db));
    let beta = config.betas.los.min(config.betas.nlos);
    let target = epsilon * noise_mw;
    let rx = |d: f64| max_p_mw * config.path_loss.attenuation(d, beta);

    let (mut lo, mut hi) = (1.0f64, 1e6f64);
    if rx(lo) <= target {
        return lo;
    }
    if rx(hi) > target {
        return hi;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if rx(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The cell edge (metres) for a deployment: the attenuation horizon,
/// clamped so a uniform deployment of `n_devices` over the disc of
/// `radius_m` puts about `target_occupancy` devices per cell, and never
/// below 50 m nor above the deployment diameter.
///
/// The clamp toward the occupancy target is what makes million-device
/// runs tractable — the boundary ring then no longer covers the full
/// horizon, and the far-field pricer accounts for the remainder.
pub fn cell_size_m(
    horizon_m: f64,
    radius_m: f64,
    n_devices: usize,
    target_occupancy: usize,
) -> f64 {
    let area = std::f64::consts::PI * radius_m * radius_m;
    let occupancy_edge = if n_devices > 0 && area > 0.0 {
        (target_occupancy.max(1) as f64 * area / n_devices as f64).sqrt()
    } else {
        f64::INFINITY
    };
    horizon_m
        .min(occupancy_edge)
        .clamp(50.0, (2.0 * radius_m).max(50.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_is_finite_and_shrinks_with_epsilon() {
        let config = SimConfig::default();
        let far = attenuation_horizon_m(&config, 1e-4);
        let near = attenuation_horizon_m(&config, 1e-1);
        assert!(near.is_finite() && far.is_finite());
        assert!(
            near < far,
            "a stricter relevance threshold reaches farther: {near} vs {far}"
        );
        assert!((1.0..=1e6).contains(&near));
    }

    #[test]
    fn horizon_sits_on_the_threshold() {
        let config = SimConfig::default();
        let eps = DEFAULT_HORIZON_EPSILON;
        let d = attenuation_horizon_m(&config, eps);
        let beta = config.betas.los.min(config.betas.nlos);
        let max_p = config.region.tx_power_levels().last().unwrap().milliwatts();
        let rx = max_p * config.path_loss.attenuation(d, beta);
        let noise = dbm_to_mw(noise_floor_dbm(Bandwidth::Bw125, config.noise_figure_db));
        assert!(
            (rx / (eps * noise) - 1.0).abs() < 1e-6,
            "bisection converged: rx {rx} vs target {}",
            eps * noise
        );
    }

    #[test]
    fn cell_size_honours_occupancy_cap() {
        // 1M devices in a 5 km disc: the horizon would dwarf the disc, so
        // the occupancy clamp takes over.
        let edge = cell_size_m(3_000.0, 5_000.0, 1_000_000, 256);
        let area = std::f64::consts::PI * 5_000.0f64.powi(2);
        let expected_occ = 1_000_000.0 * edge * edge / area;
        assert!(edge < 3_000.0);
        assert!(
            (200.0..=320.0).contains(&expected_occ),
            "expected occupancy near target: {expected_occ}"
        );
        // Small populations keep the horizon-sized cells.
        assert_eq!(cell_size_m(3_000.0, 5_000.0, 100, 256), 3_000.0);
        // Degenerate inputs stay clamped.
        assert_eq!(cell_size_m(3_000.0, 0.0, 0, 256), 50.0);
    }
}
