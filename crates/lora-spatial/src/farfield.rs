//! The far-field interference pricer (paper Eq. 17–20, localized).
//!
//! The paper's PPP reduction replaces the pairwise interference sum with
//! a Laplace transform over a Poisson point process of group density
//! `λ_{s,c} = λ·N_{s,c}/N` (Eq. 20). The cell-sharded allocator uses the
//! same license in *truncated* form: devices inside a cell's boundary
//! ring keep their exact pairwise terms, and everything beyond the ring
//! is priced as a PPP annulus `[r_min, r_max]` around the cell:
//!
//! * [`FarFieldPricer::interference_kernel`] — the first moment
//!   `2π ∫ ā(r)·r dr` of the annulus attenuation, which multiplied by
//!   `λ_g·p̄_g` gives the *mean* far-field interference power. The
//!   allocator's PDR form consumes mean interference (the expectation of
//!   Eq. 16's numerator), so the first moment is the term that composes
//!   with the exact local sums;
//! * [`FarFieldPricer::occupancy_kernel`] — the annulus contribution to
//!   a gateway's expected demodulator occupancy `Λ` (Eq. 12's mean),
//!   with the Rayleigh detection probability folded in;
//! * [`FarFieldPricer::truncated_laplace`] — the full Laplace transform
//!   of the annulus interference under Rayleigh fading, the literal
//!   Eq. 18–19 restricted to `[r_min, r_max]`; it reduces to
//!   `lora_model::interference::laplace_transform` as the annulus grows
//!   to the whole plane.
//!
//! All kernels average over the LoS/NLoS environment mixture the way the
//! deployment samples it (probability `p_los`), and integrate the *real*
//! configured path-loss curve by composite Simpson — no closed-form
//! exponent assumptions, so log-distance models price correctly too.

use lora_phy::path_loss::{BetaProfile, PathLossModel};
use lora_sim::SimConfig;

/// Simpson panels per kernel evaluation; the integrands are smooth and
/// monotone, so a fixed fine grid is deterministic and accurate.
const PANELS: usize = 256;

/// Annulus pricing kernels for one deployment's propagation model.
#[derive(Debug, Clone, PartialEq)]
pub struct FarFieldPricer {
    path_loss: PathLossModel,
    betas: BetaProfile,
    p_los: f64,
    r_max: f64,
}

impl FarFieldPricer {
    /// Builds the pricer for `config`'s propagation model with the far
    /// edge of every annulus at `r_max_m` (typically the deployment
    /// diameter — a finite deployment has no interferers beyond it).
    ///
    /// # Panics
    ///
    /// Panics when `r_max_m` is not a positive finite number.
    pub fn new(config: &SimConfig, r_max_m: f64) -> Self {
        assert!(
            r_max_m.is_finite() && r_max_m > 0.0,
            "far-field outer radius must be positive, got {r_max_m}"
        );
        FarFieldPricer {
            path_loss: config.path_loss,
            betas: config.betas,
            p_los: config.p_los.clamp(0.0, 1.0),
            r_max: r_max_m,
        }
    }

    /// The annulus outer radius, metres.
    pub fn r_max_m(&self) -> f64 {
        self.r_max
    }

    /// Environment-mixture expectation of `f(a(r))` at range `r`.
    #[inline]
    fn mix(&self, r: f64, f: impl Fn(f64) -> f64) -> f64 {
        let a_los = self.path_loss.attenuation(r, self.betas.los);
        let a_nlos = self.path_loss.attenuation(r, self.betas.nlos);
        self.p_los * f(a_los) + (1.0 - self.p_los) * f(a_nlos)
    }

    /// Composite Simpson of `g(r)·r` over `[r_min, r_max]` (the radial
    /// part of a polar area integral, without the `2π`).
    fn radial_integral(&self, r_min: f64, g: impl Fn(f64) -> f64) -> f64 {
        let lo = r_min.max(0.0);
        if lo >= self.r_max {
            return 0.0;
        }
        let h = (self.r_max - lo) / PANELS as f64;
        let mut acc = 0.0;
        for i in 0..PANELS {
            let a = lo + i as f64 * h;
            let m = a + 0.5 * h;
            let b = a + h;
            acc += (g(a) * a + 4.0 * g(m) * m + g(b) * b) * h / 6.0;
        }
        acc
    }

    /// `2π ∫_{r_min}^{r_max} ā(r)·r dr` — multiply by the group density
    /// `λ_g` (per m²) and the group's mean transmit power `p̄_g` (mW) to
    /// get the mean far-field interference power at a point, mW.
    pub fn interference_kernel(&self, r_min: f64) -> f64 {
        2.0 * std::f64::consts::PI * self.radial_integral(r_min, |r| self.mix(r, |a| a))
    }

    /// `2π ∫_{r_min}^{r_max} ā_det(r)·r dr` with
    /// `ā_det(r) = E_env[exp(−sens/(p̄·a(r)))]` — multiply by `λ_sf·α_sf`
    /// (group density times duty cycle) to get the annulus contribution
    /// to a gateway's expected occupancy `Λ`.
    pub fn occupancy_kernel(&self, sens_mw: f64, p_mw: f64, r_min: f64) -> f64 {
        if p_mw <= 0.0 {
            return 0.0;
        }
        2.0 * std::f64::consts::PI
            * self.radial_integral(r_min, |r| {
                self.mix(r, |a| {
                    let mean_rx = p_mw * a;
                    if mean_rx <= 0.0 {
                        0.0
                    } else {
                        (-sens_mw / mean_rx).exp()
                    }
                })
            })
    }

    /// Area of the annulus `[r_min, r_max]`, m² — the far-field count of
    /// a group is `λ_g` times this.
    pub fn ring_area_m2(&self, r_min: f64) -> f64 {
        let lo = r_min.max(0.0).min(self.r_max);
        std::f64::consts::PI * (self.r_max * self.r_max - lo * lo)
    }

    /// The Laplace transform of the annulus interference at `s` under
    /// Rayleigh-faded interferers of density `lambda_per_m2` and transmit
    /// power `p_mw` — paper Eq. 18–19 truncated to `[r_min, r_max]`:
    /// `exp(−2πλ ∫ (1 − E_env[1/(1 + s·p·a(r))])·r dr)`.
    ///
    /// Returns a value in `(0, 1]`; as `r_min → 0`, `r_max → ∞` this
    /// approaches the closed form of
    /// `lora_model::interference::laplace_transform`.
    pub fn truncated_laplace(&self, s: f64, p_mw: f64, lambda_per_m2: f64, r_min: f64) -> f64 {
        debug_assert!(s >= 0.0 && p_mw >= 0.0 && lambda_per_m2 >= 0.0);
        if s == 0.0 || p_mw == 0.0 || lambda_per_m2 == 0.0 {
            return 1.0;
        }
        let exponent = self.radial_integral(r_min, |r| {
            self.mix(r, |a| {
                let x = s * p_mw * a;
                1.0 - 1.0 / (1.0 + x)
            })
        });
        (-2.0 * std::f64::consts::PI * lambda_per_m2 * exponent).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn pricer(r_max: f64) -> FarFieldPricer {
        FarFieldPricer::new(&SimConfig::default(), r_max)
    }

    #[test]
    fn kernels_shrink_with_exclusion_radius() {
        let p = pricer(10_000.0);
        let full = p.interference_kernel(0.0);
        let cut = p.interference_kernel(1_000.0);
        let far = p.interference_kernel(8_000.0);
        assert!(full > cut && cut > far && far > 0.0);
        assert_eq!(p.interference_kernel(10_000.0), 0.0);
        assert_eq!(p.interference_kernel(20_000.0), 0.0);
    }

    #[test]
    fn mean_far_interference_is_below_noise_scale() {
        // The whole point of the horizon: with the exclusion at the
        // horizon, far devices contribute less than noise even at
        // metropolitan densities.
        let config = SimConfig::default();
        let p = pricer(10_000.0);
        let horizon = crate::horizon::attenuation_horizon_m(&config, 1e-2);
        let lambda = 1_000_000.0 / (PI * 5_000.0f64.powi(2)); // 1M in 5 km
        let mean_i = lambda * 25.0 * p.interference_kernel(horizon);
        let noise = lora_phy::dbm_to_mw(lora_phy::link::noise_floor_dbm(
            lora_phy::Bandwidth::Bw125,
            config.noise_figure_db,
        ));
        assert!(
            mean_i < noise * 1_000.0,
            "far field stays noise-scale: {mean_i} vs noise {noise}"
        );
    }

    #[test]
    fn occupancy_kernel_bounded_by_ring_area() {
        // The detection probability is ≤ 1, so the kernel is at most the
        // annulus area.
        let p = pricer(6_000.0);
        for r_min in [0.0, 500.0, 3_000.0] {
            let k = p.occupancy_kernel(1e-12, 25.0, r_min);
            assert!(k >= 0.0 && k <= p.ring_area_m2(r_min) * (1.0 + 1e-12));
        }
        assert_eq!(p.occupancy_kernel(1e-12, 0.0, 0.0), 0.0);
    }

    #[test]
    fn truncated_laplace_is_probability_like_and_monotone() {
        let p = pricer(10_000.0);
        for s in [1e-3, 1.0, 1e3] {
            for lambda in [0.0, 1e-8, 1e-5] {
                let v = p.truncated_laplace(s, 25.0, lambda, 100.0);
                assert!((0.0..=1.0).contains(&v), "s={s} λ={lambda}: {v}");
            }
        }
        let base = p.truncated_laplace(1.0, 25.0, 1e-7, 100.0);
        assert!(p.truncated_laplace(1.0, 25.0, 2e-7, 100.0) < base);
        assert!(p.truncated_laplace(2.0, 25.0, 1e-7, 100.0) < base);
        assert!(p.truncated_laplace(1.0, 25.0, 1e-7, 2_000.0) > base);
        assert_eq!(p.truncated_laplace(0.0, 25.0, 1e-7, 100.0), 1.0);
    }

    #[test]
    fn truncated_laplace_approaches_the_closed_form() {
        // Friis kernel with a uniform exponent: a(r) = K·r^{−β} for
        // r ≥ 1, so the untruncated transform has the closed form
        // exp(−2πλ·(s·p·K)^{2/β}·C(β)) with C(β) = (π/β)/sin(2π/β).
        let beta = 3.5;
        let f_hz = 903e6;
        let config = SimConfig::builder()
            .path_loss(PathLossModel::friis_exponent(f_hz))
            .betas(BetaProfile::uniform(beta))
            .build();
        let p = FarFieldPricer::new(&config, 2_000_000.0);
        let k = config.path_loss.attenuation(1.0, beta); // a(1) = K
        let (s, p_mw, lambda) = (5e9, 25.0, 1e-9);
        let c_beta = (PI / beta) / (2.0 * PI / beta).sin();
        let closed = (-2.0 * PI * lambda * (s * p_mw * k).powf(2.0 / beta) * c_beta).exp();
        let numeric = p.truncated_laplace(s, p_mw, lambda, 0.0);
        assert!(
            (numeric - closed).abs() < 0.05 * closed.max(1e-3),
            "numeric {numeric} vs closed {closed}"
        );
    }
}
