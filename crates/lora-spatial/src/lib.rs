//! lora-spatial: the cell-sharded spatial substrate for million-device
//! scale-out.
//!
//! The dense pipeline (`lora-sim` attenuation matrix → `lora-model`
//! interference sums → `ef-lora` greedy scan) is O(N²) in devices. This
//! crate supplies the pieces that let the allocator, model, and simulator
//! touch only *local* structure:
//!
//! * [`grid::CellGrid`] — a uniform cell index over device sites with
//!   CSR membership, neighborhood (boundary-ring) iteration, and a
//!   cell-indexed [`grid::neighbor_counts`] that is byte-identical to the
//!   dense O(N²) scan;
//! * [`horizon`] — the attenuation horizon (the distance past which a
//!   max-power transmitter falls below a fraction of the noise floor)
//!   and the occupancy-clamped cell-sizing rule derived from it;
//! * [`tiled::TiledAttenuation`] — per-cell attenuation row blocks
//!   against per-cell gateway subsets, built by the same kernel as the
//!   dense matrix so entries are bitwise identical, with memory scaling
//!   in occupancy instead of population²;
//! * [`farfield::FarFieldPricer`] — the paper's Eq. 17–20 PPP machinery
//!   in truncated form, pricing everything beyond a cell's boundary ring
//!   as an analytic annulus integral (mean interference, occupancy, and
//!   the literal truncated Laplace transform).
//!
//! Consumers: `ef-lora` (`ef_lora::spatial`) shards the allocation over
//! cells, `lora-model` accepts the priced far field as ambient offsets,
//! and `lora-sim` exposes the tiled build as the escape hatch when the
//! dense matrix exceeds its byte budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod farfield;
pub mod grid;
pub mod horizon;
pub mod tiled;

pub use farfield::FarFieldPricer;
pub use grid::CellGrid;
pub use horizon::{attenuation_horizon_m, cell_size_m, DEFAULT_HORIZON_EPSILON};
pub use tiled::TiledAttenuation;
