//! Applying churn events to a live population.
//!
//! Extracted from the epoch runner so that batch replay
//! ([`crate::run_scenario`]) and long-running consumers (the
//! `ef-lora-serve` daemon) share one implementation of Join/Leave/Migrate
//! semantics. Every event flows through the matching
//! [`ef_lora::IncrementalAllocator`] entry point, so pre-existing devices
//! are reconfigured only when the change touches their contention groups.
//!
//! Determinism contract: environment draws, leave shuffles and migration
//! shuffles all come from the caller-supplied churn stream; join
//! positions come from a spatial stream whose seed the caller derives
//! (see [`epoch_churn_rng`] / [`epoch_join_seed`] for the epoch runner's
//! derivation and [`event_churn_rng`] / [`event_join_seed`] for
//! event-sequence consumers). The extraction preserves the epoch runner's
//! draw order exactly — reports stay byte-identical.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use ef_lora::{AllocationContext, IncrementalAllocator};
use lora_model::NetworkModel;
use lora_phy::path_loss::LinkEnvironment;
use lora_phy::TxConfig;
use lora_sim::{DeviceSite, Position, SimConfig, Topology};

use crate::error::ScenarioError;
use crate::spatial::{sample_n_positions, SPATIAL_TAG};
use crate::spec::{ChurnEvent, ChurnKind, ClassSpec, SpatialSpec};

/// Seed tag of the churn stream ("churnrng").
pub(crate) const CHURN_TAG: u64 = 0x6368_7572_6e72_6e67;

/// Odd multiplier decorrelating event sequence numbers in
/// [`event_churn_rng`] / [`event_join_seed`] (the 64-bit golden ratio).
const SEQ_MIX: u64 = 0x9e37_79b9_97f4_a7c5;

/// Mutable population state threaded through churn events. The three
/// vectors are index-aligned: device `i` sits at `sites[i]`, belongs to
/// class `class_of[i]` and transmits with `alloc[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    /// Device sites (position + link environment).
    pub sites: Vec<DeviceSite>,
    /// Per-device index into the effective class list.
    pub class_of: Vec<usize>,
    /// Current per-device transmission configuration.
    pub alloc: Vec<TxConfig>,
}

impl Population {
    /// Number of live devices.
    pub fn device_count(&self) -> usize {
        self.sites.len()
    }
}

/// Immutable surroundings of a churn event: the class list, the spatial
/// process joining devices are drawn from, and the fixed gateway layout.
#[derive(Debug, Clone)]
pub struct ChurnContext<'a> {
    /// Effective device classes
    /// ([`crate::ScenarioSpec::effective_classes`]).
    pub classes: &'a [ClassSpec],
    /// Spatial process join positions are sampled from.
    pub spatial: &'a SpatialSpec,
    /// Gateway positions (fixed across churn).
    pub gateways: &'a [Position],
    /// Deployment region radius in metres.
    pub radius_m: f64,
}

/// Typed warning raised while applying a churn event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnWarning {
    /// A `Leave` asked for more departures than the population can
    /// absorb; the count was clamped so at least one device survives.
    LeaveClamped {
        /// Epoch the event was stamped with.
        epoch: u32,
        /// Departures the event requested.
        requested: usize,
        /// Departures actually applied.
        applied: usize,
    },
}

/// What applying one churn event did to the population.
#[derive(Debug, Clone, PartialEq)]
pub struct EventOutcome {
    /// Devices that joined.
    pub joined: usize,
    /// Devices that left.
    pub left: usize,
    /// Devices that migrated classes.
    pub migrated: usize,
    /// Pre-existing devices whose configuration the incremental
    /// allocator changed.
    pub reconfigured: usize,
    /// Candidate configurations the incremental allocator examined.
    pub candidates_evaluated: u64,
    /// Analytical-model minimum EE after the adjustment, bits/mJ; `None`
    /// when the event was a no-op and no allocator pass ran.
    pub min_ee: Option<f64>,
    /// Warning raised while applying the event, if any.
    pub warning: Option<ChurnWarning>,
}

impl EventOutcome {
    /// The outcome of an event that changed nothing: no population
    /// delta, no allocator pass, no metric.
    pub fn noop(warning: Option<ChurnWarning>) -> Self {
        EventOutcome {
            joined: 0,
            left: 0,
            migrated: 0,
            reconfigured: 0,
            candidates_evaluated: 0,
            min_ee: None,
            warning,
        }
    }
}

/// The churn-draw stream of one epoch (environment draws, leave
/// shuffles, migration shuffles).
pub fn epoch_churn_rng(seed: u64, epoch: u32) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed ^ CHURN_TAG ^ ((epoch as u64) << 32))
}

/// Seed of the spatial stream the epoch runner draws join positions
/// from: offset by the joins already applied this epoch so every wave
/// lands on fresh coordinates.
pub fn epoch_join_seed(seed: u64, epoch: u32, joined_before: usize) -> u64 {
    seed ^ SPATIAL_TAG ^ ((epoch as u64) << 32) ^ joined_before as u64
}

/// Churn stream for the `seq`-th event of an event-sequence consumer
/// (the serve daemon), mirroring [`epoch_churn_rng`] with the sequence
/// number in the role of the epoch.
pub fn event_churn_rng(seed: u64, seq: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed ^ CHURN_TAG ^ seq.wrapping_mul(SEQ_MIX))
}

/// Spatial-stream seed for the `seq`-th event of an event-sequence
/// consumer; the [`event_churn_rng`] counterpart of
/// [`epoch_join_seed`].
pub fn event_join_seed(seed: u64, seq: u64) -> u64 {
    seed ^ SPATIAL_TAG ^ seq.wrapping_mul(SEQ_MIX)
}

/// How the incremental allocator must be invoked after the population
/// mutation of one event, carrying the inputs an incremental model
/// maintainer needs (which rows to add, retire or patch).
#[derive(Debug, Clone, PartialEq)]
pub enum StagedAdjust {
    /// The event changed nothing; no allocator pass runs.
    Noop,
    /// A `Join` appended `added` devices at the population tail.
    Extend {
        /// How many devices joined.
        added: usize,
    },
    /// A `Leave` compacted the population.
    AfterRemoval {
        /// Departed devices' old configurations (they key the repair
        /// groups).
        removed: Vec<TxConfig>,
        /// Mask over the *pre-event* population: `true` = departed.
        leaving: Vec<bool>,
    },
    /// A `Migrate` changed the classes of `members` (post-event
    /// indices; positions are unchanged).
    Repair {
        /// Devices whose class — and therefore reporting interval —
        /// changed.
        members: Vec<usize>,
    },
}

/// A churn event with its population mutation and random draws already
/// performed, but the allocator not yet run — the output of
/// [`stage_event`], consumed by [`finish_event`].
#[derive(Debug, Clone, PartialEq)]
pub struct StagedEvent {
    /// Devices that joined.
    pub joined: usize,
    /// Devices that left.
    pub left: usize,
    /// Devices that migrated classes.
    pub migrated: usize,
    /// Warning raised while staging, if any.
    pub warning: Option<ChurnWarning>,
    /// How to invoke the incremental allocator.
    pub adjust: StagedAdjust,
}

/// Performs the population mutation and every random draw of one churn
/// event, *without* running the allocator: the first half of
/// [`apply_event`], split out so callers that maintain model state
/// incrementally (the serve daemon) can update their caches between the
/// mutation and the allocator pass.
///
/// On a non-noop event the per-device reporting intervals in `config`
/// are refreshed before returning; a noop ([`StagedAdjust::Noop`])
/// returns with `config` untouched, exactly as [`apply_event`] behaves.
///
/// # Errors
///
/// [`ScenarioError::UnknownClass`] for a class name outside the class
/// list (raised before any mutation).
pub fn stage_event(
    ctx: &ChurnContext<'_>,
    config: &mut SimConfig,
    pop: &mut Population,
    event: &ChurnEvent,
    rng: &mut ChaCha12Rng,
    join_seed: u64,
) -> Result<StagedEvent, ScenarioError> {
    let (joined, left, migrated, warning, adjust) = match &event.event {
        ChurnKind::Join { class, count } => {
            let class_idx = class_index(ctx.classes, class)?;
            let mut spatial_rng = ChaCha12Rng::seed_from_u64(join_seed);
            let positions = sample_n_positions(&mut spatial_rng, ctx.spatial, ctx.radius_m, *count);
            let p = ctx.classes[class_idx].p_los.unwrap_or(config.p_los);
            for position in positions {
                let environment = if rng.gen::<f64>() < p {
                    LinkEnvironment::LineOfSight
                } else {
                    LinkEnvironment::NonLineOfSight
                };
                pop.sites.push(DeviceSite {
                    position,
                    environment,
                });
                pop.class_of.push(class_idx);
            }
            (*count, 0, 0, None, StagedAdjust::Extend { added: *count })
        }
        ChurnKind::Leave { count } => {
            let requested = *count;
            let applied = requested.min(pop.sites.len().saturating_sub(1));
            let warning = (applied < requested).then_some(ChurnWarning::LeaveClamped {
                epoch: event.epoch,
                requested,
                applied,
            });
            if applied == 0 {
                return Ok(StagedEvent {
                    joined: 0,
                    left: 0,
                    migrated: 0,
                    warning,
                    adjust: StagedAdjust::Noop,
                });
            }
            let mut order: Vec<usize> = (0..pop.sites.len()).collect();
            order.shuffle(rng);
            let mut leaving = vec![false; pop.sites.len()];
            for &idx in &order[..applied] {
                leaving[idx] = true;
            }
            let removed: Vec<TxConfig> = pop
                .alloc
                .iter()
                .enumerate()
                .filter(|&(i, _)| leaving[i])
                .map(|(_, &cfg)| cfg)
                .collect();
            retain_kept(&mut pop.sites, &leaving);
            retain_kept(&mut pop.class_of, &leaving);
            retain_kept(&mut pop.alloc, &leaving);
            (
                0,
                applied,
                0,
                warning,
                StagedAdjust::AfterRemoval { removed, leaving },
            )
        }
        ChurnKind::Migrate { from, to, count } => {
            let from_idx = class_index(ctx.classes, from)?;
            let to_idx = class_index(ctx.classes, to)?;
            let mut members: Vec<usize> = pop
                .class_of
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == from_idx)
                .map(|(i, _)| i)
                .collect();
            members.shuffle(rng);
            members.truncate(*count);
            if members.is_empty() {
                return Ok(StagedEvent {
                    joined: 0,
                    left: 0,
                    migrated: 0,
                    warning: None,
                    adjust: StagedAdjust::Noop,
                });
            }
            for &i in &members {
                pop.class_of[i] = to_idx;
            }
            // A migrated device's reporting interval changed, so its
            // energy budget did too: re-scan exactly those devices.
            (0, 0, members.len(), None, StagedAdjust::Repair { members })
        }
    };

    refresh_intervals(config, &pop.class_of, ctx.classes);
    Ok(StagedEvent {
        joined,
        left,
        migrated,
        warning,
        adjust,
    })
}

/// Runs the incremental allocator for a staged event against a caller-
/// supplied context and assembles the outcome: the second half of
/// [`apply_event`]. The context's model may be rebuilt from scratch (as
/// [`apply_event`] does) or maintained incrementally — the equivalence
/// suite in the conformance crate proves both produce byte-identical
/// outcomes.
///
/// # Errors
///
/// [`ScenarioError::Alloc`] if the incremental allocator rejects the
/// adjusted deployment.
pub fn finish_event(
    alloc_ctx: &AllocationContext<'_>,
    pop: &mut Population,
    incremental: &IncrementalAllocator,
    staged: StagedEvent,
) -> Result<EventOutcome, ScenarioError> {
    let outcome = match &staged.adjust {
        StagedAdjust::Noop => return Ok(EventOutcome::noop(staged.warning)),
        StagedAdjust::Extend { .. } => incremental.extend(alloc_ctx, &pop.alloc)?,
        StagedAdjust::AfterRemoval { removed, .. } => {
            incremental.after_removal(alloc_ctx, &pop.alloc, removed)?
        }
        StagedAdjust::Repair { members } => incremental.repair(alloc_ctx, &pop.alloc, members)?,
    };
    let min_ee = outcome.min_ee;
    let reconfigured = outcome.reconfigured;
    let candidates_evaluated = outcome.candidates_evaluated;
    pop.alloc = outcome.allocation.into_inner();
    Ok(EventOutcome {
        joined: staged.joined,
        left: staged.left,
        migrated: staged.migrated,
        reconfigured,
        candidates_evaluated,
        min_ee: Some(min_ee),
        warning: staged.warning,
    })
}

/// Applies one churn event to the population through the matching
/// incremental-allocator entry point and refreshes the per-device
/// reporting intervals: [`stage_event`] followed by [`finish_event`]
/// against a freshly rebuilt `Topology`/`NetworkModel`/
/// [`AllocationContext`] — the from-scratch reference semantics.
///
/// `rng` is the churn stream shared across a batch of events (one per
/// epoch in the runner, one per event in the daemon); `join_seed` seeds
/// the spatial stream a `Join`'s positions are drawn from.
///
/// A `Leave` keeps at least one device alive — an empty network has no
/// allocation to repair and no metric to report — and reports the clamp
/// as [`ChurnWarning::LeaveClamped`]. Departures are compacted in one
/// pass per population vector; `after_removal` keys on the removed
/// configs' contention groups, so collection order is immaterial.
///
/// # Errors
///
/// [`ScenarioError::UnknownClass`] for a class name outside the class
/// list; [`ScenarioError::Alloc`] if the incremental allocator rejects
/// the adjusted deployment.
pub fn apply_event(
    ctx: &ChurnContext<'_>,
    config: &mut SimConfig,
    pop: &mut Population,
    incremental: &IncrementalAllocator,
    event: &ChurnEvent,
    rng: &mut ChaCha12Rng,
    join_seed: u64,
) -> Result<EventOutcome, ScenarioError> {
    let staged = stage_event(ctx, config, pop, event, rng, join_seed)?;
    if staged.adjust == StagedAdjust::Noop {
        return Ok(EventOutcome::noop(staged.warning));
    }
    let topology = Topology::from_sites(pop.sites.clone(), ctx.gateways.to_vec(), ctx.radius_m);
    let model = NetworkModel::new(config, &topology);
    let alloc_ctx = AllocationContext::new(config, &topology, &model);
    finish_event(&alloc_ctx, pop, incremental, staged)
}

/// Drops every index marked in `leaving` with a single compaction pass.
fn retain_kept<T>(items: &mut Vec<T>, leaving: &[bool]) {
    let mut idx = 0;
    items.retain(|_| {
        let keep = !leaving[idx];
        idx += 1;
        keep
    });
}

/// Index of `name` in the class list.
///
/// # Errors
///
/// [`ScenarioError::UnknownClass`] if no class carries that name.
pub fn class_index(classes: &[ClassSpec], name: &str) -> Result<usize, ScenarioError> {
    classes
        .iter()
        .position(|c| c.name == name)
        .ok_or_else(|| ScenarioError::UnknownClass {
            name: name.to_string(),
        })
}

/// Rebuilds `per_device_intervals_s` after the population changed (same
/// folding rule as compilation: one class → global interval only).
pub fn refresh_intervals(config: &mut SimConfig, class_of: &[usize], classes: &[ClassSpec]) {
    if classes.len() == 1 {
        config.report_interval_s = classes[0].report_interval_s;
        config.per_device_intervals_s = None;
    } else {
        config.per_device_intervals_s = Some(
            class_of
                .iter()
                .map(|&c| classes[c].report_interval_s)
                .collect(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_streams_differ_per_sequence_number() {
        let mut a = event_churn_rng(7, 0);
        let mut b = event_churn_rng(7, 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
        assert_ne!(event_join_seed(7, 0), event_join_seed(7, 1));
    }

    #[test]
    fn retain_kept_compacts_in_order() {
        let mut v = vec![10, 11, 12, 13, 14];
        retain_kept(&mut v, &[true, false, false, true, false]);
        assert_eq!(v, vec![11, 12, 14]);
    }
}
