//! Error type for scenario validation, compilation and runs.

use std::error::Error;
use std::fmt;

use ef_lora::AllocError;
use lora_sim::SimError;

/// Errors produced while validating, compiling or running a scenario.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// A spec field fails validation (non-finite, out of range, empty,
    /// inconsistent fractions, …).
    InvalidSpec {
        /// Dotted path of the offending field, e.g. `classes[1].fraction`.
        field: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A churn event names a device class the spec does not declare.
    UnknownClass {
        /// The undeclared class name.
        name: String,
    },
    /// The spec asks for per-class heterogeneity the simulator core does
    /// not support yet (payload sizes and confirmed-mode are global in
    /// [`lora_sim::SimConfig`]); classes must agree on these fields.
    HeterogeneousUnsupported {
        /// The field that differs between classes.
        field: &'static str,
        /// Human-readable explanation of the conflict.
        reason: String,
    },
    /// The compiled scenario contains no devices (e.g. a PPP draw of
    /// intensity so low the region came up empty).
    EmptyScenario {
        /// What came up empty.
        reason: String,
    },
    /// The underlying simulator rejected the compiled inputs.
    Sim(SimError),
    /// The allocator rejected the compiled inputs mid-run.
    Alloc(AllocError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::InvalidSpec { field, reason } => {
                write!(f, "invalid scenario spec: {field}: {reason}")
            }
            ScenarioError::UnknownClass { name } => {
                write!(f, "churn event references undeclared device class `{name}`")
            }
            ScenarioError::HeterogeneousUnsupported { field, reason } => {
                write!(f, "per-class `{field}` values must agree: {reason}")
            }
            ScenarioError::EmptyScenario { reason } => {
                write!(f, "scenario compiles to an empty deployment: {reason}")
            }
            ScenarioError::Sim(e) => write!(f, "simulator rejected scenario: {e}"),
            ScenarioError::Alloc(e) => write!(f, "allocator rejected scenario: {e}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Sim(e) => Some(e),
            ScenarioError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Sim(e)
    }
}

impl From<AllocError> for ScenarioError {
    fn from(e: AllocError) -> Self {
        ScenarioError::Alloc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScenarioError>();
    }

    #[test]
    fn display_names_the_field() {
        let e = ScenarioError::InvalidSpec {
            field: "classes[0].fraction".into(),
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("classes[0].fraction"));
    }
}
