//! The declarative scenario specification and its validation rules.
//!
//! A [`ScenarioSpec`] is plain serde data — read it from JSON with
//! [`crate::from_json`] or assemble it with [`ScenarioSpecBuilder`] — and
//! compiles (see [`crate::compile`]) into concrete `(Topology, SimConfig,
//! churn timeline)` inputs for the existing allocator/simulator stack.

use serde::{Deserialize, Serialize};

use lora_sim::Position;

use crate::error::ScenarioError;

/// Default reporting interval when neither the spec's `sim` section nor a
/// device class overrides it (the paper's `T_g` = 600 s).
pub const DEFAULT_REPORT_INTERVAL_S: f64 = 600.0;

/// Name of the implicit device class used when a spec declares none.
pub const DEFAULT_CLASS: &str = "default";

/// How device positions are drawn over the deployment region (a disc of
/// [`ScenarioSpec::radius_m`] centred at the origin).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpatialSpec {
    /// The paper's deployment: exactly `devices` positions uniform in the
    /// disc. Combined with [`GatewaySpec::Grid`] and no device classes
    /// this compiles through [`lora_sim::Topology::try_disc`] and is
    /// byte-identical to the legacy generator.
    UniformDisc {
        /// Number of devices.
        devices: usize,
    },
    /// Homogeneous Poisson point process: the device count is drawn
    /// `Poisson(λ · area)` and positions are uniform — the paper's
    /// Eq. 17–20 density model made concrete.
    Ppp {
        /// Intensity λ in devices per km².
        intensity_per_km2: f64,
    },
    /// Matérn-style cluster mixture: each hotspot contributes a
    /// `Poisson(mean_devices)` count of daughters uniform in a small disc
    /// around its parent, plus a uniform background population.
    Clusters {
        /// The cluster parents.
        hotspots: Vec<HotspotSpec>,
        /// Devices placed uniformly over the whole region in addition to
        /// the clusters.
        background_devices: usize,
    },
    /// Devices uniform in the annulus `inner_m ≤ r ≤ outer_m` — the
    /// far-edge stress shape (nobody near the central gateway).
    Annulus {
        /// Number of devices.
        devices: usize,
        /// Inner radius, metres.
        inner_m: f64,
        /// Outer radius, metres (≤ the region radius).
        outer_m: f64,
    },
    /// Devices uniform in a rectangle (a road/rail/river corridor)
    /// centred at the origin and rotated by `angle_deg`.
    Corridor {
        /// Number of devices.
        devices: usize,
        /// Corridor length, metres.
        length_m: f64,
        /// Corridor width, metres.
        width_m: f64,
        /// Rotation of the corridor axis, degrees counter-clockwise from
        /// the x axis.
        angle_deg: f64,
    },
}

/// One cluster parent of [`SpatialSpec::Clusters`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotspotSpec {
    /// Parent x coordinate, metres. When `None` (and `y_m` is too) the
    /// parent is drawn uniformly in the region disc.
    pub x_m: Option<f64>,
    /// Parent y coordinate, metres.
    pub y_m: Option<f64>,
    /// Daughter scatter radius, metres.
    pub radius_m: f64,
    /// Expected daughter count (Poisson mean).
    pub mean_devices: f64,
}

/// How gateway positions are chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GatewaySpec {
    /// The paper's mesh grid ([`lora_sim::topology::grid_gateways`]).
    Grid {
        /// Number of gateways.
        count: usize,
    },
    /// K-means centroids of the sampled device positions
    /// ([`ef_lora::placement::kmeans_gateways`]) — pulls gateways toward
    /// hotspots.
    KMeans {
        /// Number of gateways.
        count: usize,
        /// Lloyd iterations.
        iterations: usize,
    },
    /// Hand-placed gateway positions.
    Explicit {
        /// The gateway positions, metres.
        positions: Vec<Position>,
    },
}

/// A named device class: a traffic profile assigned to a fraction of the
/// population. Compiled to `per_device_intervals_s` entries and per-device
/// LoS/NLoS site attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Class name (referenced by churn events).
    pub name: String,
    /// Fraction of the population in this class; fractions must sum to 1.
    pub fraction: f64,
    /// Reporting interval `T_g` for this class, seconds.
    pub report_interval_s: f64,
    /// Line-of-sight probability for members of this class; falls back to
    /// the scenario-wide `sim.p_los` (or the simulator default) when
    /// `None`.
    pub p_los: Option<f64>,
    /// Application payload bytes. The simulator core keeps one payload
    /// size per network, so classes that set this must agree (a typed
    /// [`ScenarioError::HeterogeneousUnsupported`] otherwise).
    pub app_payload: Option<usize>,
    /// Confirmed-uplink mode. Same global-only restriction as
    /// `app_payload`.
    pub confirmed: Option<bool>,
}

/// Optional overrides over [`lora_sim::SimConfig::default`]. Every field
/// is optional so catalog files stay minimal; `None` keeps the paper
/// default.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimSection {
    /// Simulated seconds per epoch.
    pub duration_s: Option<f64>,
    /// Network-wide reporting interval (classes override per device).
    pub report_interval_s: Option<f64>,
    /// Offered duty cycle; `Some` switches traffic to
    /// [`lora_sim::Traffic::DutyCycleTarget`] (per-class intervals are
    /// then ignored by the simulator — validation rejects the combination
    /// when classes declare distinct intervals).
    pub duty: Option<f64>,
    /// Application payload bytes.
    pub app_payload: Option<usize>,
    /// Scenario-wide LoS probability.
    pub p_los: Option<f64>,
    /// Confirmed-uplink retransmissions with the LoRaWAN defaults.
    pub confirmed: Option<bool>,
}

/// What happens to the population at an epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// `count` new devices of class `class` join, sampled from the
    /// scenario's spatial process.
    Join {
        /// Class of the newcomers.
        class: String,
        /// How many join.
        count: usize,
    },
    /// `count` devices (seed-chosen uniformly) leave the network.
    Leave {
        /// How many leave.
        count: usize,
    },
    /// `count` devices of class `from` change their traffic profile to
    /// class `to` (e.g. a firmware rollout changing report rates).
    Migrate {
        /// Source class.
        from: String,
        /// Destination class.
        to: String,
        /// How many migrate.
        count: usize,
    },
}

/// One epoch-stamped churn event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Epoch at whose *start* the event applies (epoch 0 is the initial
    /// deployment, so events start at epoch 1).
    pub epoch: u32,
    /// What happens.
    pub event: ChurnKind,
}

/// A declarative workload: spatial process, gateway strategy, device
/// classes and churn timeline, all seed-deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and archive file names).
    pub name: String,
    /// Master seed; all per-component streams derive from it.
    pub seed: u64,
    /// Deployment region radius, metres (the paper: 5 km).
    pub radius_m: f64,
    /// Device placement process.
    pub spatial: SpatialSpec,
    /// Gateway placement strategy.
    pub gateways: GatewaySpec,
    /// Device classes; `None`/empty declares the single implicit
    /// [`DEFAULT_CLASS`] covering everyone.
    pub classes: Option<Vec<ClassSpec>>,
    /// Simulator overrides; `None` keeps every paper default.
    pub sim: Option<SimSection>,
    /// Churn timeline; `None`/empty runs a single epoch.
    pub churn: Option<Vec<ChurnEvent>>,
}

impl ScenarioSpec {
    /// Starts a builder for programmatic construction.
    pub fn builder(name: &str) -> ScenarioSpecBuilder {
        ScenarioSpecBuilder::new(name)
    }

    /// The declared classes, or the implicit single [`DEFAULT_CLASS`]
    /// (fraction 1, interval from the `sim` section or the paper default).
    pub fn effective_classes(&self) -> Vec<ClassSpec> {
        match &self.classes {
            Some(classes) if !classes.is_empty() => classes.clone(),
            _ => vec![ClassSpec {
                name: DEFAULT_CLASS.to_string(),
                fraction: 1.0,
                report_interval_s: self
                    .sim
                    .as_ref()
                    .and_then(|s| s.report_interval_s)
                    .unwrap_or(DEFAULT_REPORT_INTERVAL_S),
                p_los: None,
                app_payload: None,
                confirmed: None,
            }],
        }
    }

    /// The churn timeline (possibly empty), sorted by epoch with the
    /// spec's declaration order preserved within an epoch.
    pub fn sorted_churn(&self) -> Vec<ChurnEvent> {
        let mut events = self.churn.clone().unwrap_or_default();
        events.sort_by_key(|e| e.epoch);
        events
    }

    /// Whether the spec is the paper's legacy shape — uniform disc, grid
    /// gateways, no device classes — which compiles through
    /// [`lora_sim::Topology::try_disc`] byte-identically to the historical
    /// generator.
    pub fn is_legacy_uniform(&self) -> bool {
        matches!(self.spatial, SpatialSpec::UniformDisc { .. })
            && matches!(self.gateways, GatewaySpec::Grid { .. })
            && self.classes.as_ref().is_none_or(|c| c.is_empty())
    }

    /// Validates every field, returning the first violation as a typed
    /// error naming the offending field.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidSpec`] for out-of-range/non-finite values,
    /// [`ScenarioError::UnknownClass`] for dangling churn class names, and
    /// [`ScenarioError::HeterogeneousUnsupported`] when classes disagree
    /// on globally-scoped fields (payload, confirmed mode).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let fail = |field: &str, reason: String| {
            Err(ScenarioError::InvalidSpec {
                field: field.to_string(),
                reason,
            })
        };
        if self.name.is_empty() {
            return fail("name", "must not be empty".into());
        }
        if !self.radius_m.is_finite() || self.radius_m <= 0.0 {
            return fail(
                "radius_m",
                format!("must be positive and finite, got {}", self.radius_m),
            );
        }
        self.validate_spatial()?;
        self.validate_gateways()?;
        self.validate_classes()?;
        self.validate_sim()?;
        self.validate_churn()?;
        Ok(())
    }

    fn validate_spatial(&self) -> Result<(), ScenarioError> {
        let fail = |field: &str, reason: String| {
            Err(ScenarioError::InvalidSpec {
                field: field.to_string(),
                reason,
            })
        };
        match &self.spatial {
            SpatialSpec::UniformDisc { devices } => {
                if *devices == 0 {
                    return fail("spatial.devices", "must be at least 1".into());
                }
            }
            SpatialSpec::Ppp { intensity_per_km2 } => {
                if !intensity_per_km2.is_finite() || *intensity_per_km2 <= 0.0 {
                    return fail(
                        "spatial.intensity_per_km2",
                        format!("must be positive and finite, got {intensity_per_km2}"),
                    );
                }
            }
            SpatialSpec::Clusters {
                hotspots,
                background_devices: _,
            } => {
                if hotspots.is_empty() {
                    return fail(
                        "spatial.hotspots",
                        "must declare at least one hotspot".into(),
                    );
                }
                for (i, h) in hotspots.iter().enumerate() {
                    let field = format!("spatial.hotspots[{i}]");
                    if !h.radius_m.is_finite() || h.radius_m <= 0.0 {
                        return fail(
                            &field,
                            format!("radius_m must be positive and finite, got {}", h.radius_m),
                        );
                    }
                    if !h.mean_devices.is_finite() || h.mean_devices < 0.0 {
                        return fail(
                            &field,
                            format!(
                                "mean_devices must be non-negative and finite, got {}",
                                h.mean_devices
                            ),
                        );
                    }
                    match (h.x_m, h.y_m) {
                        (Some(x), Some(y)) => {
                            if !x.is_finite() || !y.is_finite() {
                                return fail(&field, format!("centre ({x}, {y}) must be finite"));
                            }
                            if (x * x + y * y).sqrt() > self.radius_m {
                                return fail(
                                    &field,
                                    format!(
                                        "centre ({x}, {y}) lies outside the {} m region",
                                        self.radius_m
                                    ),
                                );
                            }
                        }
                        (None, None) => {}
                        _ => {
                            return fail(
                                &field,
                                "x_m and y_m must be given together (or both omitted)".into(),
                            )
                        }
                    }
                }
            }
            SpatialSpec::Annulus {
                devices,
                inner_m,
                outer_m,
            } => {
                if *devices == 0 {
                    return fail("spatial.devices", "must be at least 1".into());
                }
                if !inner_m.is_finite() || !outer_m.is_finite() || *inner_m < 0.0 {
                    return fail(
                        "spatial.inner_m",
                        format!("annulus radii must be finite and non-negative, got [{inner_m}, {outer_m}]"),
                    );
                }
                if inner_m >= outer_m {
                    return fail(
                        "spatial.inner_m",
                        format!("inner radius {inner_m} must be below outer radius {outer_m}"),
                    );
                }
                if *outer_m > self.radius_m {
                    return fail(
                        "spatial.outer_m",
                        format!(
                            "outer radius {outer_m} exceeds the {} m region",
                            self.radius_m
                        ),
                    );
                }
            }
            SpatialSpec::Corridor {
                devices,
                length_m,
                width_m,
                angle_deg,
            } => {
                if *devices == 0 {
                    return fail("spatial.devices", "must be at least 1".into());
                }
                if !length_m.is_finite() || *length_m <= 0.0 {
                    return fail(
                        "spatial.length_m",
                        format!("must be positive and finite, got {length_m}"),
                    );
                }
                if !width_m.is_finite() || *width_m <= 0.0 {
                    return fail(
                        "spatial.width_m",
                        format!("must be positive and finite, got {width_m}"),
                    );
                }
                if !angle_deg.is_finite() {
                    return fail(
                        "spatial.angle_deg",
                        format!("must be finite, got {angle_deg}"),
                    );
                }
            }
        }
        Ok(())
    }

    fn validate_gateways(&self) -> Result<(), ScenarioError> {
        let fail = |field: &str, reason: String| {
            Err(ScenarioError::InvalidSpec {
                field: field.to_string(),
                reason,
            })
        };
        match &self.gateways {
            GatewaySpec::Grid { count } => {
                if *count == 0 {
                    return fail("gateways.count", "must be at least 1".into());
                }
            }
            GatewaySpec::KMeans { count, iterations } => {
                if *count == 0 {
                    return fail("gateways.count", "must be at least 1".into());
                }
                if *iterations == 0 {
                    return fail("gateways.iterations", "must be at least 1".into());
                }
            }
            GatewaySpec::Explicit { positions } => {
                if positions.is_empty() {
                    return fail(
                        "gateways.positions",
                        "must place at least one gateway".into(),
                    );
                }
                for (i, p) in positions.iter().enumerate() {
                    if !p.x.is_finite() || !p.y.is_finite() {
                        return fail(
                            &format!("gateways.positions[{i}]"),
                            format!("({}, {}) must be finite", p.x, p.y),
                        );
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_classes(&self) -> Result<(), ScenarioError> {
        let fail = |field: &str, reason: String| {
            Err(ScenarioError::InvalidSpec {
                field: field.to_string(),
                reason,
            })
        };
        let Some(classes) = self.classes.as_ref().filter(|c| !c.is_empty()) else {
            return Ok(());
        };
        let mut fraction_sum = 0.0f64;
        let mut payload: Option<(usize, &str)> = None;
        let mut confirmed: Option<(bool, &str)> = None;
        for (i, c) in classes.iter().enumerate() {
            let field = format!("classes[{i}]");
            if c.name.is_empty() {
                return fail(&field, "name must not be empty".into());
            }
            if classes[..i].iter().any(|other| other.name == c.name) {
                return fail(&field, format!("duplicate class name `{}`", c.name));
            }
            if !c.fraction.is_finite() || c.fraction <= 0.0 || c.fraction > 1.0 {
                return fail(
                    &field,
                    format!("fraction must lie in (0, 1], got {}", c.fraction),
                );
            }
            fraction_sum += c.fraction;
            if !c.report_interval_s.is_finite() || c.report_interval_s <= 0.0 {
                return fail(
                    &field,
                    format!(
                        "report_interval_s must be positive and finite, got {}",
                        c.report_interval_s
                    ),
                );
            }
            if let Some(p) = c.p_los {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return fail(&field, format!("p_los must lie in [0, 1], got {p}"));
                }
            }
            if let Some(bytes) = c.app_payload {
                match payload {
                    Some((prev, who)) if prev != bytes => {
                        return Err(ScenarioError::HeterogeneousUnsupported {
                            field: "app_payload",
                            reason: format!(
                                "class `{who}` sets {prev} bytes but class `{}` sets {bytes}; \
                                 SimConfig keeps one payload size per network",
                                c.name
                            ),
                        });
                    }
                    Some(_) => {}
                    None => payload = Some((bytes, &c.name)),
                }
            }
            if let Some(mode) = c.confirmed {
                match confirmed {
                    Some((prev, who)) if prev != mode => {
                        return Err(ScenarioError::HeterogeneousUnsupported {
                            field: "confirmed",
                            reason: format!(
                                "class `{who}` sets {prev} but class `{}` sets {mode}; \
                                 confirmed-uplink mode is network-global",
                                c.name
                            ),
                        });
                    }
                    Some(_) => {}
                    None => confirmed = Some((mode, &c.name)),
                }
            }
        }
        if (fraction_sum - 1.0).abs() > 1e-6 {
            return fail(
                "classes",
                format!("fractions must sum to 1, got {fraction_sum}"),
            );
        }
        // Per-class intervals only reach the simulator under periodic
        // traffic; a duty-cycle target overrides them silently, so reject
        // the combination when the intervals actually differ.
        if self.sim.as_ref().is_some_and(|s| s.duty.is_some()) {
            let first = classes[0].report_interval_s;
            if classes.iter().any(|c| c.report_interval_s != first) {
                return fail(
                    "sim.duty",
                    "duty-cycle-target traffic ignores per-class report intervals; \
                     remove `duty` or give every class the same interval"
                        .into(),
                );
            }
        }
        Ok(())
    }

    fn validate_sim(&self) -> Result<(), ScenarioError> {
        let fail = |field: &str, reason: String| {
            Err(ScenarioError::InvalidSpec {
                field: field.to_string(),
                reason,
            })
        };
        let Some(sim) = &self.sim else { return Ok(()) };
        if let Some(d) = sim.duration_s {
            if !d.is_finite() || d <= 0.0 {
                return fail(
                    "sim.duration_s",
                    format!("must be positive and finite, got {d}"),
                );
            }
        }
        if let Some(t) = sim.report_interval_s {
            if !t.is_finite() || t <= 0.0 {
                return fail(
                    "sim.report_interval_s",
                    format!("must be positive and finite, got {t}"),
                );
            }
        }
        if let Some(duty) = sim.duty {
            if !duty.is_finite() || duty <= 0.0 || duty > 1.0 {
                return fail("sim.duty", format!("must lie in (0, 1], got {duty}"));
            }
        }
        if let Some(bytes) = sim.app_payload {
            if bytes == 0 {
                return fail("sim.app_payload", "must be at least 1 byte".into());
            }
        }
        if let Some(p) = sim.p_los {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return fail("sim.p_los", format!("must lie in [0, 1], got {p}"));
            }
        }
        Ok(())
    }

    fn validate_churn(&self) -> Result<(), ScenarioError> {
        let fail = |field: &str, reason: String| {
            Err(ScenarioError::InvalidSpec {
                field: field.to_string(),
                reason,
            })
        };
        let Some(churn) = self.churn.as_ref().filter(|c| !c.is_empty()) else {
            return Ok(());
        };
        let classes = self.effective_classes();
        let known = |name: &str| classes.iter().any(|c| c.name == name);
        for (i, e) in churn.iter().enumerate() {
            let field = format!("churn[{i}]");
            if e.epoch == 0 {
                return fail(
                    &field,
                    "epoch 0 is the initial deployment; events start at epoch 1".into(),
                );
            }
            match &e.event {
                ChurnKind::Join { class, count } => {
                    if *count == 0 {
                        return fail(&field, "join count must be at least 1".into());
                    }
                    if !known(class) {
                        return Err(ScenarioError::UnknownClass {
                            name: class.clone(),
                        });
                    }
                }
                ChurnKind::Leave { count } => {
                    if *count == 0 {
                        return fail(&field, "leave count must be at least 1".into());
                    }
                }
                ChurnKind::Migrate { from, to, count } => {
                    if *count == 0 {
                        return fail(&field, "migrate count must be at least 1".into());
                    }
                    if from == to {
                        return fail(&field, format!("migration from `{from}` to itself"));
                    }
                    for name in [from, to] {
                        if !known(name) {
                            return Err(ScenarioError::UnknownClass { name: name.clone() });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`ScenarioSpec`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct ScenarioSpecBuilder {
    spec: ScenarioSpec,
}

impl ScenarioSpecBuilder {
    /// Starts from the paper defaults: 5 km disc, 500 uniform devices,
    /// 3 grid gateways, no classes, no churn.
    pub fn new(name: &str) -> Self {
        ScenarioSpecBuilder {
            spec: ScenarioSpec {
                name: name.to_string(),
                seed: 0,
                radius_m: 5_000.0,
                spatial: SpatialSpec::UniformDisc { devices: 500 },
                gateways: GatewaySpec::Grid { count: 3 },
                classes: None,
                sim: None,
                churn: None,
            },
        }
    }

    /// Sets the master seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.spec.seed = seed;
        self
    }

    /// Sets the region radius in metres.
    pub fn radius_m(&mut self, radius_m: f64) -> &mut Self {
        self.spec.radius_m = radius_m;
        self
    }

    /// Sets the spatial process.
    pub fn spatial(&mut self, spatial: SpatialSpec) -> &mut Self {
        self.spec.spatial = spatial;
        self
    }

    /// Sets the gateway strategy.
    pub fn gateways(&mut self, gateways: GatewaySpec) -> &mut Self {
        self.spec.gateways = gateways;
        self
    }

    /// Adds a device class.
    pub fn class(&mut self, class: ClassSpec) -> &mut Self {
        self.spec.classes.get_or_insert_with(Vec::new).push(class);
        self
    }

    /// Sets the simulator overrides.
    pub fn sim(&mut self, sim: SimSection) -> &mut Self {
        self.spec.sim = Some(sim);
        self
    }

    /// Appends a churn event.
    pub fn churn(&mut self, epoch: u32, event: ChurnKind) -> &mut Self {
        self.spec
            .churn
            .get_or_insert_with(Vec::new)
            .push(ChurnEvent { epoch, event });
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioSpec::validate`] failures.
    pub fn build(&self) -> Result<ScenarioSpec, ScenarioError> {
        self.spec.validate()?;
        Ok(self.spec.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioSpecBuilder {
        ScenarioSpec::builder("test")
    }

    #[test]
    fn builder_defaults_validate() {
        let spec = base().build().unwrap();
        assert!(spec.is_legacy_uniform());
        assert_eq!(spec.effective_classes().len(), 1);
        assert_eq!(spec.effective_classes()[0].name, DEFAULT_CLASS);
    }

    #[test]
    fn rejects_bad_radius_and_devices() {
        for r in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(base().radius_m(r).build().is_err(), "radius {r}");
        }
        assert!(base()
            .spatial(SpatialSpec::UniformDisc { devices: 0 })
            .build()
            .is_err());
        assert!(base()
            .spatial(SpatialSpec::Ppp {
                intensity_per_km2: -2.0
            })
            .build()
            .is_err());
    }

    #[test]
    fn rejects_inverted_annulus_and_offsite_hotspot() {
        assert!(base()
            .spatial(SpatialSpec::Annulus {
                devices: 10,
                inner_m: 3_000.0,
                outer_m: 2_000.0
            })
            .build()
            .is_err());
        assert!(base()
            .spatial(SpatialSpec::Clusters {
                hotspots: vec![HotspotSpec {
                    x_m: Some(9_000.0),
                    y_m: Some(0.0),
                    radius_m: 300.0,
                    mean_devices: 20.0
                }],
                background_devices: 0
            })
            .build()
            .is_err());
        // Half-specified centre.
        assert!(base()
            .spatial(SpatialSpec::Clusters {
                hotspots: vec![HotspotSpec {
                    x_m: Some(100.0),
                    y_m: None,
                    radius_m: 300.0,
                    mean_devices: 20.0
                }],
                background_devices: 0
            })
            .build()
            .is_err());
    }

    #[test]
    fn class_fractions_must_sum_to_one() {
        let c = |name: &str, fraction: f64| ClassSpec {
            name: name.into(),
            fraction,
            report_interval_s: 600.0,
            p_los: None,
            app_payload: None,
            confirmed: None,
        };
        assert!(base().class(c("a", 0.5)).class(c("b", 0.5)).build().is_ok());
        assert!(base()
            .class(c("a", 0.5))
            .class(c("b", 0.4))
            .build()
            .is_err());
        assert!(base()
            .class(c("a", 0.5))
            .class(c("a", 0.5))
            .build()
            .is_err());
    }

    #[test]
    fn heterogeneous_payload_is_a_typed_error() {
        let mut b = base();
        b.class(ClassSpec {
            name: "a".into(),
            fraction: 0.5,
            report_interval_s: 600.0,
            p_los: None,
            app_payload: Some(8),
            confirmed: None,
        });
        b.class(ClassSpec {
            name: "b".into(),
            fraction: 0.5,
            report_interval_s: 600.0,
            p_los: None,
            app_payload: Some(16),
            confirmed: None,
        });
        assert!(matches!(
            b.build(),
            Err(ScenarioError::HeterogeneousUnsupported {
                field: "app_payload",
                ..
            })
        ));
    }

    #[test]
    fn churn_validation_catches_dangling_names_and_epoch_zero() {
        assert!(matches!(
            base()
                .churn(
                    1,
                    ChurnKind::Join {
                        class: "nope".into(),
                        count: 5
                    }
                )
                .build(),
            Err(ScenarioError::UnknownClass { .. })
        ));
        assert!(base()
            .churn(0, ChurnKind::Leave { count: 5 })
            .build()
            .is_err());
        // The implicit default class is addressable.
        assert!(base()
            .churn(
                1,
                ChurnKind::Join {
                    class: DEFAULT_CLASS.into(),
                    count: 5
                }
            )
            .build()
            .is_ok());
    }

    #[test]
    fn duty_with_distinct_class_intervals_is_rejected() {
        let c = |name: &str, interval: f64| ClassSpec {
            name: name.into(),
            fraction: 0.5,
            report_interval_s: interval,
            p_los: None,
            app_payload: None,
            confirmed: None,
        };
        let mut b = base();
        b.class(c("slow", 600.0))
            .class(c("fast", 60.0))
            .sim(SimSection {
                duty: Some(0.01),
                ..SimSection::default()
            });
        assert!(b.build().is_err());
        // Same intervals are fine (duty just drives everyone).
        let mut b = base();
        b.class(c("a", 600.0)).class(c("b", 600.0)).sim(SimSection {
            duty: Some(0.01),
            ..SimSection::default()
        });
        assert!(b.build().is_ok());
    }

    #[test]
    fn sorted_churn_is_stable_within_an_epoch() {
        let mut b = base();
        b.churn(2, ChurnKind::Leave { count: 1 })
            .churn(1, ChurnKind::Leave { count: 2 })
            .churn(2, ChurnKind::Leave { count: 3 });
        let spec = b.build().unwrap();
        let sorted = spec.sorted_churn();
        let counts: Vec<u32> = sorted
            .iter()
            .map(|e| match e.event {
                ChurnKind::Leave { count } => count as u32,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(counts, vec![2, 1, 3]);
    }
}
