//! Running a compiled scenario end to end: allocate, simulate, churn.
//!
//! [`run_scenario`] plays a [`CompiledScenario`] through its epochs:
//!
//! * epoch 0 allocates the initial deployment with the chosen
//!   [`ef_lora::Strategy`] and measures it over `reps` independent
//!   simulator repetitions;
//! * every later epoch applies its churn events — joins, leaves and class
//!   migrations — through [`crate::churn::apply_event`], so existing
//!   devices are reconfigured only when the change touches their
//!   contention groups (PR 3's bounded-repair path), then re-measures.
//!
//! Determinism: every random draw comes from a stream derived from the
//! scenario seed (per-epoch churn streams, per-`(epoch, rep)` simulation
//! seeds), and repetitions fan out through
//! [`lora_parallel::par_map_indexed`] with an index-order reduction — the
//! report is byte-identical for any worker count.

use serde::{Deserialize, Serialize};

use ef_lora::{AllocationContext, IncrementalAllocator, Strategy};
use lora_model::NetworkModel;
use lora_phy::TxConfig;
use lora_sim::{SimConfig, Simulation, Topology};

use crate::churn::{self, apply_event, refresh_intervals, ChurnContext, ChurnWarning, Population};
use crate::compile::CompiledScenario;
use crate::error::ScenarioError;

/// Options for [`run_scenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Independent simulator repetitions per epoch (channel randomness;
    /// the topology is fixed by the scenario seed).
    pub reps: usize,
    /// Worker threads for the repetition fan-out; `0` reads
    /// `EF_LORA_THREADS` (the repo-wide convention). The report is
    /// byte-identical for every value.
    pub threads: usize,
    /// Simulated seconds per epoch; `None` keeps the compiled
    /// `config.duration_s`.
    pub epoch_duration_s: Option<f64>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            reps: 3,
            threads: 0,
            epoch_duration_s: None,
        }
    }
}

/// Measured and modelled outcome of one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// Epoch index (0 = initial deployment).
    pub epoch: u32,
    /// Devices alive during this epoch.
    pub devices: usize,
    /// Devices that joined at this epoch's start.
    pub joined: usize,
    /// Devices that left at this epoch's start.
    pub left: usize,
    /// Devices that migrated classes at this epoch's start.
    pub migrated: usize,
    /// Pre-existing devices whose configuration the incremental allocator
    /// changed — the over-the-air reconfiguration cost of the epoch.
    pub reconfigured: usize,
    /// Candidate configurations the incremental allocator examined.
    pub candidates_evaluated: u64,
    /// Analytical-model minimum EE after allocation, bits/mJ.
    pub model_min_ee: f64,
    /// Measured minimum EE, bits/mJ (mean over repetitions).
    pub min_ee: f64,
    /// Measured mean EE, bits/mJ (mean over repetitions).
    pub mean_ee: f64,
    /// Measured Jain fairness index of per-device EE (mean over reps).
    pub jain: f64,
    /// Measured mean packet reception ratio (mean over repetitions).
    pub mean_prr: f64,
}

/// Full report of a scenario run.
///
/// Serialization is hand-written to keep `warnings` out of the JSON when
/// empty: the common, warning-free report stays byte-identical to the
/// pre-warning format (goldens unchanged).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRunReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Allocation strategy name.
    pub strategy: String,
    /// Devices in the initial deployment.
    pub devices_initial: usize,
    /// Gateway count (fixed across epochs).
    pub gateways: usize,
    /// Simulator repetitions per epoch.
    pub reps: usize,
    /// Per-epoch outcomes, epoch 0 first.
    pub epochs: Vec<EpochOutcome>,
    /// Typed warnings raised while applying churn (e.g. a clamped
    /// `Leave`); empty for a clean run.
    pub warnings: Vec<ChurnWarning>,
}

impl Serialize for ScenarioRunReport {
    fn to_value(&self) -> serde::Value {
        let mut obj: Vec<(String, serde::Value)> = vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("strategy".to_string(), self.strategy.to_value()),
            (
                "devices_initial".to_string(),
                self.devices_initial.to_value(),
            ),
            ("gateways".to_string(), self.gateways.to_value()),
            ("reps".to_string(), self.reps.to_value()),
            ("epochs".to_string(), self.epochs.to_value()),
        ];
        if !self.warnings.is_empty() {
            obj.push(("warnings".to_string(), self.warnings.to_value()));
        }
        serde::Value::Object(obj)
    }
}

impl Deserialize for ScenarioRunReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value.as_object().ok_or_else(|| {
            serde::Error::custom(format!(
                "expected object for ScenarioRunReport, got {}",
                value.kind()
            ))
        })?;
        let field = |name: &str| obj.iter().find(|(k, _)| k.as_str() == name).map(|(_, v)| v);
        macro_rules! required {
            ($name:literal) => {
                match field($name) {
                    Some(v) => Deserialize::from_value(v).map_err(|e: serde::Error| {
                        e.contextualize(concat!("ScenarioRunReport.", $name))
                    })?,
                    None => {
                        return Err(serde::Error::custom(concat!(
                            "missing field `ScenarioRunReport.",
                            $name,
                            "`"
                        )))
                    }
                }
            };
        }
        Ok(ScenarioRunReport {
            scenario: required!("scenario"),
            strategy: required!("strategy"),
            devices_initial: required!("devices_initial"),
            gateways: required!("gateways"),
            reps: required!("reps"),
            epochs: required!("epochs"),
            warnings: match field("warnings") {
                Some(v) => Deserialize::from_value(v)
                    .map_err(|e: serde::Error| e.contextualize("ScenarioRunReport.warnings"))?,
                None => Vec::new(),
            },
        })
    }
}

impl ScenarioRunReport {
    /// The last epoch's measured minimum EE — the headline number.
    pub fn final_min_ee(&self) -> f64 {
        self.epochs.last().map(|e| e.min_ee).unwrap_or(0.0)
    }

    /// Total over-the-air reconfigurations across all churn epochs.
    pub fn total_reconfigured(&self) -> usize {
        self.epochs.iter().map(|e| e.reconfigured).sum()
    }
}

/// Runs a compiled scenario under one allocation strategy.
///
/// # Errors
///
/// Propagates simulator and allocator rejections ([`ScenarioError::Sim`],
/// [`ScenarioError::Alloc`]); [`ScenarioError::EmptyScenario`] if churn
/// drains the deployment.
pub fn run_scenario(
    compiled: &CompiledScenario,
    strategy: &dyn Strategy,
    options: &RunOptions,
) -> Result<ScenarioRunReport, ScenarioError> {
    let classes = compiled.spec.effective_classes();
    let gateways = compiled.topology.gateways().to_vec();
    let radius_m = compiled.topology.radius_m();
    let threads = if options.threads == 0 {
        lora_parallel::threads_from_env()
    } else {
        options.threads
    };

    let mut config = compiled.config.clone();
    if let Some(d) = options.epoch_duration_s {
        config.duration_s = d;
    }

    let mut pop = Population {
        sites: compiled.topology.devices().to_vec(),
        class_of: compiled.class_of.clone(),
        alloc: Vec::new(),
    };
    let churn_ctx = ChurnContext {
        classes: &classes,
        spatial: &compiled.spec.spatial,
        gateways: &gateways,
        radius_m,
    };

    let mut epochs = Vec::new();
    let mut warnings = Vec::new();
    let incremental = IncrementalAllocator::new();
    for epoch in 0..compiled.epoch_count() {
        let (joined, left, migrated, reconfigured, candidates) = if epoch == 0 {
            let topology = Topology::from_sites(pop.sites.clone(), gateways.clone(), radius_m);
            refresh_intervals(&mut config, &pop.class_of, &classes);
            let model = NetworkModel::new(&config, &topology);
            let ctx = AllocationContext::new(&config, &topology, &model);
            pop.alloc = strategy.allocate(&ctx)?.into_inner();
            (0, 0, 0, 0, 0)
        } else {
            apply_epoch_events(
                compiled,
                &churn_ctx,
                &mut config,
                &mut pop,
                &incremental,
                epoch,
                &mut warnings,
            )?
        };

        let topology = Topology::from_sites(pop.sites.clone(), gateways.clone(), radius_m);
        let model = NetworkModel::new(&config, &topology);
        let model_min_ee = ef_lora::fairness::min_ee(&model.evaluate(&pop.alloc));
        let measured = measure(&config, &topology, &pop.alloc, options.reps, threads, epoch)?;
        epochs.push(EpochOutcome {
            epoch,
            devices: pop.sites.len(),
            joined,
            left,
            migrated,
            reconfigured,
            candidates_evaluated: candidates,
            model_min_ee,
            min_ee: measured[0],
            mean_ee: measured[1],
            jain: measured[2],
            mean_prr: measured[3],
        });
    }

    Ok(ScenarioRunReport {
        scenario: compiled.spec.name.clone(),
        strategy: strategy.name().to_string(),
        devices_initial: compiled.device_count(),
        gateways: gateways.len(),
        reps: options.reps,
        epochs,
        warnings,
    })
}

/// Applies every churn event stamped with `epoch`, in timeline order,
/// each through [`apply_event`]. Returns
/// `(joined, left, migrated, reconfigured, candidates)` and appends any
/// typed warnings to `warnings`.
fn apply_epoch_events(
    compiled: &CompiledScenario,
    ctx: &ChurnContext<'_>,
    config: &mut SimConfig,
    pop: &mut Population,
    incremental: &IncrementalAllocator,
    epoch: u32,
    warnings: &mut Vec<ChurnWarning>,
) -> Result<(usize, usize, usize, usize, u64), ScenarioError> {
    let mut rng = churn::epoch_churn_rng(compiled.spec.seed, epoch);
    let mut joined = 0usize;
    let mut left = 0usize;
    let mut migrated = 0usize;
    let mut reconfigured = 0usize;
    let mut candidates = 0u64;

    for event in compiled.timeline.iter().filter(|e| e.epoch == epoch) {
        let join_seed = churn::epoch_join_seed(compiled.spec.seed, epoch, joined);
        let outcome = apply_event(ctx, config, pop, incremental, event, &mut rng, join_seed)?;
        joined += outcome.joined;
        left += outcome.left;
        migrated += outcome.migrated;
        reconfigured += outcome.reconfigured;
        candidates += outcome.candidates_evaluated;
        if let Some(w) = outcome.warning {
            warnings.push(w);
        }
    }
    Ok((joined, left, migrated, reconfigured, candidates))
}

/// The simulation seed of repetition `rep` in `epoch` — pre-derived so
/// repetitions are independent of scheduling order.
fn rep_seed(base: u64, epoch: u32, rep: usize) -> u64 {
    base ^ ((epoch as u64 + 1) << 32) ^ (rep as u64).wrapping_mul(0x9e37_79b9).wrapping_add(1)
}

/// Measures `[min_ee, mean_ee, jain, mean_prr]`, each averaged over
/// `reps` repetitions fanned out over `threads` workers and reduced in
/// repetition order (byte-identical for any worker count).
fn measure(
    config: &SimConfig,
    topology: &Topology,
    alloc: &[TxConfig],
    reps: usize,
    threads: usize,
    epoch: u32,
) -> Result<[f64; 4], ScenarioError> {
    let reps = reps.max(1);
    let results = lora_parallel::par_map_indexed(reps, threads, |rep| {
        let mut cfg = config.clone();
        cfg.seed = rep_seed(config.seed, epoch, rep);
        Simulation::new(cfg, topology.clone(), alloc.to_vec()).map(|sim| {
            let report = sim.run();
            [
                report.min_energy_efficiency_bits_per_mj(),
                report.mean_energy_efficiency_bits_per_mj(),
                report.jain_fairness(),
                report.mean_prr(),
            ]
        })
    });
    let mut sums = [0.0f64; 4];
    for r in results {
        let values = r?;
        for (s, v) in sums.iter_mut().zip(values) {
            *s += v;
        }
    }
    Ok(sums.map(|s| s / reps as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::spec::{ChurnKind, ClassSpec, GatewaySpec, ScenarioSpec, SimSection, SpatialSpec};
    use ef_lora::EfLora;

    fn class(name: &str, fraction: f64, interval: f64) -> ClassSpec {
        ClassSpec {
            name: name.into(),
            fraction,
            report_interval_s: interval,
            p_los: None,
            app_payload: None,
            confirmed: None,
        }
    }

    fn churn_spec() -> ScenarioSpec {
        let mut b = ScenarioSpec::builder("churny");
        b.seed(5)
            .spatial(SpatialSpec::UniformDisc { devices: 30 })
            .gateways(GatewaySpec::Grid { count: 1 })
            .class(class("slow", 0.5, 600.0))
            .class(class("fast", 0.5, 120.0))
            .sim(SimSection {
                duration_s: Some(1_200.0),
                ..SimSection::default()
            })
            .churn(
                1,
                ChurnKind::Join {
                    class: "fast".into(),
                    count: 5,
                },
            )
            .churn(2, ChurnKind::Leave { count: 8 })
            .churn(
                3,
                ChurnKind::Migrate {
                    from: "slow".into(),
                    to: "fast".into(),
                    count: 4,
                },
            );
        b.build().unwrap()
    }

    fn quick() -> RunOptions {
        RunOptions {
            reps: 2,
            threads: 1,
            epoch_duration_s: Some(600.0),
        }
    }

    #[test]
    fn churn_timeline_tracks_population() {
        let compiled = compile(&churn_spec()).unwrap();
        let report = run_scenario(&compiled, &EfLora::default(), &quick()).unwrap();
        assert_eq!(report.epochs.len(), 4);
        assert_eq!(report.epochs[0].devices, 30);
        assert_eq!(report.epochs[1].devices, 35);
        assert_eq!(report.epochs[1].joined, 5);
        assert_eq!(report.epochs[2].devices, 27);
        assert_eq!(report.epochs[2].left, 8);
        assert_eq!(report.epochs[3].devices, 27);
        assert_eq!(report.epochs[3].migrated, 4);
        assert!(report.warnings.is_empty());
        for e in &report.epochs {
            assert!(e.model_min_ee > 0.0, "epoch {}: model min EE", e.epoch);
            assert!(e.min_ee >= 0.0);
            assert!(e.jain > 0.0 && e.jain <= 1.0 + 1e-9, "jain {}", e.jain);
        }
    }

    #[test]
    fn run_is_deterministic_and_thread_invariant() {
        let compiled = compile(&churn_spec()).unwrap();
        let a = run_scenario(&compiled, &EfLora::default(), &quick()).unwrap();
        let b = run_scenario(&compiled, &EfLora::default(), &quick()).unwrap();
        assert_eq!(a, b);
        let wide = RunOptions {
            threads: 4,
            ..quick()
        };
        let c = run_scenario(&compiled, &EfLora::default(), &wide).unwrap();
        assert_eq!(a, c, "worker count must not change the report");
    }

    #[test]
    fn leave_never_drains_the_network() {
        let mut b = ScenarioSpec::builder("drain");
        b.seed(2)
            .spatial(SpatialSpec::UniformDisc { devices: 5 })
            .gateways(GatewaySpec::Grid { count: 1 })
            .sim(SimSection {
                duration_s: Some(600.0),
                ..SimSection::default()
            })
            .churn(1, ChurnKind::Leave { count: 50 });
        let compiled = compile(&b.build().unwrap()).unwrap();
        let report = run_scenario(&compiled, &EfLora::default(), &quick()).unwrap();
        assert_eq!(report.epochs[1].devices, 1);
        assert_eq!(report.epochs[1].left, 4);
    }

    #[test]
    fn clamped_leave_surfaces_a_typed_warning() {
        let mut b = ScenarioSpec::builder("drain");
        b.seed(2)
            .spatial(SpatialSpec::UniformDisc { devices: 5 })
            .gateways(GatewaySpec::Grid { count: 1 })
            .sim(SimSection {
                duration_s: Some(600.0),
                ..SimSection::default()
            })
            .churn(1, ChurnKind::Leave { count: 50 });
        let compiled = compile(&b.build().unwrap()).unwrap();
        let report = run_scenario(&compiled, &EfLora::default(), &quick()).unwrap();
        assert_eq!(
            report.warnings,
            vec![ChurnWarning::LeaveClamped {
                epoch: 1,
                requested: 50,
                applied: 4,
            }]
        );
        // The clamp survives a JSON round trip.
        let text = serde_json::to_string(&report).unwrap();
        assert!(text.contains("LeaveClamped"));
        let parsed: ScenarioRunReport = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn clean_report_serializes_without_a_warnings_key() {
        let compiled = compile(&churn_spec()).unwrap();
        let report = run_scenario(&compiled, &EfLora::default(), &quick()).unwrap();
        let text = serde_json::to_string(&report).unwrap();
        assert!(
            !text.contains("warnings"),
            "clean reports must stay byte-identical to the pre-warning format"
        );
        let parsed: ScenarioRunReport = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn single_epoch_scenario_has_one_outcome() {
        let spec = ScenarioSpec::builder("plain")
            .seed(1)
            .spatial(SpatialSpec::UniformDisc { devices: 20 })
            .sim(SimSection {
                duration_s: Some(600.0),
                ..SimSection::default()
            })
            .build()
            .unwrap();
        let compiled = compile(&spec).unwrap();
        let report = run_scenario(&compiled, &EfLora::default(), &quick()).unwrap();
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.final_min_ee(), report.epochs[0].min_ee);
        assert_eq!(report.total_reconfigured(), 0);
    }
}
