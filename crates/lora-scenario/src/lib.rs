//! Declarative workload generation for the EF-LoRa stack.
//!
//! The paper evaluates EF-LoRa on one deployment shape: devices uniform in
//! a disc, gateways on a mesh grid, every device reporting at the same
//! rate (Section IV). Real LoRa networks are none of those things — and
//! EF-LoRa's max-min allocation matters *more* when the deployment is
//! skewed. This crate turns a declarative, serde-serializable
//! [`ScenarioSpec`] into concrete inputs for the existing allocator,
//! model and simulator:
//!
//! * **spatial point processes** ([`spatial`]): uniform disc (delegating
//!   to [`lora_sim::Topology::try_disc`], byte-identical for the legacy
//!   shape), homogeneous Poisson, Matérn-style hotspot mixtures, annuli
//!   and rotated corridors — all seed-deterministic via per-component
//!   ChaCha streams;
//! * **device classes** ([`spec::ClassSpec`]): named traffic profiles
//!   with population fractions, per-class reporting intervals (compiled
//!   to `per_device_intervals_s`) and LoS probabilities;
//! * **churn timelines** ([`spec::ChurnEvent`]): epoch-stamped joins,
//!   leaves and class migrations, driven through
//!   [`ef_lora::IncrementalAllocator`] so reconfiguration stays bounded.
//!
//! # Example
//!
//! ```
//! use lora_scenario::{compile, run_scenario, RunOptions, ScenarioSpec};
//! use lora_scenario::spec::{GatewaySpec, SpatialSpec};
//! use ef_lora::EfLora;
//!
//! let spec = ScenarioSpec::builder("two-rings")
//!     .seed(7)
//!     .spatial(SpatialSpec::Annulus { devices: 40, inner_m: 500.0, outer_m: 2_000.0 })
//!     .gateways(GatewaySpec::Grid { count: 1 })
//!     .build()
//!     .unwrap();
//! let compiled = compile(&spec).unwrap();
//! let report = run_scenario(
//!     &compiled,
//!     &EfLora::default(),
//!     &RunOptions { reps: 1, threads: 1, epoch_duration_s: Some(3_600.0) },
//! )
//! .unwrap();
//! assert_eq!(report.epochs.len(), 1);
//! assert!(report.final_min_ee() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod churn;
pub mod compile;
pub mod error;
pub mod run;
pub mod spatial;
pub mod spec;

pub use churn::{ChurnContext, ChurnWarning, EventOutcome, Population, StagedAdjust, StagedEvent};
pub use compile::{compile, CompiledScenario};
pub use error::ScenarioError;
pub use run::{run_scenario, EpochOutcome, RunOptions, ScenarioRunReport};
pub use spec::{ScenarioSpec, ScenarioSpecBuilder};

/// Parses a spec from JSON and validates it.
///
/// # Errors
///
/// [`ScenarioError::InvalidSpec`] on malformed JSON (the parse error in
/// the reason) or on any [`ScenarioSpec::validate`] violation.
pub fn from_json(text: &str) -> Result<ScenarioSpec, ScenarioError> {
    let spec: ScenarioSpec =
        serde_json::from_str(text).map_err(|e| ScenarioError::InvalidSpec {
            field: "<json>".to_string(),
            reason: e.to_string(),
        })?;
    spec.validate()?;
    Ok(spec)
}

/// Serializes a spec to pretty JSON (the `scenarios/` catalog format).
pub fn to_json(spec: &ScenarioSpec) -> String {
    serde_json::to_string_pretty(spec).expect("a validated spec always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_the_spec() {
        for spec in catalog::all() {
            let text = to_json(&spec);
            let parsed = from_json(&text).unwrap();
            assert_eq!(parsed, spec, "{}", spec.name);
        }
    }

    #[test]
    fn from_json_rejects_garbage_and_invalid_specs() {
        assert!(matches!(
            from_json("{not json"),
            Err(ScenarioError::InvalidSpec { .. })
        ));
        // Well-formed JSON, invalid spec (zero radius).
        let mut spec = catalog::paper_uniform();
        spec.radius_m = 0.0;
        let text = serde_json::to_string_pretty(&spec).unwrap();
        assert!(from_json(&text).is_err());
    }
}
