//! The built-in scenario catalog.
//!
//! Five reference workloads exercising every pillar of the engine. Each is
//! also shipped as JSON under `scenarios/` at the repo root (the CLI's
//! `scenario` subcommand consumes the files); a test pins the files to
//! these constructors, refreshed with `EF_LORA_UPDATE_GOLDEN=1`.

use crate::error::ScenarioError;
use crate::spec::{
    ChurnKind, ClassSpec, GatewaySpec, HotspotSpec, ScenarioSpec, SimSection, SpatialSpec,
};
use lora_sim::Position;

/// Names of the catalog scenarios, in presentation order.
pub const CATALOG: [&str; 5] = [
    "paper-uniform",
    "urban-hotspot",
    "ppp-sparse",
    "corridor",
    "churn-heavy",
];

/// Builds a catalog scenario by name; `None` for names outside
/// [`CATALOG`].
pub fn scenario(name: &str) -> Option<ScenarioSpec> {
    match name {
        "paper-uniform" => Some(paper_uniform()),
        "urban-hotspot" => Some(urban_hotspot()),
        "ppp-sparse" => Some(ppp_sparse()),
        "corridor" => Some(corridor()),
        "churn-heavy" => Some(churn_heavy()),
        _ => None,
    }
}

/// Every catalog scenario, in [`CATALOG`] order.
pub fn all() -> Vec<ScenarioSpec> {
    CATALOG
        .iter()
        .map(|name| scenario(name).expect("catalog names are exhaustive"))
        .collect()
}

fn class(name: &str, fraction: f64, interval: f64) -> ClassSpec {
    ClassSpec {
        name: name.into(),
        fraction,
        report_interval_s: interval,
        p_los: None,
        app_payload: None,
        confirmed: None,
    }
}

/// The paper's Section IV deployment verbatim: 500 devices uniform in a
/// 5 km disc, 3 grid gateways, one device class. Compiles byte-identical
/// to [`lora_sim::Topology::disc`].
pub fn paper_uniform() -> ScenarioSpec {
    ScenarioSpec::builder("paper-uniform")
        .seed(1)
        .spatial(SpatialSpec::UniformDisc { devices: 500 })
        .gateways(GatewaySpec::Grid { count: 3 })
        .build()
        .expect("catalog scenario must validate")
}

/// Three urban hotspots over a sparse background, k-means gateways, and a
/// device-class mix (slow sensors, chatty trackers, rare-but-regular
/// meters). The shape where uniform-disc assumptions fail hardest.
pub fn urban_hotspot() -> ScenarioSpec {
    let mut b = ScenarioSpec::builder("urban-hotspot");
    b.seed(2)
        .spatial(SpatialSpec::Clusters {
            hotspots: vec![
                HotspotSpec {
                    x_m: Some(-2_500.0),
                    y_m: Some(1_500.0),
                    radius_m: 500.0,
                    mean_devices: 150.0,
                },
                HotspotSpec {
                    x_m: Some(2_000.0),
                    y_m: Some(2_000.0),
                    radius_m: 400.0,
                    mean_devices: 100.0,
                },
                HotspotSpec {
                    x_m: Some(500.0),
                    y_m: Some(-3_000.0),
                    radius_m: 600.0,
                    mean_devices: 120.0,
                },
            ],
            background_devices: 80,
        })
        .gateways(GatewaySpec::KMeans {
            count: 3,
            iterations: 32,
        })
        .class(class("sensor", 0.6, 600.0))
        .class(class("tracker", 0.3, 120.0))
        .class(class("meter", 0.1, 3_600.0));
    b.build().expect("catalog scenario must validate")
}

/// A homogeneous Poisson point process at 4 devices/km² — rural coverage
/// where the device count itself is random.
pub fn ppp_sparse() -> ScenarioSpec {
    ScenarioSpec::builder("ppp-sparse")
        .seed(3)
        .spatial(SpatialSpec::Ppp {
            intensity_per_km2: 4.0,
        })
        .gateways(GatewaySpec::Grid { count: 2 })
        .build()
        .expect("catalog scenario must validate")
}

/// A 9 km road corridor crossing the region at 30°, with two hand-placed
/// gateways on the roadside — extreme anisotropy.
pub fn corridor() -> ScenarioSpec {
    let (sin, cos) = 30.0f64.to_radians().sin_cos();
    ScenarioSpec::builder("corridor")
        .seed(4)
        .spatial(SpatialSpec::Corridor {
            devices: 300,
            length_m: 9_000.0,
            width_m: 400.0,
            angle_deg: 30.0,
        })
        .gateways(GatewaySpec::Explicit {
            positions: vec![
                Position::new(-2_000.0 * cos, -2_000.0 * sin),
                Position::new(2_000.0 * cos, 2_000.0 * sin),
            ],
        })
        .build()
        .expect("catalog scenario must validate")
}

/// A two-class deployment under sustained churn: waves of joins, a mass
/// departure, and a firmware-style class migration — the
/// incremental-allocator stress scenario.
pub fn churn_heavy() -> ScenarioSpec {
    let mut b = ScenarioSpec::builder("churn-heavy");
    b.seed(5)
        .spatial(SpatialSpec::UniformDisc { devices: 200 })
        .gateways(GatewaySpec::Grid { count: 2 })
        .class(class("steady", 0.7, 600.0))
        .class(class("bursty", 0.3, 120.0))
        .sim(SimSection {
            duration_s: Some(3_000.0),
            ..SimSection::default()
        })
        .churn(
            1,
            ChurnKind::Join {
                class: "bursty".into(),
                count: 30,
            },
        )
        .churn(
            2,
            ChurnKind::Join {
                class: "steady".into(),
                count: 20,
            },
        )
        .churn(2, ChurnKind::Leave { count: 25 })
        .churn(
            3,
            ChurnKind::Migrate {
                from: "steady".into(),
                to: "bursty".into(),
                count: 40,
            },
        )
        .churn(4, ChurnKind::Leave { count: 50 });
    b.build().expect("catalog scenario must validate")
}

/// Scales a scenario's device population by `factor` (smoke-scale runs):
/// fixed counts, cluster means, background and PPP intensity all scale;
/// churn counts scale too, with a floor of one.
pub fn scale_devices(spec: &ScenarioSpec, factor: f64) -> ScenarioSpec {
    let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
    let mut out = spec.clone();
    out.spatial = match &spec.spatial {
        SpatialSpec::UniformDisc { devices } => SpatialSpec::UniformDisc {
            devices: scale(*devices),
        },
        SpatialSpec::Ppp { intensity_per_km2 } => SpatialSpec::Ppp {
            intensity_per_km2: intensity_per_km2 * factor,
        },
        SpatialSpec::Clusters {
            hotspots,
            background_devices,
        } => SpatialSpec::Clusters {
            hotspots: hotspots
                .iter()
                .map(|h| HotspotSpec {
                    mean_devices: (h.mean_devices * factor).max(1.0),
                    ..h.clone()
                })
                .collect(),
            background_devices: scale(*background_devices),
        },
        SpatialSpec::Annulus {
            devices,
            inner_m,
            outer_m,
        } => SpatialSpec::Annulus {
            devices: scale(*devices),
            inner_m: *inner_m,
            outer_m: *outer_m,
        },
        SpatialSpec::Corridor {
            devices,
            length_m,
            width_m,
            angle_deg,
        } => SpatialSpec::Corridor {
            devices: scale(*devices),
            length_m: *length_m,
            width_m: *width_m,
            angle_deg: *angle_deg,
        },
    };
    if let Some(churn) = &mut out.churn {
        for event in churn {
            event.event = match &event.event {
                ChurnKind::Join { class, count } => ChurnKind::Join {
                    class: class.clone(),
                    count: scale(*count),
                },
                ChurnKind::Leave { count } => ChurnKind::Leave {
                    count: scale(*count),
                },
                ChurnKind::Migrate { from, to, count } => ChurnKind::Migrate {
                    from: from.clone(),
                    to: to.clone(),
                    count: scale(*count),
                },
            };
        }
    }
    out
}

/// Pins a scenario's device population to exactly `devices` (expected
/// count for stochastic spatial processes) — the scale-out knob behind
/// `ef-lora-plan scenario generate --devices N`.
///
/// Fixed-count shapes (`UniformDisc`, `Annulus`, `Corridor`) take the
/// count verbatim; a `Ppp` has its intensity set to `devices / area`, so
/// the *expected* draw matches; `Clusters` scale hotspot means and the
/// background proportionally.
///
/// # Errors
///
/// [`ScenarioError::InvalidSpec`] when `devices` is zero, or when the
/// override is too small for the spec's class mix — a declared class
/// with a nonzero fraction that would be apportioned zero devices would
/// silently vanish from the deployment.
pub fn override_devices(
    spec: &ScenarioSpec,
    devices: usize,
) -> Result<ScenarioSpec, ScenarioError> {
    if devices == 0 {
        return Err(ScenarioError::InvalidSpec {
            field: "spatial.devices".into(),
            reason: "device override must be positive".into(),
        });
    }
    if let Some(classes) = &spec.classes {
        let fractions: Vec<f64> = classes.iter().map(|c| c.fraction).collect();
        let counts = crate::compile::apportion(devices, &fractions);
        for (class, &count) in classes.iter().zip(&counts) {
            if class.fraction > 0.0 && count == 0 {
                return Err(ScenarioError::InvalidSpec {
                    field: format!("classes[{}].fraction", class.name),
                    reason: format!(
                        "override of {devices} devices apportions zero to class `{}` \
                         (fraction {}); raise the override or drop the class",
                        class.name, class.fraction
                    ),
                });
            }
        }
    }
    let mut out = spec.clone();
    out.spatial = match &spec.spatial {
        SpatialSpec::UniformDisc { .. } => SpatialSpec::UniformDisc { devices },
        SpatialSpec::Ppp { .. } => {
            let area_km2 = std::f64::consts::PI * (spec.radius_m / 1_000.0).powi(2);
            SpatialSpec::Ppp {
                intensity_per_km2: devices as f64 / area_km2,
            }
        }
        SpatialSpec::Clusters {
            hotspots,
            background_devices,
        } => {
            let expected: f64 =
                hotspots.iter().map(|h| h.mean_devices).sum::<f64>() + *background_devices as f64;
            let factor = devices as f64 / expected;
            SpatialSpec::Clusters {
                hotspots: hotspots
                    .iter()
                    .map(|h| HotspotSpec {
                        mean_devices: (h.mean_devices * factor).max(1.0),
                        ..h.clone()
                    })
                    .collect(),
                background_devices: ((*background_devices as f64 * factor).round() as usize).max(1),
            }
        }
        SpatialSpec::Annulus {
            inner_m, outer_m, ..
        } => SpatialSpec::Annulus {
            devices,
            inner_m: *inner_m,
            outer_m: *outer_m,
        },
        SpatialSpec::Corridor {
            length_m,
            width_m,
            angle_deg,
            ..
        } => SpatialSpec::Corridor {
            devices,
            length_m: *length_m,
            width_m: *width_m,
            angle_deg: *angle_deg,
        },
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    #[test]
    fn every_catalog_scenario_validates_and_compiles() {
        for spec in all() {
            assert!(spec.validate().is_ok(), "{} must validate", spec.name);
            let compiled = compile(&spec).unwrap();
            assert!(compiled.device_count() > 0, "{}", spec.name);
            assert!(compiled.topology.gateway_count() > 0, "{}", spec.name);
        }
    }

    #[test]
    fn paper_uniform_is_the_legacy_shape() {
        assert!(paper_uniform().is_legacy_uniform());
        assert!(!urban_hotspot().is_legacy_uniform());
    }

    #[test]
    fn scale_devices_shrinks_the_population() {
        for spec in all() {
            let small = scale_devices(&spec, 0.1);
            assert!(
                small.validate().is_ok(),
                "{} scaled must validate",
                spec.name
            );
            let full = compile(&spec).unwrap().device_count();
            let smoke = compile(&small).unwrap().device_count();
            assert!(
                smoke < full,
                "{}: smoke {smoke} must be below full {full}",
                spec.name
            );
            assert!(smoke > 0, "{}", spec.name);
        }
    }

    #[test]
    fn override_devices_pins_fixed_counts_and_ppp_expectations() {
        let uniform = override_devices(&paper_uniform(), 10_000).unwrap();
        assert_eq!(
            uniform.spatial,
            SpatialSpec::UniformDisc { devices: 10_000 }
        );
        assert!(uniform.validate().is_ok());

        let ppp = override_devices(&ppp_sparse(), 50_000).unwrap();
        let SpatialSpec::Ppp { intensity_per_km2 } = ppp.spatial else {
            panic!("ppp override must stay a ppp");
        };
        let area_km2 = std::f64::consts::PI * (ppp.radius_m / 1_000.0).powi(2);
        assert!((intensity_per_km2 * area_km2 - 50_000.0).abs() < 1e-6);
        // The compiled draw lands near the expectation (Poisson, ±5 σ).
        let n = compile(&ppp).unwrap().device_count() as f64;
        assert!((n - 50_000.0).abs() < 5.0 * 50_000.0f64.sqrt(), "{n}");

        let clusters = override_devices(&urban_hotspot(), 4_500).unwrap();
        let n = compile(&clusters).unwrap().device_count() as f64;
        assert!((n - 4_500.0).abs() < 5.0 * 4_500.0f64.sqrt(), "{n}");
    }

    #[test]
    fn override_devices_rejects_zero_and_vanishing_classes() {
        assert!(matches!(
            override_devices(&paper_uniform(), 0),
            Err(ScenarioError::InvalidSpec { field, .. }) if field == "spatial.devices"
        ));
        // urban-hotspot's rarest class holds 10% of devices; 3 devices
        // apportion it zero.
        assert!(matches!(
            override_devices(&urban_hotspot(), 3),
            Err(ScenarioError::InvalidSpec { field, .. }) if field.contains("meter")
        ));
        // 10 devices give every class at least one.
        assert!(override_devices(&urban_hotspot(), 10).is_ok());
    }

    #[test]
    fn catalog_files_match_the_builders() {
        // The JSON files under scenarios/ are what the CLI and CI consume;
        // they must stay in sync with these constructors. Refresh with
        // EF_LORA_UPDATE_GOLDEN=1.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("scenarios");
        let update = std::env::var_os("EF_LORA_UPDATE_GOLDEN").is_some();
        for spec in all() {
            let path = dir.join(format!("{}.json", spec.name));
            let expected =
                serde_json::to_string_pretty(&spec).expect("catalog spec must serialize");
            if update {
                std::fs::create_dir_all(&dir).unwrap();
                std::fs::write(&path, format!("{expected}\n")).unwrap();
                continue;
            }
            let actual = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{} missing ({e}); run with EF_LORA_UPDATE_GOLDEN=1 to create it",
                    path.display()
                )
            });
            assert_eq!(
                actual.trim_end(),
                expected,
                "{} drifted from the catalog builder; refresh with EF_LORA_UPDATE_GOLDEN=1",
                path.display()
            );
            // And the file round-trips to the same spec.
            let parsed: ScenarioSpec = serde_json::from_str(&actual).unwrap();
            assert_eq!(parsed, spec);
        }
    }
}
