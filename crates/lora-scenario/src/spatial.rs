//! Spatial point processes: seed-deterministic device-position samplers.
//!
//! Every sampler draws from a `ChaCha12Rng` seeded as
//! `spec.seed ^ SPATIAL_TAG`, independent of the simulation and placement
//! streams, so the same spec re-simulates under different channel
//! randomness with identical geometry (the discipline
//! [`lora_sim::Topology::try_disc`] established).
//!
//! The legacy shape — [`SpatialSpec::UniformDisc`] with grid gateways and
//! no classes — never reaches this module: [`crate::compile`] delegates it
//! to `Topology::try_disc` so the historical byte-identical stream is
//! preserved.

use rand::Rng;
use rand_chacha::ChaCha12Rng;

use lora_sim::Position;

use crate::error::ScenarioError;
use crate::spec::{HotspotSpec, SpatialSpec};

/// Seed tag of the spatial stream ("spatials").
pub(crate) const SPATIAL_TAG: u64 = 0x7370_6174_6961_6c73;

/// Poisson means are sampled in chunks of at most this value: a
/// `Poisson(λ)` draw is the sum of independent `Poisson(λᵢ)` draws with
/// `Σλᵢ = λ`, and Knuth's product-of-uniforms needs `exp(-λᵢ)` to stay
/// comfortably above `f64` underflow (`exp(-500) ≈ 7e-218`).
const POISSON_CHUNK: f64 = 500.0;

/// Draws a Poisson-distributed count with mean `lambda` (Knuth's
/// product-of-uniforms, λ-chunked so large means never underflow).
pub fn poisson_count(rng: &mut ChaCha12Rng, lambda: f64) -> usize {
    debug_assert!(lambda.is_finite() && lambda >= 0.0);
    let mut remaining = lambda;
    let mut total = 0usize;
    while remaining > 0.0 {
        let chunk = remaining.min(POISSON_CHUNK);
        remaining -= chunk;
        let threshold = (-chunk).exp();
        let mut product = rng.gen::<f64>();
        while product > threshold {
            total += 1;
            product *= rng.gen::<f64>();
        }
    }
    total
}

/// One position uniform in the disc of radius `radius_m` centred at the
/// origin (`r = R·√u`, θ uniform — the legacy generator's parameterisation).
pub fn uniform_disc_point(rng: &mut ChaCha12Rng, radius_m: f64) -> Position {
    let r = radius_m * rng.gen::<f64>().sqrt();
    let theta = rng.gen::<f64>() * std::f64::consts::TAU;
    Position::new(r * theta.cos(), r * theta.sin())
}

/// How many times a cluster daughter is re-drawn before being radially
/// clamped into the region. Bounds the rejection loop for hotspots whose
/// scatter disc pokes far outside the region (a hotspot centred on the
/// boundary still terminates).
const DAUGHTER_ATTEMPTS: usize = 64;

/// One daughter position: uniform in the disc of `scatter_m` around
/// `parent`, re-drawn while it lands outside the region and radially
/// clamped onto the boundary after [`DAUGHTER_ATTEMPTS`] rejections.
fn daughter_point(
    rng: &mut ChaCha12Rng,
    parent: Position,
    scatter_m: f64,
    region_m: f64,
) -> Position {
    let origin = Position::default();
    let mut last = parent;
    for _ in 0..DAUGHTER_ATTEMPTS {
        let offset = uniform_disc_point(rng, scatter_m);
        let p = Position::new(parent.x + offset.x, parent.y + offset.y);
        if p.distance_to(&origin) <= region_m {
            return p;
        }
        last = p;
    }
    let d = last.distance_to(&origin);
    if d > 0.0 {
        Position::new(last.x * region_m / d, last.y * region_m / d)
    } else {
        last
    }
}

/// Samples the device positions of a spatial process into `rng` (already
/// seeded for the spatial stream). Exposed separately from
/// [`sample_positions`] so churn joins can draw *more* positions from a
/// later point of an epoch-specific stream.
///
/// # Errors
///
/// [`ScenarioError::EmptyScenario`] when a stochastic count (PPP or a
/// cluster mixture with no background) comes up zero.
pub fn sample_positions_with(
    rng: &mut ChaCha12Rng,
    spatial: &SpatialSpec,
    radius_m: f64,
) -> Result<Vec<Position>, ScenarioError> {
    let positions = match spatial {
        SpatialSpec::UniformDisc { devices } => (0..*devices)
            .map(|_| uniform_disc_point(rng, radius_m))
            .collect(),
        SpatialSpec::Ppp { intensity_per_km2 } => {
            let area_km2 = std::f64::consts::PI * (radius_m / 1_000.0).powi(2);
            let n = poisson_count(rng, intensity_per_km2 * area_km2);
            (0..n).map(|_| uniform_disc_point(rng, radius_m)).collect()
        }
        SpatialSpec::Clusters {
            hotspots,
            background_devices,
        } => {
            let mut out = Vec::new();
            for h in hotspots {
                let parent = parent_of(rng, h, radius_m);
                let n = poisson_count(rng, h.mean_devices);
                for _ in 0..n {
                    out.push(daughter_point(rng, parent, h.radius_m, radius_m));
                }
            }
            for _ in 0..*background_devices {
                out.push(uniform_disc_point(rng, radius_m));
            }
            out
        }
        SpatialSpec::Annulus {
            devices,
            inner_m,
            outer_m,
        } => (0..*devices)
            .map(|_| {
                // Uniform in the annulus: r = √(u·(R₂²−R₁²)+R₁²).
                let u = rng.gen::<f64>();
                let r = (u * (outer_m * outer_m - inner_m * inner_m) + inner_m * inner_m).sqrt();
                let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                Position::new(r * theta.cos(), r * theta.sin())
            })
            .collect(),
        SpatialSpec::Corridor {
            devices,
            length_m,
            width_m,
            angle_deg,
        } => {
            let angle = angle_deg.to_radians();
            let (sin, cos) = angle.sin_cos();
            (0..*devices)
                .map(|_| {
                    let along = (rng.gen::<f64>() - 0.5) * length_m;
                    let across = (rng.gen::<f64>() - 0.5) * width_m;
                    Position::new(along * cos - across * sin, along * sin + across * cos)
                })
                .collect()
        }
    };
    if positions.is_empty() {
        return Err(ScenarioError::EmptyScenario {
            reason: format!("spatial process {spatial:?} produced zero devices"),
        });
    }
    Ok(positions)
}

/// Samples a spatial process from a fresh spatial stream derived from the
/// scenario seed.
///
/// # Errors
///
/// See [`sample_positions_with`].
pub fn sample_positions(
    spatial: &SpatialSpec,
    radius_m: f64,
    seed: u64,
) -> Result<Vec<Position>, ScenarioError> {
    use rand::SeedableRng;
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ SPATIAL_TAG);
    sample_positions_with(&mut rng, spatial, radius_m)
}

/// Draws exactly `count` positions from the *shape* of a spatial process
/// — the churn-join sampler. Stochastic-count processes keep their
/// geometry but not their counts: a PPP join draws uniform points, a
/// cluster join picks a component weighted by its expected population
/// (background included) and scatters one daughter there.
pub fn sample_n_positions(
    rng: &mut ChaCha12Rng,
    spatial: &SpatialSpec,
    radius_m: f64,
    count: usize,
) -> Vec<Position> {
    match spatial {
        SpatialSpec::UniformDisc { .. } | SpatialSpec::Ppp { .. } => (0..count)
            .map(|_| uniform_disc_point(rng, radius_m))
            .collect(),
        SpatialSpec::Clusters {
            hotspots,
            background_devices,
        } => {
            // Component weights: each hotspot's expected population, plus
            // the uniform background.
            let weights: Vec<f64> = hotspots
                .iter()
                .map(|h| h.mean_devices)
                .chain(std::iter::once(*background_devices as f64))
                .collect();
            let total: f64 = weights.iter().sum();
            (0..count)
                .map(|_| {
                    if total <= 0.0 {
                        return uniform_disc_point(rng, radius_m);
                    }
                    let mut pick = rng.gen::<f64>() * total;
                    for (i, w) in weights.iter().enumerate() {
                        pick -= w;
                        if pick <= 0.0 {
                            if let Some(h) = hotspots.get(i) {
                                let parent = parent_of(rng, h, radius_m);
                                return daughter_point(rng, parent, h.radius_m, radius_m);
                            }
                            break;
                        }
                    }
                    uniform_disc_point(rng, radius_m)
                })
                .collect()
        }
        SpatialSpec::Annulus {
            inner_m, outer_m, ..
        } => {
            let shape = SpatialSpec::Annulus {
                devices: count.max(1),
                inner_m: *inner_m,
                outer_m: *outer_m,
            };
            fixed_count(rng, &shape, radius_m, count)
        }
        SpatialSpec::Corridor {
            length_m,
            width_m,
            angle_deg,
            ..
        } => {
            let shape = SpatialSpec::Corridor {
                devices: count.max(1),
                length_m: *length_m,
                width_m: *width_m,
                angle_deg: *angle_deg,
            };
            fixed_count(rng, &shape, radius_m, count)
        }
    }
}

/// Samples a fixed-count shape and truncates to `count` (handles the
/// `count = 0` corner the fixed-count samplers reject).
fn fixed_count(
    rng: &mut ChaCha12Rng,
    shape: &SpatialSpec,
    radius_m: f64,
    count: usize,
) -> Vec<Position> {
    if count == 0 {
        return Vec::new();
    }
    sample_positions_with(rng, shape, radius_m)
        .expect("fixed-count shape with count >= 1 cannot be empty")
}

/// The cluster parent: the declared centre, or one drawn uniformly in the
/// region when the spec omits it. Only omitted centres consume randomness,
/// so hand-placed hotspots never shift when a declared centre is edited.
fn parent_of(rng: &mut ChaCha12Rng, h: &HotspotSpec, radius_m: f64) -> Position {
    match (h.x_m, h.y_m) {
        (Some(x), Some(y)) => Position::new(x, y),
        _ => uniform_disc_point(rng, radius_m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        // Sample mean of n draws concentrates around λ with σ = √(λ/n).
        for &lambda in &[0.5, 4.0, 87.3, 1_500.0] {
            let mut r = rng(11);
            let n = 400usize;
            let total: usize = (0..n).map(|_| poisson_count(&mut r, lambda)).sum();
            let mean = total as f64 / n as f64;
            let sigma = (lambda / n as f64).sqrt();
            assert!(
                (mean - lambda).abs() < 6.0 * sigma.max(0.05),
                "λ={lambda}: sample mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut r = rng(1);
        assert_eq!(poisson_count(&mut r, 0.0), 0);
    }

    #[test]
    fn large_lambda_does_not_underflow() {
        // exp(-λ) underflows to 0.0 beyond λ ≈ 745; the unchunked Knuth
        // loop would then never terminate. 10 000 must come back near 10 000.
        let mut r = rng(2);
        let n = poisson_count(&mut r, 10_000.0);
        assert!((9_000..11_000).contains(&n), "Poisson(10000) draw: {n}");
    }

    #[test]
    fn uniform_disc_points_stay_inside() {
        let mut r = rng(3);
        let origin = Position::default();
        for _ in 0..1_000 {
            let p = uniform_disc_point(&mut r, 2_000.0);
            assert!(p.distance_to(&origin) <= 2_000.0 + 1e-9);
        }
    }

    #[test]
    fn ppp_count_tracks_intensity_times_area() {
        // λ = 10 /km² over a 5 km disc → mean 10·π·25 ≈ 785.
        let spec = SpatialSpec::Ppp {
            intensity_per_km2: 10.0,
        };
        let mut total = 0usize;
        let reps = 50;
        for seed in 0..reps {
            total += sample_positions(&spec, 5_000.0, seed).unwrap().len();
        }
        let mean = total as f64 / reps as f64;
        let expected = 10.0 * std::f64::consts::PI * 25.0;
        // σ of the sample mean = √(λA/reps) ≈ 3.96.
        assert!(
            (mean - expected).abs() < 6.0 * (expected / reps as f64).sqrt(),
            "PPP mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn cluster_daughters_concentrate_around_their_parent() {
        let spec = SpatialSpec::Clusters {
            hotspots: vec![HotspotSpec {
                x_m: Some(1_000.0),
                y_m: Some(-500.0),
                radius_m: 250.0,
                mean_devices: 300.0,
            }],
            background_devices: 0,
        };
        let positions = sample_positions(&spec, 5_000.0, 7).unwrap();
        assert!(!positions.is_empty());
        let parent = Position::new(1_000.0, -500.0);
        for p in &positions {
            assert!(
                p.distance_to(&parent) <= 250.0 + 1e-9,
                "daughter {p:?} escaped the scatter disc"
            );
        }
    }

    #[test]
    fn boundary_hotspot_daughters_are_clamped_into_the_region() {
        // Hotspot centred on the region boundary: about half its scatter
        // disc lies outside. The sampler must terminate and keep every
        // daughter inside the region.
        let region = 5_000.0;
        let spec = SpatialSpec::Clusters {
            hotspots: vec![HotspotSpec {
                x_m: Some(region),
                y_m: Some(0.0),
                radius_m: 400.0,
                mean_devices: 200.0,
            }],
            background_devices: 0,
        };
        let positions = sample_positions(&spec, region, 9).unwrap();
        let origin = Position::default();
        for p in &positions {
            assert!(p.distance_to(&origin) <= region + 1e-6);
        }
    }

    #[test]
    fn explicit_hotspot_centres_consume_no_randomness() {
        // Two specs that differ only in a *later* hotspot's scatter radius
        // must place the first hotspot's daughters identically.
        let mk = |second_radius: f64| SpatialSpec::Clusters {
            hotspots: vec![
                HotspotSpec {
                    x_m: Some(0.0),
                    y_m: Some(0.0),
                    radius_m: 100.0,
                    mean_devices: 50.0,
                },
                HotspotSpec {
                    x_m: Some(2_000.0),
                    y_m: Some(0.0),
                    radius_m: second_radius,
                    mean_devices: 0.0,
                },
            ],
            background_devices: 1,
        };
        let a = sample_positions(&mk(100.0), 5_000.0, 21).unwrap();
        let b = sample_positions(&mk(900.0), 5_000.0, 21).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn annulus_respects_both_radii() {
        let spec = SpatialSpec::Annulus {
            devices: 800,
            inner_m: 3_000.0,
            outer_m: 4_000.0,
        };
        let positions = sample_positions(&spec, 5_000.0, 4).unwrap();
        let origin = Position::default();
        for p in &positions {
            let d = p.distance_to(&origin);
            assert!((3_000.0..=4_000.0).contains(&d), "annulus point at {d}");
        }
        // Uniform in area: the midpoint radius √((R₁²+R₂²)/2) ≈ 3 536 m
        // splits the population in half.
        let split = ((3_000.0f64.powi(2) + 4_000.0f64.powi(2)) / 2.0).sqrt();
        let outer = positions
            .iter()
            .filter(|p| p.distance_to(&origin) > split)
            .count();
        let frac = outer as f64 / positions.len() as f64;
        assert!((frac - 0.5).abs() < 0.06, "outer fraction {frac}");
    }

    #[test]
    fn corridor_is_rotated_rectangle() {
        let spec = SpatialSpec::Corridor {
            devices: 500,
            length_m: 8_000.0,
            width_m: 200.0,
            angle_deg: 90.0,
        };
        let positions = sample_positions(&spec, 5_000.0, 5).unwrap();
        for p in &positions {
            // Rotated 90°: the long axis is y, the narrow axis is x.
            assert!(p.x.abs() <= 100.0 + 1e-9, "across-corridor {}", p.x);
            assert!(p.y.abs() <= 4_000.0 + 1e-9, "along-corridor {}", p.y);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let spec = SpatialSpec::Ppp {
            intensity_per_km2: 5.0,
        };
        let a = sample_positions(&spec, 5_000.0, 42).unwrap();
        let b = sample_positions(&spec, 5_000.0, 42).unwrap();
        assert_eq!(a, b);
        let c = sample_positions(&spec, 5_000.0, 43).unwrap();
        assert_ne!(a, c);
    }
}
