//! Compiling a [`ScenarioSpec`] into concrete simulator inputs.
//!
//! The output of [`compile`] is everything the existing stack consumes: a
//! [`lora_sim::Topology`], a [`lora_sim::SimConfig`] (with per-device
//! reporting intervals when classes differ) and the sorted churn timeline.
//!
//! The paper's own shape — uniform disc, grid gateways, one device class —
//! takes a dedicated fast path through [`Topology::try_disc`] so the
//! compiled topology is *byte-identical* to what every earlier experiment
//! generated; the general samplers never touch that RNG stream.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use ef_lora::placement::kmeans_gateways;
use lora_phy::path_loss::LinkEnvironment;
use lora_sim::topology::grid_gateways;
use lora_sim::{DeviceSite, Position, SimConfig, Topology, Traffic};

use crate::error::ScenarioError;
use crate::spatial::sample_positions;
use crate::spec::{ChurnEvent, ClassSpec, GatewaySpec, ScenarioSpec, SpatialSpec};

/// Seed tag of the class-assignment shuffle stream ("classmix").
pub(crate) const CLASS_TAG: u64 = 0x636c_6173_736d_6978;
/// Seed tag of the per-device LoS/NLoS draw stream ("environs").
pub(crate) const ENV_TAG: u64 = 0x656e_7669_726f_6e73;

/// A scenario compiled to concrete inputs: the deployment, the simulator
/// configuration, the class assignment and the churn timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledScenario {
    /// The validated source spec (carried along because churn needs the
    /// spatial process and class table at run time).
    pub spec: ScenarioSpec,
    /// The initial deployment (epoch 0).
    pub topology: Topology,
    /// Simulator configuration, including `per_device_intervals_s` when
    /// classes declare distinct reporting rates.
    pub config: SimConfig,
    /// Class index (into [`CompiledScenario::class_names`]) of each device.
    pub class_of: Vec<usize>,
    /// Class names, in spec declaration order.
    pub class_names: Vec<String>,
    /// Churn events sorted by epoch (spec order preserved within one).
    pub timeline: Vec<ChurnEvent>,
}

impl CompiledScenario {
    /// Number of devices in the initial deployment.
    pub fn device_count(&self) -> usize {
        self.topology.device_count()
    }

    /// Devices per class, in class declaration order.
    pub fn class_histogram(&self) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; self.class_names.len()];
        for &c in &self.class_of {
            counts[c] += 1;
        }
        self.class_names.iter().cloned().zip(counts).collect()
    }

    /// Number of epochs the scenario spans: 1 (the initial deployment)
    /// plus everything the timeline reaches.
    pub fn epoch_count(&self) -> u32 {
        1 + self.timeline.iter().map(|e| e.epoch).max().unwrap_or(0)
    }
}

/// Compiles a spec into simulator inputs.
///
/// # Errors
///
/// Propagates [`ScenarioSpec::validate`] failures, and
/// [`ScenarioError::EmptyScenario`] when a stochastic device count comes
/// up zero.
pub fn compile(spec: &ScenarioSpec) -> Result<CompiledScenario, ScenarioError> {
    spec.validate()?;
    let classes = spec.effective_classes();
    let config = base_config(spec, &classes);

    let (topology, class_of) = if spec.is_legacy_uniform() {
        // Byte-identical legacy path: same RNG stream as every historical
        // experiment (the generic samplers would consume draws in a
        // different order).
        let (SpatialSpec::UniformDisc { devices }, GatewaySpec::Grid { count }) =
            (&spec.spatial, &spec.gateways)
        else {
            unreachable!("is_legacy_uniform checked the variants");
        };
        let topology = Topology::try_disc(*devices, *count, spec.radius_m, &config, spec.seed)?;
        (topology, vec![0; *devices])
    } else {
        let positions = sample_positions(&spec.spatial, spec.radius_m, spec.seed)?;
        let n = positions.len();
        let class_of = assign_classes(n, &classes, spec.seed);
        let environments = draw_environments(&class_of, &classes, config.p_los, spec.seed);
        let sites: Vec<DeviceSite> = positions
            .into_iter()
            .zip(environments)
            .map(|(position, environment)| DeviceSite {
                position,
                environment,
            })
            .collect();
        let gateways = place_gateways(&spec.gateways, &sites, spec.radius_m, spec.seed);
        (
            Topology::from_sites(sites, gateways, spec.radius_m),
            class_of,
        )
    };

    let config = with_class_intervals(config, &class_of, &classes);
    Ok(CompiledScenario {
        spec: spec.clone(),
        topology,
        config,
        class_of,
        class_names: classes.into_iter().map(|c| c.name).collect(),
        timeline: spec.sorted_churn(),
    })
}

/// The simulator configuration before class intervals are attached: the
/// paper defaults, overridden by the spec's `sim` section and the classes'
/// agreed global fields (payload, confirmed mode).
fn base_config(spec: &ScenarioSpec, classes: &[ClassSpec]) -> SimConfig {
    let sim = spec.sim.clone().unwrap_or_default();
    let mut config = SimConfig {
        seed: spec.seed,
        ..SimConfig::default()
    };
    if let Some(d) = sim.duration_s {
        config.duration_s = d;
    }
    if let Some(t) = sim.report_interval_s {
        config.report_interval_s = t;
    }
    if let Some(duty) = sim.duty {
        config.traffic = Traffic::DutyCycleTarget { duty };
    }
    if let Some(bytes) = sim.app_payload {
        config.app_payload = bytes;
    }
    if let Some(p) = sim.p_los {
        config.p_los = p;
    }
    apply_confirmed(&mut config, sim.confirmed);
    // Classes agree on these (validation enforced it); a class value
    // overrides the sim section.
    if let Some(bytes) = classes.iter().find_map(|c| c.app_payload) {
        config.app_payload = bytes;
    }
    apply_confirmed(&mut config, classes.iter().find_map(|c| c.confirmed));
    config
}

fn apply_confirmed(config: &mut SimConfig, confirmed: Option<bool>) {
    match confirmed {
        Some(true) => config.confirmed = Some(lora_sim::ConfirmedTraffic::default()),
        Some(false) => config.confirmed = None,
        None => {}
    }
}

/// Attaches reporting intervals: a single class folds into the global
/// `report_interval_s`; multiple classes compile to per-device overrides.
fn with_class_intervals(
    mut config: SimConfig,
    class_of: &[usize],
    classes: &[ClassSpec],
) -> SimConfig {
    if classes.len() == 1 {
        config.report_interval_s = classes[0].report_interval_s;
        config.per_device_intervals_s = None;
    } else {
        config.per_device_intervals_s = Some(
            class_of
                .iter()
                .map(|&c| classes[c].report_interval_s)
                .collect(),
        );
    }
    config
}

/// Splits `n` devices over class fractions by largest-remainder
/// apportionment: exact totals, deterministic tie-breaking by declaration
/// order.
pub(crate) fn apportion(n: usize, fractions: &[f64]) -> Vec<usize> {
    let mut counts: Vec<usize> = fractions.iter().map(|f| (f * n as f64) as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..fractions.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = fractions[a] * n as f64 - counts[a] as f64;
        let fb = fractions[b] * n as f64 - counts[b] as f64;
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for i in 0..n.saturating_sub(assigned) {
        counts[order[i % order.len()]] += 1;
    }
    counts
}

/// Assigns each of `n` devices a class index: exact largest-remainder
/// counts, then a seeded Fisher–Yates shuffle so classes mix through the
/// deployment instead of forming index-contiguous blocks.
pub(crate) fn assign_classes(n: usize, classes: &[ClassSpec], seed: u64) -> Vec<usize> {
    if classes.len() == 1 {
        return vec![0; n];
    }
    let fractions: Vec<f64> = classes.iter().map(|c| c.fraction).collect();
    let counts = apportion(n, &fractions);
    let mut class_of = Vec::with_capacity(n);
    for (class, &count) in counts.iter().enumerate() {
        class_of.extend(std::iter::repeat_n(class, count));
    }
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ CLASS_TAG);
    class_of.shuffle(&mut rng);
    class_of
}

/// Draws each device's LoS/NLoS environment from its class's `p_los`
/// (falling back to the scenario-wide probability), in device-index order
/// from a dedicated stream.
pub(crate) fn draw_environments(
    class_of: &[usize],
    classes: &[ClassSpec],
    default_p_los: f64,
    seed: u64,
) -> Vec<LinkEnvironment> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ ENV_TAG);
    class_of
        .iter()
        .map(|&c| {
            let p = classes[c].p_los.unwrap_or(default_p_los);
            if rng.gen::<f64>() < p {
                LinkEnvironment::LineOfSight
            } else {
                LinkEnvironment::NonLineOfSight
            }
        })
        .collect()
}

/// Places gateways per the spec: the paper's mesh grid, k-means centroids
/// of the sampled devices, or hand-placed positions.
fn place_gateways(
    spec: &GatewaySpec,
    sites: &[DeviceSite],
    radius_m: f64,
    seed: u64,
) -> Vec<Position> {
    match spec {
        GatewaySpec::Grid { count } => grid_gateways(*count, radius_m),
        GatewaySpec::KMeans { count, iterations } => {
            kmeans_gateways(sites, *count, *iterations, seed)
        }
        GatewaySpec::Explicit { positions } => positions.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{HotspotSpec, ScenarioSpec, SimSection};

    fn class(name: &str, fraction: f64, interval: f64) -> ClassSpec {
        ClassSpec {
            name: name.into(),
            fraction,
            report_interval_s: interval,
            p_los: None,
            app_payload: None,
            confirmed: None,
        }
    }

    #[test]
    fn legacy_spec_compiles_byte_identical_to_disc() {
        let spec = ScenarioSpec::builder("legacy").seed(7).build().unwrap();
        let compiled = compile(&spec).unwrap();
        let expected = Topology::disc(500, 3, 5_000.0, &compiled.config, 7);
        assert_eq!(compiled.topology, expected);
        assert_eq!(compiled.class_of, vec![0; 500]);
        assert_eq!(compiled.config.per_device_intervals_s, None);
        assert_eq!(compiled.config.seed, 7);
    }

    #[test]
    fn apportionment_is_exact_and_deterministic() {
        assert_eq!(apportion(10, &[0.5, 0.5]), vec![5, 5]);
        assert_eq!(apportion(10, &[0.34, 0.33, 0.33]), vec![4, 3, 3]);
        assert_eq!(apportion(1, &[0.5, 0.5]), vec![1, 0]);
        assert_eq!(apportion(0, &[0.7, 0.3]), vec![0, 0]);
        let counts = apportion(997, &[0.6, 0.25, 0.15]);
        assert_eq!(counts.iter().sum::<usize>(), 997);
    }

    #[test]
    fn class_assignment_matches_apportionment_and_mixes() {
        let classes = vec![class("a", 0.7, 600.0), class("b", 0.3, 60.0)];
        let class_of = assign_classes(100, &classes, 5);
        assert_eq!(class_of.iter().filter(|&&c| c == 0).count(), 70);
        assert_eq!(class_of.iter().filter(|&&c| c == 1).count(), 30);
        // Shuffled, not a contiguous block.
        assert_ne!(&class_of[..70], vec![0; 70].as_slice());
        // Deterministic per seed.
        assert_eq!(class_of, assign_classes(100, &classes, 5));
        assert_ne!(class_of, assign_classes(100, &classes, 6));
    }

    #[test]
    fn multi_class_spec_compiles_per_device_intervals() {
        let mut b = ScenarioSpec::builder("mix");
        b.seed(3)
            .spatial(SpatialSpec::UniformDisc { devices: 40 })
            .gateways(GatewaySpec::Grid { count: 1 })
            .class(class("slow", 0.5, 600.0))
            .class(class("fast", 0.5, 60.0));
        let compiled = compile(&b.build().unwrap()).unwrap();
        let intervals = compiled.config.per_device_intervals_s.as_ref().unwrap();
        assert_eq!(intervals.len(), 40);
        for (i, &c) in compiled.class_of.iter().enumerate() {
            let expected = if c == 0 { 600.0 } else { 60.0 };
            assert_eq!(intervals[i], expected);
        }
        assert_eq!(
            compiled.class_histogram(),
            vec![("slow".to_string(), 20), ("fast".to_string(), 20)]
        );
    }

    #[test]
    fn single_declared_class_folds_into_global_interval() {
        let mut b = ScenarioSpec::builder("single");
        b.spatial(SpatialSpec::UniformDisc { devices: 10 })
            .gateways(GatewaySpec::Grid { count: 1 })
            .class(class("only", 1.0, 120.0));
        let compiled = compile(&b.build().unwrap()).unwrap();
        assert_eq!(compiled.config.report_interval_s, 120.0);
        assert_eq!(compiled.config.per_device_intervals_s, None);
        // Declaring one class forces the generic sampling path.
        assert!(!compiled.spec.is_legacy_uniform());
    }

    #[test]
    fn class_p_los_drives_environment_mix() {
        let mut los = class("los", 0.5, 600.0);
        los.p_los = Some(1.0);
        let mut nlos = class("nlos", 0.5, 600.0);
        nlos.p_los = Some(0.0);
        let mut b = ScenarioSpec::builder("env");
        b.spatial(SpatialSpec::UniformDisc { devices: 60 })
            .gateways(GatewaySpec::Grid { count: 1 })
            .class(los)
            .class(nlos);
        let compiled = compile(&b.build().unwrap()).unwrap();
        for (site, &c) in compiled.topology.devices().iter().zip(&compiled.class_of) {
            let expected = if c == 0 {
                LinkEnvironment::LineOfSight
            } else {
                LinkEnvironment::NonLineOfSight
            };
            assert_eq!(site.environment, expected);
        }
    }

    #[test]
    fn explicit_gateways_pass_through_and_kmeans_finds_hotspots() {
        let mut b = ScenarioSpec::builder("explicit");
        b.spatial(SpatialSpec::UniformDisc { devices: 10 })
            .gateways(GatewaySpec::Explicit {
                positions: vec![Position::new(1.0, 2.0), Position::new(-3.0, 4.0)],
            });
        let compiled = compile(&b.build().unwrap()).unwrap();
        assert_eq!(
            compiled.topology.gateways(),
            &[Position::new(1.0, 2.0), Position::new(-3.0, 4.0)]
        );

        let mut b = ScenarioSpec::builder("kmeans");
        b.seed(11)
            .spatial(SpatialSpec::Clusters {
                hotspots: vec![
                    HotspotSpec {
                        x_m: Some(-3_000.0),
                        y_m: Some(0.0),
                        radius_m: 200.0,
                        mean_devices: 40.0,
                    },
                    HotspotSpec {
                        x_m: Some(3_000.0),
                        y_m: Some(0.0),
                        radius_m: 200.0,
                        mean_devices: 40.0,
                    },
                ],
                background_devices: 0,
            })
            .gateways(GatewaySpec::KMeans {
                count: 2,
                iterations: 32,
            });
        let compiled = compile(&b.build().unwrap()).unwrap();
        let mut xs: Vec<f64> = compiled.topology.gateways().iter().map(|g| g.x).collect();
        xs.sort_by(f64::total_cmp);
        assert!((xs[0] + 3_000.0).abs() < 300.0, "left gateway at {}", xs[0]);
        assert!(
            (xs[1] - 3_000.0).abs() < 300.0,
            "right gateway at {}",
            xs[1]
        );
    }

    #[test]
    fn compile_is_deterministic_per_seed() {
        let mut b = ScenarioSpec::builder("det");
        b.seed(9).spatial(SpatialSpec::Ppp {
            intensity_per_km2: 3.0,
        });
        let spec = b.build().unwrap();
        let a = compile(&spec).unwrap();
        let b2 = compile(&spec).unwrap();
        assert_eq!(a, b2);
    }

    #[test]
    fn sim_section_overrides_apply() {
        let mut b = ScenarioSpec::builder("sim");
        b.sim(SimSection {
            duration_s: Some(1_200.0),
            report_interval_s: Some(300.0),
            duty: Some(0.01),
            app_payload: Some(16),
            p_los: Some(0.9),
            confirmed: Some(true),
        });
        let compiled = compile(&b.build().unwrap()).unwrap();
        assert_eq!(compiled.config.duration_s, 1_200.0);
        assert_eq!(compiled.config.report_interval_s, 300.0);
        assert_eq!(
            compiled.config.traffic,
            Traffic::DutyCycleTarget { duty: 0.01 }
        );
        assert_eq!(compiled.config.app_payload, 16);
        assert_eq!(compiled.config.p_los, 0.9);
        assert!(compiled.config.confirmed.is_some());
    }
}
