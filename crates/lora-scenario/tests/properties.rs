//! Property tests for the spatial samplers and the class apportionment.
//!
//! The unit tests in `src/spatial.rs` pin specific statistical facts
//! (PPP mean, cluster concentration); these properties sweep the
//! parameter space instead: every sampled point stays inside its
//! declared region for *arbitrary* seeds and geometries, sampling is a
//! pure function of the seed, and largest-remainder class assignment
//! covers every device with at most one device of rounding slack.

use proptest::prelude::*;

use lora_scenario::spec::{ClassSpec, GatewaySpec, HotspotSpec, ScenarioSpec, SpatialSpec};
use lora_scenario::{compile, spatial};

/// Slack for points that land exactly on a region boundary.
const EDGE: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uniform_disc_points_stay_inside(seed in any::<u64>(), radius_m in 100.0f64..20_000.0) {
        let spatial = SpatialSpec::UniformDisc { devices: 64 };
        let pts = spatial::sample_positions(&spatial, radius_m, seed).unwrap();
        prop_assert_eq!(pts.len(), 64);
        for p in &pts {
            prop_assert!(p.x.hypot(p.y) <= radius_m * (1.0 + EDGE));
        }
    }

    #[test]
    fn ppp_points_stay_inside(seed in any::<u64>(), radius_m in 1_000.0f64..10_000.0) {
        let spatial = SpatialSpec::Ppp { intensity_per_km2: 8.0 };
        // A stochastic count can come up zero on unlucky seeds; inside-ness
        // is the property under test, emptiness is a documented error.
        if let Ok(pts) = spatial::sample_positions(&spatial, radius_m, seed) {
            for p in &pts {
                prop_assert!(p.x.hypot(p.y) <= radius_m * (1.0 + EDGE));
            }
        }
    }

    #[test]
    fn cluster_daughters_stay_inside_the_region(
        seed in any::<u64>(),
        hotspot_radius_m in 50.0f64..4_000.0,
    ) {
        let radius_m = 4_000.0;
        let spatial = SpatialSpec::Clusters {
            hotspots: vec![HotspotSpec {
                // Seed-placed parent near the rim plus a fat daughter
                // radius: the clamp path gets exercised, not just the
                // rejection path.
                x_m: None,
                y_m: None,
                radius_m: hotspot_radius_m,
                mean_devices: 40.0,
            }],
            background_devices: 8,
        };
        let pts = spatial::sample_positions(&spatial, radius_m, seed).unwrap();
        for p in &pts {
            prop_assert!(p.x.hypot(p.y) <= radius_m * (1.0 + EDGE));
        }
    }

    #[test]
    fn annulus_points_stay_in_the_ring(
        seed in any::<u64>(),
        inner_m in 100.0f64..2_000.0,
        extra_m in 10.0f64..3_000.0,
    ) {
        let outer_m = inner_m + extra_m;
        let spatial = SpatialSpec::Annulus { devices: 48, inner_m, outer_m };
        let pts = spatial::sample_positions(&spatial, outer_m, seed).unwrap();
        prop_assert_eq!(pts.len(), 48);
        for p in &pts {
            let r = p.x.hypot(p.y);
            prop_assert!(r >= inner_m * (1.0 - EDGE) && r <= outer_m * (1.0 + EDGE));
        }
    }

    #[test]
    fn corridor_points_stay_in_the_box(
        seed in any::<u64>(),
        length_m in 500.0f64..10_000.0,
        width_m in 50.0f64..1_000.0,
        angle_deg in -180.0f64..180.0,
    ) {
        let spatial = SpatialSpec::Corridor { devices: 48, length_m, width_m, angle_deg };
        let pts = spatial::sample_positions(&spatial, length_m, seed).unwrap();
        prop_assert_eq!(pts.len(), 48);
        let (sin, cos) = angle_deg.to_radians().sin_cos();
        for p in &pts {
            // Rotate back into the corridor frame.
            let along = p.x * cos + p.y * sin;
            let across = -p.x * sin + p.y * cos;
            prop_assert!(along.abs() <= length_m / 2.0 + EDGE * length_m);
            prop_assert!(across.abs() <= width_m / 2.0 + EDGE * width_m);
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_seed(seed in any::<u64>()) {
        let spatial = SpatialSpec::Clusters {
            hotspots: vec![HotspotSpec {
                x_m: None,
                y_m: None,
                radius_m: 500.0,
                mean_devices: 25.0,
            }],
            background_devices: 10,
        };
        let a = spatial::sample_positions(&spatial, 5_000.0, seed).unwrap();
        let b = spatial::sample_positions(&spatial, 5_000.0, seed).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn class_apportionment_covers_every_device(
        seed in any::<u64>(),
        devices in 10usize..120,
        split in 0.05f64..0.95,
    ) {
        let spec = ScenarioSpec::builder("prop-classes")
            .seed(seed)
            .radius_m(3_000.0)
            .spatial(SpatialSpec::UniformDisc { devices })
            .gateways(GatewaySpec::Grid { count: 1 })
            .class(ClassSpec {
                name: "a".into(),
                fraction: split,
                report_interval_s: 600.0,
                p_los: None,
                app_payload: None,
                confirmed: None,
            })
            .class(ClassSpec {
                name: "b".into(),
                fraction: 1.0 - split,
                report_interval_s: 1_200.0,
                p_los: None,
                app_payload: None,
                confirmed: None,
            })
            .build()
            .unwrap();
        let compiled = compile(&spec).unwrap();
        let histogram = compiled.class_histogram();
        let total: usize = histogram.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, devices);
        // Largest-remainder apportionment never strays more than one
        // device from the exact share.
        for (name, count) in &histogram {
            let fraction = if name == "a" { split } else { 1.0 - split };
            let exact = fraction * devices as f64;
            prop_assert!((*count as f64 - exact).abs() <= 1.0, "{name}: {count} vs {exact}");
        }
    }
}
