//! Churn-module integration tests: index consistency under interleaved
//! Join/Leave/Migrate timelines, and long-horizon repair-quality drift.
//!
//! The property test replays random event sequences through
//! [`lora_scenario::churn::apply_event`] and checks, after every event,
//! that the three population vectors stay index-aligned and that the
//! per-device reporting intervals agree with a from-scratch recompute —
//! the invariant a shifted index after a batched removal would break.
//! The drift test quantifies ROADMAP item 3's repair-quality claim: after
//! a long run of incremental repairs, the model min-EE stays within a
//! stated factor of a full `EfLora` re-allocation on the final topology.

use proptest::prelude::*;

use ef_lora::{AllocationContext, EfLora, IncrementalAllocator, Strategy as AllocStrategy};
use lora_model::NetworkModel;
use lora_scenario::churn::{self, apply_event, refresh_intervals, ChurnContext, Population};
use lora_scenario::spec::{
    ChurnEvent, ChurnKind, ClassSpec, GatewaySpec, ScenarioSpec, SpatialSpec,
};
use lora_scenario::{catalog, compile, CompiledScenario};
use lora_sim::{DeviceSite, SimConfig, Topology};

fn class(name: &str, fraction: f64, interval: f64) -> ClassSpec {
    ClassSpec {
        name: name.into(),
        fraction,
        report_interval_s: interval,
        p_los: None,
        app_payload: None,
        confirmed: None,
    }
}

/// A randomly generated churn operation (class names resolved later).
#[derive(Debug, Clone)]
enum Op {
    Join {
        class: usize,
        count: usize,
    },
    Leave {
        count: usize,
    },
    Migrate {
        from: usize,
        to: usize,
        count: usize,
    },
}

fn op_strategy() -> impl proptest::strategy::Strategy<Value = Op> {
    // A single tuple strategy (the vendored `prop_oneof!` requires
    // same-typed arms): kind selects the variant, the other draws are
    // reinterpreted per variant.
    (0usize..3, 0usize..2, 0usize..2, 0usize..40).prop_map(|(kind, from, to, count)| match kind {
        0 => Op::Join {
            class: from,
            count: count % 10,
        },
        1 => Op::Leave { count },
        _ => Op::Migrate {
            from,
            to,
            count: count % 25,
        },
    })
}

/// Allocates the initial deployment and wraps it in a [`Population`].
fn initial_population(
    compiled: &CompiledScenario,
    config: &mut SimConfig,
    classes: &[ClassSpec],
) -> Population {
    let mut pop = Population {
        sites: compiled.topology.devices().to_vec(),
        class_of: compiled.class_of.clone(),
        alloc: Vec::new(),
    };
    refresh_intervals(config, &pop.class_of, classes);
    let model = NetworkModel::new(config, &compiled.topology);
    let ctx = AllocationContext::new(config, &compiled.topology, &model);
    pop.alloc = EfLora::default()
        .allocate(&ctx)
        .expect("initial allocation must succeed")
        .into_inner();
    pop
}

/// Bit-level identity of a device site (positions are continuous, so a
/// site identifies a device across compactions almost surely).
fn site_key(site: &DeviceSite, class: usize) -> (u64, u64, String, usize) {
    (
        site.position.x.to_bits(),
        site.position.y.to_bits(),
        format!("{:?}", site.environment),
        class,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interleaved_churn_keeps_indices_consistent(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let spec = ScenarioSpec::builder("churn-prop")
            .seed(seed)
            .spatial(SpatialSpec::UniformDisc { devices: 24 })
            .gateways(GatewaySpec::Grid { count: 1 })
            .class(class("a", 0.5, 300.0))
            .class(class("b", 0.5, 900.0))
            .build()
            .unwrap();
        let compiled = compile(&spec).unwrap();
        let classes = compiled.spec.effective_classes();
        let gateways = compiled.topology.gateways().to_vec();
        let radius_m = compiled.topology.radius_m();
        let ctx = ChurnContext {
            classes: &classes,
            spatial: &compiled.spec.spatial,
            gateways: &gateways,
            radius_m,
        };
        let mut config = compiled.config.clone();
        let mut pop = initial_population(&compiled, &mut config, &classes);
        let incremental = IncrementalAllocator::new();

        for (seq, op) in ops.iter().enumerate() {
            let event = ChurnEvent {
                epoch: seq as u32 + 1,
                event: match *op {
                    Op::Join { class, count } => ChurnKind::Join {
                        class: classes[class].name.clone(),
                        count,
                    },
                    Op::Leave { count } => ChurnKind::Leave { count },
                    Op::Migrate { from, to, count } => ChurnKind::Migrate {
                        from: classes[from].name.clone(),
                        to: classes[to].name.clone(),
                        count,
                    },
                },
            };
            let before_sites = pop.sites.clone();
            let before_class = pop.class_of.clone();
            let mut rng = churn::event_churn_rng(seed, seq as u64);
            let join_seed = churn::event_join_seed(seed, seq as u64);
            let out =
                apply_event(&ctx, &mut config, &mut pop, &incremental, &event, &mut rng, join_seed)
                    .unwrap();

            // The three population vectors must stay index-aligned.
            prop_assert_eq!(pop.sites.len(), pop.class_of.len());
            prop_assert_eq!(pop.sites.len(), pop.alloc.len());

            // Per-device intervals must agree with a from-scratch
            // recompute off class_of — a shifted index would desync them.
            let intervals = config
                .per_device_intervals_s
                .as_ref()
                .expect("two classes compile to per-device intervals");
            prop_assert_eq!(intervals.len(), pop.sites.len());
            for (i, &c) in pop.class_of.iter().enumerate() {
                prop_assert_eq!(intervals[i], classes[c].report_interval_s);
            }

            // Structural checks against the pre-event population.
            match *op {
                Op::Join { class, count } => {
                    prop_assert_eq!(out.joined, count);
                    prop_assert_eq!(pop.sites.len(), before_sites.len() + count);
                    prop_assert_eq!(&pop.sites[..before_sites.len()], &before_sites[..]);
                    prop_assert_eq!(&pop.class_of[..before_class.len()], &before_class[..]);
                    for &c in &pop.class_of[before_class.len()..] {
                        prop_assert_eq!(c, class);
                    }
                }
                Op::Leave { count } => {
                    let expected = count.min(before_sites.len() - 1);
                    prop_assert_eq!(out.left, expected);
                    prop_assert_eq!(pop.sites.len(), before_sites.len() - expected);
                    prop_assert_eq!(out.warning.is_some(), expected < count);
                    // Every surviving (site, class) pair existed before
                    // the removal: compaction may not scramble rows.
                    let mut before_keys: Vec<_> = before_sites
                        .iter()
                        .zip(&before_class)
                        .map(|(s, &c)| site_key(s, c))
                        .collect();
                    before_keys.sort();
                    for (s, &c) in pop.sites.iter().zip(&pop.class_of) {
                        prop_assert!(
                            before_keys.binary_search(&site_key(s, c)).is_ok(),
                            "survivor row not present pre-removal: indices shifted"
                        );
                    }
                }
                Op::Migrate { from, to, count } => {
                    prop_assert_eq!(&pop.sites[..], &before_sites[..]);
                    let mut changed = 0;
                    for (i, (&now, &was)) in
                        pop.class_of.iter().zip(&before_class).enumerate()
                    {
                        if now != was {
                            prop_assert_eq!(was, from, "device {i} migrated from wrong class");
                            prop_assert_eq!(now, to, "device {i} migrated to wrong class");
                            changed += 1;
                        }
                    }
                    let members = before_class.iter().filter(|&&c| c == from).count();
                    if from == to {
                        // A same-class migration reports its members but
                        // must leave every assignment untouched.
                        prop_assert_eq!(changed, 0);
                        prop_assert_eq!(out.migrated, count.min(members));
                    } else {
                        prop_assert_eq!(out.migrated, changed);
                        prop_assert_eq!(changed, count.min(members));
                    }
                }
            }
        }
    }
}

/// Drives one epoch's worth of timeline events through the churn module
/// and returns how many allocator passes ran.
fn apply_timeline(
    ctx: &ChurnContext<'_>,
    config: &mut SimConfig,
    pop: &mut Population,
    incremental: &IncrementalAllocator,
    events: &[ChurnEvent],
    seed: u64,
    epoch_offset: u32,
) -> usize {
    let mut passes = 0;
    for epoch in 1..=events.iter().map(|e| e.epoch).max().unwrap_or(0) {
        let mut rng = churn::epoch_churn_rng(seed, epoch_offset + epoch);
        let mut joined = 0usize;
        for event in events.iter().filter(|e| e.epoch == epoch) {
            let join_seed = churn::epoch_join_seed(seed, epoch_offset + epoch, joined);
            let out = apply_event(ctx, config, pop, incremental, event, &mut rng, join_seed)
                .expect("timeline replay must succeed");
            joined += out.joined;
            passes += 1;
        }
    }
    passes
}

/// After a long horizon of incremental repairs the allocation must not
/// drift arbitrarily far from what a from-scratch EF-LoRa run achieves
/// on the same final topology. The bound (75 % of the fresh min-EE) is
/// the repair-quality claim ROADMAP item 3 makes; tighten it only with
/// evidence from the soak experiment.
#[test]
fn long_horizon_incremental_repair_stays_near_fresh_allocation() {
    let spec = catalog::scale_devices(&catalog::churn_heavy().clone(), 0.5);
    let compiled = compile(&spec).unwrap();
    let classes = compiled.spec.effective_classes();
    let gateways = compiled.topology.gateways().to_vec();
    let radius_m = compiled.topology.radius_m();
    let ctx = ChurnContext {
        classes: &classes,
        spatial: &compiled.spec.spatial,
        gateways: &gateways,
        radius_m,
    };
    let mut config = compiled.config.clone();
    let mut pop = initial_population(&compiled, &mut config, &classes);
    let incremental = IncrementalAllocator::new();
    let timeline = compiled.timeline.clone();
    let epochs_per_cycle = timeline.iter().map(|e| e.epoch).max().unwrap();

    // Replay the churn-heavy timeline three times — 15 incremental
    // allocator passes — with fresh per-cycle streams.
    let mut passes = 0;
    for cycle in 0..3u32 {
        passes += apply_timeline(
            &ctx,
            &mut config,
            &mut pop,
            &incremental,
            &timeline,
            spec.seed,
            cycle * epochs_per_cycle,
        );
    }
    assert!(passes >= 15, "expected a long horizon, got {passes} passes");
    assert!(!pop.sites.is_empty());

    let topology = Topology::from_sites(pop.sites.clone(), gateways.clone(), radius_m);
    let model = NetworkModel::new(&config, &topology);
    let incremental_min_ee = ef_lora::fairness::min_ee(&model.evaluate(&pop.alloc));

    let alloc_ctx = AllocationContext::new(&config, &topology, &model);
    let fresh = EfLora::default()
        .allocate(&alloc_ctx)
        .expect("fresh allocation on the final topology must succeed")
        .into_inner();
    let fresh_min_ee = ef_lora::fairness::min_ee(&model.evaluate(&fresh));

    assert!(fresh_min_ee > 0.0, "fresh min-EE must be positive");
    assert!(
        incremental_min_ee >= 0.75 * fresh_min_ee,
        "incremental drift too large after {passes} repairs: \
         incremental {incremental_min_ee:.3} vs fresh {fresh_min_ee:.3} bits/mJ"
    );
}

/// The drift harness itself is deterministic: replaying the same
/// timeline twice yields the same population and allocation.
#[test]
fn timeline_replay_is_deterministic() {
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.3);
    let compiled = compile(&spec).unwrap();
    let classes = compiled.spec.effective_classes();
    let gateways = compiled.topology.gateways().to_vec();
    let radius_m = compiled.topology.radius_m();
    let ctx = ChurnContext {
        classes: &classes,
        spatial: &compiled.spec.spatial,
        gateways: &gateways,
        radius_m,
    };
    let run = || {
        let mut config = compiled.config.clone();
        let mut pop = initial_population(&compiled, &mut config, &classes);
        let incremental = IncrementalAllocator::new();
        apply_timeline(
            &ctx,
            &mut config,
            &mut pop,
            &incremental,
            &compiled.timeline,
            spec.seed,
            0,
        );
        pop
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b);
}
