//! Class-A receive-window timing.
//!
//! After every uplink a class-A device opens two short downlink windows:
//! RX1 `RECEIVE_DELAY1` (default 1 s) after the end of the uplink, on the
//! uplink channel at a data rate offset from the uplink's; RX2 one second
//! later on a fixed channel/data rate. Acknowledgements for the confirmed
//! traffic modelled by `lora-sim` arrive in these windows; this module
//! provides the timing arithmetic (and the energy cost of keeping the
//! receiver open) for it.

use serde::{Deserialize, Serialize};

/// Class-A receive-window parameters (LoRaWAN 1.0.x defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassAParams {
    /// Delay from end of uplink to RX1 opening, seconds (default 1.0).
    pub receive_delay1_s: f64,
    /// Delay from end of uplink to RX2 opening, seconds (default 2.0 —
    /// always `receive_delay1_s + 1`).
    pub receive_delay2_s: f64,
    /// Minimum time the receiver stays open per window, seconds (enough
    /// for the downlink preamble; ~30 ms at SF9/125 kHz).
    pub window_open_s: f64,
    /// Receiver supply power while listening, watts (SX1276 RX ≈ 12 mA at
    /// 3.3 V).
    pub rx_power_w: f64,
}

impl Default for ClassAParams {
    fn default() -> Self {
        ClassAParams {
            receive_delay1_s: 1.0,
            receive_delay2_s: 2.0,
            window_open_s: 0.030,
            rx_power_w: 12e-3 * 3.3,
        }
    }
}

impl ClassAParams {
    /// Opening time of RX1 for an uplink ending at `uplink_end_s`.
    #[inline]
    pub fn rx1_opens_s(&self, uplink_end_s: f64) -> f64 {
        uplink_end_s + self.receive_delay1_s
    }

    /// Opening time of RX2.
    #[inline]
    pub fn rx2_opens_s(&self, uplink_end_s: f64) -> f64 {
        uplink_end_s + self.receive_delay2_s
    }

    /// Whether a downlink arriving at `t` hits one of the two windows of
    /// an uplink that ended at `uplink_end_s`.
    pub fn downlink_in_window(&self, uplink_end_s: f64, t: f64) -> bool {
        let rx1 = self.rx1_opens_s(uplink_end_s);
        let rx2 = self.rx2_opens_s(uplink_end_s);
        (rx1..rx1 + self.window_open_s).contains(&t) || (rx2..rx2 + self.window_open_s).contains(&t)
    }

    /// Energy spent opening both windows once (no downlink received), in
    /// joules — the per-uplink listening overhead a confirmed-traffic
    /// deployment pays on top of TX energy.
    pub fn listening_energy_j(&self) -> f64 {
        2.0 * self.window_open_s * self.rx_power_w
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MacError::InvalidInterval`] when delays are not
    /// ordered `0 < RX1 < RX2` or the window/power values are not positive.
    pub fn validate(&self) -> Result<(), crate::MacError> {
        let ordered = self.receive_delay1_s > 0.0
            && self.receive_delay2_s > self.receive_delay1_s
            && self.window_open_s > 0.0
            && self.rx_power_w > 0.0;
        if ordered {
            Ok(())
        } else {
            Err(crate::MacError::InvalidInterval)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_windows_are_one_and_two_seconds() {
        let p = ClassAParams::default();
        assert_eq!(p.rx1_opens_s(10.0), 11.0);
        assert_eq!(p.rx2_opens_s(10.0), 12.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn window_membership() {
        let p = ClassAParams::default();
        assert!(p.downlink_in_window(0.0, 1.0));
        assert!(p.downlink_in_window(0.0, 1.029));
        assert!(!p.downlink_in_window(0.0, 1.031));
        assert!(p.downlink_in_window(0.0, 2.015));
        assert!(!p.downlink_in_window(0.0, 1.5));
        assert!(!p.downlink_in_window(0.0, 0.5));
    }

    #[test]
    fn listening_energy_is_small_but_positive() {
        let e = ClassAParams::default().listening_energy_j();
        // 2 × 30 ms × 39.6 mW ≈ 2.4 mJ.
        assert!((e - 2.376e-3).abs() < 1e-6, "{e}");
    }

    #[test]
    fn validation_rejects_inverted_delays() {
        let bad = ClassAParams {
            receive_delay1_s: 2.0,
            receive_delay2_s: 1.0,
            ..ClassAParams::default()
        };
        assert!(bad.validate().is_err());
        let zero = ClassAParams {
            window_open_s: 0.0,
            ..ClassAParams::default()
        };
        assert!(zero.validate().is_err());
    }
}
