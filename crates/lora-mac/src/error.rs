//! Error type for MAC-layer operations.

use std::error::Error;
use std::fmt;

/// Errors returned by MAC-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MacError {
    /// A frame buffer was too short or malformed to decode.
    MalformedFrame {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The frame MIC did not verify under the given key.
    MicMismatch,
    /// The application payload exceeds the maximum for the data rate.
    PayloadTooLarge {
        /// The offending length in bytes.
        len: usize,
        /// Maximum accepted length in bytes.
        max: usize,
    },
    /// A schedule with a non-positive reporting interval.
    InvalidInterval,
}

impl fmt::Display for MacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacError::MalformedFrame { reason } => write!(f, "malformed frame: {reason}"),
            MacError::MicMismatch => write!(f, "message integrity code mismatch"),
            MacError::PayloadTooLarge { len, max } => {
                write!(
                    f,
                    "application payload of {len} bytes exceeds maximum of {max} bytes"
                )
            }
            MacError::InvalidInterval => write!(f, "reporting interval must be positive"),
        }
    }
}

impl Error for MacError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MacError>();
    }

    #[test]
    fn display_messages() {
        assert!(MacError::MicMismatch.to_string().contains("integrity"));
        assert!(MacError::MalformedFrame { reason: "short" }
            .to_string()
            .contains("short"));
    }
}
