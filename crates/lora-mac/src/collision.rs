//! Collision and interference rules.
//!
//! The paper adopts the rule of Liando et al. \[5\]: two packets interfere iff
//! they use the **same spreading factor** and the **same channel** and their
//! transmissions overlap in time, regardless of how small the overlap is
//! (Section III-A). Different SFs on one channel are quasi-orthogonal and
//! decode concurrently.
//!
//! Section III-E notes that real SFs are *imperfectly* orthogonal; the
//! paper leaves this to future work. [`InterSfPolicy::ImperfectOrthogonality`]
//! implements that extension using the co-channel rejection thresholds
//! measured by Croce et al. (paper reference \[37\]).

use serde::{Deserialize, Serialize};

use lora_phy::SpreadingFactor;

/// A closed transmission interval `[start_s, end_s]` on the air.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AirInterval {
    /// Transmission start time in seconds.
    pub start_s: f64,
    /// Transmission end time in seconds.
    pub end_s: f64,
}

impl AirInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end_s < start_s`.
    pub fn new(start_s: f64, end_s: f64) -> Self {
        debug_assert!(end_s >= start_s, "interval must not be inverted");
        AirInterval { start_s, end_s }
    }

    /// Whether two intervals overlap at all (the paper's "regardless of the
    /// size of overlapping").
    #[inline]
    pub fn overlaps(&self, other: &AirInterval) -> bool {
        self.start_s < other.end_s && other.start_s < self.end_s
    }

    /// The duration of the interval in seconds.
    #[inline]
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// How transmissions on different spreading factors interact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum InterSfPolicy {
    /// Perfect orthogonality — the paper's main model: only co-SF,
    /// co-channel transmissions interfere.
    #[default]
    Orthogonal,
    /// Imperfect orthogonality (the Section III-E extension): a packet on
    /// SF `i` is also degraded by a packet on SF `j ≠ i` unless the desired
    /// signal exceeds the interferer by the co-channel rejection threshold.
    ImperfectOrthogonality,
}

/// Co-channel rejection matrix in dB, after Croce et al. ("Impact of LoRa
/// imperfect orthogonality", IEEE Comm. Letters 2018). Entry `[i][j]` is the
/// minimum power margin (signal − interferer, in dB) that SF `7+i` needs to
/// survive an interferer on SF `7+j`. The diagonal is the co-SF capture
/// threshold (≈ 6 dB in the SINR sense, expressed as 1 dB margin in
/// Croce's table — we keep Croce's measured values).
pub const CO_CHANNEL_REJECTION_DB: [[f64; 6]; 6] = [
    [1.0, -8.0, -9.0, -9.0, -9.0, -9.0],
    [-11.0, 1.0, -11.0, -12.0, -13.0, -13.0],
    [-15.0, -13.0, 1.0, -13.0, -14.0, -15.0],
    [-19.0, -18.0, -17.0, 1.0, -17.0, -18.0],
    [-22.0, -22.0, -21.0, -20.0, 1.0, -20.0],
    [-25.0, -25.0, -25.0, -24.0, -23.0, 1.0],
];

impl InterSfPolicy {
    /// Whether a transmission on `victim_sf` is *potentially* affected by a
    /// concurrent transmission on `interferer_sf` sharing the channel.
    ///
    /// Under [`InterSfPolicy::Orthogonal`] only equal SFs interact; under
    /// imperfect orthogonality every SF pair interacts (the power margin
    /// then decides survival — see [`InterSfPolicy::rejection_db`]).
    #[inline]
    pub fn interacts(&self, victim_sf: SpreadingFactor, interferer_sf: SpreadingFactor) -> bool {
        match self {
            InterSfPolicy::Orthogonal => victim_sf == interferer_sf,
            InterSfPolicy::ImperfectOrthogonality => true,
        }
    }

    /// The power margin in dB that the victim needs over the interferer to
    /// be captured, or `None` if the pair does not interact under this
    /// policy.
    pub fn rejection_db(
        &self,
        victim_sf: SpreadingFactor,
        interferer_sf: SpreadingFactor,
    ) -> Option<f64> {
        if !self.interacts(victim_sf, interferer_sf) {
            return None;
        }
        Some(CO_CHANNEL_REJECTION_DB[victim_sf.index()][interferer_sf.index()])
    }

    /// Linear power weight of an interferer on SF `interferer_sf` as seen by
    /// a victim on SF `victim_sf`: 1 for a co-SF interferer, the inverse of
    /// the rejection threshold for cross-SF pairs under imperfect
    /// orthogonality, and 0 for non-interacting pairs.
    ///
    /// Multiplying interferer powers by this weight lets the simulator use a
    /// single SINR formula for both policies.
    pub fn interference_weight(
        &self,
        victim_sf: SpreadingFactor,
        interferer_sf: SpreadingFactor,
    ) -> f64 {
        match self.rejection_db(victim_sf, interferer_sf) {
            None => 0.0,
            Some(_) if victim_sf == interferer_sf => 1.0,
            Some(rej_db) => {
                // A rejection of −R dB means an interferer R dB *stronger*
                // than the signal is still tolerated: scale its power by
                // 10^(rej/10) relative to a co-SF interferer.
                10f64.powf(rej_db / 10.0)
            }
        }
    }
}

/// The paper's collision predicate: same SF, same channel, any overlap.
///
/// ```
/// use lora_mac::collision::{collides, AirInterval};
/// use lora_phy::SpreadingFactor;
///
/// let a = AirInterval::new(0.0, 1.0);
/// let b = AirInterval::new(0.9, 2.0);
/// assert!(collides(SpreadingFactor::Sf7, 3, &a, SpreadingFactor::Sf7, 3, &b));
/// // Different channel: no collision.
/// assert!(!collides(SpreadingFactor::Sf7, 3, &a, SpreadingFactor::Sf7, 4, &b));
/// // Different SF: orthogonal.
/// assert!(!collides(SpreadingFactor::Sf7, 3, &a, SpreadingFactor::Sf8, 3, &b));
/// ```
pub fn collides(
    sf_a: SpreadingFactor,
    ch_a: usize,
    t_a: &AirInterval,
    sf_b: SpreadingFactor,
    ch_b: usize,
    t_b: &AirInterval,
) -> bool {
    sf_a == sf_b && ch_a == ch_b && t_a.overlaps(t_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_open_interval() {
        let a = AirInterval::new(0.0, 1.0);
        let touching = AirInterval::new(1.0, 2.0);
        assert!(!a.overlaps(&touching), "touching endpoints do not overlap");
        let inside = AirInterval::new(0.4, 0.6);
        assert!(a.overlaps(&inside));
        assert!(inside.overlaps(&a));
    }

    #[test]
    fn tiny_overlap_still_collides() {
        // "once their transmissions overlap with each other regardless of
        // the size of overlapping"
        let a = AirInterval::new(0.0, 1.0);
        let b = AirInterval::new(1.0 - 1e-9, 2.0);
        assert!(collides(
            SpreadingFactor::Sf9,
            0,
            &a,
            SpreadingFactor::Sf9,
            0,
            &b
        ));
    }

    #[test]
    fn orthogonal_policy_ignores_cross_sf() {
        let p = InterSfPolicy::Orthogonal;
        assert!(p.interacts(SpreadingFactor::Sf7, SpreadingFactor::Sf7));
        assert!(!p.interacts(SpreadingFactor::Sf7, SpreadingFactor::Sf12));
        assert_eq!(
            p.interference_weight(SpreadingFactor::Sf7, SpreadingFactor::Sf12),
            0.0
        );
        assert_eq!(
            p.interference_weight(SpreadingFactor::Sf7, SpreadingFactor::Sf7),
            1.0
        );
    }

    #[test]
    fn imperfect_policy_weights_cross_sf() {
        let p = InterSfPolicy::ImperfectOrthogonality;
        let w = p.interference_weight(SpreadingFactor::Sf7, SpreadingFactor::Sf8);
        // −8 dB rejection → weight 10^(−0.8) ≈ 0.158
        assert!((w - 10f64.powf(-0.8)).abs() < 1e-12);
        // Larger victim SFs reject interferers better (smaller weight).
        let w12 = p.interference_weight(SpreadingFactor::Sf12, SpreadingFactor::Sf8);
        assert!(w12 < w);
    }

    #[test]
    fn rejection_matrix_diagonal_is_capture_threshold() {
        for sf in SpreadingFactor::ALL {
            let p = InterSfPolicy::ImperfectOrthogonality;
            assert_eq!(p.rejection_db(sf, sf), Some(1.0));
        }
    }

    #[test]
    fn duration() {
        assert!((AirInterval::new(1.0, 3.5).duration_s() - 2.5).abs() < 1e-12);
    }
}
