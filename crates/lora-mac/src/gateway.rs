//! Gateway demodulator capacity.
//!
//! LoRa gateways are built around the Semtech SX1301 concentrator, which
//! despite listening on 8 channels × 6 SFs can *demodulate at most eight
//! packets concurrently* (paper Section III-B). The paper models this as
//! the constraint `Σ_i χ_{i,k}^t ≤ 8` (Eq. 6); the simulator enforces it
//! with this demodulator bank.

use serde::{Deserialize, Serialize};

use crate::GATEWAY_MAX_CONCURRENT;

/// A bank of demodulator paths with first-come-first-served locking.
///
/// Each accepted reception occupies one path from its start until its end
/// time; a packet arriving while all paths are busy is dropped even if it
/// would otherwise decode (this is the paper's capacity limitation).
///
/// ```
/// use lora_mac::DemodulatorBank;
/// let mut bank = DemodulatorBank::sx1301();
/// for i in 0..8 {
///     assert!(bank.try_acquire(0.0, 1.0), "path {i} should be free");
/// }
/// // The ninth concurrent packet is dropped…
/// assert!(!bank.try_acquire(0.5, 1.5));
/// // …but once the first eight finish, paths free up again.
/// assert!(bank.try_acquire(1.0, 2.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemodulatorBank {
    capacity: usize,
    /// End times of receptions currently holding a path.
    busy_until: Vec<f64>,
    /// Total number of acquisitions granted.
    granted: u64,
    /// Total number of acquisitions refused for lack of a free path.
    refused: u64,
}

impl DemodulatorBank {
    /// Creates a bank with the SX1301's eight paths.
    pub fn sx1301() -> Self {
        DemodulatorBank::with_capacity(GATEWAY_MAX_CONCURRENT)
    }

    /// Creates a bank with a custom number of paths.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a gateway needs at least one demodulator");
        DemodulatorBank {
            capacity,
            busy_until: Vec::with_capacity(capacity),
            granted: 0,
            refused: 0,
        }
    }

    /// The number of demodulator paths.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of paths busy at time `now_s`.
    pub fn busy_at(&self, now_s: f64) -> usize {
        self.busy_until.iter().filter(|&&end| end > now_s).count()
    }

    /// Attempts to lock a path for a reception spanning `[start_s, end_s]`.
    ///
    /// Returns `true` and occupies a path on success; returns `false` if all
    /// paths are busy at `start_s` (the packet is lost to the capacity
    /// limit). Calls must be made in non-decreasing `start_s` order, which
    /// is what a discrete-event simulator naturally does.
    pub fn try_acquire(&mut self, start_s: f64, end_s: f64) -> bool {
        debug_assert!(end_s >= start_s);
        // Release expired paths.
        self.busy_until.retain(|&end| end > start_s);
        if self.busy_until.len() < self.capacity {
            self.busy_until.push(end_s);
            self.granted += 1;
            true
        } else {
            self.refused += 1;
            false
        }
    }

    /// Total receptions granted a path so far.
    #[inline]
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Total receptions refused for lack of a free path so far.
    #[inline]
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Clears all state, keeping the capacity.
    pub fn reset(&mut self) {
        self.busy_until.clear();
        self.granted = 0;
        self.refused = 0;
    }
}

impl Default for DemodulatorBank {
    fn default() -> Self {
        DemodulatorBank::sx1301()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninth_concurrent_packet_is_refused() {
        let mut bank = DemodulatorBank::sx1301();
        for _ in 0..8 {
            assert!(bank.try_acquire(10.0, 12.0));
        }
        assert!(!bank.try_acquire(11.0, 13.0));
        assert_eq!(bank.granted(), 8);
        assert_eq!(bank.refused(), 1);
    }

    #[test]
    fn paths_free_after_end_time() {
        let mut bank = DemodulatorBank::with_capacity(1);
        assert!(bank.try_acquire(0.0, 1.0));
        assert!(!bank.try_acquire(0.5, 1.5));
        // start == previous end: the path is free again (open interval).
        assert!(bank.try_acquire(1.0, 2.0));
    }

    #[test]
    fn busy_at_counts_active_paths() {
        let mut bank = DemodulatorBank::sx1301();
        bank.try_acquire(0.0, 2.0);
        bank.try_acquire(0.0, 5.0);
        assert_eq!(bank.busy_at(1.0), 2);
        assert_eq!(bank.busy_at(3.0), 1);
        assert_eq!(bank.busy_at(6.0), 0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut bank = DemodulatorBank::with_capacity(2);
        bank.try_acquire(0.0, 1.0);
        bank.try_acquire(0.0, 1.0);
        bank.try_acquire(0.0, 1.0);
        bank.reset();
        assert_eq!(bank.granted(), 0);
        assert_eq!(bank.refused(), 0);
        assert_eq!(bank.busy_at(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = DemodulatorBank::with_capacity(0);
    }
}
