//! LoRaWAN uplink frame layout.
//!
//! An unconfirmed data uplink (LoRaWAN 1.0.x) wraps the application payload
//! in 13 bytes of MAC overhead:
//!
//! ```text
//! | MHDR | DevAddr | FCtrl | FCnt | FPort | FRMPayload | MIC |
//! |  1   |    4    |   1   |  2   |   1   |     N      |  4  |
//! ```
//!
//! This is how the paper's evaluation turns an 8-byte application payload
//! into a 21-byte PHY payload (Section IV).

use serde::{Deserialize, Serialize};

use crate::crypto::Cmac;
use crate::error::MacError;

/// MHDR for an unconfirmed data uplink, LoRaWAN major version 1.
pub const MHDR_UNCONFIRMED_UP: u8 = 0x40;

/// Bytes of MAC overhead around the application payload.
pub const MAC_OVERHEAD: usize = 13;

/// Maximum application payload at DR0 (SF12/125 kHz) in LoRaWAN US915 —
/// used as the conservative frame-size cap.
pub const MAX_APP_PAYLOAD: usize = 242;

/// An uplink application frame before encoding.
///
/// ```
/// use lora_mac::frame::UplinkFrame;
/// let f = UplinkFrame::new(0x01020304, 7, 10, vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// assert_eq!(f.phy_payload_len(), 21);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UplinkFrame {
    dev_addr: u32,
    f_cnt: u16,
    f_port: u8,
    payload: Vec<u8>,
}

impl UplinkFrame {
    /// Creates an uplink frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_APP_PAYLOAD`]; use
    /// [`UplinkFrame::try_new`] for fallible construction.
    pub fn new(dev_addr: u32, f_cnt: u16, f_port: u8, payload: Vec<u8>) -> Self {
        Self::try_new(dev_addr, f_cnt, f_port, payload).expect("payload within LoRaWAN limits")
    }

    /// Creates an uplink frame, validating the payload length.
    ///
    /// # Errors
    ///
    /// Returns [`MacError::PayloadTooLarge`] if the payload exceeds
    /// [`MAX_APP_PAYLOAD`].
    pub fn try_new(
        dev_addr: u32,
        f_cnt: u16,
        f_port: u8,
        payload: Vec<u8>,
    ) -> Result<Self, MacError> {
        if payload.len() > MAX_APP_PAYLOAD {
            return Err(MacError::PayloadTooLarge {
                len: payload.len(),
                max: MAX_APP_PAYLOAD,
            });
        }
        Ok(UplinkFrame {
            dev_addr,
            f_cnt,
            f_port,
            payload,
        })
    }

    /// The device address.
    #[inline]
    pub fn dev_addr(&self) -> u32 {
        self.dev_addr
    }

    /// The uplink frame counter.
    #[inline]
    pub fn f_cnt(&self) -> u16 {
        self.f_cnt
    }

    /// The application port.
    #[inline]
    pub fn f_port(&self) -> u8 {
        self.f_port
    }

    /// The application payload.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Length of the PHY payload after encoding: application payload plus
    /// [`MAC_OVERHEAD`].
    #[inline]
    pub fn phy_payload_len(&self) -> usize {
        self.payload.len() + MAC_OVERHEAD
    }

    /// Encodes the frame to its PHY payload, computing the MIC with
    /// `nwk_s_key` per LoRaWAN 1.0.x §4.4.
    pub fn encode(&self, nwk_s_key: &[u8; 16]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.phy_payload_len());
        buf.push(MHDR_UNCONFIRMED_UP);
        buf.extend_from_slice(&self.dev_addr.to_le_bytes());
        buf.push(0x00); // FCtrl: no ADR, no ACK, no FOpts
        buf.extend_from_slice(&self.f_cnt.to_le_bytes());
        buf.push(self.f_port);
        buf.extend_from_slice(&self.payload);
        let mic = compute_mic(nwk_s_key, self.dev_addr, u32::from(self.f_cnt), &buf);
        buf.extend_from_slice(&mic);
        buf
    }

    /// Decodes and verifies a PHY payload.
    ///
    /// # Errors
    ///
    /// Returns [`MacError::MalformedFrame`] for structurally invalid input
    /// and [`MacError::MicMismatch`] when the integrity check fails.
    pub fn decode(phy_payload: &[u8], nwk_s_key: &[u8; 16]) -> Result<Self, MacError> {
        if phy_payload.len() < MAC_OVERHEAD {
            return Err(MacError::MalformedFrame {
                reason: "shorter than MAC overhead",
            });
        }
        if phy_payload[0] != MHDR_UNCONFIRMED_UP {
            return Err(MacError::MalformedFrame {
                reason: "unsupported MHDR",
            });
        }
        if phy_payload[5] & 0x0f != 0 {
            return Err(MacError::MalformedFrame {
                reason: "FOpts not supported",
            });
        }
        let dev_addr = u32::from_le_bytes(phy_payload[1..5].try_into().expect("4 bytes"));
        let f_cnt = u16::from_le_bytes(phy_payload[6..8].try_into().expect("2 bytes"));
        let f_port = phy_payload[8];
        let mic_start = phy_payload.len() - 4;
        let payload = phy_payload[9..mic_start].to_vec();
        let expected = compute_mic(
            nwk_s_key,
            dev_addr,
            u32::from(f_cnt),
            &phy_payload[..mic_start],
        );
        if expected != phy_payload[mic_start..] {
            return Err(MacError::MicMismatch);
        }
        Ok(UplinkFrame {
            dev_addr,
            f_cnt,
            f_port,
            payload,
        })
    }
}

/// Computes the LoRaWAN uplink MIC: `CMAC(key, B0 | msg)[0..4]` where `B0`
/// is the authentication block of LoRaWAN 1.0.x §4.4.
pub fn compute_mic(nwk_s_key: &[u8; 16], dev_addr: u32, f_cnt: u32, msg: &[u8]) -> [u8; 4] {
    let mut b0 = [0u8; 16];
    b0[0] = 0x49;
    // bytes 1..5 zero, byte 5: direction 0 = uplink
    b0[6..10].copy_from_slice(&dev_addr.to_le_bytes());
    b0[10..14].copy_from_slice(&f_cnt.to_le_bytes());
    // byte 14 zero
    b0[15] = msg.len() as u8;
    let mut full = Vec::with_capacity(16 + msg.len());
    full.extend_from_slice(&b0);
    full.extend_from_slice(msg);
    Cmac::new(nwk_s_key).mic(&full)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = [0x2b; 16];

    #[test]
    fn paper_payload_sizes() {
        // "uplink packets had an application payload of 8 bytes, which
        // implied a PHY payload of 21 bytes" (Section IV).
        let f = UplinkFrame::new(0xdeadbeef, 0, 1, vec![0u8; 8]);
        assert_eq!(f.phy_payload_len(), 21);
        assert_eq!(f.encode(&KEY).len(), 21);
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = UplinkFrame::new(0x0102_0304, 1234, 42, vec![9, 8, 7]);
        let encoded = f.encode(&KEY);
        let decoded = UplinkFrame::decode(&encoded, &KEY).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn wrong_key_fails_mic() {
        let f = UplinkFrame::new(1, 1, 1, vec![1]);
        let encoded = f.encode(&KEY);
        let err = UplinkFrame::decode(&encoded, &[0x11; 16]).unwrap_err();
        assert_eq!(err, MacError::MicMismatch);
    }

    #[test]
    fn bit_flip_fails_mic() {
        let f = UplinkFrame::new(7, 7, 7, vec![0u8; 8]);
        let mut encoded = f.encode(&KEY);
        encoded[10] ^= 0x01;
        assert_eq!(
            UplinkFrame::decode(&encoded, &KEY).unwrap_err(),
            MacError::MicMismatch
        );
    }

    #[test]
    fn short_buffer_is_malformed() {
        assert!(matches!(
            UplinkFrame::decode(&[0x40; 5], &KEY),
            Err(MacError::MalformedFrame { .. })
        ));
    }

    #[test]
    fn wrong_mhdr_is_malformed() {
        let f = UplinkFrame::new(1, 1, 1, vec![1, 2, 3]);
        let mut encoded = f.encode(&KEY);
        encoded[0] = 0x80; // confirmed uplink — unsupported here
        assert!(matches!(
            UplinkFrame::decode(&encoded, &KEY),
            Err(MacError::MalformedFrame { .. })
        ));
    }

    #[test]
    fn oversized_payload_rejected() {
        assert!(matches!(
            UplinkFrame::try_new(1, 0, 1, vec![0u8; 243]),
            Err(MacError::PayloadTooLarge { len: 243, max: 242 })
        ));
        assert!(UplinkFrame::try_new(1, 0, 1, vec![0u8; 242]).is_ok());
    }

    #[test]
    fn empty_payload_is_just_overhead() {
        let f = UplinkFrame::new(5, 5, 5, vec![]);
        assert_eq!(f.phy_payload_len(), MAC_OVERHEAD);
        let encoded = f.encode(&KEY);
        assert_eq!(UplinkFrame::decode(&encoded, &KEY).unwrap(), f);
    }

    #[test]
    fn mic_depends_on_fcnt_and_addr() {
        let msg = [1u8, 2, 3];
        let a = compute_mic(&KEY, 1, 1, &msg);
        let b = compute_mic(&KEY, 1, 2, &msg);
        let c = compute_mic(&KEY, 2, 1, &msg);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
