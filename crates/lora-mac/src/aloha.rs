//! Unslotted-ALOHA transmission scheduling and duty cycle.
//!
//! LoRaWAN class-A devices transmit whenever the application produces a
//! reading — pure unslotted ALOHA (paper Section III-A). Each end device
//! reports periodically with interval `T_g`; the phase of the cycle is
//! random per device, which is what makes collisions probabilistic.

use serde::{Deserialize, Serialize};

use crate::error::MacError;

/// A periodic unslotted-ALOHA transmission schedule.
///
/// ```
/// use lora_mac::AlohaSchedule;
/// let s = AlohaSchedule::new(600.0, 37.5)?;
/// assert_eq!(s.tx_start_s(0), 37.5);
/// assert_eq!(s.tx_start_s(2), 1237.5);
/// # Ok::<(), lora_mac::MacError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlohaSchedule {
    interval_s: f64,
    phase_s: f64,
}

impl AlohaSchedule {
    /// Creates a schedule with reporting interval `interval_s` and initial
    /// phase `phase_s` (the start time of transmission 0).
    ///
    /// # Errors
    ///
    /// Returns [`MacError::InvalidInterval`] if the interval is not a
    /// positive finite number or the phase is negative/non-finite.
    pub fn new(interval_s: f64, phase_s: f64) -> Result<Self, MacError> {
        if !(interval_s.is_finite() && interval_s > 0.0 && phase_s.is_finite() && phase_s >= 0.0) {
            return Err(MacError::InvalidInterval);
        }
        Ok(AlohaSchedule {
            interval_s,
            phase_s,
        })
    }

    /// The reporting interval `T_g` in seconds.
    #[inline]
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// The phase (start of the first transmission) in seconds.
    #[inline]
    pub fn phase_s(&self) -> f64 {
        self.phase_s
    }

    /// Start time of the `n`-th transmission (0-based) in seconds.
    #[inline]
    pub fn tx_start_s(&self, n: u64) -> f64 {
        self.phase_s + self.interval_s * n as f64
    }

    /// Number of transmissions with start time strictly before `horizon_s`.
    pub fn transmissions_before(&self, horizon_s: f64) -> u64 {
        if horizon_s <= self.phase_s {
            0
        } else {
            ((horizon_s - self.phase_s) / self.interval_s).ceil() as u64
        }
    }
}

/// The duty cycle `α_i = T_i / T_g` of a device transmitting a frame with
/// time-on-air `toa_s` every `interval_s` seconds (paper Eq. 15).
///
/// ```
/// let a = lora_mac::aloha::duty_cycle(1.8, 600.0);
/// assert!((a - 0.003).abs() < 1e-12);
/// ```
#[inline]
pub fn duty_cycle(toa_s: f64, interval_s: f64) -> f64 {
    debug_assert!(toa_s >= 0.0 && interval_s > 0.0);
    (toa_s / interval_s).min(1.0)
}

/// Whether a schedule respects a regulatory duty-cycle cap (ETSI: 1 %).
#[inline]
pub fn respects_duty_cycle_cap(toa_s: f64, interval_s: f64, cap: f64) -> bool {
    duty_cycle(toa_s, interval_s) <= cap
}

/// The minimum reporting interval that keeps a device with time-on-air
/// `toa_s` under the duty-cycle cap.
///
/// ```
/// // An SF12 frame of ~1.81 s forces at least 181 s between transmissions
/// // under the 1 % ETSI cap.
/// let min = lora_mac::aloha::min_interval_for_cap(1.81, 0.01);
/// assert!((min - 181.0).abs() < 1e-9);
/// ```
#[inline]
pub fn min_interval_for_cap(toa_s: f64, cap: f64) -> f64 {
    debug_assert!(cap > 0.0);
    toa_s / cap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_rejects_bad_parameters() {
        assert!(AlohaSchedule::new(0.0, 0.0).is_err());
        assert!(AlohaSchedule::new(-1.0, 0.0).is_err());
        assert!(AlohaSchedule::new(f64::NAN, 0.0).is_err());
        assert!(AlohaSchedule::new(10.0, -0.1).is_err());
        assert!(AlohaSchedule::new(10.0, 0.0).is_ok());
    }

    #[test]
    fn transmissions_before_counts_correctly() {
        let s = AlohaSchedule::new(100.0, 10.0).unwrap();
        assert_eq!(s.transmissions_before(5.0), 0);
        assert_eq!(s.transmissions_before(10.0), 0); // strictly before
        assert_eq!(s.transmissions_before(10.1), 1);
        assert_eq!(s.transmissions_before(110.1), 2);
        assert_eq!(s.transmissions_before(1000.0), 10);
    }

    #[test]
    fn duty_cycle_saturates_at_one() {
        assert_eq!(duty_cycle(20.0, 10.0), 1.0);
    }

    #[test]
    fn one_percent_cap() {
        // SF7 21-byte frame (~71 ms) at 600 s interval is far below 1 %.
        assert!(respects_duty_cycle_cap(0.0709, 600.0, 0.01));
        // An SF12 frame every 100 s breaks it.
        assert!(!respects_duty_cycle_cap(1.81, 100.0, 0.01));
    }

    #[test]
    fn min_interval_restores_compliance() {
        let toa = 1.81;
        let min = min_interval_for_cap(toa, 0.01);
        assert!(respects_duty_cycle_cap(toa, min, 0.01));
        assert!(!respects_duty_cycle_cap(toa, min * 0.99, 0.01));
    }
}
