//! Network-server de-duplication.
//!
//! LoRa end devices broadcast; every gateway in range forwards its copy of
//! an uplink to the network server, which keeps the first copy and discards
//! the rest (paper Section III-A: "the remote server then filters the
//! redundant received packets with de-duplication operation"). A
//! transmission counts as delivered if *at least one* gateway received it —
//! that is exactly the `1 − Π(1 − PDR)` structure of paper Eq. (5).

use std::collections::HashMap;

/// Outcome of offering a received frame copy to the de-duplicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reception {
    /// First copy of this (device, counter) pair — deliver to application.
    FirstCopy,
    /// A redundant copy via another gateway — drop.
    Duplicate,
}

/// De-duplicates uplink frames by `(device address, frame counter)`.
///
/// ```
/// use lora_mac::{Deduplicator, Reception};
/// let mut dedup = Deduplicator::new();
/// assert_eq!(dedup.observe(0xa1, 5), Reception::FirstCopy);
/// assert_eq!(dedup.observe(0xa1, 5), Reception::Duplicate);
/// assert_eq!(dedup.observe(0xa1, 6), Reception::FirstCopy);
/// assert_eq!(dedup.observe(0xb2, 5), Reception::FirstCopy);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Deduplicator {
    /// Highest counter delivered per device, plus a short reordering window
    /// of recently seen counters (gateway backhaul may reorder copies).
    latest: HashMap<u32, u32>,
    recent: HashMap<(u32, u32), ()>,
    delivered: u64,
    duplicates: u64,
}

impl Deduplicator {
    /// Creates an empty de-duplicator.
    pub fn new() -> Self {
        Deduplicator::default()
    }

    /// Offers one received copy; returns whether it is the first copy.
    pub fn observe(&mut self, dev_addr: u32, f_cnt: u32) -> Reception {
        let key = (dev_addr, f_cnt);
        if self.recent.contains_key(&key) {
            self.duplicates += 1;
            return Reception::Duplicate;
        }
        self.recent.insert(key, ());
        let latest = self.latest.entry(dev_addr).or_insert(f_cnt);
        if f_cnt > *latest {
            *latest = f_cnt;
        }
        self.delivered += 1;
        Reception::FirstCopy
    }

    /// Number of unique frames delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of redundant copies discarded so far.
    #[inline]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// The highest frame counter delivered for a device, if any.
    pub fn latest_counter(&self, dev_addr: u32) -> Option<u32> {
        self.latest.get(&dev_addr).copied()
    }

    /// Drops the reordering window for counters at or below
    /// `up_to_counter` for every device, bounding memory in long runs.
    pub fn compact(&mut self, up_to_counter: u32) {
        self.recent.retain(|&(_, cnt), _| cnt > up_to_counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_via_three_gateways_deliver_once() {
        let mut dedup = Deduplicator::new();
        assert_eq!(dedup.observe(1, 0), Reception::FirstCopy);
        assert_eq!(dedup.observe(1, 0), Reception::Duplicate);
        assert_eq!(dedup.observe(1, 0), Reception::Duplicate);
        assert_eq!(dedup.delivered(), 1);
        assert_eq!(dedup.duplicates(), 2);
    }

    #[test]
    fn devices_are_independent() {
        let mut dedup = Deduplicator::new();
        dedup.observe(1, 0);
        assert_eq!(dedup.observe(2, 0), Reception::FirstCopy);
    }

    #[test]
    fn out_of_order_copies_still_dedup() {
        let mut dedup = Deduplicator::new();
        dedup.observe(1, 3);
        dedup.observe(1, 4);
        // A late copy of counter 3 via a slow gateway:
        assert_eq!(dedup.observe(1, 3), Reception::Duplicate);
    }

    #[test]
    fn latest_counter_tracks_maximum() {
        let mut dedup = Deduplicator::new();
        assert_eq!(dedup.latest_counter(9), None);
        dedup.observe(9, 2);
        dedup.observe(9, 7);
        dedup.observe(9, 5);
        assert_eq!(dedup.latest_counter(9), Some(7));
    }

    #[test]
    fn compact_bounds_memory_without_losing_new_frames() {
        let mut dedup = Deduplicator::new();
        for cnt in 0..100 {
            dedup.observe(1, cnt);
        }
        dedup.compact(98);
        // Counter 99 is still within the window.
        assert_eq!(dedup.observe(1, 99), Reception::Duplicate);
        // New frames continue to deliver.
        assert_eq!(dedup.observe(1, 100), Reception::FirstCopy);
    }
}
