//! AES-128 and AES-CMAC, as required by the LoRaWAN message integrity code.
//!
//! LoRaWAN authenticates every uplink with a 4-byte MIC computed as
//! AES-128-CMAC over a `B0` block and the frame bytes (LoRaWAN 1.0.x
//! §4.4). This module implements both primitives from scratch — the AES
//! S-box is *derived* (GF(2⁸) inversion + affine map) rather than
//! transcribed, and both algorithms are validated against FIPS-197 and
//! RFC 4493 test vectors in the unit tests.
//!
//! This is a software model for simulation realism, not a hardened
//! implementation: it makes no constant-time claims.

/// Multiplies two elements of GF(2⁸) with the AES polynomial
/// `x⁸ + x⁴ + x³ + x + 1` (0x11b).
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// The AES S-box, derived at compile time: multiplicative inverse in
/// GF(2⁸) followed by the affine transformation of FIPS-197 §5.1.1.
const SBOX: [u8; 256] = {
    let mut sbox = [0u8; 256];
    let mut x = 0usize;
    while x < 256 {
        // Multiplicative inverse (0 maps to 0) by brute force — fine at
        // compile time.
        let mut inv = 0u8;
        if x != 0 {
            let mut candidate = 1usize;
            while candidate < 256 {
                if gf_mul(x as u8, candidate as u8) == 1 {
                    inv = candidate as u8;
                    break;
                }
                candidate += 1;
            }
        }
        // Affine transform: s = b ^ rotl1(b) ^ rotl2(b) ^ rotl3(b) ^ rotl4(b) ^ 0x63
        let b = inv;
        sbox[x] =
            b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
        x += 1;
    }
    sbox
};

/// AES round constants for 128-bit key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// An expanded AES-128 key ready to encrypt blocks.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Encrypts one block, returning the ciphertext.
    pub fn encrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let mut b = block;
        self.encrypt_block(&mut b);
        b
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

/// State is column-major: byte `state[4c + r]` is row `r`, column `c`.
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

/// AES-CMAC (RFC 4493) keyed with AES-128.
#[derive(Debug, Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

/// Doubles a value in GF(2¹²⁸) with the CMAC polynomial (left shift, xor
/// 0x87 into the last byte on carry).
fn dbl(input: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        out[i] = (input[i] << 1) | carry;
        carry = input[i] >> 7;
    }
    if carry != 0 {
        out[15] ^= 0x87;
    }
    out
}

impl Cmac {
    /// Creates a CMAC instance from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt([0u8; 16]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { cipher, k1, k2 }
    }

    /// Computes the full 16-byte CMAC tag over `message`.
    pub fn tag(&self, message: &[u8]) -> [u8; 16] {
        let n_blocks = message.len().div_ceil(16).max(1);
        let complete_last = !message.is_empty() && message.len().is_multiple_of(16);

        let mut x = [0u8; 16];
        // All blocks but the last.
        for block in 0..n_blocks - 1 {
            for i in 0..16 {
                x[i] ^= message[16 * block + i];
            }
            self.cipher.encrypt_block(&mut x);
        }
        // Last block: xor K1 if complete, pad + xor K2 otherwise.
        let mut last = [0u8; 16];
        let tail = &message[16 * (n_blocks - 1)..];
        if complete_last {
            last.copy_from_slice(tail);
            for (l, k) in last.iter_mut().zip(&self.k1) {
                *l ^= k;
            }
        } else {
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            for (l, k) in last.iter_mut().zip(&self.k2) {
                *l ^= k;
            }
        }
        for (x_i, l) in x.iter_mut().zip(&last) {
            *x_i ^= l;
        }
        self.cipher.encrypt_block(&mut x);
        x
    }

    /// Computes the truncated 4-byte MIC used by LoRaWAN (the first four
    /// bytes of the CMAC tag).
    pub fn mic(&self, message: &[u8]) -> [u8; 4] {
        let tag = self.tag(message);
        [tag[0], tag[1], tag[2], tag[3]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 appendix C.1: AES-128
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let ct = Aes128::new(&key).encrypt(pt);
        assert_eq!(ct.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn rfc4493_empty_message() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let tag = Cmac::new(&key).tag(&[]);
        assert_eq!(tag.to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_16_byte_message() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let msg = hex("6bc1bee22e409f96e93d7e117393172a");
        let tag = Cmac::new(&key).tag(&msg);
        assert_eq!(tag.to_vec(), hex("070a16b46b4d4144f79bdd9dd04a287c"));
    }

    #[test]
    fn rfc4493_40_byte_message() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let msg = hex("6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411");
        let tag = Cmac::new(&key).tag(&msg);
        assert_eq!(tag.to_vec(), hex("dfa66747de9ae63030ca32611497c827"));
    }

    #[test]
    fn rfc4493_64_byte_message() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let msg = hex("6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710");
        let tag = Cmac::new(&key).tag(&msg);
        assert_eq!(tag.to_vec(), hex("51f0bebf7e3b9d92fc49741779363cfe"));
    }

    #[test]
    fn mic_is_tag_prefix() {
        let key = [7u8; 16];
        let cmac = Cmac::new(&key);
        let msg = b"an uplink frame";
        let tag = cmac.tag(msg);
        assert_eq!(cmac.mic(msg), [tag[0], tag[1], tag[2], tag[3]]);
    }

    #[test]
    fn different_keys_different_tags() {
        let a = Cmac::new(&[1u8; 16]).tag(b"payload");
        let b = Cmac::new(&[2u8; 16]).tag(b"payload");
        assert_ne!(a, b);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let c = Aes128::new(&[0x42; 16]);
        let s = format!("{c:?}");
        assert!(!s.contains("42"), "{s}");
    }
}
