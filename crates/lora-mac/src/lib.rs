//! LoRaWAN MAC-layer model.
//!
//! The MAC substrate of the EF-LoRa reproduction:
//!
//! * [`frame`] — LoRaWAN uplink frame layout (the paper's 8-byte application
//!   payload → 21-byte PHY payload), with a real AES-128-CMAC message
//!   integrity code ([`crypto`]),
//! * [`aloha`] — unslotted-ALOHA transmission schedules and duty cycle
//!   (paper Eq. 15 and the ETSI 1 % cap),
//! * [`collision`] — the paper's collision rule (same SF, same channel, any
//!   overlap) plus the optional inter-SF interference matrix extension,
//! * [`gateway`] — the SX1301 demodulator bank that caps a gateway at eight
//!   concurrent packets (paper Eq. 6),
//! * [`dedup`] — network-server de-duplication of multi-gateway copies.
//!
//! # Example
//!
//! ```
//! use lora_mac::frame::UplinkFrame;
//!
//! let frame = UplinkFrame::new(0x2601_4aF3, 17, 1, vec![0u8; 8]);
//! // 13 bytes of LoRaWAN overhead around an 8-byte application payload.
//! assert_eq!(frame.phy_payload_len(), 21);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aloha;
pub mod class_a;
pub mod collision;
pub mod crypto;
pub mod dedup;
pub mod error;
pub mod frame;
pub mod gateway;

pub use aloha::AlohaSchedule;
pub use class_a::ClassAParams;
pub use collision::InterSfPolicy;
pub use dedup::{Deduplicator, Reception};
pub use error::MacError;
pub use frame::UplinkFrame;
pub use gateway::DemodulatorBank;

/// The SX1301 concentrator decodes at most this many packets concurrently,
/// regardless of their SFs and channels (paper Section III-B, Eq. 6).
pub const GATEWAY_MAX_CONCURRENT: usize = 8;
