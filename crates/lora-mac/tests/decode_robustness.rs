//! Frame-decoder robustness: arbitrary bytes must never panic, and only
//! authentic frames may decode.

use lora_mac::frame::UplinkFrame;
use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
        key in any::<[u8; 16]>(),
    ) {
        // Result is either a valid frame or a clean error — never a panic.
        let _ = UplinkFrame::decode(&bytes, &key);
    }

    #[test]
    fn random_bytes_essentially_never_authenticate(
        mut bytes in proptest::collection::vec(any::<u8>(), 13..64),
        key in any::<[u8; 16]>(),
    ) {
        // Force the only structurally-required byte so decoding reaches
        // the MIC check, then rely on the 32-bit MIC to reject: a false
        // accept has probability 2⁻³² per case, far below proptest's case
        // count.
        bytes[0] = lora_mac::frame::MHDR_UNCONFIRMED_UP;
        bytes[5] = 0; // FCtrl without FOpts
        prop_assert!(UplinkFrame::decode(&bytes, &key).is_err());
    }

    #[test]
    fn truncating_a_valid_frame_fails_cleanly(
        payload in proptest::collection::vec(any::<u8>(), 0..40),
        cut in 1usize..20,
    ) {
        let key = [9u8; 16];
        let frame = UplinkFrame::new(0xabc, 3, 2, payload);
        let encoded = frame.encode(&key);
        let cut = cut.min(encoded.len());
        let truncated = &encoded[..encoded.len() - cut];
        prop_assert!(UplinkFrame::decode(truncated, &key).is_err());
    }
}
