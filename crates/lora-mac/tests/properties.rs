//! Property-based tests for the MAC layer.

use lora_mac::aloha::{duty_cycle, AlohaSchedule};
use lora_mac::collision::{collides, AirInterval, InterSfPolicy};
use lora_mac::crypto::{Aes128, Cmac};
use lora_mac::frame::UplinkFrame;
use lora_mac::{Deduplicator, DemodulatorBank, Reception};
use lora_phy::SpreadingFactor;
use proptest::prelude::*;

fn any_sf() -> impl Strategy<Value = SpreadingFactor> {
    (7u8..=12).prop_map(|v| SpreadingFactor::from_u8(v).unwrap())
}

proptest! {
    #[test]
    fn frame_round_trips(
        dev_addr in any::<u32>(),
        f_cnt in any::<u16>(),
        f_port in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        key in any::<[u8; 16]>(),
    ) {
        let frame = UplinkFrame::new(dev_addr, f_cnt, f_port, payload);
        let encoded = frame.encode(&key);
        prop_assert_eq!(encoded.len(), frame.phy_payload_len());
        let decoded = UplinkFrame::decode(&encoded, &key).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn any_single_byte_corruption_is_caught(
        payload in proptest::collection::vec(any::<u8>(), 1..32),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let key = [0x5a; 16];
        let frame = UplinkFrame::new(0xcafe, 1, 1, payload);
        let mut encoded = frame.encode(&key);
        let pos = pos_seed % encoded.len();
        encoded[pos] ^= flip;
        prop_assert!(UplinkFrame::decode(&encoded, &key).is_err());
    }

    #[test]
    fn aes_is_a_permutation(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        let cipher = Aes128::new(&key);
        if a != b {
            prop_assert_ne!(cipher.encrypt(a), cipher.encrypt(b));
        }
        prop_assert_ne!(cipher.encrypt(a), a); // no fixed point is astronomically likely
    }

    #[test]
    fn cmac_is_deterministic(key in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..80)) {
        let c = Cmac::new(&key);
        prop_assert_eq!(c.tag(&msg), c.tag(&msg));
    }

    #[test]
    fn overlap_is_symmetric(s1 in 0.0f64..100.0, d1 in 0.001f64..10.0, s2 in 0.0f64..100.0, d2 in 0.001f64..10.0) {
        let a = AirInterval::new(s1, s1 + d1);
        let b = AirInterval::new(s2, s2 + d2);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn collision_requires_all_three_conditions(
        sf_a in any_sf(), sf_b in any_sf(),
        ch_a in 0usize..8, ch_b in 0usize..8,
        s1 in 0.0f64..10.0, s2 in 0.0f64..10.0,
    ) {
        let a = AirInterval::new(s1, s1 + 1.0);
        let b = AirInterval::new(s2, s2 + 1.0);
        let hit = collides(sf_a, ch_a, &a, sf_b, ch_b, &b);
        if hit {
            prop_assert_eq!(sf_a, sf_b);
            prop_assert_eq!(ch_a, ch_b);
            prop_assert!(a.overlaps(&b));
        }
    }

    #[test]
    fn interference_weight_in_unit_range(v in any_sf(), i in any_sf()) {
        for policy in [InterSfPolicy::Orthogonal, InterSfPolicy::ImperfectOrthogonality] {
            let w = policy.interference_weight(v, i);
            prop_assert!((0.0..=1.0).contains(&w), "{policy:?} {v} {i}: {w}");
        }
    }

    #[test]
    fn demod_bank_never_exceeds_capacity(
        capacity in 1usize..=8,
        receptions in proptest::collection::vec((0.0f64..100.0, 0.001f64..5.0), 1..200),
    ) {
        let mut sorted = receptions;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut bank = DemodulatorBank::with_capacity(capacity);
        for (start, dur) in &sorted {
            let granted_before = bank.busy_at(*start);
            prop_assert!(granted_before <= capacity);
            bank.try_acquire(*start, start + dur);
            prop_assert!(bank.busy_at(*start) <= capacity);
        }
    }

    #[test]
    fn dedup_delivers_each_frame_exactly_once(
        offers in proptest::collection::vec((0u32..8, 0u32..16), 1..300),
    ) {
        let mut dedup = Deduplicator::new();
        let mut seen = std::collections::HashSet::new();
        for (dev, cnt) in offers {
            let outcome = dedup.observe(dev, cnt);
            let first = seen.insert((dev, cnt));
            prop_assert_eq!(outcome == Reception::FirstCopy, first);
        }
        prop_assert_eq!(dedup.delivered(), seen.len() as u64);
    }

    #[test]
    fn schedule_times_are_increasing(interval in 0.1f64..1000.0, phase in 0.0f64..1000.0, n in 0u64..100) {
        let s = AlohaSchedule::new(interval, phase).unwrap();
        prop_assert!(s.tx_start_s(n + 1) > s.tx_start_s(n));
        prop_assert!((0.0..=1.0).contains(&duty_cycle(0.07, interval)));
    }
}
