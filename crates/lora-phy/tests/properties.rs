//! Property-based tests for the PHY layer.

use lora_phy::link::{min_feasible_sf, noise_floor_dbm, received_power_dbm};
use lora_phy::path_loss::PathLossModel;
use lora_phy::toa::{CodingRate, ToaParams};
use lora_phy::{Bandwidth, Fading, SpreadingFactor, TxPowerDbm};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn any_sf() -> impl Strategy<Value = SpreadingFactor> {
    (7u8..=12).prop_map(|v| SpreadingFactor::from_u8(v).unwrap())
}

fn any_cr() -> impl Strategy<Value = CodingRate> {
    prop_oneof![
        Just(CodingRate::Cr4_5),
        Just(CodingRate::Cr4_6),
        Just(CodingRate::Cr4_7),
        Just(CodingRate::Cr4_8),
    ]
}

proptest! {
    #[test]
    fn toa_positive_and_finite(sf in any_sf(), cr in any_cr(), len in 0usize..=255) {
        let t = ToaParams::new(sf, Bandwidth::Bw125, cr).time_on_air_s(len).unwrap();
        prop_assert!(t.is_finite());
        prop_assert!(t > 0.0);
        // Sanity bound: even 255 bytes at SF12 stays under 20 s.
        prop_assert!(t < 20.0);
    }

    #[test]
    fn toa_weakly_monotone_in_payload(sf in any_sf(), cr in any_cr(), len in 0usize..255) {
        let p = ToaParams::new(sf, Bandwidth::Bw125, cr);
        prop_assert!(p.time_on_air_s(len + 1).unwrap() >= p.time_on_air_s(len).unwrap());
    }

    #[test]
    fn toa_strictly_monotone_in_sf(cr in any_cr(), len in 0usize..=255) {
        let mut last = 0.0;
        for sf in SpreadingFactor::ALL {
            let t = ToaParams::new(sf, Bandwidth::Bw125, cr).time_on_air_s(len).unwrap();
            prop_assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn toa_lut_is_bit_identical_to_uncached(
        bw in prop_oneof![Just(Bandwidth::Bw125), Just(Bandwidth::Bw250), Just(Bandwidth::Bw500)],
        cr in any_cr(),
        sf in any_sf(),
        len in 0usize..=255,
    ) {
        // The cached ToA path must be indistinguishable from recomputing
        // Eq. 4 — down to the last mantissa bit, or simulator results
        // would drift with the optimization.
        let lut = lora_phy::ToaLut::new(bw, cr);
        let uncached = ToaParams::new(sf, bw, cr).time_on_air_s(len).unwrap();
        let cached = lut.time_on_air_s(sf, len).unwrap();
        prop_assert_eq!(cached.to_bits(), uncached.to_bits());
    }

    #[test]
    fn path_loss_monotone(d1 in 10.0f64..5_000.0, delta in 1.0f64..5_000.0, beta in 2.1f64..4.5) {
        for model in [
            PathLossModel::friis_exponent(903e6),
            PathLossModel::log_distance(903e6, 100.0),
        ] {
            let near = model.loss_db(d1, beta);
            let far = model.loss_db(d1 + delta, beta);
            prop_assert!(far >= near);
            prop_assert!(model.attenuation(d1, beta) > 0.0);
            prop_assert!(model.attenuation(d1, beta) <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn rayleigh_gain_positive(seed in any::<u64>()) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let g = Fading::Rayleigh.sample_power_gain(&mut rng);
        prop_assert!(g > 0.0);
        prop_assert!(g.is_finite());
    }

    #[test]
    fn survival_is_probability(threshold in -10.0f64..100.0) {
        for fading in [Fading::None, Fading::Rayleigh] {
            let s = fading.survival(threshold);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn min_feasible_sf_respects_sensitivity(rx in -150.0f64..-100.0) {
        if let Some(sf) = min_feasible_sf(rx, Bandwidth::Bw125, 6.0, 0.0) {
            prop_assert!(rx >= sf.sensitivity_dbm(Bandwidth::Bw125, 6.0));
            if let Some(faster) = sf.faster() {
                prop_assert!(rx < faster.sensitivity_dbm(Bandwidth::Bw125, 6.0));
            }
        } else {
            prop_assert!(rx < SpreadingFactor::Sf12.sensitivity_dbm(Bandwidth::Bw125, 6.0));
        }
    }

    #[test]
    fn rx_power_monotone_in_tx(tx in 2.0f64..14.0, loss in 60.0f64..160.0) {
        let low = received_power_dbm(tx, loss, 1.0);
        let high = received_power_dbm(tx + 1.0, loss, 1.0);
        prop_assert!(high > low);
    }

    #[test]
    fn cycle_energy_monotone_in_tp_and_toa(
        tp in 2.0f64..14.0,
        toa in 0.01f64..3.0,
        interval in 10.0f64..3600.0,
    ) {
        let m = lora_phy::energy::RadioEnergyModel::sx1276();
        let base = m.cycle_energy_j(TxPowerDbm::new(tp), toa, interval);
        prop_assert!(base > 0.0);
        let more_power = m.cycle_energy_j(TxPowerDbm::new((tp + 2.0).min(14.0)), toa, interval);
        prop_assert!(more_power >= base);
        let longer = m.cycle_energy_j(TxPowerDbm::new(tp), toa * 1.5, interval);
        prop_assert!(longer >= base);
    }
}

#[test]
fn noise_floor_is_bandwidth_sensitive() {
    let n125 = noise_floor_dbm(Bandwidth::Bw125, 6.0);
    let n500 = noise_floor_dbm(Bandwidth::Bw500, 6.0);
    assert!((n500 - n125 - 10.0 * 4f64.log10()).abs() < 1e-9);
}
