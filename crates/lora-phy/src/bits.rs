//! LoRa bit-level processing: whitening, diagonal interleaving and Gray
//! symbol mapping.
//!
//! Together with [`crate::codec`] these complete the transmit-side bit
//! pipeline of a LoRa modem (Knight & Seeber, "Decoding LoRa", cited by
//! the paper for its coding-rate discussion):
//!
//! ```text
//! payload → whitening → Hamming coding → diagonal interleaving → Gray map → chirps
//! ```
//!
//! Whitening decorrelates payload bits so receiver gain control sees a
//! balanced spectrum; the diagonal interleaver spreads each codeword
//! across `SF` symbols so an interference burst that corrupts one symbol
//! touches at most one bit per codeword (which the Hamming code then
//! corrects — the mechanism behind the paper's choice of CR 4/7); Gray
//! mapping makes the most likely demodulation error (±1 bin) cost a
//! single bit flip.

use crate::sf::SpreadingFactor;

/// The whitening sequence generator: a Galois LFSR over x⁸+x⁶+x⁵+x⁴+1
/// seeded with 0xFF, one byte per payload byte.
#[derive(Debug, Clone)]
pub struct Whitener {
    state: u8,
}

impl Whitener {
    /// Creates a whitener at the start of the sequence.
    pub fn new() -> Self {
        Whitener { state: 0xFF }
    }

    /// The next whitening byte.
    pub fn next_byte(&mut self) -> u8 {
        let out = self.state;
        for _ in 0..8 {
            let lsb = self.state & 1;
            self.state >>= 1;
            if lsb != 0 {
                self.state ^= 0xB8; // taps 8,6,5,4 reflected
            }
        }
        out
    }

    /// Whitens (or de-whitens — the operation is an involution) a buffer
    /// in place.
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data {
            *byte ^= self.next_byte();
        }
    }
}

impl Default for Whitener {
    fn default() -> Self {
        Whitener::new()
    }
}

/// Diagonally interleaves `sf` codewords of `cr_bits` bits each into
/// `cr_bits` symbols of `sf` bits: output symbol `j` takes bit
/// `(i + j) mod sf` … from codeword `i`'s bit `j` — so consecutive bits of
/// one codeword land in different symbols.
///
/// # Panics
///
/// Panics unless exactly `sf` codewords are supplied.
pub fn interleave(codewords: &[u8], sf: SpreadingFactor, cr_bits: u8) -> Vec<u16> {
    let rows = usize::from(sf.bits_per_symbol());
    assert_eq!(
        codewords.len(),
        rows,
        "need SF codewords per interleaver block"
    );
    let cols = usize::from(cr_bits);
    let mut symbols = vec![0u16; cols];
    for (i, &cw) in codewords.iter().enumerate() {
        for (j, symbol) in symbols.iter_mut().enumerate() {
            let bit = (cw >> j) & 1;
            let row = (i + j) % rows;
            *symbol |= u16::from(bit) << row;
        }
    }
    symbols
}

/// Inverse of [`interleave`].
///
/// # Panics
///
/// Panics unless exactly `cr_bits` symbols are supplied.
pub fn deinterleave(symbols: &[u16], sf: SpreadingFactor, cr_bits: u8) -> Vec<u8> {
    let rows = usize::from(sf.bits_per_symbol());
    let cols = usize::from(cr_bits);
    assert_eq!(symbols.len(), cols, "need CR symbols per interleaver block");
    let mut codewords = vec![0u8; rows];
    for (j, &symbol) in symbols.iter().enumerate() {
        for (i, cw) in codewords.iter_mut().enumerate() {
            let row = (i + j) % rows;
            let bit = (symbol >> row) & 1;
            *cw |= (bit as u8) << j;
        }
    }
    codewords
}

/// Gray-codes a symbol value (adjacent chirp bins differ in one bit).
#[inline]
pub fn gray_encode(value: u16) -> u16 {
    value ^ (value >> 1)
}

/// Inverts [`gray_encode`].
#[inline]
pub fn gray_decode(mut gray: u16) -> u16 {
    let mut value = gray;
    while gray > 0 {
        gray >>= 1;
        value ^= gray;
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_payload, encode_payload};
    use crate::toa::CodingRate;

    #[test]
    fn whitening_is_an_involution() {
        let original: Vec<u8> = (0..64u8).collect();
        let mut data = original.clone();
        Whitener::new().apply(&mut data);
        assert_ne!(data, original, "whitening must change the data");
        Whitener::new().apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn whitening_sequence_is_balanced() {
        // Over a long run the LFSR output should be near 50 % ones.
        let mut w = Whitener::new();
        let ones: u32 = (0..255).map(|_| w.next_byte().count_ones()).sum();
        let frac = f64::from(ones) / (255.0 * 8.0);
        assert!((frac - 0.5).abs() < 0.05, "{frac}");
    }

    #[test]
    fn whitener_period_is_maximal() {
        // A maximal 8-bit LFSR revisits its seed after 255 steps.
        let mut w = Whitener::new();
        let first = w.next_byte();
        for _ in 0..254 {
            w.next_byte();
        }
        assert_eq!(w.next_byte(), first);
    }

    #[test]
    fn interleaver_round_trips() {
        for sf in SpreadingFactor::ALL {
            let rows = usize::from(sf.bits_per_symbol());
            // wrapping_mul: i*37 exceeds u8 for SF ≥ 10 (i up to 11).
            let codewords: Vec<u8> = (0..rows as u8).map(|i| i.wrapping_mul(37) & 0x7f).collect();
            let symbols = interleave(&codewords, sf, 7);
            assert_eq!(symbols.len(), 7);
            let back = deinterleave(&symbols, sf, 7);
            assert_eq!(back, codewords, "{sf}");
        }
    }

    #[test]
    fn one_corrupted_symbol_touches_one_bit_per_codeword() {
        // The design property the paper's CR 4/7 choice leans on.
        let sf = SpreadingFactor::Sf9;
        let rows = usize::from(sf.bits_per_symbol());
        let codewords: Vec<u8> = (0..rows as u8).map(|i| (i * 11) & 0x7f).collect();
        let mut symbols = interleave(&codewords, sf, 7);
        symbols[3] ^= 0x1ff; // destroy one whole symbol
        let damaged = deinterleave(&symbols, sf, 7);
        for (a, b) in damaged.iter().zip(&codewords) {
            assert!(
                (a ^ b).count_ones() <= 1,
                "codeword took more than one bit of damage: {a:08b} vs {b:08b}"
            );
        }
    }

    #[test]
    fn burst_plus_hamming_recovers_payload() {
        // End-to-end: encode, interleave, kill a symbol, deinterleave,
        // decode — the payload survives.
        let sf = SpreadingFactor::Sf8;
        let rows = usize::from(sf.bits_per_symbol());
        let payload: Vec<u8> = (0..rows as u8 / 2).map(|i| i.wrapping_mul(73)).collect();
        let codewords = encode_payload(&payload, CodingRate::Cr4_7);
        assert_eq!(codewords.len(), rows);
        let mut symbols = interleave(&codewords, sf, 7);
        symbols[5] ^= 0xff;
        let back = deinterleave(&symbols, sf, 7);
        let (decoded, corrected, failed) = decode_payload(&back, CodingRate::Cr4_7);
        assert_eq!(decoded, payload);
        assert!(corrected > 0);
        assert_eq!(failed, 0);
    }

    #[test]
    fn gray_round_trip_and_adjacency() {
        for v in 0u16..4096 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
        // Adjacent values differ by exactly one bit after Gray coding.
        for v in 0u16..4095 {
            let d = (gray_encode(v) ^ gray_encode(v + 1)).count_ones();
            assert_eq!(d, 1, "{v}");
        }
    }
}
