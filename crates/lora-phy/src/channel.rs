//! Frequency channels and bandwidths.

use std::fmt;

use serde::{Deserialize, Serialize};

/// LoRa channel bandwidth.
///
/// The paper (and LoRaWAN regional parameters for sub-GHz uplinks) fixes the
/// uplink bandwidth to 125 kHz; 250 and 500 kHz are provided for
/// completeness and downlink modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Bandwidth {
    /// 125 kHz — the standard uplink bandwidth.
    #[default]
    Bw125,
    /// 250 kHz.
    Bw250,
    /// 500 kHz — used for downlink channels in US915.
    Bw500,
}

impl Bandwidth {
    /// The bandwidth in Hz.
    ///
    /// ```
    /// use lora_phy::Bandwidth;
    /// assert_eq!(Bandwidth::Bw125.hz(), 125_000.0);
    /// ```
    #[inline]
    pub fn hz(self) -> f64 {
        match self {
            Bandwidth::Bw125 => 125_000.0,
            Bandwidth::Bw250 => 250_000.0,
            Bandwidth::Bw500 => 500_000.0,
        }
    }

    /// The bandwidth in kHz.
    #[inline]
    pub fn khz(self) -> f64 {
        self.hz() / 1000.0
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}kHz", self.khz())
    }
}

/// An uplink frequency channel: a centre frequency plus bandwidth.
///
/// Channels multiplex transmissions: per the paper's collision rule two
/// packets interfere only if they share *both* the channel and the
/// spreading factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Index of the channel within its regional plan (0-based).
    index: usize,
    /// Centre frequency in Hz.
    frequency_hz: f64,
    /// Channel bandwidth.
    bandwidth: Bandwidth,
}

impl Channel {
    /// Creates a channel.
    pub fn new(index: usize, frequency_hz: f64, bandwidth: Bandwidth) -> Self {
        Channel {
            index,
            frequency_hz,
            bandwidth,
        }
    }

    /// Index of the channel within its regional plan.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Centre frequency in Hz.
    #[inline]
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Channel bandwidth.
    #[inline]
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{} @ {:.1} MHz/{}",
            self.index,
            self.frequency_hz / 1e6,
            self.bandwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_values() {
        assert_eq!(Bandwidth::Bw125.hz(), 125_000.0);
        assert_eq!(Bandwidth::Bw250.hz(), 250_000.0);
        assert_eq!(Bandwidth::Bw500.hz(), 500_000.0);
    }

    #[test]
    fn channel_display_mentions_frequency() {
        let ch = Channel::new(0, 902_300_000.0, Bandwidth::Bw125);
        let s = ch.to_string();
        assert!(s.contains("902.3"), "{s}");
        assert!(s.contains("ch0"), "{s}");
    }
}
