//! Per-device radio configuration — the unit of allocation in EF-LoRa.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::power::TxPowerDbm;
use crate::sf::SpreadingFactor;

/// The radio resources assigned to one end device: spreading factor,
/// transmission power and uplink channel index.
///
/// This triple is exactly the `(s_i, p_i, c_i)` the paper optimises
/// (Eq. 1). A network-wide allocation is a `Vec<TxConfig>`, one entry per
/// device.
///
/// ```
/// use lora_phy::{SpreadingFactor, TxConfig, TxPowerDbm};
/// let cfg = TxConfig::new(SpreadingFactor::Sf9, TxPowerDbm::new(8.0), 3);
/// assert_eq!(cfg.sf, SpreadingFactor::Sf9);
/// assert_eq!(cfg.channel, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxConfig {
    /// The spreading factor `s_i`.
    pub sf: SpreadingFactor,
    /// The transmission power `p_i`.
    pub tp: TxPowerDbm,
    /// The uplink channel index `c_i` (0-based into the regional plan).
    pub channel: usize,
}

impl TxConfig {
    /// Creates a configuration.
    pub fn new(sf: SpreadingFactor, tp: TxPowerDbm, channel: usize) -> Self {
        TxConfig { sf, tp, channel }
    }

    /// The (SF, channel) contention group this configuration belongs to:
    /// devices sharing the group interfere with each other under the
    /// paper's collision rule.
    #[inline]
    pub fn group(&self) -> (SpreadingFactor, usize) {
        (self.sf, self.channel)
    }
}

impl Default for TxConfig {
    /// SF7, maximum EU power (14 dBm), channel 0 — the legacy-LoRa
    /// starting point.
    fn default() -> Self {
        TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::MAX_EU, 0)
    }
}

impl fmt::Display for TxConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/ch{}", self.sf, self.tp, self.channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_ignores_power() {
        let a = TxConfig::new(SpreadingFactor::Sf8, TxPowerDbm::new(2.0), 5);
        let b = TxConfig::new(SpreadingFactor::Sf8, TxPowerDbm::new(14.0), 5);
        assert_eq!(a.group(), b.group());
        let c = TxConfig::new(SpreadingFactor::Sf8, TxPowerDbm::new(2.0), 4);
        assert_ne!(a.group(), c.group());
    }

    #[test]
    fn display_is_compact() {
        let cfg = TxConfig::new(SpreadingFactor::Sf10, TxPowerDbm::new(12.0), 7);
        assert_eq!(cfg.to_string(), "SF10/12 dBm/ch7");
    }
}
