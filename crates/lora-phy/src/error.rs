//! Error type for PHY-layer computations.

use std::error::Error;
use std::fmt;

/// Errors returned by the PHY-layer model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhyError {
    /// A payload longer than the LoRa maximum (255 bytes of PHY payload)
    /// was requested.
    PayloadTooLarge {
        /// The offending payload length in bytes.
        len: usize,
        /// The maximum accepted length in bytes.
        max: usize,
    },
    /// A transmission power outside the configured regional range.
    TxPowerOutOfRange {
        /// The offending power in dBm.
        dbm: f64,
        /// Lowest permitted power in dBm.
        min: f64,
        /// Highest permitted power in dBm.
        max: f64,
    },
    /// A spreading factor value outside 7..=12.
    InvalidSpreadingFactor(u8),
    /// A channel index outside the regional channel plan.
    InvalidChannel {
        /// The offending channel index.
        index: usize,
        /// Number of channels in the plan.
        plan_len: usize,
    },
    /// A non-finite or non-positive physical quantity where one is required.
    InvalidQuantity {
        /// Name of the quantity (for diagnostics).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds maximum of {max} bytes")
            }
            PhyError::TxPowerOutOfRange { dbm, min, max } => {
                write!(
                    f,
                    "transmission power {dbm} dBm outside permitted [{min}, {max}] dBm"
                )
            }
            PhyError::InvalidSpreadingFactor(v) => {
                write!(f, "spreading factor {v} outside 7..=12")
            }
            PhyError::InvalidChannel { index, plan_len } => {
                write!(
                    f,
                    "channel index {index} outside plan of {plan_len} channels"
                )
            }
            PhyError::InvalidQuantity { what, value } => {
                write!(f, "invalid value {value} for {what}")
            }
        }
    }
}

impl Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = PhyError::InvalidSpreadingFactor(42);
        let s = e.to_string();
        assert!(s.starts_with("spreading factor"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhyError>();
    }
}
