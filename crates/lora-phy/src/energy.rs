//! Radio energy model.
//!
//! Follows the decomposition of Casals et al. (paper reference \[22\], used in
//! Section III-B): a transmission cycle consists of wake-up, radio
//! preparation, the TX burst itself, radio-off and post-processing, plus the
//! sleep period until the next cycle. Only the TX burst depends on the
//! resource allocation (TP sets the supply power, SF sets the duration,
//! paper Eq. 3); the remaining actions are identical for every device, and
//! the paper's evaluation explicitly includes sleep energy ("the energy is
//! consumed by both active transmission and sleep", Section IV).

use serde::{Deserialize, Serialize};

use crate::power::TxPowerDbm;

/// Electrical energy drawn from the battery for radio activity.
///
/// The built-in table interpolates supply current measurements of an
/// SX1276-class radio at 3.3 V (Casals et al. / Semtech datasheet figures)
/// for output powers between 2 and 14 dBm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioEnergyModel {
    /// Supply voltage in volts.
    supply_voltage_v: f64,
    /// `(output dBm, supply mA)` calibration points, sorted by dBm.
    tx_current_ma: Vec<(f64, f64)>,
    /// Sleep-state supply current in amperes (radio + MCU).
    sleep_current_a: f64,
    /// Fixed per-transmission overhead energy in joules (wake-up, radio
    /// preparation, radio-off, post-processing).
    overhead_energy_j: f64,
}

impl RadioEnergyModel {
    /// The default SX1276-class model at 3.3 V:
    ///
    /// * TX supply current 24–44 mA between 2 and 14 dBm,
    /// * 30 µA sleep current (MCU low-power mode + radio sleep),
    /// * 5 mJ fixed overhead per transmission.
    pub fn sx1276() -> Self {
        RadioEnergyModel {
            supply_voltage_v: 3.3,
            tx_current_ma: vec![
                (2.0, 24.0),
                (4.0, 26.0),
                (6.0, 28.0),
                (8.0, 31.0),
                (10.0, 34.0),
                (12.0, 39.0),
                (14.0, 44.0),
            ],
            sleep_current_a: 30e-6,
            overhead_energy_j: 5e-3,
        }
    }

    /// Creates a custom model.
    ///
    /// # Panics
    ///
    /// Panics if the current table is empty or not sorted by dBm.
    pub fn new(
        supply_voltage_v: f64,
        tx_current_ma: Vec<(f64, f64)>,
        sleep_current_a: f64,
        overhead_energy_j: f64,
    ) -> Self {
        assert!(!tx_current_ma.is_empty(), "current table must not be empty");
        assert!(
            tx_current_ma.windows(2).all(|w| w[0].0 < w[1].0),
            "current table must be sorted by dBm"
        );
        RadioEnergyModel {
            supply_voltage_v,
            tx_current_ma,
            sleep_current_a,
            overhead_energy_j,
        }
    }

    /// Supply voltage in volts.
    #[inline]
    pub fn supply_voltage_v(&self) -> f64 {
        self.supply_voltage_v
    }

    /// Fixed per-transmission overhead energy in joules.
    #[inline]
    pub fn overhead_energy_j(&self) -> f64 {
        self.overhead_energy_j
    }

    /// Electrical power drawn while sleeping, in watts.
    #[inline]
    pub fn sleep_power_w(&self) -> f64 {
        self.sleep_current_a * self.supply_voltage_v
    }

    /// Electrical power drawn while transmitting at `tp`, in watts — the
    /// paper's `e_p` (energy per time unit with power `p`, Eq. 3).
    ///
    /// Output powers outside the calibration table are clamped to its ends;
    /// between points the current is linearly interpolated.
    pub fn tx_power_w(&self, tp: TxPowerDbm) -> f64 {
        let dbm = tp.dbm();
        let table = &self.tx_current_ma;
        let ma = if dbm <= table[0].0 {
            table[0].1
        } else if dbm >= table[table.len() - 1].0 {
            table[table.len() - 1].1
        } else {
            let idx = table.partition_point(|&(x, _)| x <= dbm);
            let (x0, y0) = table[idx - 1];
            let (x1, y1) = table[idx];
            y0 + (y1 - y0) * (dbm - x0) / (x1 - x0)
        };
        ma * 1e-3 * self.supply_voltage_v
    }

    /// Energy of the TX burst alone: `e_p · T` (paper Eq. 3), in joules.
    #[inline]
    pub fn tx_energy_j(&self, tp: TxPowerDbm, toa_s: f64) -> f64 {
        debug_assert!(toa_s >= 0.0);
        self.tx_power_w(tp) * toa_s
    }

    /// Energy of one full transmission cycle, in joules: overhead + TX burst
    /// + sleep for the remainder of the reporting interval `interval_s`.
    ///
    /// This is the `E_s` of paper Eq. (2) with the evaluation section's
    /// sleep energy included. If `toa_s >= interval_s` no sleep energy is
    /// charged (the device is saturated).
    pub fn cycle_energy_j(&self, tp: TxPowerDbm, toa_s: f64, interval_s: f64) -> f64 {
        let sleep_s = (interval_s - toa_s).max(0.0);
        self.overhead_energy_j + self.tx_energy_j(tp, toa_s) + self.sleep_power_w() * sleep_s
    }
}

impl Default for RadioEnergyModel {
    fn default() -> Self {
        RadioEnergyModel::sx1276()
    }
}

/// A battery with a fixed energy budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
}

impl Battery {
    /// Creates a battery from a capacity in joules.
    pub fn from_joules(capacity_j: f64) -> Self {
        Battery {
            capacity_j: capacity_j.max(0.0),
        }
    }

    /// Creates a battery from a capacity in mAh at a supply voltage.
    ///
    /// ```
    /// use lora_phy::energy::Battery;
    /// let b = Battery::from_mah(2400.0, 3.3);
    /// assert!((b.capacity_j() - 28512.0).abs() < 1.0);
    /// ```
    pub fn from_mah(mah: f64, voltage_v: f64) -> Self {
        Battery::from_joules(mah * 3.6 * voltage_v)
    }

    /// The total capacity in joules.
    #[inline]
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Lifetime in seconds at a constant average power draw, `None` if the
    /// draw is zero.
    pub fn lifetime_s(&self, average_power_w: f64) -> Option<f64> {
        if average_power_w <= 0.0 {
            None
        } else {
            Some(self.capacity_j / average_power_w)
        }
    }
}

impl Default for Battery {
    /// A 2400 mAh, 3.3 V battery — two AA lithium cells, the usual LoRa
    /// field-node configuration.
    fn default() -> Self {
        Battery::from_mah(2400.0, 3.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_power_interpolates() {
        let m = RadioEnergyModel::sx1276();
        let p2 = m.tx_power_w(TxPowerDbm::new(2.0));
        let p14 = m.tx_power_w(TxPowerDbm::new(14.0));
        assert!((p2 - 0.0792).abs() < 1e-6);
        assert!((p14 - 0.1452).abs() < 1e-6);
        // interpolated midpoint between 12 (39 mA) and 14 (44 mA): 41.5 mA
        let p13 = m.tx_power_w(TxPowerDbm::new(13.0));
        assert!((p13 - 41.5e-3 * 3.3).abs() < 1e-9);
    }

    #[test]
    fn tx_power_clamps_outside_table() {
        let m = RadioEnergyModel::sx1276();
        assert_eq!(
            m.tx_power_w(TxPowerDbm::new(-5.0)),
            m.tx_power_w(TxPowerDbm::new(2.0))
        );
        assert_eq!(
            m.tx_power_w(TxPowerDbm::new(20.0)),
            m.tx_power_w(TxPowerDbm::new(14.0))
        );
    }

    #[test]
    fn cycle_energy_includes_sleep() {
        let m = RadioEnergyModel::sx1276();
        let tp = TxPowerDbm::new(14.0);
        let toa = 0.0709;
        let with_sleep = m.cycle_energy_j(tp, toa, 600.0);
        let without = m.overhead_energy_j() + m.tx_energy_j(tp, toa);
        let sleep = m.sleep_power_w() * (600.0 - toa);
        assert!((with_sleep - without - sleep).abs() < 1e-12);
        // sleep at 99 µW for ~600 s is ~59 mJ and dominates an SF7 cycle
        assert!(sleep > 0.05 && sleep < 0.07);
    }

    #[test]
    fn saturated_device_has_no_sleep_energy() {
        let m = RadioEnergyModel::sx1276();
        let tp = TxPowerDbm::new(14.0);
        let e = m.cycle_energy_j(tp, 2.0, 1.0);
        assert!((e - m.overhead_energy_j() - m.tx_energy_j(tp, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn sf7_vs_sf12_cycle_gap_is_about_4x() {
        // Reproduces the paper's motivating claim (from [5]) that with sleep
        // included the SF7↔SF12 energy gap is on the order of 4×.
        let m = RadioEnergyModel::sx1276();
        let tp = TxPowerDbm::new(14.0);
        let e7 = m.cycle_energy_j(tp, 0.0709, 600.0);
        let e12 = m.cycle_energy_j(tp, 1.8104, 600.0);
        let ratio = e12 / e7;
        assert!((2.5..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn battery_lifetime() {
        let b = Battery::from_joules(1000.0);
        assert_eq!(b.lifetime_s(1.0), Some(1000.0));
        assert_eq!(b.lifetime_s(0.0), None);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_table_panics() {
        let _ = RadioEnergyModel::new(3.3, vec![(4.0, 26.0), (2.0, 24.0)], 1e-6, 0.0);
    }
}
