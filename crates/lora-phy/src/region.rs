//! Regional parameters: channel plans and transmission-power sets.
//!
//! The paper evaluates on eight 125 kHz uplink channels from 902.3 MHz
//! (US915 sub-band 1) with the European-style power set 2..14 dBm; both the
//! US sub-band and the EU868 plan are provided. Per the paper, even in the
//! US a deployment selects only eight uplink channels so that every end
//! device can be heard by all surrounding gateways.

use serde::{Deserialize, Serialize};

use crate::channel::{Bandwidth, Channel};
use crate::error::PhyError;
use crate::power::TxPowerDbm;

/// A LoRaWAN operating region (simplified to what the paper exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// US 915 MHz band, sub-band 1: eight 125 kHz uplink channels starting
    /// at 902.3 MHz with 200 kHz spacing — the paper's evaluation setting.
    Us915Sub1,
    /// EU 868 MHz band: eight 125 kHz uplink channels (the three mandatory
    /// join channels plus five commonly provisioned ones).
    Eu868,
}

impl Region {
    /// The uplink channel plan for this region.
    ///
    /// ```
    /// use lora_phy::Region;
    /// let plan = Region::Us915Sub1.uplink_channels();
    /// assert_eq!(plan.len(), 8);
    /// assert_eq!(plan[0].frequency_hz(), 902_300_000.0);
    /// assert_eq!(plan[7].frequency_hz(), 903_700_000.0);
    /// ```
    pub fn uplink_channels(self) -> Vec<Channel> {
        match self {
            Region::Us915Sub1 => (0..8)
                .map(|i| Channel::new(i, 902_300_000.0 + 200_000.0 * i as f64, Bandwidth::Bw125))
                .collect(),
            Region::Eu868 => {
                let freqs = [
                    868_100_000.0,
                    868_300_000.0,
                    868_500_000.0,
                    867_100_000.0,
                    867_300_000.0,
                    867_500_000.0,
                    867_700_000.0,
                    867_900_000.0,
                ];
                freqs
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| Channel::new(i, f, Bandwidth::Bw125))
                    .collect()
            }
        }
    }

    /// Number of uplink channels (always 8 for the supported regions,
    /// matching constraint C₃ of paper Eq. 1).
    pub fn uplink_channel_count(self) -> usize {
        8
    }

    /// The allocatable transmission-power levels, lowest first.
    ///
    /// Both regions use the paper's 2..14 dBm set in 2 dB steps.
    pub fn tx_power_levels(self) -> Vec<TxPowerDbm> {
        TxPowerDbm::eu_levels()
    }

    /// The regulatory duty-cycle cap (fraction of time a device may occupy
    /// the channel). ETSI limits sub-GHz ISM uplinks to 1 % (paper
    /// Section III-A); the same 1 % is applied to the US simulation for
    /// parity with the paper's setup.
    pub fn duty_cycle_cap(self) -> f64 {
        0.01
    }

    /// The representative carrier frequency used for path-loss computations.
    pub fn carrier_frequency_hz(self) -> f64 {
        match self {
            Region::Us915Sub1 => 903e6,
            Region::Eu868 => 868e6,
        }
    }

    /// Looks up a channel of this region's plan by index.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidChannel`] if `index` is out of range.
    pub fn channel(self, index: usize) -> Result<Channel, PhyError> {
        self.uplink_channels()
            .get(index)
            .copied()
            .ok_or(PhyError::InvalidChannel {
                index,
                plan_len: self.uplink_channel_count(),
            })
    }
}

impl Default for Region {
    /// The paper's evaluation region.
    fn default() -> Self {
        Region::Us915Sub1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_plan_spans_paper_frequencies() {
        // "channel frequency from 902.3 MHz to 903.7 MHz with 125 kHz
        // bandwidth" (Section IV).
        let plan = Region::Us915Sub1.uplink_channels();
        assert_eq!(plan.first().unwrap().frequency_hz(), 902.3e6);
        assert_eq!(plan.last().unwrap().frequency_hz(), 903.7e6);
        assert!(plan.iter().all(|c| c.bandwidth() == Bandwidth::Bw125));
    }

    #[test]
    fn eu_plan_has_eight_distinct_channels() {
        let plan = Region::Eu868.uplink_channels();
        assert_eq!(plan.len(), 8);
        for (i, c) in plan.iter().enumerate() {
            assert_eq!(c.index(), i);
            for other in &plan[i + 1..] {
                assert_ne!(c.frequency_hz(), other.frequency_hz());
            }
        }
    }

    #[test]
    fn channel_lookup_bounds() {
        assert!(Region::Us915Sub1.channel(7).is_ok());
        assert!(matches!(
            Region::Us915Sub1.channel(8),
            Err(PhyError::InvalidChannel {
                index: 8,
                plan_len: 8
            })
        ));
    }

    #[test]
    fn power_levels_and_duty_cycle() {
        for region in [Region::Us915Sub1, Region::Eu868] {
            assert_eq!(region.tx_power_levels().len(), 7);
            assert_eq!(region.duty_cycle_cap(), 0.01);
        }
    }
}
