//! Transmission power and the radiated-vs-consumed power relationship.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dbm_to_mw;
use crate::error::PhyError;

/// A transmission power in dBm.
///
/// The paper's evaluation uses the European-style set 2, 4, …, 14 dBm
/// (Section III-A). The newtype keeps dBm values from being confused with
/// dB gains or milliwatt quantities (C-NEWTYPE).
///
/// ```
/// use lora_phy::TxPowerDbm;
/// let p = TxPowerDbm::new(14.0);
/// assert!((p.milliwatts() - 25.12).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct TxPowerDbm(f64);

impl TxPowerDbm {
    /// The lowest power of the paper's allocation set.
    pub const MIN_EU: TxPowerDbm = TxPowerDbm(2.0);
    /// The highest power of the paper's allocation set (also the EU ERP cap).
    pub const MAX_EU: TxPowerDbm = TxPowerDbm(14.0);

    /// Creates a transmission power from a dBm value.
    ///
    /// # Panics
    ///
    /// Panics if `dbm` is not finite.
    pub fn new(dbm: f64) -> Self {
        assert!(dbm.is_finite(), "transmission power must be finite");
        TxPowerDbm(dbm)
    }

    /// Creates a transmission power, validating it against a permitted range.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::TxPowerOutOfRange`] if `dbm` lies outside
    /// `[min, max]`.
    pub fn checked(dbm: f64, min: f64, max: f64) -> Result<Self, PhyError> {
        if !dbm.is_finite() || dbm < min || dbm > max {
            return Err(PhyError::TxPowerOutOfRange { dbm, min, max });
        }
        Ok(TxPowerDbm(dbm))
    }

    /// The power in dBm.
    #[inline]
    pub fn dbm(self) -> f64 {
        self.0
    }

    /// The radiated power in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        dbm_to_mw(self.0)
    }

    /// The radiated power in watts.
    #[inline]
    pub fn watts(self) -> f64 {
        self.milliwatts() / 1000.0
    }

    /// The paper's allocation set: 2, 4, …, 14 dBm (7 levels, 2 dB steps).
    pub fn eu_levels() -> Vec<TxPowerDbm> {
        (1..=7).map(|i| TxPowerDbm(f64::from(i) * 2.0)).collect()
    }
}

impl fmt::Display for TxPowerDbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dBm", self.0)
    }
}

impl From<TxPowerDbm> for f64 {
    fn from(p: TxPowerDbm) -> f64 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eu_levels_are_the_papers_seven() {
        let levels = TxPowerDbm::eu_levels();
        assert_eq!(levels.len(), 7);
        assert_eq!(levels[0], TxPowerDbm::MIN_EU);
        assert_eq!(levels[6], TxPowerDbm::MAX_EU);
        for w in levels.windows(2) {
            assert!((w[1].dbm() - w[0].dbm() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn checked_rejects_out_of_range() {
        assert!(TxPowerDbm::checked(16.0, 2.0, 14.0).is_err());
        assert!(TxPowerDbm::checked(0.0, 2.0, 14.0).is_err());
        assert!(TxPowerDbm::checked(f64::NAN, 2.0, 14.0).is_err());
        assert!(TxPowerDbm::checked(8.0, 2.0, 14.0).is_ok());
    }

    #[test]
    fn two_dbm_steps_are_1_58x_in_mw() {
        let a = TxPowerDbm::new(2.0).milliwatts();
        let b = TxPowerDbm::new(4.0).milliwatts();
        assert!((b / a - 10f64.powf(0.2)).abs() < 1e-12);
    }
}
