//! Path-loss attenuation models.
//!
//! The paper's Eq. (9) defines the attenuation as
//! `a(d) = (c / (4π f d))^β` — the *whole* Friis ratio raised to the path
//! loss exponent β. Taken literally this model makes a 5 km disc unreachable
//! at β = 4 (NLoS), which contradicts the deployments the paper evaluates;
//! the LoRa-scalability literature the paper builds on (Georgiou & Raza)
//! uses a reference-distance log-distance model instead. Both are provided:
//!
//! * [`PathLossModel::FriisExponent`] — the literal Eq. (9);
//! * [`PathLossModel::LogDistance`] — free-space loss up to a reference
//!   distance `d0`, then `10·β·log10(d/d0)` beyond it (the experiment
//!   default, see DESIGN.md §2.1).
//!
//! Losses are expressed in positive dB; the linear attenuation `a(d)` of the
//! paper equals `10^(−loss_db/10)`.

use serde::{Deserialize, Serialize};

use crate::SPEED_OF_LIGHT_M_S;

/// Free-space path loss in dB at distance `d` metres and frequency `f` Hz:
/// `20·log10(4π d f / c)`.
///
/// ```
/// let l = lora_phy::path_loss::free_space_loss_db(1000.0, 868e6);
/// assert!((l - 91.2).abs() < 0.1);
/// ```
pub fn free_space_loss_db(distance_m: f64, frequency_hz: f64) -> f64 {
    debug_assert!(distance_m > 0.0 && frequency_hz > 0.0);
    20.0 * (4.0 * std::f64::consts::PI * distance_m * frequency_hz / SPEED_OF_LIGHT_M_S).log10()
}

/// The propagation environment of a device↔gateway link.
///
/// Section IV-B of the paper uses β = 2.7 for line-of-sight links and β = 4
/// for non-line-of-sight links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LinkEnvironment {
    /// Line-of-sight propagation.
    #[default]
    LineOfSight,
    /// Non-line-of-sight propagation.
    NonLineOfSight,
}

/// A pair of path-loss exponents, one per [`LinkEnvironment`].
///
/// The paper's Fig. 9 sweeps three profiles: base (2.7/4.0), less path loss
/// (2.4/3.7) and more path loss (3.0/4.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaProfile {
    /// Exponent for line-of-sight links.
    pub los: f64,
    /// Exponent for non-line-of-sight links.
    pub nlos: f64,
}

impl BetaProfile {
    /// The paper's base profile: β = 2.7 (LoS) / 4.0 (NLoS).
    pub const PAPER_BASE: BetaProfile = BetaProfile {
        los: 2.7,
        nlos: 4.0,
    };
    /// The paper's "less path loss" profile: 2.4 / 3.7.
    pub const PAPER_LESS: BetaProfile = BetaProfile {
        los: 2.4,
        nlos: 3.7,
    };
    /// The paper's "more path loss" profile: 3.0 / 4.3.
    pub const PAPER_MORE: BetaProfile = BetaProfile {
        los: 3.0,
        nlos: 4.3,
    };

    /// Creates a profile from explicit exponents.
    pub fn new(los: f64, nlos: f64) -> Self {
        BetaProfile { los, nlos }
    }

    /// A homogeneous profile where both environments share one exponent.
    pub fn uniform(beta: f64) -> Self {
        BetaProfile {
            los: beta,
            nlos: beta,
        }
    }

    /// The exponent for a given environment.
    #[inline]
    pub fn beta(&self, env: LinkEnvironment) -> f64 {
        match env {
            LinkEnvironment::LineOfSight => self.los,
            LinkEnvironment::NonLineOfSight => self.nlos,
        }
    }
}

impl Default for BetaProfile {
    fn default() -> Self {
        BetaProfile::PAPER_BASE
    }
}

/// A deterministic large-scale path-loss model.
///
/// The stochastic (fading) part of the channel lives in
/// [`crate::fading::Fading`]; this type captures only the distance-dependent
/// mean attenuation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLossModel {
    /// The paper's literal Eq. (9): `a(d) = (c/(4πfd))^β`, i.e. a loss of
    /// `β/2 · FSPL(d)` dB where FSPL is the free-space loss.
    FriisExponent {
        /// Carrier frequency in Hz.
        frequency_hz: f64,
    },
    /// Free-space loss up to `reference_m`, then `10·β·log10(d/d0)` beyond
    /// it. This is the standard model of the LoRa literature and the
    /// experiment default.
    LogDistance {
        /// Carrier frequency in Hz.
        frequency_hz: f64,
        /// Reference distance `d0` in metres at which free-space propagation
        /// ends.
        reference_m: f64,
    },
}

impl PathLossModel {
    /// Creates the literal paper Eq. (9) model.
    pub fn friis_exponent(frequency_hz: f64) -> Self {
        PathLossModel::FriisExponent { frequency_hz }
    }

    /// Creates a log-distance model with the given reference distance.
    pub fn log_distance(frequency_hz: f64, reference_m: f64) -> Self {
        PathLossModel::LogDistance {
            frequency_hz,
            reference_m,
        }
    }

    /// The carrier frequency of the model in Hz.
    pub fn frequency_hz(&self) -> f64 {
        match *self {
            PathLossModel::FriisExponent { frequency_hz }
            | PathLossModel::LogDistance { frequency_hz, .. } => frequency_hz,
        }
    }

    /// Path loss in positive dB for a link of `distance_m` metres with path
    /// loss exponent `beta`.
    ///
    /// Distances below 1 m (or below the reference distance for
    /// [`PathLossModel::LogDistance`]) are clamped so the loss never becomes
    /// a gain.
    pub fn loss_db(&self, distance_m: f64, beta: f64) -> f64 {
        debug_assert!(beta > 0.0, "path loss exponent must be positive");
        match *self {
            PathLossModel::FriisExponent { frequency_hz } => {
                let d = distance_m.max(1.0);
                // (c/(4πfd))^β in dB: β/2 · 20·log10(4πfd/c)
                beta / 2.0 * free_space_loss_db(d, frequency_hz)
            }
            PathLossModel::LogDistance {
                frequency_hz,
                reference_m,
            } => {
                let d0 = reference_m.max(1.0);
                let d = distance_m.max(d0);
                free_space_loss_db(d0, frequency_hz) + 10.0 * beta * (d / d0).log10()
            }
        }
    }

    /// The linear attenuation `a(d)` of the paper's Eq. (9): received power
    /// is `p_tx · g · a(d)` with `g` the fading gain.
    pub fn attenuation(&self, distance_m: f64, beta: f64) -> f64 {
        10f64.powf(-self.loss_db(distance_m, beta) / 10.0)
    }
}

impl Default for PathLossModel {
    /// The experiment default: log-distance at 903 MHz with a 40 m
    /// reference distance, calibrated so that with the paper's β profile
    /// (2.7 LoS / 4.0 NLoS) the sensitivity-feasible SF of NLoS devices
    /// spans SF7 (≤ ~2.7 km) to SF12 (≤ ~6.1 km) at 14 dBm across the
    /// paper's 5 km deployment disc (DESIGN.md §2.1).
    fn default() -> Self {
        PathLossModel::log_distance(903e6, 40.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn friis_exponent_beta2_equals_free_space() {
        let m = PathLossModel::friis_exponent(868e6);
        let l = m.loss_db(500.0, 2.0);
        assert!((l - free_space_loss_db(500.0, 868e6)).abs() < 1e-9);
    }

    #[test]
    fn log_distance_continuous_at_reference() {
        let m = PathLossModel::log_distance(903e6, 100.0);
        let at_ref = m.loss_db(100.0, 3.5);
        assert!((at_ref - free_space_loss_db(100.0, 903e6)).abs() < 1e-9);
    }

    #[test]
    fn loss_monotone_in_distance_and_beta() {
        for model in [
            PathLossModel::friis_exponent(903e6),
            PathLossModel::log_distance(903e6, 100.0),
        ] {
            let mut last = 0.0;
            for d in [150.0, 400.0, 1000.0, 2500.0, 5000.0] {
                let l = model.loss_db(d, 3.2);
                assert!(l > last, "{model:?} at {d}: {l}");
                last = l;
            }
            assert!(model.loss_db(1000.0, 4.0) > model.loss_db(1000.0, 2.7));
        }
    }

    #[test]
    fn attenuation_is_inverse_of_loss() {
        let m = PathLossModel::default();
        let a = m.attenuation(2000.0, 3.2);
        assert!((10.0 * a.log10() + m.loss_db(2000.0, 3.2)).abs() < 1e-9);
        assert!(a > 0.0 && a < 1.0);
    }

    #[test]
    fn paper_base_profile_values() {
        let p = BetaProfile::PAPER_BASE;
        assert_eq!(p.beta(LinkEnvironment::LineOfSight), 2.7);
        assert_eq!(p.beta(LinkEnvironment::NonLineOfSight), 4.0);
    }

    #[test]
    fn literal_friis_beta4_is_brutal() {
        // Documents why LogDistance is the experiment default: the literal
        // Eq. (9) at β = 4 loses > 180 dB over 1 km, beyond the ~151 dB
        // maximum LoRa link budget (14 dBm TX − (−137 dBm) sensitivity).
        let m = PathLossModel::friis_exponent(903e6);
        assert!(m.loss_db(1000.0, 4.0) > 180.0);
    }

    #[test]
    fn short_distances_clamp() {
        let m = PathLossModel::log_distance(903e6, 100.0);
        assert_eq!(m.loss_db(1.0, 3.2), m.loss_db(100.0, 3.2));
        let f = PathLossModel::friis_exponent(903e6);
        assert_eq!(f.loss_db(0.1, 3.2), f.loss_db(1.0, 3.2));
    }
}
