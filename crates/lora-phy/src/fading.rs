//! Small-scale fading models.
//!
//! The paper models the channel between an end device and a gateway as
//! Rayleigh fading: the complex gain is circularly-symmetric Gaussian, so
//! the *power* gain `g = |h|²` is exponentially distributed with unit mean
//! (`g ~ Exp(1)`), which is what produces the closed-form PDR of Eq. (10).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A small-scale fading model applied per transmission and per gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Fading {
    /// No fading: the power gain is always exactly 1. Useful for
    /// deterministic unit tests and link-budget reasoning.
    None,
    /// Rayleigh block fading: power gain `g ~ Exp(1)` drawn independently
    /// for every (transmission, gateway) pair.
    #[default]
    Rayleigh,
}

impl Fading {
    /// Draws a power gain for one reception.
    ///
    /// For [`Fading::Rayleigh`] the gain is `−ln(1 − U)` with
    /// `U ~ Uniform[0, 1)`, i.e. a unit-mean exponential.
    ///
    /// ```
    /// use lora_phy::Fading;
    /// use rand::SeedableRng;
    /// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
    /// let g = Fading::Rayleigh.sample_power_gain(&mut rng);
    /// assert!(g > 0.0);
    /// assert_eq!(Fading::None.sample_power_gain(&mut rng), 1.0);
    /// ```
    pub fn sample_power_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Fading::None => 1.0,
            Fading::Rayleigh => {
                let u: f64 = rng.gen();
                // Guard against ln(0); the probability of u == 1.0 is zero
                // but floating point says otherwise.
                -(1.0 - u).max(f64::MIN_POSITIVE).ln()
            }
        }
    }

    /// Probability that the power gain exceeds `threshold` (the survival
    /// function used in the paper's Eq. (10) derivation).
    ///
    /// For [`Fading::None`] this is a hard step; for [`Fading::Rayleigh`]
    /// it is `exp(−threshold)`.
    pub fn survival(&self, threshold: f64) -> f64 {
        match self {
            Fading::None => {
                if threshold <= 1.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Fading::Rayleigh => (-threshold.max(0.0)).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn rayleigh_gain_has_unit_mean() {
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| Fading::Rayleigh.sample_power_gain(&mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn rayleigh_survival_matches_empirical() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let n = 100_000;
        let threshold = 0.7;
        let hits = (0..n)
            .filter(|_| Fading::Rayleigh.sample_power_gain(&mut rng) > threshold)
            .count();
        let empirical = hits as f64 / n as f64;
        let analytic = Fading::Rayleigh.survival(threshold);
        assert!(
            (empirical - analytic).abs() < 0.01,
            "{empirical} vs {analytic}"
        );
    }

    #[test]
    fn none_is_deterministic_unit() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(Fading::None.sample_power_gain(&mut rng), 1.0);
        }
        assert_eq!(Fading::None.survival(0.5), 1.0);
        assert_eq!(Fading::None.survival(1.5), 0.0);
    }

    #[test]
    fn survival_clamps_negative_thresholds() {
        assert_eq!(Fading::Rayleigh.survival(-3.0), 1.0);
    }
}
