//! LoRaWAN data-rate (DR) indices.
//!
//! Regional parameters expose the (SF, BW) pair to applications as a small
//! integer: in both EU868 and the US915 uplink sub-band, DR0 is the
//! slowest (SF12 in EU, SF10 in US) and higher DR means faster. The
//! allocator works in (SF, TP, channel) space; this module provides the
//! mapping a LoRaWAN network server would use to push the result to real
//! devices via `LinkADRReq`.

use serde::{Deserialize, Serialize};

use crate::channel::Bandwidth;
use crate::error::PhyError;
use crate::region::Region;
use crate::sf::SpreadingFactor;

/// A LoRaWAN data-rate index within a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataRate(u8);

impl DataRate {
    /// Creates a data-rate index, validated for the region's uplink table.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidQuantity`] for an index with no uplink
    /// entry in the region.
    pub fn new(region: Region, index: u8) -> Result<Self, PhyError> {
        if usize::from(index) < Self::table(region).len() {
            Ok(DataRate(index))
        } else {
            Err(PhyError::InvalidQuantity {
                what: "data-rate index",
                value: f64::from(index),
            })
        }
    }

    /// The raw index.
    pub fn index(self) -> u8 {
        self.0
    }

    fn table(region: Region) -> &'static [(SpreadingFactor, Bandwidth)] {
        match region {
            // EU868 uplink DR0..DR5: SF12..SF7 at 125 kHz.
            Region::Eu868 => &[
                (SpreadingFactor::Sf12, Bandwidth::Bw125),
                (SpreadingFactor::Sf11, Bandwidth::Bw125),
                (SpreadingFactor::Sf10, Bandwidth::Bw125),
                (SpreadingFactor::Sf9, Bandwidth::Bw125),
                (SpreadingFactor::Sf8, Bandwidth::Bw125),
                (SpreadingFactor::Sf7, Bandwidth::Bw125),
            ],
            // US915 uplink DR0..DR3: SF10..SF7 at 125 kHz (DR4 is
            // SF8/500 kHz and not part of the paper's eight-channel plan).
            Region::Us915Sub1 => &[
                (SpreadingFactor::Sf10, Bandwidth::Bw125),
                (SpreadingFactor::Sf9, Bandwidth::Bw125),
                (SpreadingFactor::Sf8, Bandwidth::Bw125),
                (SpreadingFactor::Sf7, Bandwidth::Bw125),
            ],
        }
    }

    /// The (SF, BW) pair of this index.
    pub fn to_sf_bw(self, region: Region) -> (SpreadingFactor, Bandwidth) {
        Self::table(region)[usize::from(self.0)]
    }

    /// The uplink data rate carrying `sf` at 125 kHz in `region`, or
    /// `None` when the region's table has no such entry (e.g. SF11/SF12
    /// uplinks in US915, which the paper's model still allocates — a real
    /// US deployment would clamp them to DR0).
    pub fn from_sf(region: Region, sf: SpreadingFactor) -> Option<DataRate> {
        Self::table(region)
            .iter()
            .position(|&(s, b)| s == sf && b == Bandwidth::Bw125)
            .map(|i| DataRate(i as u8))
    }

    /// All uplink data rates of the region, slowest first.
    pub fn all(region: Region) -> Vec<DataRate> {
        (0..Self::table(region).len() as u8).map(DataRate).collect()
    }
}

impl std::fmt::Display for DataRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DR{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eu_table_is_the_standard_six() {
        let all = DataRate::all(Region::Eu868);
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].to_sf_bw(Region::Eu868).0, SpreadingFactor::Sf12);
        assert_eq!(all[5].to_sf_bw(Region::Eu868).0, SpreadingFactor::Sf7);
    }

    #[test]
    fn us_table_is_dr0_to_dr3() {
        let all = DataRate::all(Region::Us915Sub1);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].to_sf_bw(Region::Us915Sub1).0, SpreadingFactor::Sf10);
        assert_eq!(all[3].to_sf_bw(Region::Us915Sub1).0, SpreadingFactor::Sf7);
    }

    #[test]
    fn sf_round_trips_where_defined() {
        for region in [Region::Eu868, Region::Us915Sub1] {
            for dr in DataRate::all(region) {
                let (sf, _) = dr.to_sf_bw(region);
                assert_eq!(DataRate::from_sf(region, sf), Some(dr), "{region:?} {dr}");
            }
        }
    }

    #[test]
    fn us_has_no_sf12_uplink() {
        assert_eq!(
            DataRate::from_sf(Region::Us915Sub1, SpreadingFactor::Sf12),
            None
        );
        assert!(DataRate::from_sf(Region::Eu868, SpreadingFactor::Sf12).is_some());
    }

    #[test]
    fn higher_dr_is_faster() {
        for region in [Region::Eu868, Region::Us915Sub1] {
            let all = DataRate::all(region);
            for pair in all.windows(2) {
                let (slow, _) = pair[0].to_sf_bw(region);
                let (fast, _) = pair[1].to_sf_bw(region);
                assert!(fast < slow, "{region:?}: {} then {}", pair[0], pair[1]);
            }
        }
    }

    #[test]
    fn out_of_range_index_rejected() {
        assert!(DataRate::new(Region::Eu868, 6).is_err());
        assert!(DataRate::new(Region::Us915Sub1, 4).is_err());
        assert!(DataRate::new(Region::Eu868, 5).is_ok());
    }
}
