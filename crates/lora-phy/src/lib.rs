//! LoRa physical-layer model.
//!
//! This crate implements the PHY substrate used by the EF-LoRa reproduction
//! of *Towards Energy-Fairness in LoRa Networks* (ICDCS 2019):
//!
//! * [`SpreadingFactor`] — SF7..SF12 with symbol timing, demodulation SNR
//!   thresholds and receiver sensitivities (paper Table IV / Eq. 11),
//! * [`toa`] — time-on-air of a LoRa frame (paper Eq. 4, the Semtech SX127x
//!   formula),
//! * [`path_loss`] — attenuation models, including the paper's literal
//!   Eq. (9) and the log-distance model used for the experiments,
//! * [`fading`] — Rayleigh block fading with `Exp(1)` power gain,
//! * [`link`] — link-budget computations (received power, SNR, minimum
//!   feasible SF),
//! * [`energy`] — the radio energy model following Casals et al. (paper
//!   Eq. 3) including per-cycle sleep energy,
//! * [`region`] — regional channel plans and transmission-power sets.
//!
//! # Example
//!
//! Compute how long a 21-byte PHY payload stays on air at SF12/125 kHz and
//! what the link budget looks like 2 km from a gateway:
//!
//! ```
//! use lora_phy::{Bandwidth, CodingRate, SpreadingFactor};
//! use lora_phy::toa::ToaParams;
//! use lora_phy::path_loss::PathLossModel;
//! use lora_phy::link::{noise_floor_dbm, received_power_dbm};
//!
//! # fn main() -> Result<(), lora_phy::PhyError> {
//! let toa = ToaParams::new(SpreadingFactor::Sf12, Bandwidth::Bw125, CodingRate::Cr4_7)
//!     .time_on_air(21)?;
//! assert!(toa.as_secs_f64() > 1.0, "SF12 frames are in the air for seconds");
//!
//! let model = PathLossModel::log_distance(903e6, 100.0);
//! let loss = model.loss_db(2_000.0, 3.2);
//! let rx = received_power_dbm(14.0, loss, 1.0);
//! let snr = rx - noise_floor_dbm(Bandwidth::Bw125, 6.0);
//! assert!(snr > SpreadingFactor::Sf12.snr_threshold_db());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod channel;
pub mod codec;
pub mod datarate;
pub mod energy;
pub mod error;
pub mod fading;
pub mod link;
pub mod path_loss;
pub mod power;
pub mod region;
pub mod sf;
pub mod toa;
pub mod txconfig;

pub use channel::{Bandwidth, Channel};
pub use datarate::DataRate;
pub use error::PhyError;
pub use fading::Fading;
pub use power::TxPowerDbm;
pub use region::Region;
pub use sf::SpreadingFactor;
pub use toa::{CodingRate, ToaLut};
pub use txconfig::TxConfig;

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT_M_S: f64 = 299_792_458.0;

/// Thermal noise density at 290 K, dBm per Hz (the `-174` of paper Eq. 11).
pub const THERMAL_NOISE_DBM_HZ: f64 = -174.0;

/// Converts a power in dBm to milliwatts.
///
/// ```
/// assert!((lora_phy::dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
/// assert!((lora_phy::dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
/// ```
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts a power in milliwatts to dBm.
///
/// # Panics
///
/// Panics in debug builds if `mw` is not strictly positive; a zero or
/// negative power has no dBm representation.
///
/// ```
/// assert!((lora_phy::mw_to_dbm(1.0)).abs() < 1e-12);
/// ```
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    debug_assert!(mw > 0.0, "power must be positive to convert to dBm");
    10.0 * mw.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_mw_round_trip() {
        for dbm in [-137.0, -60.0, 0.0, 2.0, 14.0, 27.0] {
            let back = mw_to_dbm(dbm_to_mw(dbm));
            assert!((back - dbm).abs() < 1e-9, "{dbm} -> {back}");
        }
    }

    #[test]
    fn fourteen_dbm_is_about_25_mw() {
        let mw = dbm_to_mw(14.0);
        assert!((mw - 25.118_864).abs() < 1e-3);
    }
}
