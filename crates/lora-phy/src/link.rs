//! Link-budget computations.
//!
//! A gateway decodes an uplink packet when two conditions hold (paper
//! Eq. 7): the received power exceeds the gateway sensitivity for the
//! packet's SF, and the SNR (or SINR, with interference) exceeds the SF's
//! demodulation threshold.

use crate::channel::Bandwidth;
use crate::sf::SpreadingFactor;
use crate::THERMAL_NOISE_DBM_HZ;

/// Noise floor in dBm for a receiver of bandwidth `bw` and noise figure
/// `nf_db` (the first two terms of paper Eq. 11).
///
/// ```
/// use lora_phy::{Bandwidth, link::noise_floor_dbm};
/// let n = noise_floor_dbm(Bandwidth::Bw125, 6.0);
/// assert!((n - -117.03).abs() < 0.01);
/// ```
#[inline]
pub fn noise_floor_dbm(bw: Bandwidth, nf_db: f64) -> f64 {
    THERMAL_NOISE_DBM_HZ + 10.0 * bw.hz().log10() + nf_db
}

/// Received power in dBm given transmit power, a positive path loss in dB
/// and a linear fading power gain.
///
/// ```
/// use lora_phy::link::received_power_dbm;
/// assert_eq!(received_power_dbm(14.0, 120.0, 1.0), -106.0);
/// ```
#[inline]
pub fn received_power_dbm(tx_dbm: f64, loss_db: f64, fading_gain: f64) -> f64 {
    debug_assert!(fading_gain > 0.0, "fading power gain must be positive");
    tx_dbm - loss_db + 10.0 * fading_gain.log10()
}

/// Signal-to-noise ratio in dB for a given received power and noise floor.
#[inline]
pub fn snr_db(rx_dbm: f64, noise_floor_dbm: f64) -> f64 {
    rx_dbm - noise_floor_dbm
}

/// Whether a gateway can decode a packet **in the absence of interference**:
/// both the sensitivity condition and the SNR-threshold condition of paper
/// Eq. (7) with the mean channel (no fading).
pub fn decodable_without_interference(
    sf: SpreadingFactor,
    bw: Bandwidth,
    nf_db: f64,
    rx_dbm: f64,
) -> bool {
    let sens = sf.sensitivity_dbm(bw, nf_db);
    let snr = snr_db(rx_dbm, noise_floor_dbm(bw, nf_db));
    rx_dbm >= sens && snr >= sf.snr_threshold_db()
}

/// The smallest spreading factor whose sensitivity is met by `rx_dbm`
/// (mean channel, margin `margin_db` of extra headroom), or `None` if even
/// SF12 cannot close the link.
///
/// This is the per-gateway building block of the legacy-LoRa baseline,
/// which picks the smallest SF based on estimated SNR while ignoring
/// interference (paper Section IV, "Benchmarks").
///
/// ```
/// use lora_phy::{Bandwidth, SpreadingFactor};
/// use lora_phy::link::min_feasible_sf;
/// // −120 dBm received: SF7 needs −123 dBm so it already works.
/// assert_eq!(
///     min_feasible_sf(-120.0, Bandwidth::Bw125, 6.0, 0.0),
///     Some(SpreadingFactor::Sf7)
/// );
/// // −136 dBm: only SF12 (−137 dBm) closes the link.
/// assert_eq!(
///     min_feasible_sf(-136.0, Bandwidth::Bw125, 6.0, 0.0),
///     Some(SpreadingFactor::Sf12)
/// );
/// // −140 dBm: unreachable.
/// assert_eq!(min_feasible_sf(-140.0, Bandwidth::Bw125, 6.0, 0.0), None);
/// ```
pub fn min_feasible_sf(
    rx_dbm: f64,
    bw: Bandwidth,
    nf_db: f64,
    margin_db: f64,
) -> Option<SpreadingFactor> {
    SpreadingFactor::ALL
        .into_iter()
        .find(|sf| rx_dbm >= sf.sensitivity_dbm(bw, nf_db) + margin_db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_floor_at_125k_nf6() {
        // −174 + 50.97 + 6 = −117.03 dBm
        assert!((noise_floor_dbm(Bandwidth::Bw125, 6.0) + 117.03).abs() < 0.01);
    }

    #[test]
    fn fading_gain_shifts_rx_power() {
        let no_fade = received_power_dbm(14.0, 100.0, 1.0);
        let deep_fade = received_power_dbm(14.0, 100.0, 0.1);
        assert!((no_fade - deep_fade - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_implies_snr_threshold() {
        // By Eq. (11) sensitivity == noise floor + SNR threshold, so meeting
        // the sensitivity exactly meets the SNR threshold too.
        for sf in SpreadingFactor::ALL {
            let sens = sf.sensitivity_dbm(Bandwidth::Bw125, 6.0);
            assert!(decodable_without_interference(
                sf,
                Bandwidth::Bw125,
                6.0,
                sens
            ));
            assert!(!decodable_without_interference(
                sf,
                Bandwidth::Bw125,
                6.0,
                sens - 0.1
            ));
        }
    }

    #[test]
    fn min_feasible_sf_is_monotone_in_rx_power() {
        let mut last = Some(SpreadingFactor::Sf12);
        for rx in [-137.0, -133.0, -130.0, -127.0, -124.0, -120.0] {
            let sf = min_feasible_sf(rx, Bandwidth::Bw125, 6.0, 0.0);
            assert!(sf.is_some());
            assert!(sf <= last, "rx {rx}: {sf:?} vs {last:?}");
            last = sf;
        }
    }

    #[test]
    fn margin_makes_selection_conservative() {
        // −124 dBm barely fits SF7 (−123) — with a 3 dB margin it needs SF8.
        let tight = min_feasible_sf(-122.5, Bandwidth::Bw125, 6.0, 0.0);
        let safe = min_feasible_sf(-122.5, Bandwidth::Bw125, 6.0, 3.0);
        assert_eq!(tight, Some(SpreadingFactor::Sf7));
        assert_eq!(safe, Some(SpreadingFactor::Sf8));
    }
}
