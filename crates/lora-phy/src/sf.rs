//! Spreading factors and their PHY characteristics.
//!
//! A LoRa symbol is a chirp of `2^SF` chips that encodes `SF` bits. Larger
//! spreading factors trade data rate for processing gain: the symbol lasts
//! longer (`2^SF / BW`), the receiver can demodulate further below the noise
//! floor, and the communication range grows (paper Section III-A).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::channel::Bandwidth;
use crate::error::PhyError;
use crate::THERMAL_NOISE_DBM_HZ;

/// Default receiver noise figure in dB used throughout the paper's
/// evaluation; with `NF = 6` the sensitivity formula of Eq. (11) reproduces
/// paper Table IV exactly.
pub const DEFAULT_NOISE_FIGURE_DB: f64 = 6.0;

/// A LoRa spreading factor, SF7 through SF12.
///
/// The numeric value is the number of information bits carried per chirp.
///
/// ```
/// use lora_phy::SpreadingFactor;
/// let sf = SpreadingFactor::Sf9;
/// assert_eq!(sf.bits_per_symbol(), 9);
/// assert_eq!(sf.chips_per_symbol(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SpreadingFactor {
    /// SF7 — highest data rate, shortest range.
    Sf7 = 7,
    /// SF8.
    Sf8 = 8,
    /// SF9.
    Sf9 = 9,
    /// SF10.
    Sf10 = 10,
    /// SF11.
    Sf11 = 11,
    /// SF12 — lowest data rate, longest range.
    Sf12 = 12,
}

impl SpreadingFactor {
    /// All spreading factors in increasing order, `[SF7, .., SF12]`.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// Number of available spreading factors.
    pub const COUNT: usize = 6;

    /// Creates a spreading factor from its numeric value.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidSpreadingFactor`] if `value` is outside
    /// `7..=12`.
    ///
    /// ```
    /// use lora_phy::SpreadingFactor;
    /// assert_eq!(SpreadingFactor::from_u8(10)?, SpreadingFactor::Sf10);
    /// assert!(SpreadingFactor::from_u8(6).is_err());
    /// # Ok::<(), lora_phy::PhyError>(())
    /// ```
    pub fn from_u8(value: u8) -> Result<Self, PhyError> {
        match value {
            7 => Ok(SpreadingFactor::Sf7),
            8 => Ok(SpreadingFactor::Sf8),
            9 => Ok(SpreadingFactor::Sf9),
            10 => Ok(SpreadingFactor::Sf10),
            11 => Ok(SpreadingFactor::Sf11),
            12 => Ok(SpreadingFactor::Sf12),
            other => Err(PhyError::InvalidSpreadingFactor(other)),
        }
    }

    /// The number of information bits per chirp symbol (the SF itself).
    #[inline]
    pub fn bits_per_symbol(self) -> u8 {
        self as u8
    }

    /// The number of chips in one symbol, `2^SF`.
    #[inline]
    pub fn chips_per_symbol(self) -> u32 {
        1u32 << (self as u8)
    }

    /// Duration of one symbol in seconds, `2^SF / BW` (paper Section III-A).
    ///
    /// ```
    /// use lora_phy::{Bandwidth, SpreadingFactor};
    /// let t = SpreadingFactor::Sf7.symbol_time_s(Bandwidth::Bw125);
    /// assert!((t - 1.024e-3).abs() < 1e-9);
    /// ```
    #[inline]
    pub fn symbol_time_s(self, bw: Bandwidth) -> f64 {
        f64::from(self.chips_per_symbol()) / bw.hz()
    }

    /// Raw bit rate in bits per second, `SF · BW / 2^SF`.
    ///
    /// (Before coding overhead; the paper quotes 5.47 kbps for SF7 and
    /// 0.25 kbps for SF12 at 125 kHz after 4/5 coding.)
    #[inline]
    pub fn raw_bit_rate_bps(self, bw: Bandwidth) -> f64 {
        f64::from(self.bits_per_symbol()) / self.symbol_time_s(bw)
    }

    /// Minimum SNR in dB at which a gateway demodulates this SF
    /// (paper Table IV).
    ///
    /// ```
    /// use lora_phy::SpreadingFactor;
    /// assert_eq!(SpreadingFactor::Sf7.snr_threshold_db(), -6.0);
    /// assert_eq!(SpreadingFactor::Sf12.snr_threshold_db(), -20.0);
    /// ```
    #[inline]
    pub fn snr_threshold_db(self) -> f64 {
        match self {
            SpreadingFactor::Sf7 => -6.0,
            SpreadingFactor::Sf8 => -9.0,
            SpreadingFactor::Sf9 => -12.0,
            SpreadingFactor::Sf10 => -15.0,
            SpreadingFactor::Sf11 => -17.5,
            SpreadingFactor::Sf12 => -20.0,
        }
    }

    /// Receiver sensitivity in dBm for the given bandwidth and noise figure
    /// (paper Eq. 11): `-174 + 10·log10(BW) + NF + th_SF`.
    ///
    /// With `BW = 125 kHz` and `NF = 6 dB` this reproduces paper Table IV:
    ///
    /// ```
    /// use lora_phy::{Bandwidth, SpreadingFactor};
    /// use lora_phy::sf::DEFAULT_NOISE_FIGURE_DB;
    /// let s = SpreadingFactor::Sf12.sensitivity_dbm(Bandwidth::Bw125, DEFAULT_NOISE_FIGURE_DB);
    /// assert!((s - -137.0).abs() < 0.05);
    /// ```
    #[inline]
    pub fn sensitivity_dbm(self, bw: Bandwidth, noise_figure_db: f64) -> f64 {
        THERMAL_NOISE_DBM_HZ + 10.0 * bw.hz().log10() + noise_figure_db + self.snr_threshold_db()
    }

    /// The next larger spreading factor, or `None` for SF12.
    #[inline]
    pub fn slower(self) -> Option<SpreadingFactor> {
        SpreadingFactor::from_u8(self as u8 + 1).ok()
    }

    /// The next smaller spreading factor, or `None` for SF7.
    #[inline]
    pub fn faster(self) -> Option<SpreadingFactor> {
        match self {
            SpreadingFactor::Sf7 => None,
            other => SpreadingFactor::from_u8(other as u8 - 1).ok(),
        }
    }

    /// Zero-based index of this SF (SF7 → 0 .. SF12 → 5), convenient for
    /// array-backed tables.
    #[inline]
    pub fn index(self) -> usize {
        (self as u8 - 7) as usize
    }
}

impl Default for SpreadingFactor {
    /// SF7, the "best case" factor that allocation strategies start from.
    fn default() -> Self {
        SpreadingFactor::Sf7
    }
}

impl fmt::Display for SpreadingFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SF{}", *self as u8)
    }
}

impl From<SpreadingFactor> for u8 {
    fn from(sf: SpreadingFactor) -> u8 {
        sf as u8
    }
}

impl TryFrom<u8> for SpreadingFactor {
    type Error = PhyError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        SpreadingFactor::from_u8(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_sensitivities_at_bw125_nf6() {
        let expected = [-123.0, -126.0, -129.0, -132.0, -134.5, -137.0];
        for (sf, want) in SpreadingFactor::ALL.iter().zip(expected) {
            let got = sf.sensitivity_dbm(Bandwidth::Bw125, DEFAULT_NOISE_FIGURE_DB);
            // 10*log10(125000) = 50.969 so the table is rounded to .0/.5;
            // allow the rounding slack.
            assert!((got - want).abs() < 0.05, "{sf}: got {got}, want {want}");
        }
    }

    #[test]
    fn symbol_time_doubles_per_sf_step() {
        for sf in SpreadingFactor::ALL.iter().take(5) {
            let next = sf.slower().unwrap();
            let ratio = next.symbol_time_s(Bandwidth::Bw125) / sf.symbol_time_s(Bandwidth::Bw125);
            assert!((ratio - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_quoted_data_rates() {
        // Paper intro: SF7 -> 5.47 kbps, SF12 -> 0.25 kbps at 125 kHz
        // (those figures include 4/5 coding: raw * 4/5).
        let sf7 = SpreadingFactor::Sf7.raw_bit_rate_bps(Bandwidth::Bw125) * 4.0 / 5.0;
        let sf12 = SpreadingFactor::Sf12.raw_bit_rate_bps(Bandwidth::Bw125) * 4.0 / 5.0;
        assert!((sf7 - 5468.75).abs() < 1.0, "sf7: {sf7}");
        assert!((sf12 - 292.97).abs() < 60.0, "sf12: {sf12}");
    }

    #[test]
    fn round_trip_u8() {
        for sf in SpreadingFactor::ALL {
            assert_eq!(SpreadingFactor::from_u8(sf.into()).unwrap(), sf);
        }
    }

    #[test]
    fn faster_slower_are_inverses() {
        for sf in SpreadingFactor::ALL.iter().skip(1) {
            assert_eq!(sf.faster().unwrap().slower().unwrap(), *sf);
        }
        assert_eq!(SpreadingFactor::Sf7.faster(), None);
        assert_eq!(SpreadingFactor::Sf12.slower(), None);
    }

    #[test]
    fn index_is_dense() {
        for (i, sf) in SpreadingFactor::ALL.iter().enumerate() {
            assert_eq!(sf.index(), i);
        }
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(SpreadingFactor::Sf7 < SpreadingFactor::Sf12);
        assert!(SpreadingFactor::Sf9 < SpreadingFactor::Sf10);
    }
}
