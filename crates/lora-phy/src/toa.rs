//! Time-on-air of a LoRa frame.
//!
//! Implements the paper's Eq. (4), which matches the Semtech SX127x design
//! guide formula with the 8 base payload symbols folded into the preamble
//! term (20.25 = 12.25 preamble + 8 base payload symbols):
//!
//! ```text
//! T = (20.25 + max(ceil((8L − 4·SF + 28 + 16) / (4(SF − 2·DE))) · CR, 0)) · 2^SF / BW
//! ```
//!
//! where `L` is the PHY payload length in bytes, `CR ∈ 5..=8` the coding-rate
//! denominator, and `DE = 1` when the low-data-rate optimisation is enabled
//! (SF11/SF12 at 125 kHz).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::channel::Bandwidth;
use crate::error::PhyError;
use crate::sf::SpreadingFactor;

/// Maximum LoRa PHY payload length in bytes.
pub const MAX_PHY_PAYLOAD: usize = 255;

/// Number of programmed preamble symbols used by LoRaWAN (the radio adds
/// 4.25 symbols of sync word on top).
pub const LORAWAN_PREAMBLE_SYMBOLS: u32 = 8;

/// Hamming coding rate of the LoRa payload.
///
/// `4/x`: four information bits plus `x − 4` redundancy bits. The paper uses
/// 4/7 throughout (single-bit correction without the extra redundancy of
/// 4/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodingRate {
    /// 4/5 — no error correction, least overhead.
    Cr4_5,
    /// 4/6.
    Cr4_6,
    /// 4/7 — corrects one bit error per codeword (the paper's choice).
    Cr4_7,
    /// 4/8 — corrects one bit error, detects two.
    Cr4_8,
}

impl CodingRate {
    /// The codeword length (the paper's `CR` multiplier, 5..=8).
    #[inline]
    pub fn denominator(self) -> u32 {
        match self {
            CodingRate::Cr4_5 => 5,
            CodingRate::Cr4_6 => 6,
            CodingRate::Cr4_7 => 7,
            CodingRate::Cr4_8 => 8,
        }
    }

    /// The code rate as a fraction (information bits / coded bits).
    #[inline]
    pub fn rate(self) -> f64 {
        4.0 / f64::from(self.denominator())
    }
}

impl Default for CodingRate {
    /// 4/7, the paper's choice.
    fn default() -> Self {
        CodingRate::Cr4_7
    }
}

/// Whether the low-data-rate optimisation (DE bit) is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LowDataRateOptimize {
    /// Let the implementation choose: enabled for SF11/SF12 at 125 kHz,
    /// as mandated by the LoRaWAN regional parameters.
    #[default]
    Auto,
    /// Force-enable.
    Enabled,
    /// Force-disable.
    Disabled,
}

/// Parameters needed to compute the time-on-air of a frame.
///
/// ```
/// use lora_phy::{Bandwidth, CodingRate, SpreadingFactor};
/// use lora_phy::toa::ToaParams;
///
/// # fn main() -> Result<(), lora_phy::PhyError> {
/// let params = ToaParams::new(SpreadingFactor::Sf7, Bandwidth::Bw125, CodingRate::Cr4_7);
/// let t = params.time_on_air(21)?;
/// // 21-byte PHY payload at SF7/125k, CR 4/7: 69.25 symbols of 1.024 ms.
/// assert!((t.as_secs_f64() - 0.070912).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToaParams {
    sf: SpreadingFactor,
    bw: Bandwidth,
    cr: CodingRate,
    preamble_symbols: u32,
    low_data_rate: LowDataRateOptimize,
}

impl ToaParams {
    /// Creates parameters with the LoRaWAN default preamble (8 symbols) and
    /// automatic low-data-rate optimisation.
    pub fn new(sf: SpreadingFactor, bw: Bandwidth, cr: CodingRate) -> Self {
        ToaParams {
            sf,
            bw,
            cr,
            preamble_symbols: LORAWAN_PREAMBLE_SYMBOLS,
            low_data_rate: LowDataRateOptimize::Auto,
        }
    }

    /// Sets the number of programmed preamble symbols.
    #[must_use]
    pub fn with_preamble_symbols(mut self, symbols: u32) -> Self {
        self.preamble_symbols = symbols;
        self
    }

    /// Sets the low-data-rate optimisation policy.
    #[must_use]
    pub fn with_low_data_rate(mut self, ldro: LowDataRateOptimize) -> Self {
        self.low_data_rate = ldro;
        self
    }

    /// The spreading factor.
    #[inline]
    pub fn sf(&self) -> SpreadingFactor {
        self.sf
    }

    /// The bandwidth.
    #[inline]
    pub fn bw(&self) -> Bandwidth {
        self.bw
    }

    /// The coding rate.
    #[inline]
    pub fn cr(&self) -> CodingRate {
        self.cr
    }

    /// Whether the DE bit ends up set for these parameters.
    ///
    /// `Auto` enables it for SF11/SF12 at 125 kHz, where the symbol time
    /// exceeds 16 ms and crystal drift would otherwise break demodulation.
    pub fn low_data_rate_enabled(&self) -> bool {
        match self.low_data_rate {
            LowDataRateOptimize::Enabled => true,
            LowDataRateOptimize::Disabled => false,
            LowDataRateOptimize::Auto => {
                self.bw == Bandwidth::Bw125 && self.sf >= SpreadingFactor::Sf11
            }
        }
    }

    /// Number of payload symbols for a `payload_len`-byte PHY payload
    /// (including the 8 base symbols), per the paper's Eq. (4) with explicit
    /// header and CRC on.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::PayloadTooLarge`] if `payload_len` exceeds
    /// [`MAX_PHY_PAYLOAD`].
    pub fn payload_symbols(&self, payload_len: usize) -> Result<u32, PhyError> {
        if payload_len > MAX_PHY_PAYLOAD {
            return Err(PhyError::PayloadTooLarge {
                len: payload_len,
                max: MAX_PHY_PAYLOAD,
            });
        }
        let de = if self.low_data_rate_enabled() {
            1i64
        } else {
            0
        };
        let sf = i64::from(self.sf.bits_per_symbol());
        // 8L − 4SF + 28 + 16: payload bits minus the bits absorbed by the
        // first (uncoded) symbols, plus header (28) and CRC (16) bits.
        let numerator = 8 * payload_len as i64 - 4 * sf + 28 + 16;
        let denominator = 4 * (sf - 2 * de);
        let blocks = if numerator > 0 {
            // ceil division for positive numerator
            (numerator + denominator - 1) / denominator
        } else {
            0
        };
        let coded = blocks.max(0) as u32 * self.cr.denominator();
        Ok(8 + coded)
    }

    /// Total number of symbols in the frame, including the preamble
    /// (`preamble_symbols + 4.25` sync symbols).
    pub fn total_symbols(&self, payload_len: usize) -> Result<f64, PhyError> {
        Ok(f64::from(self.preamble_symbols) + 4.25 + f64::from(self.payload_symbols(payload_len)?))
    }

    /// Time-on-air of a frame with a `payload_len`-byte PHY payload.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::PayloadTooLarge`] if the payload exceeds
    /// [`MAX_PHY_PAYLOAD`].
    pub fn time_on_air(&self, payload_len: usize) -> Result<Duration, PhyError> {
        let seconds = self.total_symbols(payload_len)? * self.sf.symbol_time_s(self.bw);
        Ok(Duration::from_secs_f64(seconds))
    }

    /// Time-on-air in seconds as `f64`, convenient for analytical models.
    pub fn time_on_air_s(&self, payload_len: usize) -> Result<f64, PhyError> {
        Ok(self.time_on_air(payload_len)?.as_secs_f64())
    }
}

/// Precomputed time-on-air lookup table over the full
/// `(spreading factor, payload length)` grid for one
/// `(bandwidth, coding rate)` pair, using the LoRaWAN defaults of
/// [`ToaParams::new`] (8-symbol preamble, automatic low-data-rate
/// optimisation).
///
/// Time-on-air is a pure function of `(SF, BW, CR, payload)`; hot paths
/// that evaluate it per device or per candidate — simulator construction,
/// the analytical model, the conformance oracles — recompute the same
/// handful of values thousands of times. The table holds every value
/// (6 SFs × 256 payload lengths = 12 KiB) and answers in one indexed
/// load, bit-identical to [`ToaParams::time_on_air_s`] because each
/// entry *is* that function's result.
///
/// ```
/// use lora_phy::{Bandwidth, CodingRate, SpreadingFactor};
/// use lora_phy::toa::{ToaLut, ToaParams};
///
/// # fn main() -> Result<(), lora_phy::PhyError> {
/// let lut = ToaLut::new(Bandwidth::Bw125, CodingRate::Cr4_7);
/// let raw = ToaParams::new(SpreadingFactor::Sf9, Bandwidth::Bw125, CodingRate::Cr4_7)
///     .time_on_air_s(21)?;
/// assert_eq!(lut.time_on_air_s(SpreadingFactor::Sf9, 21)?.to_bits(), raw.to_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ToaLut {
    bw: Bandwidth,
    cr: CodingRate,
    /// `toa_s[sf.index()][payload_len]`, seconds.
    toa_s: Box<[[f64; MAX_PHY_PAYLOAD + 1]; 6]>,
}

impl ToaLut {
    /// Builds the table for one `(bandwidth, coding rate)` pair by
    /// evaluating [`ToaParams::time_on_air_s`] over the full grid.
    pub fn new(bw: Bandwidth, cr: CodingRate) -> Self {
        let mut toa_s = Box::new([[0.0; MAX_PHY_PAYLOAD + 1]; 6]);
        for sf in SpreadingFactor::ALL {
            let params = ToaParams::new(sf, bw, cr);
            for (len, slot) in toa_s[sf.index()].iter_mut().enumerate() {
                *slot = params
                    .time_on_air_s(len)
                    .expect("every payload length in 0..=MAX_PHY_PAYLOAD is valid");
            }
        }
        ToaLut { bw, cr, toa_s }
    }

    /// The bandwidth the table was built for.
    #[inline]
    pub fn bw(&self) -> Bandwidth {
        self.bw
    }

    /// The coding rate the table was built for.
    #[inline]
    pub fn cr(&self) -> CodingRate {
        self.cr
    }

    /// Time-on-air in seconds — one table load, bit-identical to the
    /// uncached [`ToaParams::time_on_air_s`].
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::PayloadTooLarge`] if the payload exceeds
    /// [`MAX_PHY_PAYLOAD`].
    #[inline]
    pub fn time_on_air_s(&self, sf: SpreadingFactor, payload_len: usize) -> Result<f64, PhyError> {
        if payload_len > MAX_PHY_PAYLOAD {
            return Err(PhyError::PayloadTooLarge {
                len: payload_len,
                max: MAX_PHY_PAYLOAD,
            });
        }
        Ok(self.toa_s[sf.index()][payload_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toa_ms(sf: SpreadingFactor, len: usize) -> f64 {
        ToaParams::new(sf, Bandwidth::Bw125, CodingRate::Cr4_7)
            .time_on_air_s(len)
            .unwrap()
            * 1000.0
    }

    #[test]
    fn paper_eq4_sf7_21_bytes() {
        // (20.25 + ceil((168−28+44)/28)·7) · 1.024 ms = (20.25 + 49) · 1.024
        assert!((toa_ms(SpreadingFactor::Sf7, 21) - 70.912).abs() < 1e-6);
    }

    #[test]
    fn paper_eq4_sf12_21_bytes_with_ldro() {
        // DE=1: denominator 4(12−2)=40; (168−48+44)=164 → ceil=5 → 35 coded
        // symbols; (20.25 + 35) · 32.768 ms = 1810.432 ms
        assert!((toa_ms(SpreadingFactor::Sf12, 21) - 1810.432).abs() < 1e-3);
    }

    #[test]
    fn ldro_auto_only_sf11_sf12_at_125k() {
        for sf in SpreadingFactor::ALL {
            let p = ToaParams::new(sf, Bandwidth::Bw125, CodingRate::Cr4_7);
            assert_eq!(
                p.low_data_rate_enabled(),
                sf >= SpreadingFactor::Sf11,
                "{sf}"
            );
            let p500 = ToaParams::new(sf, Bandwidth::Bw500, CodingRate::Cr4_7);
            assert!(!p500.low_data_rate_enabled(), "{sf} at 500 kHz");
        }
    }

    #[test]
    fn empty_payload_still_has_base_symbols() {
        let p = ToaParams::new(SpreadingFactor::Sf7, Bandwidth::Bw125, CodingRate::Cr4_7);
        // numerator = −4·7+44 = 16 > 0 → one coded block
        assert_eq!(p.payload_symbols(0).unwrap(), 8 + 7);
    }

    #[test]
    fn payload_too_large_is_rejected() {
        let p = ToaParams::new(SpreadingFactor::Sf7, Bandwidth::Bw125, CodingRate::Cr4_7);
        assert!(matches!(
            p.time_on_air(256),
            Err(PhyError::PayloadTooLarge { .. })
        ));
        assert!(p.time_on_air(255).is_ok());
    }

    #[test]
    fn toa_monotone_in_sf() {
        let mut last = 0.0;
        for sf in SpreadingFactor::ALL {
            let t = toa_ms(sf, 21);
            assert!(t > last, "{sf}: {t} <= {last}");
            last = t;
        }
    }

    #[test]
    fn toa_monotone_in_payload() {
        let p = ToaParams::new(SpreadingFactor::Sf9, Bandwidth::Bw125, CodingRate::Cr4_7);
        let mut last = 0.0;
        for len in 0..=255 {
            let t = p.time_on_air_s(len).unwrap();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn higher_coding_rate_is_slower() {
        let base = ToaParams::new(SpreadingFactor::Sf8, Bandwidth::Bw125, CodingRate::Cr4_5)
            .time_on_air_s(32)
            .unwrap();
        let robust = ToaParams::new(SpreadingFactor::Sf8, Bandwidth::Bw125, CodingRate::Cr4_8)
            .time_on_air_s(32)
            .unwrap();
        assert!(robust > base);
    }

    #[test]
    fn sf7_to_sf12_gap_is_large() {
        // The intro's "22x" gap for 100-byte frames (they quote 146 ms vs
        // 3200 ms with slightly different settings; the ratio is what
        // matters).
        let fast = toa_ms(SpreadingFactor::Sf7, 100);
        let slow = toa_ms(SpreadingFactor::Sf12, 100);
        let ratio = slow / fast;
        assert!((15.0..30.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn lut_is_bit_identical_to_uncached_over_full_grid() {
        for bw in [Bandwidth::Bw125, Bandwidth::Bw250, Bandwidth::Bw500] {
            let lut = ToaLut::new(bw, CodingRate::Cr4_7);
            let mut checked = 0usize;
            for sf in SpreadingFactor::ALL {
                let params = ToaParams::new(sf, bw, CodingRate::Cr4_7);
                for len in 0..=MAX_PHY_PAYLOAD {
                    let raw = params.time_on_air_s(len).unwrap();
                    let cached = lut.time_on_air_s(sf, len).unwrap();
                    assert_eq!(raw.to_bits(), cached.to_bits(), "{sf} len={len}");
                    checked += 1;
                }
            }
            assert_eq!(checked, 6 * (MAX_PHY_PAYLOAD + 1));
        }
    }

    #[test]
    fn lut_rejects_oversize_payloads() {
        let lut = ToaLut::new(Bandwidth::Bw125, CodingRate::Cr4_7);
        assert!(matches!(
            lut.time_on_air_s(SpreadingFactor::Sf7, 256),
            Err(PhyError::PayloadTooLarge { .. })
        ));
        assert_eq!(lut.bw(), Bandwidth::Bw125);
        assert_eq!(lut.cr(), CodingRate::Cr4_7);
    }

    #[test]
    fn doubling_bandwidth_halves_toa() {
        let p125 = ToaParams::new(SpreadingFactor::Sf9, Bandwidth::Bw125, CodingRate::Cr4_7);
        let p250 = ToaParams::new(SpreadingFactor::Sf9, Bandwidth::Bw250, CodingRate::Cr4_7);
        let r = p125.time_on_air_s(21).unwrap() / p250.time_on_air_s(21).unwrap();
        assert!((r - 2.0).abs() < 1e-12);
    }
}
