//! The LoRa payload forward-error-correction codec.
//!
//! LoRa protects payload bits with shortened Hamming codes selected by the
//! coding rate: 4/5 adds a single parity bit (detect-only), 4/6 two,
//! 4/7 is a classic Hamming(7,4) that *corrects* one bit error per
//! codeword, and 4/8 an extended Hamming(8,4) that corrects one and
//! detects two. The paper picks 4/7 precisely for that single-bit
//! correction "without unnecessary redundant bits" (Section III-A); this
//! module implements the actual encode/decode so that claim is executable
//! rather than cited.

use serde::{Deserialize, Serialize};

use crate::toa::CodingRate;

/// Outcome of decoding one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// The codeword was consistent; no correction applied.
    Clean,
    /// A single bit error was detected and corrected (4/7, 4/8).
    Corrected,
    /// Errors were detected but cannot be corrected at this rate.
    Detected,
}

/// Encodes a 4-bit nibble (low bits of `nibble`) at the given rate,
/// returning the codeword in the low bits, LSB-first data then parity.
///
/// Parity equations follow the LoRa convention (Knight & Seeber, GNU
/// Radio LoRa decoder): with data bits `d0..d3`,
/// `p0 = d0⊕d1⊕d2`, `p1 = d1⊕d2⊕d3`, `p2 = d0⊕d1⊕d3`, `p3 = d0⊕d2⊕d3`.
pub fn encode_nibble(nibble: u8, cr: CodingRate) -> u8 {
    let d = [
        nibble & 1,
        (nibble >> 1) & 1,
        (nibble >> 2) & 1,
        (nibble >> 3) & 1,
    ];
    let p0 = d[0] ^ d[1] ^ d[2];
    let p1 = d[1] ^ d[2] ^ d[3];
    let p2 = d[0] ^ d[1] ^ d[3];
    let p3 = d[0] ^ d[2] ^ d[3];
    let data = nibble & 0x0f;
    match cr {
        // 4/5: one overall parity bit (even parity over the data).
        CodingRate::Cr4_5 => data | ((d[0] ^ d[1] ^ d[2] ^ d[3]) << 4),
        CodingRate::Cr4_6 => data | (p0 << 4) | (p1 << 5),
        CodingRate::Cr4_7 => data | (p0 << 4) | (p1 << 5) | (p2 << 6),
        CodingRate::Cr4_8 => data | (p0 << 4) | (p1 << 5) | (p2 << 6) | (p3 << 7),
    }
}

/// Decodes one codeword, returning the recovered nibble and what happened.
///
/// At 4/5 and 4/6 errors are only *detected*; at 4/7 and 4/8 a single bit
/// error anywhere in the codeword is corrected (the paper's rationale for
/// choosing 4/7).
pub fn decode_codeword(codeword: u8, cr: CodingRate) -> (u8, DecodeOutcome) {
    let data = codeword & 0x0f;
    match cr {
        CodingRate::Cr4_5 | CodingRate::Cr4_6 => {
            let reencoded = encode_nibble(data, cr);
            if reencoded == codeword & mask(cr) {
                (data, DecodeOutcome::Clean)
            } else {
                (data, DecodeOutcome::Detected)
            }
        }
        CodingRate::Cr4_7 | CodingRate::Cr4_8 => {
            let bits = usize::from(codeword_bits(cr));
            let received = codeword & mask(cr);
            if encode_nibble(data, cr) == received {
                return (data, DecodeOutcome::Clean);
            }
            // Single-error correction by minimum Hamming distance over the
            // 16 codewords — exact, and fast at this size.
            let mut best = (u32::MAX, data);
            for candidate in 0u8..16 {
                let cw = encode_nibble(candidate, cr);
                let dist = (cw ^ received).count_ones();
                if dist < best.0 {
                    best = (dist, candidate);
                }
            }
            match best.0 {
                0 => (best.1, DecodeOutcome::Clean),
                1 => (best.1, DecodeOutcome::Corrected),
                _ => {
                    debug_assert!(best.0 as usize <= bits);
                    (data, DecodeOutcome::Detected)
                }
            }
        }
    }
}

/// Number of bits per codeword at this rate (the paper's `CR` ∈ 5..=8).
#[inline]
pub fn codeword_bits(cr: CodingRate) -> u8 {
    cr.denominator() as u8
}

#[inline]
fn mask(cr: CodingRate) -> u8 {
    ((1u16 << codeword_bits(cr)) - 1) as u8
}

/// Encodes a byte slice: two codewords per byte (low nibble first),
/// one codeword per output byte.
pub fn encode_payload(payload: &[u8], cr: CodingRate) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() * 2);
    for &byte in payload {
        out.push(encode_nibble(byte & 0x0f, cr));
        out.push(encode_nibble(byte >> 4, cr));
    }
    out
}

/// Decodes a stream produced by [`encode_payload`], returning the payload
/// and the number of corrected/uncorrectable codewords.
///
/// # Panics
///
/// Panics if `codewords` has odd length (nibble pairs make bytes).
pub fn decode_payload(codewords: &[u8], cr: CodingRate) -> (Vec<u8>, u32, u32) {
    assert!(
        codewords.len().is_multiple_of(2),
        "codeword stream must pair into bytes"
    );
    let mut out = Vec::with_capacity(codewords.len() / 2);
    let mut corrected = 0;
    let mut failed = 0;
    for pair in codewords.chunks_exact(2) {
        let mut nibbles = [0u8; 2];
        for (slot, &cw) in nibbles.iter_mut().zip(pair) {
            let (nibble, outcome) = decode_codeword(cw, cr);
            *slot = nibble;
            match outcome {
                DecodeOutcome::Clean => {}
                DecodeOutcome::Corrected => corrected += 1,
                DecodeOutcome::Detected => failed += 1,
            }
        }
        out.push(nibbles[0] | (nibbles[1] << 4));
    }
    (out, corrected, failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATES: [CodingRate; 4] = [
        CodingRate::Cr4_5,
        CodingRate::Cr4_6,
        CodingRate::Cr4_7,
        CodingRate::Cr4_8,
    ];

    #[test]
    fn clean_round_trip_at_every_rate() {
        for cr in RATES {
            for nibble in 0u8..16 {
                let cw = encode_nibble(nibble, cr);
                assert!(cw <= mask(cr));
                let (decoded, outcome) = decode_codeword(cw, cr);
                assert_eq!(decoded, nibble, "{cr:?}");
                assert_eq!(outcome, DecodeOutcome::Clean, "{cr:?}");
            }
        }
    }

    #[test]
    fn cr47_corrects_every_single_bit_error() {
        // The paper's claim: 4/7 corrects one bit error per codeword.
        for nibble in 0u8..16 {
            let cw = encode_nibble(nibble, CodingRate::Cr4_7);
            for bit in 0..7 {
                let corrupted = cw ^ (1 << bit);
                let (decoded, outcome) = decode_codeword(corrupted, CodingRate::Cr4_7);
                assert_eq!(decoded, nibble, "nibble {nibble} bit {bit}");
                assert_eq!(outcome, DecodeOutcome::Corrected);
            }
        }
    }

    #[test]
    fn cr48_corrects_singles_and_detects_doubles() {
        for nibble in 0u8..16 {
            let cw = encode_nibble(nibble, CodingRate::Cr4_8);
            for bit in 0..8 {
                let (decoded, outcome) = decode_codeword(cw ^ (1 << bit), CodingRate::Cr4_8);
                assert_eq!(decoded, nibble);
                assert_eq!(outcome, DecodeOutcome::Corrected);
            }
            // All double errors must at least be flagged (never silently
            // mis-decoded as Clean/Corrected *to the wrong nibble without
            // notice* — extended Hamming has distance 4).
            for b1 in 0..8 {
                for b2 in (b1 + 1)..8 {
                    let corrupted = cw ^ (1 << b1) ^ (1 << b2);
                    let (_, outcome) = decode_codeword(corrupted, CodingRate::Cr4_8);
                    assert_eq!(
                        outcome,
                        DecodeOutcome::Detected,
                        "nibble {nibble} bits {b1},{b2}"
                    );
                }
            }
        }
    }

    #[test]
    fn cr45_detects_single_errors_without_correcting() {
        for nibble in 0u8..16 {
            let cw = encode_nibble(nibble, CodingRate::Cr4_5);
            for bit in 0..5 {
                let (_, outcome) = decode_codeword(cw ^ (1 << bit), CodingRate::Cr4_5);
                assert_eq!(outcome, DecodeOutcome::Detected);
            }
        }
    }

    #[test]
    fn cr47_min_distance_is_three() {
        // Hamming(7,4): any two distinct codewords differ in ≥ 3 bits.
        for a in 0u8..16 {
            for b in 0u8..16 {
                if a == b {
                    continue;
                }
                let d = (encode_nibble(a, CodingRate::Cr4_7) ^ encode_nibble(b, CodingRate::Cr4_7))
                    .count_ones();
                assert!(d >= 3, "{a} vs {b}: distance {d}");
            }
        }
    }

    #[test]
    fn payload_round_trip_with_scattered_errors() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut stream = encode_payload(&payload, CodingRate::Cr4_7);
        // Flip one bit in every third codeword.
        for (i, cw) in stream.iter_mut().enumerate() {
            if i % 3 == 0 {
                *cw ^= 1 << (i % 7);
            }
        }
        let (decoded, corrected, failed) = decode_payload(&stream, CodingRate::Cr4_7);
        assert_eq!(decoded, payload);
        assert_eq!(failed, 0);
        assert_eq!(corrected, (stream.len() as u32).div_ceil(3));
    }

    #[test]
    #[should_panic(expected = "pair into bytes")]
    fn odd_stream_panics() {
        let _ = decode_payload(&[0x00], CodingRate::Cr4_7);
    }
}
