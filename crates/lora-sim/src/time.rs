//! Simulation time as a totally ordered key.
//!
//! Event times are `f64` seconds; `f64` is not `Ord`, so the event queue
//! keys on [`TimeKey`], which wraps `f64::total_cmp`. Event times produced
//! by the simulator are always finite; the wrapper asserts that in debug
//! builds.

use std::cmp::Ordering;

/// A totally ordered, finite simulation timestamp in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeKey(f64);

impl TimeKey {
    /// Wraps a timestamp.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `seconds` is not finite.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        debug_assert!(seconds.is_finite(), "simulation time must be finite");
        TimeKey(seconds)
    }

    /// The timestamp in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }
}

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for TimeKey {
    fn from(seconds: f64) -> Self {
        TimeKey::new(seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(TimeKey::new(1.0) < TimeKey::new(2.0));
        assert!(TimeKey::new(-1.0) < TimeKey::new(0.0));
        assert_eq!(TimeKey::new(3.5), TimeKey::new(3.5));
    }

    #[test]
    fn zero_signs_are_ordered_consistently() {
        // total_cmp puts −0.0 before +0.0; all we need is a total order.
        let mut v = [TimeKey::new(0.0), TimeKey::new(-0.0), TimeKey::new(1.0)];
        v.sort();
        assert_eq!(v[2], TimeKey::new(1.0));
    }
}
