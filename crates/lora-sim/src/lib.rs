//! Deterministic discrete-event simulator for multi-gateway LoRa networks.
//!
//! This crate is the reproduction's substitute for the NS-3 LoRaWAN module
//! the paper evaluates on (Section IV): a packet-level, SINR-based,
//! seeded-RNG simulator of uplink LoRaWAN traffic.
//!
//! The modelled pipeline, per transmission and per gateway:
//!
//! 1. the device transmits on its allocated (SF, TP, channel) following an
//!    unslotted-ALOHA periodic schedule with random phase;
//! 2. each gateway samples an independent Rayleigh fading gain and receives
//!    the packet at `P_tx − PL(d) + fading` dBm;
//! 3. the gateway locks one of its eight SX1301 demodulator paths if the
//!    received power clears the SF's sensitivity and a path is free
//!    (paper Eq. 6);
//! 4. at the end of the reception the SINR — signal over noise plus all
//!    co-SF/co-channel overlapping transmissions (paper's collision rule) —
//!    must clear the SF's demodulation threshold (paper Eq. 7);
//! 5. the network server de-duplicates copies received via multiple
//!    gateways; a transmission is delivered if at least one copy survives
//!    (paper Eq. 5).
//!
//! Energy is accounted per device with the Casals et al. model (TX burst +
//! fixed overhead + sleep), and per-device lifetime follows from the
//! battery budget; the network lifetime uses the paper's 10 %-dead
//! definition.
//!
//! # Example
//!
//! ```
//! use lora_sim::{SimConfig, Simulation, Topology};
//! use lora_phy::TxConfig;
//!
//! let config = SimConfig::builder()
//!     .seed(7)
//!     .duration_s(3_600.0)
//!     .report_interval_s(600.0)
//!     .build();
//! let topology = Topology::disc(50, 1, 2_000.0, &config, 7);
//! // Everyone on SF7/14 dBm/channel 0 — a deliberately naive allocation.
//! let alloc = vec![TxConfig::default(); 50];
//! let report = Simulation::new(config, topology, alloc).unwrap().run();
//! assert_eq!(report.devices.len(), 50);
//! assert!(report.min_energy_efficiency_bits_per_mj() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod event;
pub mod faults;
pub mod medium;
pub mod metrics;
pub mod report;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

pub use config::{ConfirmedTraffic, GatewayOutage, SimConfig, SimConfigBuilder, Traffic};
pub use error::SimError;
pub use faults::{BackhaulLink, FaultConfig, GatewayChurn, JamBurst, JammerProcess};
pub use report::{DeviceStats, GatewayStats, SimReport};
pub use sim::Simulation;
pub use topology::{
    attenuation_budget_from_env, attenuation_matrix, attenuation_row, try_attenuation_matrix,
    AttenuationMatrix, DeviceSite, Position, Topology, DEFAULT_ATTENUATION_BUDGET_BYTES,
};
