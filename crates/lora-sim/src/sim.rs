//! The simulation orchestrator.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use lora_mac::{Deduplicator, DemodulatorBank, Reception};
use lora_phy::link::noise_floor_dbm;
use lora_phy::toa::ToaParams;
use lora_phy::{dbm_to_mw, Bandwidth, TxConfig};

use crate::config::{GatewayOutage, SimConfig};
use crate::error::SimError;
use crate::event::{Event, EventQueue};
use crate::faults::{self, JamBurst};
use crate::medium::{ActiveTx, Medium};
use crate::report::{DeviceStats, GatewayStats, SimReport};
use crate::topology::{AttenuationMatrix, Topology};
use crate::trace::{NullSink, ReceptionOutcome, TraceEvent, TraceSink};

/// A fully specified simulation: configuration, deployment and the
/// per-device resource allocation under test.
///
/// Construction validates the inputs; [`Simulation::run`] then executes the
/// discrete-event loop and returns a [`SimReport`]. Running the same
/// simulation twice produces identical reports.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    topology: Topology,
    alloc: Vec<TxConfig>,
    /// Time-on-air per device, seconds.
    toa_s: Vec<f64>,
    /// Effective reporting interval per device, seconds (resolves the
    /// traffic model and any per-device overrides).
    intervals_s: Vec<f64>,
    /// Linear path-loss attenuation `[device][gateway]` (mean channel).
    attenuation: AttenuationMatrix,
    /// Sensitivity per device in mW (depends on its SF).
    sensitivity_mw: Vec<f64>,
    /// SNR demodulation threshold per device, dB.
    snr_threshold_db: Vec<f64>,
    /// Receiver noise floor, mW.
    noise_mw: f64,
    /// Time-on-air of a downlink acknowledgement at each device's SF
    /// (confirmed traffic; an empty data-down frame of 12 bytes).
    ack_toa_s: Vec<f64>,
    /// All outage windows in effect: the hand-placed ones from the config
    /// plus the windows compiled from churn processes.
    outage_windows: Vec<GatewayOutage>,
    /// All jammer bursts in effect: hand-placed plus compiled.
    jam_bursts: Vec<JamBurst>,
    /// Backhaul drop probability per gateway (`0.0` = lossless).
    backhaul_drop_prob: Vec<f64>,
    /// Backhaul forwarding latency per gateway, seconds.
    backhaul_latency_s: Vec<f64>,
}

impl Simulation {
    /// Builds a simulation.
    ///
    /// # Errors
    ///
    /// * [`SimError::AllocationLengthMismatch`] if `alloc` does not have one
    ///   entry per device;
    /// * [`SimError::ChannelOutOfRange`] if an entry names a channel outside
    ///   the regional plan;
    /// * [`SimError::InvalidConfig`] for non-positive durations/intervals or
    ///   an over-size payload.
    pub fn new(
        config: SimConfig,
        topology: Topology,
        alloc: Vec<TxConfig>,
    ) -> Result<Self, SimError> {
        let attenuation = crate::topology::attenuation_matrix(&config, &topology);
        Self::with_attenuation(config, topology, alloc, attenuation)
    }

    /// [`Simulation::new`] with a precomputed attenuation matrix.
    ///
    /// [`attenuation_matrix`](crate::topology::attenuation_matrix) is a
    /// pure function of `(config, topology)`, so a caller that already
    /// built it — the analytical model, or a replication harness running
    /// many repetitions over one deployment — can hand it over and skip
    /// the O(devices × gateways) `powf` rebuild. Passing the matrix the
    /// model computed for the same deployment yields a byte-identical
    /// simulation.
    ///
    /// # Errors
    ///
    /// Everything [`Simulation::new`] rejects, plus
    /// [`SimError::InvalidConfig`] when the matrix shape does not match
    /// the deployment.
    pub fn with_attenuation(
        config: SimConfig,
        topology: Topology,
        alloc: Vec<TxConfig>,
        attenuation: AttenuationMatrix,
    ) -> Result<Self, SimError> {
        if attenuation.device_count() != topology.device_count()
            || attenuation.gateway_count() != topology.gateway_count()
        {
            return Err(SimError::InvalidConfig {
                reason: "attenuation matrix shape does not match the deployment",
            });
        }
        if alloc.len() != topology.device_count() {
            return Err(SimError::AllocationLengthMismatch {
                devices: topology.device_count(),
                allocation: alloc.len(),
            });
        }
        if !(config.duration_s.is_finite() && config.duration_s > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: "duration must be positive",
            });
        }
        if !(config.report_interval_s.is_finite() && config.report_interval_s > 0.0) {
            return Err(SimError::InvalidConfig {
                reason: "report interval must be positive",
            });
        }
        if let Some(intervals) = &config.per_device_intervals_s {
            if intervals.len() != topology.device_count() {
                return Err(SimError::InvalidConfig {
                    reason: "per-device intervals must have one entry per device",
                });
            }
            if intervals.iter().any(|t| !(t.is_finite() && *t > 0.0)) {
                return Err(SimError::InvalidConfig {
                    reason: "per-device intervals must be positive",
                });
            }
        }
        let plan_len = config.region.uplink_channel_count();
        for (device, cfg) in alloc.iter().enumerate() {
            if cfg.channel >= plan_len {
                return Err(SimError::ChannelOutOfRange {
                    device,
                    channel: cfg.channel,
                    plan_len,
                });
            }
        }

        if let crate::config::Traffic::DutyCycleTarget { duty } = config.traffic {
            if !(duty.is_finite() && duty > 0.0 && duty <= 1.0) {
                return Err(SimError::InvalidConfig {
                    reason: "duty-cycle target must be in (0, 1]",
                });
            }
        }
        if let Some(conf) = &config.confirmed {
            if conf.class_a.validate().is_err() || conf.max_attempts == 0 {
                return Err(SimError::InvalidConfig {
                    reason: "confirmed-traffic parameters are invalid",
                });
            }
        }

        // Fault injection: validate against the actual deployment shape
        // (the builder cannot know gateway/channel counts), then compile
        // every stochastic process into static windows. The compilation
        // RNG streams are derived from `seed ^ salt`, so the traffic RNG
        // stream is untouched and a fault-free config behaves exactly as
        // if the fault engine did not exist.
        let n_gateways = topology.gateway_count();
        for (i, o) in config.outages.iter().enumerate() {
            faults::validate_window(o.from_s, o.to_s, &format!("outages[{i}]"))?;
            if o.gateway >= n_gateways {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "outages[{i}]: gateway {} out of range (deployment has {n_gateways})",
                        o.gateway
                    ),
                });
            }
        }
        let mut outage_windows = config.outages.clone();
        let mut jam_bursts = Vec::new();
        let mut backhaul_drop_prob = vec![0.0; n_gateways];
        let mut backhaul_latency_s = vec![0.0; n_gateways];
        if let Some(fault_cfg) = &config.faults {
            fault_cfg.validate(n_gateways, plan_len)?;
            let (churn_windows, bursts) = fault_cfg.compile(config.seed, config.duration_s);
            outage_windows.extend(churn_windows);
            jam_bursts = bursts;
            for link in &fault_cfg.backhaul {
                backhaul_drop_prob[link.gateway] = link.drop_prob;
                backhaul_latency_s[link.gateway] = link.latency_s;
            }
        }

        let bw = Bandwidth::Bw125;
        let payload = config.phy_payload_len();
        // Time-on-air is a pure function of (SF, BW, CR, payload): compute
        // each of the six SF values once — for the uplink payload and the
        // fixed 12-byte ack — and index per device, instead of re-running
        // the Eq. 4 arithmetic 2·N times. Bit-identical to the uncached
        // path (each entry *is* its result); `lora_phy::ToaLut` provides
        // the same cache over the full payload grid for callers with
        // per-device payloads.
        let mut toa_by_sf = [0.0f64; 6];
        let mut ack_by_sf = [0.0f64; 6];
        for sf in lora_phy::SpreadingFactor::ALL {
            let params = ToaParams::new(sf, bw, config.coding_rate);
            toa_by_sf[sf.index()] =
                params
                    .time_on_air_s(payload)
                    .map_err(|_| SimError::InvalidConfig {
                        reason: "payload exceeds LoRa maximum",
                    })?;
            ack_by_sf[sf.index()] = params
                .time_on_air_s(12)
                .expect("fixed 12-byte ack payload is valid");
        }
        let toa_s: Vec<f64> = alloc.iter().map(|cfg| toa_by_sf[cfg.sf.index()]).collect();
        let ack_toa_s: Vec<f64> = alloc.iter().map(|cfg| ack_by_sf[cfg.sf.index()]).collect();
        let intervals_s: Vec<f64> = match config.traffic {
            crate::config::Traffic::Periodic => {
                (0..alloc.len()).map(|i| config.interval_of(i)).collect()
            }
            crate::config::Traffic::DutyCycleTarget { duty } => {
                toa_s.iter().map(|t| t / duty).collect()
            }
        };

        let sensitivity_mw = alloc
            .iter()
            .map(|cfg| dbm_to_mw(cfg.sf.sensitivity_dbm(bw, config.noise_figure_db)))
            .collect();
        let snr_threshold_db = alloc.iter().map(|cfg| cfg.sf.snr_threshold_db()).collect();
        let noise_mw = dbm_to_mw(noise_floor_dbm(bw, config.noise_figure_db));

        Ok(Simulation {
            config,
            topology,
            alloc,
            toa_s,
            intervals_s,
            attenuation,
            sensitivity_mw,
            snr_threshold_db,
            noise_mw,
            ack_toa_s,
            outage_windows,
            jam_bursts,
            backhaul_drop_prob,
            backhaul_latency_s,
        })
    }

    /// Every outage window in effect: hand-placed plus compiled from
    /// churn processes. Sorted by process, not by time.
    pub fn outage_windows(&self) -> &[GatewayOutage] {
        &self.outage_windows
    }

    /// Every jammer burst in effect: hand-placed plus compiled.
    pub fn jam_bursts(&self) -> &[JamBurst] {
        &self.jam_bursts
    }

    /// The configuration under simulation.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The deployment under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The allocation under simulation.
    pub fn allocation(&self) -> &[TxConfig] {
        &self.alloc
    }

    /// Time-on-air of device `i`'s frames, seconds.
    pub fn time_on_air_s(&self, device: usize) -> f64 {
        self.toa_s[device]
    }

    /// Effective reporting interval of device `i`, seconds.
    pub fn interval_s(&self, device: usize) -> f64 {
        self.intervals_s[device]
    }

    /// Runs the discrete-event loop to completion.
    pub fn run(&self) -> SimReport {
        self.run_with_trace(&mut NullSink)
    }

    /// Runs the discrete-event loop, feeding every transmission and
    /// reception decision to `sink` (see [`crate::trace`]). The default
    /// [`Simulation::run`] uses a [`NullSink`], which compiles away.
    pub fn run_with_trace<S: TraceSink>(&self, sink: &mut S) -> SimReport {
        let n_dev = self.topology.device_count();
        let n_gw = self.topology.gateway_count();
        let duration = self.config.duration_s;

        let mut rng = ChaCha12Rng::seed_from_u64(self.config.seed);
        let mut queue = EventQueue::new();
        let mut medium = Medium::new(self.config.inter_sf, n_gw);
        let mut banks: Vec<DemodulatorBank> = (0..n_gw)
            .map(|_| DemodulatorBank::with_capacity(self.config.demod_capacity))
            .collect();
        let mut gw_stats = vec![GatewayStats::default(); n_gw];
        let mut dedup = Deduplicator::new();

        let mut attempts = vec![0u32; n_dev];
        let mut delivered = vec![0u32; n_dev];
        let mut energy_j = vec![0.0f64; n_dev];
        let mut airtime_s = vec![0.0f64; n_dev];
        // Confirmed-traffic retransmission state: the cycle currently in
        // flight, how many attempts it has consumed, and when the next
        // cycle begins (retries must finish inside their own cycle).
        let mut current_seq = vec![u32::MAX; n_dev];
        let mut cycle_attempts = vec![0u8; n_dev];
        let mut next_cycle_start = vec![f64::INFINITY; n_dev];
        // Half-duplex gateways: windows during which each gateway is
        // transmitting a downlink acknowledgement and cannot receive.
        let mut ack_windows: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_gw];
        // Each in-flight transmission carries three per-gateway buffers;
        // recycling them through this free list (plus one shared
        // `decoded_by` scratch row) keeps the steady-state event loop
        // allocation-free. Pool depth is bounded by the peak number of
        // concurrent transmissions.
        let mut buffer_pool: Vec<(Vec<f64>, Vec<f64>, Vec<bool>)> = Vec::new();
        let mut decoded_by = vec![false; n_gw];

        // Random per-device phase in [0, T_g,i): unslotted ALOHA.
        for device in 0..n_dev {
            let phase = rng.gen::<f64>() * self.intervals_s[device];
            if phase < duration {
                queue.push(phase, Event::TxStart { device, seq: 0 });
            }
        }

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::TxStart { device, seq } => {
                    let cfg = &self.alloc[device];
                    let toa = self.toa_s[device];
                    let t_g = self.intervals_s[device];
                    let new_cycle = current_seq[device] != seq;
                    if new_cycle {
                        current_seq[device] = seq;
                        cycle_attempts[device] = 0;
                    }
                    cycle_attempts[device] = cycle_attempts[device].saturating_add(1);
                    attempts[device] += 1;
                    airtime_s[device] += toa;
                    // Active energy only; sleep is charged once at the end
                    // of the run over the device's total idle time.
                    energy_j[device] += self.config.energy.overhead_energy_j()
                        + self.config.energy.tx_energy_j(cfg.tp, toa);
                    if let Some(conf) = self.config.confirmed {
                        // Class-A devices open RX1/RX2 after every uplink.
                        energy_j[device] += conf.class_a.listening_energy_j();
                    }

                    sink.record(TraceEvent::TxStart {
                        t: now,
                        device,
                        seq,
                        sf: cfg.sf,
                        channel: cfg.channel,
                    });
                    let tp_mw = cfg.tp.milliwatts();
                    let (mut rx_power_mw, mut interference_mw, mut demod_locked) =
                        buffer_pool.pop().unwrap_or_default();
                    rx_power_mw.clear();
                    rx_power_mw.reserve(n_gw);
                    demod_locked.clear();
                    demod_locked.reserve(n_gw);
                    interference_mw.clear();
                    interference_mw.resize(n_gw, 0.0);
                    for gw in 0..n_gw {
                        let gain = self.config.fading.sample_power_gain(&mut rng);
                        let rx_mw = tp_mw * self.attenuation.at(device, gw) * gain;
                        rx_power_mw.push(rx_mw);

                        let in_outage = self.outage_windows.iter().any(|o| o.covers(gw, now));
                        // Prune expired ack windows, then check overlap
                        // with this reception interval.
                        ack_windows[gw].retain(|&(_, end)| end > now);
                        let transmitting = self.config.confirmed.is_some()
                            && ack_windows[gw]
                                .iter()
                                .any(|&(start, end)| start < now + toa && now < end);
                        let locked = if transmitting {
                            gw_stats[gw].half_duplex_drops += 1;
                            sink.record(TraceEvent::Reception {
                                t: now,
                                device,
                                seq,
                                gateway: gw,
                                outcome: ReceptionOutcome::GatewayTransmitting,
                            });
                            false
                        } else if in_outage {
                            gw_stats[gw].outage_drops += 1;
                            sink.record(TraceEvent::Reception {
                                t: now,
                                device,
                                seq,
                                gateway: gw,
                                outcome: ReceptionOutcome::Outage,
                            });
                            false
                        } else if rx_mw < self.sensitivity_mw[device] {
                            gw_stats[gw].below_sensitivity += 1;
                            sink.record(TraceEvent::Reception {
                                t: now,
                                device,
                                seq,
                                gateway: gw,
                                outcome: ReceptionOutcome::BelowSensitivity,
                            });
                            false
                        } else if banks[gw].try_acquire(now, now + toa) {
                            true
                        } else {
                            gw_stats[gw].demod_refused += 1;
                            sink.record(TraceEvent::Reception {
                                t: now,
                                device,
                                seq,
                                gateway: gw,
                                outcome: ReceptionOutcome::DemodBusy,
                            });
                            false
                        };
                        demod_locked.push(locked);
                    }

                    medium.start(ActiveTx {
                        device,
                        seq,
                        start_s: now,
                        end_s: now + toa,
                        sf: cfg.sf,
                        channel: cfg.channel,
                        rx_power_mw,
                        interference_mw,
                        demod_locked,
                    });
                    queue.push(now + toa, Event::TxEnd { device, seq });

                    if new_cycle {
                        let next = now + t_g;
                        next_cycle_start[device] = next;
                        if next < duration {
                            queue.push(
                                next,
                                Event::TxStart {
                                    device,
                                    seq: seq + 1,
                                },
                            );
                        }
                    }
                }
                Event::TxEnd { device, seq } => {
                    let tx = medium.end(device, seq);
                    let mut any_copy = false;
                    decoded_by.fill(false);
                    // Jammer bursts overlapping this reception raise the
                    // noise floor for every gateway (wideband front-end
                    // noise on the transmission's channel); 0.0 when no
                    // burst overlaps, leaving the SINR bit-identical.
                    let jam_mw = tx.jam_noise_mw(&self.jam_bursts);
                    #[allow(clippy::needless_range_loop)] // parallel arrays indexed by gateway
                    for gw in 0..n_gw {
                        if !tx.demod_locked[gw] {
                            continue;
                        }
                        // Two conditions (paper Eq. 7 plus the capture
                        // effect of the NS-3 module): SINR over noise and
                        // interference clears the SF demodulation
                        // threshold, and — when interferers overlapped —
                        // the signal captures over them by the co-SF
                        // capture margin.
                        let interference = tx.interference_mw[gw];
                        let captured = interference == 0.0
                            || 10.0 * (tx.rx_power_mw[gw] / interference).log10()
                                >= self.config.capture_threshold_db;
                        let sinr_ok = captured
                            && tx.sinr_db(gw, self.noise_mw + jam_mw)
                                >= self.snr_threshold_db[device];
                        if sinr_ok {
                            // PHY-decoded; the lossy backhaul may still
                            // drop the copy before de-duplication. The
                            // verdict is a pure hash of (gateway, device,
                            // seq), so it cannot depend on event
                            // interleaving or worker count.
                            if faults::backhaul_drops(
                                self.config.seed,
                                gw,
                                device,
                                seq,
                                self.backhaul_drop_prob[gw],
                            ) {
                                gw_stats[gw].backhaul_drops += 1;
                                sink.record(TraceEvent::Reception {
                                    t: now,
                                    device,
                                    seq,
                                    gateway: gw,
                                    outcome: ReceptionOutcome::BackhaulLoss,
                                });
                            } else {
                                gw_stats[gw].decoded += 1;
                                decoded_by[gw] = true;
                                sink.record(TraceEvent::Reception {
                                    t: now,
                                    device,
                                    seq,
                                    gateway: gw,
                                    outcome: ReceptionOutcome::Decoded,
                                });
                                match dedup.observe(device as u32, seq) {
                                    Reception::FirstCopy => any_copy = true,
                                    Reception::Duplicate => {}
                                }
                            }
                        } else if jam_mw > 0.0
                            && captured
                            && tx.sinr_db(gw, self.noise_mw) >= self.snr_threshold_db[device]
                        {
                            // The copy fails only with the jam power in
                            // the denominator: the loss is the jammer's.
                            gw_stats[gw].jammed_drops += 1;
                            sink.record(TraceEvent::Reception {
                                t: now,
                                device,
                                seq,
                                gateway: gw,
                                outcome: ReceptionOutcome::Jammed,
                            });
                        } else {
                            gw_stats[gw].sinr_failures += 1;
                            sink.record(TraceEvent::Reception {
                                t: now,
                                device,
                                seq,
                                gateway: gw,
                                outcome: ReceptionOutcome::SinrFailure,
                            });
                        }
                    }
                    if any_copy {
                        delivered[device] += 1;
                        sink.record(TraceEvent::Delivered {
                            t: now,
                            device,
                            seq,
                        });
                        if let Some(conf) = self.config.confirmed {
                            // The gateway whose copy reaches the network
                            // server first (lowest backhaul latency, ties
                            // by index) serves the acknowledgement in RX1
                            // and is deaf for its duration (half-duplex
                            // SX1301 front end). With no backhaul model
                            // every latency is 0.0 and the first decoding
                            // gateway wins, as before.
                            let serving = decoded_by
                                .iter()
                                .enumerate()
                                .filter(|&(_, decoded)| *decoded)
                                .map(|(gw, _)| gw)
                                .min_by(|&a, &b| {
                                    self.backhaul_latency_s[a]
                                        .total_cmp(&self.backhaul_latency_s[b])
                                });
                            if let Some(serving) = serving {
                                let ack_start = now + conf.class_a.receive_delay1_s;
                                ack_windows[serving]
                                    .push((ack_start, ack_start + self.ack_toa_s[device]));
                            }
                        }
                    } else if let Some(conf) = self.config.confirmed {
                        // Retransmit the lost frame unless the budget is
                        // spent or the retry would spill into the next
                        // reporting cycle (a late retry re-entering as a
                        // "new cycle" would otherwise double the schedule).
                        if cycle_attempts[device] < conf.max_attempts && current_seq[device] == seq
                        {
                            let backoff = conf.backoff_min_s
                                + rng.gen::<f64>() * (conf.backoff_max_s - conf.backoff_min_s);
                            let retry_at = now + backoff;
                            let toa = self.toa_s[device];
                            if retry_at < duration && retry_at + toa < next_cycle_start[device] {
                                queue.push(retry_at, Event::TxStart { device, seq });
                            }
                        }
                    }
                    buffer_pool.push((tx.rx_power_mw, tx.interference_mw, tx.demod_locked));
                }
            }
        }

        let payload_bits = self.config.payload_bits();
        let sleep_power_w = self.config.energy.sleep_power_w();
        let devices = (0..n_dev)
            .map(|i| {
                // Charge sleep over the device's entire idle time.
                energy_j[i] += sleep_power_w * (duration - airtime_s[i]).max(0.0);
                let bits = f64::from(delivered[i]) * payload_bits;
                let ee = if energy_j[i] > 0.0 {
                    bits / (energy_j[i] * 1_000.0)
                } else {
                    0.0
                };
                let lifetime_s = if attempts[i] > 0 {
                    self.config.battery.lifetime_s(energy_j[i] / duration)
                } else {
                    None
                };
                DeviceStats {
                    attempts: attempts[i],
                    delivered: delivered[i],
                    energy_j: energy_j[i],
                    ee_bits_per_mj: ee,
                    lifetime_s,
                }
            })
            .collect();

        SimReport {
            devices,
            gateways: gw_stats,
            frames_delivered: dedup.delivered(),
            duplicate_copies: dedup.duplicates(),
            duration_s: duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GatewayOutage;
    use crate::topology::{DeviceSite, Position};
    use lora_phy::path_loss::LinkEnvironment;
    use lora_phy::{Fading, SpreadingFactor, TxPowerDbm};

    fn near_topology(n: usize) -> Topology {
        let devices = (0..n)
            .map(|i| DeviceSite {
                position: Position::new(100.0 + i as f64, 0.0),
                environment: LinkEnvironment::LineOfSight,
            })
            .collect();
        Topology::from_sites(devices, vec![Position::new(0.0, 0.0)], 1_000.0)
    }

    fn quiet_config() -> SimConfig {
        let mut c = SimConfig::builder()
            .seed(1)
            .duration_s(3_000.0)
            .report_interval_s(600.0)
            .build();
        c.fading = Fading::None;
        c
    }

    fn sf7_alloc(n: usize) -> Vec<TxConfig> {
        (0..n)
            .map(|i| TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), i % 8))
            .collect()
    }

    #[test]
    fn lone_device_delivers_everything() {
        let sim = Simulation::new(quiet_config(), near_topology(1), sf7_alloc(1)).unwrap();
        let report = sim.run();
        assert_eq!(report.devices[0].attempts, 5);
        assert_eq!(report.devices[0].delivered, 5);
        assert_eq!(report.devices[0].prr(), 1.0);
        assert!(report.devices[0].ee_bits_per_mj > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let sim = Simulation::new(quiet_config(), near_topology(20), sf7_alloc(20)).unwrap();
        assert_eq!(sim.run(), sim.run());
    }

    #[test]
    fn different_seed_changes_outcome() {
        // Marginal links (≈1.5 dB below SF7 sensitivity at the mean) so the
        // Rayleigh draws decide delivery.
        let devices = (0..20)
            .map(|i| DeviceSite {
                position: Position::new(3_000.0 + i as f64, 0.0),
                environment: LinkEnvironment::NonLineOfSight,
            })
            .collect();
        let topo = Topology::from_sites(devices, vec![Position::new(0.0, 0.0)], 5_000.0);
        let mut c = quiet_config();
        c.fading = Fading::Rayleigh;
        let a = Simulation::new(c.clone(), topo.clone(), sf7_alloc(20))
            .unwrap()
            .run();
        c.seed = 2;
        let b = Simulation::new(c, topo, sf7_alloc(20)).unwrap().run();
        assert_ne!(a, b);
    }

    #[test]
    fn allocation_length_is_validated() {
        let err = Simulation::new(quiet_config(), near_topology(3), sf7_alloc(2)).unwrap_err();
        assert_eq!(
            err,
            SimError::AllocationLengthMismatch {
                devices: 3,
                allocation: 2
            }
        );
    }

    #[test]
    fn channel_range_is_validated() {
        let mut alloc = sf7_alloc(1);
        alloc[0].channel = 8;
        let err = Simulation::new(quiet_config(), near_topology(1), alloc).unwrap_err();
        assert!(matches!(
            err,
            SimError::ChannelOutOfRange { channel: 8, .. }
        ));
    }

    #[test]
    fn out_of_range_device_delivers_nothing() {
        let devices = vec![DeviceSite {
            position: Position::new(50_000.0, 0.0), // 50 km away
            environment: LinkEnvironment::NonLineOfSight,
        }];
        let topo = Topology::from_sites(devices, vec![Position::new(0.0, 0.0)], 1_000.0);
        let sim = Simulation::new(quiet_config(), topo, sf7_alloc(1)).unwrap();
        let report = sim.run();
        assert_eq!(report.devices[0].delivered, 0);
        assert!(report.devices[0].attempts > 0);
        assert_eq!(report.devices[0].ee_bits_per_mj, 0.0);
        assert_eq!(
            report.gateways[0].below_sensitivity as u32,
            report.devices[0].attempts
        );
    }

    #[test]
    fn full_outage_blocks_all_receptions() {
        let mut c = quiet_config();
        c.outages.push(GatewayOutage {
            gateway: 0,
            from_s: 0.0,
            to_s: 1e9,
        });
        let sim = Simulation::new(c, near_topology(2), sf7_alloc(2)).unwrap();
        let report = sim.run();
        assert!(report.devices.iter().all(|d| d.delivered == 0));
        assert!(report.gateways[0].outage_drops > 0);
    }

    #[test]
    fn partial_outage_loses_only_window() {
        let mut c = quiet_config();
        // Outage covering the first reporting cycle only.
        c.outages.push(GatewayOutage {
            gateway: 0,
            from_s: 0.0,
            to_s: 600.0,
        });
        let sim = Simulation::new(c, near_topology(1), sf7_alloc(1)).unwrap();
        let report = sim.run();
        assert_eq!(report.devices[0].attempts, 5);
        assert_eq!(report.devices[0].delivered, 4);
    }

    #[test]
    fn second_gateway_improves_reachability() {
        // One device far from gw0 but near gw1.
        let devices = vec![DeviceSite {
            position: Position::new(9_900.0, 0.0),
            environment: LinkEnvironment::NonLineOfSight,
        }];
        let gw_far = Topology::from_sites(devices.clone(), vec![Position::new(0.0, 0.0)], 10_000.0);
        let gw_near = Topology::from_sites(
            devices,
            vec![Position::new(0.0, 0.0), Position::new(10_000.0, 0.0)],
            10_000.0,
        );
        let sim_far = Simulation::new(quiet_config(), gw_far, sf7_alloc(1)).unwrap();
        let sim_near = Simulation::new(quiet_config(), gw_near, sf7_alloc(1)).unwrap();
        assert_eq!(sim_far.run().devices[0].delivered, 0);
        assert_eq!(sim_near.run().devices[0].delivered, 5);
    }

    #[test]
    fn co_sf_saturation_causes_losses() {
        // 60 devices, same SF and channel, short interval: heavy collisions.
        let n = 60;
        let mut c = quiet_config();
        c.report_interval_s = 30.0;
        c.duration_s = 600.0;
        let alloc: Vec<TxConfig> = (0..n)
            .map(|_| TxConfig::new(SpreadingFactor::Sf9, TxPowerDbm::new(14.0), 0))
            .collect();
        let sim = Simulation::new(c, near_topology(n), alloc).unwrap();
        let report = sim.run();
        let total_sinr_failures: u64 = report.gateways.iter().map(|g| g.sinr_failures).sum();
        assert!(total_sinr_failures > 0, "expected collisions");
        assert!(report.mean_prr() < 1.0);
    }

    #[test]
    fn channel_separation_removes_collisions() {
        // Two devices transmitting simultaneously on different channels
        // both deliver.
        let mut c = quiet_config();
        c.seed = 3;
        let alloc = vec![
            TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 0),
            TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 1),
        ];
        let sim = Simulation::new(c, near_topology(2), alloc).unwrap();
        let report = sim.run();
        assert_eq!(report.devices[0].prr(), 1.0);
        assert_eq!(report.devices[1].prr(), 1.0);
    }

    #[test]
    fn demod_capacity_binds_under_many_channels() {
        // 24 devices spread over 8 channels and 3 SFs would be decodable in
        // the 48-signal sense, but a 2-path bank drops most of them when
        // they all transmit at once.
        let n = 24;
        let mut c = quiet_config();
        c.demod_capacity = 2;
        // One transmission per device, phases packed into one second so
        // the ~0.1 s frames pile up on the two demodulator paths.
        c.report_interval_s = 1.0;
        c.duration_s = 1.0;
        let sfs = [
            SpreadingFactor::Sf7,
            SpreadingFactor::Sf8,
            SpreadingFactor::Sf9,
        ];
        let alloc: Vec<TxConfig> = (0..n)
            .map(|i| TxConfig::new(sfs[i % 3], TxPowerDbm::new(14.0), i % 8))
            .collect();
        let sim = Simulation::new(c, near_topology(n), alloc).unwrap();
        let report = sim.run();
        let refused: u64 = report.gateways.iter().map(|g| g.demod_refused).sum();
        assert!(refused > 0, "expected the 2-path bank to refuse receptions");
        assert!(
            report.frames_delivered < n as u64,
            "capacity must cost deliveries"
        );
    }

    #[test]
    fn energy_accounting_is_additive() {
        let sim = Simulation::new(quiet_config(), near_topology(1), sf7_alloc(1)).unwrap();
        let report = sim.run();
        let per_cycle = self_energy(&sim);
        assert!((report.devices[0].energy_j - 5.0 * per_cycle).abs() < 1e-9);
    }

    fn self_energy(sim: &Simulation) -> f64 {
        sim.config().energy.cycle_energy_j(
            sim.allocation()[0].tp,
            sim.time_on_air_s(0),
            sim.config().report_interval_s,
        )
    }

    #[test]
    fn lifetime_reflects_consumption() {
        let sim = Simulation::new(quiet_config(), near_topology(1), sf7_alloc(1)).unwrap();
        let report = sim.run();
        let lifetime = report.devices[0].lifetime_s.unwrap();
        let avg_power = self_energy(&sim) / 600.0;
        let expected = sim.config().battery.capacity_j() / avg_power;
        assert!((lifetime - expected).abs() / expected < 1e-9);
        // Years, not hours: a sane LoRa node outlives 1 year at SF7/600 s.
        assert!(lifetime > 365.0 * 24.0 * 3_600.0);
    }
}
