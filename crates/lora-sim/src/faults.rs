//! Deterministic fault injection: stochastic failure processes compiled
//! into static windows before the event loop starts.
//!
//! Three fault classes, mirroring how real LoRaWAN deployments degrade:
//!
//! * **Gateway churn** ([`GatewayChurn`]): a gateway alternates between up
//!   and down states with exponentially distributed sojourn times (MTBF /
//!   MTTR), compiled into [`GatewayOutage`] windows;
//! * **Channel jammers** ([`JammerProcess`] / [`JamBurst`]): bursts of
//!   elevated noise floor on one uplink channel, raising the denominator
//!   of the SINR check for every overlapping reception;
//! * **Lossy backhaul** ([`BackhaulLink`]): the gateway→network-server
//!   link drops a fraction of decoded frames (before de-duplication) and
//!   delays the rest, which shifts which gateway serves the downlink
//!   acknowledgement.
//!
//! Everything is seed-derived and compiled up front in
//! [`Simulation::new`](crate::Simulation::new) with an RNG stream
//! *separate* from the traffic RNG (`seed ^ salt`), so enabling a fault
//! process never perturbs the phases, fading draws or backoffs of the
//! main simulation — and a config with no fault processes is bit-identical
//! to a simulator without the fault engine at all.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::config::GatewayOutage;
use crate::error::SimError;

/// Domain-separation salt for the fault RNG streams: the compiled windows
/// must be a pure function of `(seed, process)` and independent of the
/// traffic stream.
const FAULT_SEED_SALT: u64 = 0xFA11_7C0D_E5EE_D000;

/// SplitMix64 finalizer, used to give every fault process its own
/// decorrelated RNG stream and to hash backhaul drop decisions.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An exponential draw with the given mean (inverse-CDF method).
#[inline]
fn sample_exp<R: Rng>(rng: &mut R, mean_s: f64) -> f64 {
    // `1 - u` keeps the argument in (0, 1] so `ln` is finite.
    -mean_s * (1.0 - rng.gen::<f64>()).ln()
}

/// A jammer burst: the noise floor on `channel` is raised by `power_mw`
/// during `[from_s, to_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JamBurst {
    /// The jammed uplink channel index.
    pub channel: usize,
    /// Start of the burst, seconds.
    pub from_s: f64,
    /// End of the burst, seconds.
    pub to_s: f64,
    /// Additional noise power at the gateway input, milliwatts.
    pub power_mw: f64,
}

impl JamBurst {
    /// Whether the burst overlaps a reception of `channel` spanning
    /// `[start_s, end_s)`.
    #[inline]
    pub fn overlaps(&self, channel: usize, start_s: f64, end_s: f64) -> bool {
        self.channel == channel && self.from_s < end_s && start_s < self.to_s
    }
}

/// A lossy, delayed gateway→network-server backhaul link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackhaulLink {
    /// The gateway whose uplink copies traverse this link.
    pub gateway: usize,
    /// Probability that a decoded copy is dropped before reaching the
    /// network server (and its de-duplication stage).
    pub drop_prob: f64,
    /// One-way forwarding latency, seconds. Copies arriving later lose
    /// the serving-gateway election for the downlink acknowledgement.
    pub latency_s: f64,
}

/// A gateway churn process: exponential up/down cycles with the given
/// mean time between failures and mean time to repair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatewayChurn {
    /// The churning gateway.
    pub gateway: usize,
    /// Mean up-time before a failure, seconds.
    pub mtbf_s: f64,
    /// Mean down-time per failure, seconds.
    pub mttr_s: f64,
}

impl GatewayChurn {
    /// Compiles the process into concrete outage windows over
    /// `[0, duration_s)`. Deterministic in `(seed, self)`: the RNG stream
    /// is derived from the seed and the gateway index, so reordering the
    /// process list does not change any gateway's windows.
    pub fn compile(&self, seed: u64, duration_s: f64) -> Vec<GatewayOutage> {
        let stream = splitmix64(seed ^ FAULT_SEED_SALT ^ (self.gateway as u64));
        let mut rng = ChaCha12Rng::seed_from_u64(stream);
        let mut windows = Vec::new();
        let mut t = sample_exp(&mut rng, self.mtbf_s);
        while t < duration_s {
            let down = sample_exp(&mut rng, self.mttr_s);
            windows.push(GatewayOutage {
                gateway: self.gateway,
                from_s: t,
                to_s: (t + down).min(duration_s),
            });
            t += down + sample_exp(&mut rng, self.mtbf_s);
        }
        windows
    }
}

/// A channel jammer process: exponential quiet gaps between bursts of
/// exponential duration, at a fixed jamming power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JammerProcess {
    /// The jammed uplink channel index.
    pub channel: usize,
    /// Mean quiet gap between bursts, seconds.
    pub mean_gap_s: f64,
    /// Mean burst duration, seconds.
    pub mean_burst_s: f64,
    /// Jamming power at the gateway input, milliwatts.
    pub power_mw: f64,
}

impl JammerProcess {
    /// Compiles the process into concrete bursts over `[0, duration_s)`,
    /// deterministic in `(seed, self)` like [`GatewayChurn::compile`].
    pub fn compile(&self, seed: u64, duration_s: f64) -> Vec<JamBurst> {
        let stream = splitmix64(seed ^ FAULT_SEED_SALT ^ splitmix64(0x1A33 ^ self.channel as u64));
        let mut rng = ChaCha12Rng::seed_from_u64(stream);
        let mut bursts = Vec::new();
        let mut t = sample_exp(&mut rng, self.mean_gap_s);
        while t < duration_s {
            let len = sample_exp(&mut rng, self.mean_burst_s);
            bursts.push(JamBurst {
                channel: self.channel,
                from_s: t,
                to_s: (t + len).min(duration_s),
                power_mw: self.power_mw,
            });
            t += len + sample_exp(&mut rng, self.mean_gap_s);
        }
        bursts
    }
}

/// The full fault model of a run: stochastic processes (compiled at
/// simulation construction) plus hand-placed static windows and backhaul
/// links. `SimConfig::faults = None` disables the engine entirely.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Gateway churn processes (at most one per gateway is meaningful;
    /// several on one gateway overlay their windows).
    pub churn: Vec<GatewayChurn>,
    /// Channel jammer processes.
    pub jammers: Vec<JammerProcess>,
    /// Hand-placed jammer bursts, merged with the compiled ones.
    pub jam_bursts: Vec<JamBurst>,
    /// Per-gateway backhaul links; gateways without an entry forward
    /// losslessly with zero latency.
    pub backhaul: Vec<BackhaulLink>,
}

impl FaultConfig {
    /// Whether the configuration injects no fault at all.
    pub fn is_empty(&self) -> bool {
        self.churn.is_empty()
            && self.jammers.is_empty()
            && self.jam_bursts.is_empty()
            && self.backhaul.is_empty()
    }

    /// Validates every process and window against the deployment shape.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] naming the offending entry.
    pub fn validate(&self, n_gateways: usize, n_channels: usize) -> Result<(), SimError> {
        for (i, c) in self.churn.iter().enumerate() {
            if c.gateway >= n_gateways {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "churn[{i}]: gateway {} out of range (deployment has {n_gateways})",
                        c.gateway
                    ),
                });
            }
            if !(c.mtbf_s.is_finite() && c.mtbf_s > 0.0 && c.mttr_s.is_finite() && c.mttr_s > 0.0) {
                return Err(SimError::InvalidFault {
                    reason: format!("churn[{i}]: MTBF and MTTR must be positive and finite"),
                });
            }
        }
        for (i, j) in self.jammers.iter().enumerate() {
            if j.channel >= n_channels {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "jammers[{i}]: channel {} outside plan of {n_channels}",
                        j.channel
                    ),
                });
            }
            if !(j.mean_gap_s.is_finite()
                && j.mean_gap_s > 0.0
                && j.mean_burst_s.is_finite()
                && j.mean_burst_s > 0.0)
            {
                return Err(SimError::InvalidFault {
                    reason: format!("jammers[{i}]: gap and burst means must be positive"),
                });
            }
            if !(j.power_mw.is_finite() && j.power_mw > 0.0) {
                return Err(SimError::InvalidFault {
                    reason: format!("jammers[{i}]: power must be positive and finite"),
                });
            }
        }
        for (i, b) in self.jam_bursts.iter().enumerate() {
            if b.channel >= n_channels {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "jam_bursts[{i}]: channel {} outside plan of {n_channels}",
                        b.channel
                    ),
                });
            }
            validate_window(b.from_s, b.to_s, &format!("jam_bursts[{i}]"))?;
            if !(b.power_mw.is_finite() && b.power_mw > 0.0) {
                return Err(SimError::InvalidFault {
                    reason: format!("jam_bursts[{i}]: power must be positive and finite"),
                });
            }
        }
        for (i, b) in self.backhaul.iter().enumerate() {
            if b.gateway >= n_gateways {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "backhaul[{i}]: gateway {} out of range (deployment has {n_gateways})",
                        b.gateway
                    ),
                });
            }
            if !(b.drop_prob.is_finite() && (0.0..=1.0).contains(&b.drop_prob)) {
                return Err(SimError::InvalidFault {
                    reason: format!("backhaul[{i}]: drop probability must be in [0, 1]"),
                });
            }
            if !(b.latency_s.is_finite() && b.latency_s >= 0.0) {
                return Err(SimError::InvalidFault {
                    reason: format!("backhaul[{i}]: latency must be non-negative and finite"),
                });
            }
        }
        Ok(())
    }

    /// Compiles every stochastic process into static windows over
    /// `[0, duration_s)` and merges the hand-placed ones.
    pub fn compile(&self, seed: u64, duration_s: f64) -> (Vec<GatewayOutage>, Vec<JamBurst>) {
        let mut outages = Vec::new();
        for c in &self.churn {
            outages.extend(c.compile(seed, duration_s));
        }
        let mut bursts = self.jam_bursts.clone();
        for j in &self.jammers {
            bursts.extend(j.compile(seed, duration_s));
        }
        (outages, bursts)
    }
}

/// Validates a `[from_s, to_s)` fault window: bounds must be finite,
/// non-negative and ordered (empty windows are legal — they cover
/// nothing).
pub(crate) fn validate_window(from_s: f64, to_s: f64, what: &str) -> Result<(), SimError> {
    if !(from_s.is_finite() && to_s.is_finite()) {
        return Err(SimError::InvalidFault {
            reason: format!("{what}: window bounds must be finite"),
        });
    }
    if from_s < 0.0 || to_s < 0.0 {
        return Err(SimError::InvalidFault {
            reason: format!("{what}: window bounds must be non-negative"),
        });
    }
    if from_s > to_s {
        return Err(SimError::InvalidFault {
            reason: format!("{what}: window start {from_s} exceeds end {to_s}"),
        });
    }
    Ok(())
}

/// Stateless backhaul drop decision: a decoded copy `(gateway, device,
/// seq)` is dropped iff a seed-derived hash falls below `drop_prob`.
/// Being a pure function of the tuple, the verdict cannot depend on event
/// interleaving or worker count.
#[inline]
pub(crate) fn backhaul_drops(
    seed: u64,
    gateway: usize,
    device: usize,
    seq: u32,
    drop_prob: f64,
) -> bool {
    if drop_prob <= 0.0 {
        return false;
    }
    let h = splitmix64(
        splitmix64(seed ^ FAULT_SEED_SALT ^ 0xBAC4_4AE1)
            ^ splitmix64((gateway as u64) << 40 ^ (device as u64) << 20 ^ u64::from(seq)),
    );
    // 53 uniform bits → [0, 1).
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    u < drop_prob
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_compilation_is_deterministic_and_ordered() {
        let churn = GatewayChurn {
            gateway: 1,
            mtbf_s: 500.0,
            mttr_s: 300.0,
        };
        let a = churn.compile(42, 10_000.0);
        let b = churn.compile(42, 10_000.0);
        assert_eq!(a, b);
        assert!(
            !a.is_empty(),
            "10 ks horizon at 500 s MTBF must fail at least once"
        );
        let mut last_end = 0.0;
        for w in &a {
            assert_eq!(w.gateway, 1);
            assert!(w.from_s >= last_end, "windows must not overlap");
            assert!(w.to_s <= 10_000.0, "windows are clamped to the horizon");
            assert!(w.from_s <= w.to_s);
            last_end = w.to_s;
        }
    }

    #[test]
    fn churn_windows_depend_on_seed() {
        let churn = GatewayChurn {
            gateway: 0,
            mtbf_s: 500.0,
            mttr_s: 300.0,
        };
        assert_ne!(churn.compile(1, 10_000.0), churn.compile(2, 10_000.0));
    }

    #[test]
    fn jammer_compilation_stays_on_its_channel() {
        let j = JammerProcess {
            channel: 3,
            mean_gap_s: 400.0,
            mean_burst_s: 200.0,
            power_mw: 1e-6,
        };
        let bursts = j.compile(7, 8_000.0);
        assert!(!bursts.is_empty());
        for b in &bursts {
            assert_eq!(b.channel, 3);
            assert_eq!(b.power_mw, 1e-6);
            assert!(b.from_s <= b.to_s && b.to_s <= 8_000.0);
        }
    }

    #[test]
    fn jam_burst_overlap_is_half_open() {
        let b = JamBurst {
            channel: 0,
            from_s: 10.0,
            to_s: 20.0,
            power_mw: 1.0,
        };
        assert!(b.overlaps(0, 15.0, 16.0));
        assert!(b.overlaps(0, 5.0, 10.5));
        assert!(!b.overlaps(0, 20.0, 25.0), "burst end is exclusive");
        assert!(!b.overlaps(0, 5.0, 10.0), "reception end is exclusive");
        assert!(!b.overlaps(1, 15.0, 16.0), "other channels are unaffected");
    }

    #[test]
    fn validation_rejects_bad_entries() {
        let mut f = FaultConfig::default();
        f.churn.push(GatewayChurn {
            gateway: 2,
            mtbf_s: 100.0,
            mttr_s: 100.0,
        });
        assert!(f.validate(2, 8).is_err(), "gateway out of range");
        f.churn[0].gateway = 0;
        f.churn[0].mtbf_s = f64::NAN;
        assert!(f.validate(2, 8).is_err(), "NaN MTBF");
        f.churn[0].mtbf_s = 100.0;
        assert!(f.validate(2, 8).is_ok());

        f.backhaul.push(BackhaulLink {
            gateway: 0,
            drop_prob: 1.5,
            latency_s: 0.0,
        });
        assert!(f.validate(2, 8).is_err(), "drop probability above 1");
        f.backhaul[0].drop_prob = 0.5;
        f.backhaul[0].latency_s = -1.0;
        assert!(f.validate(2, 8).is_err(), "negative latency");
        f.backhaul[0].latency_s = 0.1;
        assert!(f.validate(2, 8).is_ok());

        f.jam_bursts.push(JamBurst {
            channel: 9,
            from_s: 0.0,
            to_s: 1.0,
            power_mw: 1.0,
        });
        assert!(f.validate(2, 8).is_err(), "channel outside plan");
        f.jam_bursts[0].channel = 0;
        f.jam_bursts[0].from_s = 2.0;
        assert!(f.validate(2, 8).is_err(), "start after end");
    }

    #[test]
    fn empty_config_is_empty() {
        assert!(FaultConfig::default().is_empty());
        let f = FaultConfig {
            backhaul: vec![BackhaulLink {
                gateway: 0,
                drop_prob: 0.0,
                latency_s: 0.0,
            }],
            ..FaultConfig::default()
        };
        assert!(!f.is_empty());
    }

    #[test]
    fn backhaul_hash_is_stable_and_respects_extremes() {
        assert!(!backhaul_drops(1, 0, 0, 0, 0.0));
        assert!(backhaul_drops(1, 0, 0, 0, 1.0));
        let a = backhaul_drops(9, 1, 5, 3, 0.5);
        assert_eq!(a, backhaul_drops(9, 1, 5, 3, 0.5));
        // Roughly half of distinct tuples drop at p = 0.5.
        let dropped = (0..1_000u32)
            .filter(|&s| backhaul_drops(9, 1, 5, s, 0.5))
            .count();
        assert!((350..=650).contains(&dropped), "{dropped} of 1000 dropped");
    }

    #[test]
    fn compile_merges_static_and_stochastic() {
        let f = FaultConfig {
            churn: vec![GatewayChurn {
                gateway: 0,
                mtbf_s: 400.0,
                mttr_s: 400.0,
            }],
            jammers: vec![JammerProcess {
                channel: 1,
                mean_gap_s: 400.0,
                mean_burst_s: 400.0,
                power_mw: 1.0,
            }],
            jam_bursts: vec![JamBurst {
                channel: 0,
                from_s: 0.0,
                to_s: 10.0,
                power_mw: 2.0,
            }],
            backhaul: Vec::new(),
        };
        let (outages, bursts) = f.compile(3, 5_000.0);
        assert!(!outages.is_empty());
        assert!(bursts.len() > 1, "static burst plus compiled ones");
        assert_eq!(bursts[0].power_mw, 2.0, "hand-placed bursts come first");
    }
}
