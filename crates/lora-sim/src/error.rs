//! Error type for simulator construction.

use std::error::Error;
use std::fmt;

/// Errors returned when configuring or constructing a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The allocation vector length does not match the device count.
    AllocationLengthMismatch {
        /// Number of devices in the topology.
        devices: usize,
        /// Number of entries in the allocation.
        allocation: usize,
    },
    /// An allocation references a channel outside the regional plan.
    ChannelOutOfRange {
        /// The device with the bad channel.
        device: usize,
        /// The offending channel index.
        channel: usize,
        /// Number of channels in the plan.
        plan_len: usize,
    },
    /// A configuration value is invalid.
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A fault-injection entry (outage window, churn/jammer process or
    /// backhaul link) is invalid: NaN or negative bounds, an inverted
    /// window, or an index outside the deployment.
    InvalidFault {
        /// Human-readable reason naming the offending entry.
        reason: String,
    },
    /// A topology-generation parameter is invalid: a zero, negative or
    /// non-finite radius, or an environment probability outside `[0, 1]` —
    /// inputs that would silently produce NaN positions or a degenerate
    /// deployment instead of the requested one.
    InvalidTopology {
        /// Human-readable reason naming the offending parameter.
        reason: String,
    },
    /// The dense attenuation matrix for this deployment would exceed the
    /// caller's byte budget — a typed refusal instead of an abort-on-OOM.
    /// The tiled per-cell build in `lora-spatial` is the escape hatch for
    /// populations past this point.
    TopologyTooLarge {
        /// Number of devices in the topology.
        devices: usize,
        /// Number of gateways in the topology.
        gateways: usize,
        /// Bytes the dense matrix would need.
        required_bytes: u64,
        /// The budget that refused it.
        budget_bytes: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::AllocationLengthMismatch {
                devices,
                allocation,
            } => write!(
                f,
                "allocation has {allocation} entries but the topology has {devices} devices"
            ),
            SimError::ChannelOutOfRange {
                device,
                channel,
                plan_len,
            } => write!(
                f,
                "device {device} allocated channel {channel} outside plan of {plan_len} channels"
            ),
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::InvalidFault { reason } => write!(f, "invalid fault injection: {reason}"),
            SimError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            SimError::TopologyTooLarge {
                devices,
                gateways,
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "dense attenuation matrix for {devices} devices x {gateways} gateways needs \
                 {required_bytes} bytes, over the {budget_bytes}-byte budget; use the tiled \
                 per-cell build (lora-spatial) for deployments this large"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn display_reads_naturally() {
        let e = SimError::AllocationLengthMismatch {
            devices: 10,
            allocation: 9,
        };
        assert!(e.to_string().contains("9 entries"));
    }
}
