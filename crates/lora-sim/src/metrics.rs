//! Fairness and distribution metrics.

/// Jain's fairness index of a set of non-negative values:
/// `(Σx)² / (n · Σx²)`. 1.0 means perfectly equal; `1/n` means one value
/// holds everything.
///
/// Returns 0 for an empty slice or all-zero values.
///
/// ```
/// let j = lora_sim::metrics::jain_index(&[1.0, 1.0, 1.0, 1.0]);
/// assert!((j - 1.0).abs() < 1e-12);
/// let j = lora_sim::metrics::jain_index(&[1.0, 0.0, 0.0, 0.0]);
/// assert!((j - 0.25).abs() < 1e-12);
/// ```
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (values.len() as f64 * sum_sq)
}

/// The minimum of a slice, or 0 for an empty (or all-NaN) slice. NaNs are
/// ignored.
pub fn minimum(values: &[f64]) -> f64 {
    let m = values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(f64::INFINITY, f64::min);
    if m.is_finite() {
        m
    } else {
        0.0
    }
}

/// The arithmetic mean, or 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The `q`-th percentile (0..=100) by linear interpolation over the sorted
/// values, or 0 for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (q.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The empirical CDF of the values: `(x, P[X ≤ x])` pairs in ascending
/// order, one per sample. Used to regenerate the paper's Fig. 5.
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        let equal = jain_index(&[2.0; 10]);
        assert!((equal - 1.0).abs() < 1e-12);
        let concentrated = jain_index(&[5.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((concentrated - 0.2).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn minimum_handles_edge_cases() {
        assert_eq!(minimum(&[3.0, 1.0, 2.0]), 1.0);
        assert_eq!(minimum(&[]), 0.0);
        assert_eq!(minimum(&[f64::NAN, 2.0]), 2.0);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 50.0);
        assert_eq!(percentile(&v, 50.0), 30.0);
        assert_eq!(percentile(&v, 25.0), 20.0);
        assert_eq!(percentile(&v, 10.0), 14.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }
}
