//! Simulation configuration.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::faults::FaultConfig;
use lora_mac::class_a::ClassAParams;
use lora_mac::collision::InterSfPolicy;
use lora_phy::energy::{Battery, RadioEnergyModel};
use lora_phy::path_loss::{BetaProfile, PathLossModel};
use lora_phy::sf::DEFAULT_NOISE_FIGURE_DB;
use lora_phy::toa::CodingRate;
use lora_phy::{Fading, Region};

/// A gateway outage window for failure-injection experiments: the gateway
/// receives nothing in `[from_s, to_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatewayOutage {
    /// Index of the affected gateway.
    pub gateway: usize,
    /// Start of the outage, seconds.
    pub from_s: f64,
    /// End of the outage, seconds.
    pub to_s: f64,
}

impl GatewayOutage {
    /// Whether the outage covers time `t` for gateway `gw`.
    #[inline]
    pub fn covers(&self, gw: usize, t: f64) -> bool {
        self.gateway == gw && (self.from_s..self.to_s).contains(&t)
    }
}

/// How uplink traffic is generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Traffic {
    /// Periodic reporting every `report_interval_s` seconds (or the
    /// per-device overrides) regardless of the spreading factor.
    #[default]
    Periodic,
    /// Every device offers a fixed duty cycle: its reporting interval is
    /// `ToA(SF)/duty`, so an SF7 device sends ~25× more often than an SF12
    /// one. This is the paper's Section IV setting ("duty cycle was set to
    /// 1 %") and the regime in which contention — not range — dominates.
    DutyCycleTarget {
        /// The offered duty cycle, e.g. 0.01 for the ETSI 1 % cap.
        duty: f64,
    },
}

/// Confirmed-uplink retransmission policy (LoRaWAN class A confirmed
/// traffic): a cycle's frame is retransmitted after a random backoff until
/// a gateway receives it or the attempt budget is exhausted. This turns
/// the paper's Eq. (2) retransmission energy `E_s/PRR` into a *measured*
/// quantity — lossy devices burn real simulated energy on retries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfirmedTraffic {
    /// Maximum transmissions per application frame (LoRaWAN default: 8).
    pub max_attempts: u8,
    /// Minimum retransmission backoff, seconds. LoRaWAN retries after the
    /// RX2 window closes plus `ACK_TIMEOUT` jitter, so ≥ ~2 s.
    pub backoff_min_s: f64,
    /// Maximum retransmission backoff, seconds.
    pub backoff_max_s: f64,
    /// Class-A receive-window parameters: every attempt pays the RX1+RX2
    /// listening energy on top of the TX burst.
    pub class_a: ClassAParams,
}

impl Default for ConfirmedTraffic {
    fn default() -> Self {
        ConfirmedTraffic {
            max_attempts: 8,
            backoff_min_s: 2.0,
            backoff_max_s: 4.0,
            class_a: ClassAParams::default(),
        }
    }
}

/// Full configuration of a simulation run.
///
/// Defaults reproduce the paper's evaluation setup (Section IV): US915
/// sub-band channels, 8-byte application payload (21-byte PHY payload),
/// CR 4/7, Rayleigh fading, eight demodulator paths per gateway, 1 %
/// duty-cycle region, and the β = 2.7/4.0 LoS/NLoS profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; equal seeds with equal inputs give bit-identical reports.
    pub seed: u64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Reporting interval `T_g` in seconds (paper Eq. 15).
    pub report_interval_s: f64,
    /// Optional per-device reporting intervals, overriding
    /// `report_interval_s` device by device — the paper's Section III-E
    /// "different transmission rates" extension. Length must equal the
    /// device count when set. Ignored under
    /// [`Traffic::DutyCycleTarget`].
    pub per_device_intervals_s: Option<Vec<f64>>,
    /// Traffic generation model.
    pub traffic: Traffic,
    /// Confirmed-uplink retransmissions; `None` (the default) is plain
    /// unconfirmed traffic.
    pub confirmed: Option<ConfirmedTraffic>,
    /// Application payload size in bytes (paper: 8).
    pub app_payload: usize,
    /// Operating region (channel plan, TP levels, duty-cycle cap).
    pub region: Region,
    /// Coding rate (paper: 4/7).
    pub coding_rate: CodingRate,
    /// Large-scale path loss model.
    pub path_loss: PathLossModel,
    /// LoS/NLoS path-loss exponents.
    pub betas: BetaProfile,
    /// Probability that a device is line-of-sight (drawn at topology
    /// generation).
    pub p_los: f64,
    /// Small-scale fading model.
    pub fading: Fading,
    /// Gateway receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// Co-SF capture threshold in dB: with interference present, the signal
    /// must exceed the (weighted) interference power by this margin to be
    /// captured. 6 dB is the standard LoRa figure (Goursaud & Gorce, used
    /// by the NS-3 module the paper simulates on); with near-equal powers
    /// this reproduces the paper's "same SF + same channel + any overlap →
    /// both collide" rule.
    pub capture_threshold_db: f64,
    /// Cross-SF interference policy.
    pub inter_sf: InterSfPolicy,
    /// Demodulator paths per gateway (SX1301: 8).
    pub demod_capacity: usize,
    /// Radio energy model.
    pub energy: RadioEnergyModel,
    /// Device battery.
    pub battery: Battery,
    /// Gateway outage windows for failure injection.
    pub outages: Vec<GatewayOutage>,
    /// Fault-injection model: churn/jammer processes, hand-placed jam
    /// bursts and lossy backhaul links. `None` (the default, and the
    /// value deserialised from pre-fault-engine JSON) disables the
    /// engine entirely; the simulator output is then bit-identical to a
    /// build without it.
    pub faults: Option<FaultConfig>,
}

impl SimConfig {
    /// Starts building a configuration from the paper defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// The PHY payload length implied by the application payload
    /// (LoRaWAN adds 13 bytes of MAC overhead).
    pub fn phy_payload_len(&self) -> usize {
        self.app_payload + lora_mac::frame::MAC_OVERHEAD
    }

    /// Delivered data bits per successfully received frame, used for the
    /// bits/mJ energy-efficiency metric (the paper's `L` in Eq. 2).
    pub fn payload_bits(&self) -> f64 {
        (self.phy_payload_len() * 8) as f64
    }

    /// The reporting interval of device `i`: its per-device override when
    /// [`SimConfig::per_device_intervals_s`] is set, the common `T_g`
    /// otherwise.
    pub fn interval_of(&self, device: usize) -> f64 {
        self.per_device_intervals_s
            .as_ref()
            .and_then(|v| v.get(device).copied())
            .unwrap_or(self.report_interval_s)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            duration_s: 6_000.0,
            report_interval_s: 600.0,
            per_device_intervals_s: None,
            traffic: Traffic::default(),
            confirmed: None,
            app_payload: 8,
            region: Region::Us915Sub1,
            coding_rate: CodingRate::Cr4_7,
            path_loss: PathLossModel::default(),
            betas: BetaProfile::PAPER_BASE,
            p_los: 0.3,
            fading: Fading::Rayleigh,
            noise_figure_db: DEFAULT_NOISE_FIGURE_DB,
            capture_threshold_db: 6.0,
            inter_sf: InterSfPolicy::Orthogonal,
            demod_capacity: lora_mac::GATEWAY_MAX_CONCURRENT,
            energy: RadioEnergyModel::sx1276(),
            battery: Battery::default(),
            outages: Vec::new(),
            faults: None,
        }
    }
}

/// Builder for [`SimConfig`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Sets the simulated duration in seconds.
    pub fn duration_s(&mut self, duration_s: f64) -> &mut Self {
        self.config.duration_s = duration_s;
        self
    }

    /// Sets the reporting interval `T_g` in seconds.
    pub fn report_interval_s(&mut self, interval_s: f64) -> &mut Self {
        self.config.report_interval_s = interval_s;
        self
    }

    /// Sets per-device reporting intervals (the Section III-E
    /// heterogeneous-rates extension). Must have one entry per device.
    pub fn per_device_intervals_s(&mut self, intervals: Vec<f64>) -> &mut Self {
        self.config.per_device_intervals_s = Some(intervals);
        self
    }

    /// Sets the traffic model.
    pub fn traffic(&mut self, traffic: Traffic) -> &mut Self {
        self.config.traffic = traffic;
        self
    }

    /// Enables confirmed-uplink retransmissions.
    pub fn confirmed(&mut self, policy: ConfirmedTraffic) -> &mut Self {
        self.config.confirmed = Some(policy);
        self
    }

    /// Sets the application payload size in bytes.
    pub fn app_payload(&mut self, bytes: usize) -> &mut Self {
        self.config.app_payload = bytes;
        self
    }

    /// Sets the operating region.
    pub fn region(&mut self, region: Region) -> &mut Self {
        self.config.region = region;
        self
    }

    /// Sets the path-loss model.
    pub fn path_loss(&mut self, model: PathLossModel) -> &mut Self {
        self.config.path_loss = model;
        self
    }

    /// Sets the LoS/NLoS exponent profile.
    pub fn betas(&mut self, betas: BetaProfile) -> &mut Self {
        self.config.betas = betas;
        self
    }

    /// Sets the probability that a generated device is line-of-sight.
    pub fn p_los(&mut self, p: f64) -> &mut Self {
        self.config.p_los = p;
        self
    }

    /// Sets the fading model.
    pub fn fading(&mut self, fading: Fading) -> &mut Self {
        self.config.fading = fading;
        self
    }

    /// Sets the cross-SF interference policy.
    pub fn inter_sf(&mut self, policy: InterSfPolicy) -> &mut Self {
        self.config.inter_sf = policy;
        self
    }

    /// Sets the co-SF capture threshold in dB.
    pub fn capture_threshold_db(&mut self, db: f64) -> &mut Self {
        self.config.capture_threshold_db = db;
        self
    }

    /// Sets the number of demodulator paths per gateway.
    pub fn demod_capacity(&mut self, paths: usize) -> &mut Self {
        self.config.demod_capacity = paths;
        self
    }

    /// Sets the radio energy model.
    pub fn energy(&mut self, model: RadioEnergyModel) -> &mut Self {
        self.config.energy = model;
        self
    }

    /// Sets the device battery.
    pub fn battery(&mut self, battery: Battery) -> &mut Self {
        self.config.battery = battery;
        self
    }

    /// Adds a gateway outage window.
    pub fn outage(&mut self, outage: GatewayOutage) -> &mut Self {
        self.config.outages.push(outage);
        self
    }

    /// Sets the fault-injection model (churn/jammer processes, jam
    /// bursts, backhaul links).
    pub fn faults(&mut self, faults: FaultConfig) -> &mut Self {
        self.config.faults = Some(faults);
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a malformed fault window (see
    /// [`SimConfigBuilder::try_build`] for the fallible variant).
    pub fn build(&self) -> SimConfig {
        self.try_build()
            .expect("SimConfigBuilder holds an invalid fault window")
    }

    /// Finalises the configuration, rejecting malformed fault injection
    /// up front instead of letting an inverted or NaN window silently
    /// never match at run time.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] for an outage or jam window with
    /// `from_s > to_s` or NaN/negative bounds, or fault-process
    /// parameters that are non-positive or out of range. Gateway and
    /// channel indices are checked against the actual deployment shape in
    /// [`Simulation::new`](crate::Simulation::new), which repeats all of
    /// these checks for configurations assembled without the builder.
    pub fn try_build(&self) -> Result<SimConfig, SimError> {
        for (i, o) in self.config.outages.iter().enumerate() {
            crate::faults::validate_window(o.from_s, o.to_s, &format!("outages[{i}]"))?;
        }
        if let Some(faults) = &self.config.faults {
            // The deployment shape is unknown until `Simulation::new`;
            // validate everything else with out-of-range sentinels.
            faults.validate(usize::MAX, usize::MAX)?;
        }
        Ok(self.config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_evaluation() {
        let c = SimConfig::default();
        assert_eq!(c.app_payload, 8);
        assert_eq!(c.phy_payload_len(), 21);
        assert_eq!(c.payload_bits(), 168.0);
        assert_eq!(c.region, Region::Us915Sub1);
        assert_eq!(c.coding_rate, CodingRate::Cr4_7);
        assert_eq!(c.demod_capacity, 8);
        assert_eq!(c.betas, BetaProfile::PAPER_BASE);
    }

    #[test]
    fn builder_sets_fields() {
        let c = SimConfig::builder()
            .seed(99)
            .duration_s(100.0)
            .report_interval_s(10.0)
            .app_payload(16)
            .demod_capacity(4)
            .p_los(0.7)
            .build();
        assert_eq!(c.seed, 99);
        assert_eq!(c.duration_s, 100.0);
        assert_eq!(c.report_interval_s, 10.0);
        assert_eq!(c.phy_payload_len(), 29);
        assert_eq!(c.demod_capacity, 4);
        assert_eq!(c.p_los, 0.7);
    }

    #[test]
    fn builder_rejects_inverted_outage_window() {
        let mut b = SimConfig::builder();
        b.outage(GatewayOutage {
            gateway: 0,
            from_s: 50.0,
            to_s: 10.0,
        });
        assert!(matches!(b.try_build(), Err(SimError::InvalidFault { .. })));
    }

    #[test]
    fn builder_rejects_nan_and_negative_bounds() {
        let mut b = SimConfig::builder();
        b.outage(GatewayOutage {
            gateway: 0,
            from_s: f64::NAN,
            to_s: 10.0,
        });
        assert!(b.try_build().is_err());
        let mut b = SimConfig::builder();
        b.outage(GatewayOutage {
            gateway: 0,
            from_s: -5.0,
            to_s: 10.0,
        });
        assert!(b.try_build().is_err());
    }

    #[test]
    fn builder_accepts_valid_faults() {
        let mut b = SimConfig::builder();
        b.outage(GatewayOutage {
            gateway: 3,
            from_s: 0.0,
            to_s: 10.0,
        });
        b.faults(FaultConfig {
            churn: vec![crate::faults::GatewayChurn {
                gateway: 1,
                mtbf_s: 100.0,
                mttr_s: 50.0,
            }],
            ..FaultConfig::default()
        });
        let c = b.try_build().unwrap();
        assert_eq!(c.faults.as_ref().unwrap().churn.len(), 1);
    }

    #[test]
    fn builder_rejects_bad_fault_process() {
        let mut b = SimConfig::builder();
        b.faults(FaultConfig {
            churn: vec![crate::faults::GatewayChurn {
                gateway: 0,
                mtbf_s: -1.0,
                mttr_s: 50.0,
            }],
            ..FaultConfig::default()
        });
        assert!(matches!(b.try_build(), Err(SimError::InvalidFault { .. })));
    }

    #[test]
    fn outage_window_is_half_open() {
        let o = GatewayOutage {
            gateway: 2,
            from_s: 10.0,
            to_s: 20.0,
        };
        assert!(o.covers(2, 10.0));
        assert!(o.covers(2, 19.99));
        assert!(!o.covers(2, 20.0));
        assert!(!o.covers(1, 15.0));
    }
}
