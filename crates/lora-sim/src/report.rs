//! Simulation results.

use serde::{Deserialize, Serialize};

use lora_phy::{SpreadingFactor, TxConfig};

use crate::metrics;

/// Per-device statistics from one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Number of transmission attempts.
    pub attempts: u32,
    /// Number of transmissions delivered (received by ≥ 1 gateway).
    pub delivered: u32,
    /// Total electrical energy consumed, joules (TX + overhead + sleep).
    pub energy_j: f64,
    /// Energy efficiency in bits per millijoule (paper Eq. 2):
    /// delivered payload bits / consumed energy.
    pub ee_bits_per_mj: f64,
    /// Projected battery lifetime in seconds at this consumption rate,
    /// `None` for a device that never transmitted.
    pub lifetime_s: Option<f64>,
}

impl DeviceStats {
    /// The measured packet reception ratio.
    pub fn prr(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            f64::from(self.delivered) / f64::from(self.attempts)
        }
    }
}

/// Per-gateway statistics from one simulation run.
///
/// Every transmission attempt meets exactly one of these eight fates at
/// every gateway, so the counters sum to the network-wide attempt count —
/// the reception-conservation invariant the conformance engine checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewayStats {
    /// Copies successfully decoded *and* forwarded to the network server.
    pub decoded: u64,
    /// Receptions lost because all demodulator paths were busy (the
    /// paper's Eq. 6 capacity limit binding).
    pub demod_refused: u64,
    /// Receptions that locked a path but failed the SINR check (co-SF
    /// collisions).
    pub sinr_failures: u64,
    /// Transmissions whose received power was below this gateway's
    /// sensitivity (out of range / deep fade).
    pub below_sensitivity: u64,
    /// Receptions dropped because the gateway was in an injected outage.
    pub outage_drops: u64,
    /// Receptions dropped because the half-duplex gateway was transmitting
    /// a downlink acknowledgement (confirmed traffic only).
    pub half_duplex_drops: u64,
    /// Receptions that failed the SINR check only because of a jammer
    /// burst: with the jam power removed the copy would have decoded.
    /// Disjoint from [`GatewayStats::sinr_failures`].
    pub jammed_drops: u64,
    /// PHY-decoded copies dropped on the lossy backhaul before reaching
    /// the network server. Disjoint from [`GatewayStats::decoded`], so a
    /// backhaul loss never double-counts against any PHY-level drop.
    pub backhaul_drops: u64,
}

// Hand-written serde impls (the derive would serialise every field): the
// fault-era counters are omitted when zero and default to zero when
// missing, so fault-free reports stay byte-identical to the pre-fault
// engine's JSON and old reports still parse.
impl Serialize for GatewayStats {
    fn to_value(&self) -> serde::Value {
        let mut obj: Vec<(String, serde::Value)> = vec![
            ("decoded".to_string(), self.decoded.to_value()),
            ("demod_refused".to_string(), self.demod_refused.to_value()),
            ("sinr_failures".to_string(), self.sinr_failures.to_value()),
            (
                "below_sensitivity".to_string(),
                self.below_sensitivity.to_value(),
            ),
            ("outage_drops".to_string(), self.outage_drops.to_value()),
            (
                "half_duplex_drops".to_string(),
                self.half_duplex_drops.to_value(),
            ),
        ];
        if self.jammed_drops != 0 {
            obj.push(("jammed_drops".to_string(), self.jammed_drops.to_value()));
        }
        if self.backhaul_drops != 0 {
            obj.push(("backhaul_drops".to_string(), self.backhaul_drops.to_value()));
        }
        serde::Value::Object(obj)
    }
}

impl Deserialize for GatewayStats {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value.as_object().ok_or_else(|| {
            serde::Error::custom(format!(
                "expected object for GatewayStats, got {}",
                value.kind()
            ))
        })?;
        let required = |name: &str| -> Result<u64, serde::Error> {
            match obj.iter().find(|(k, _)| k.as_str() == name) {
                Some((_, v)) => Deserialize::from_value(v)
                    .map_err(|e: serde::Error| e.contextualize(&format!("GatewayStats.{name}"))),
                None => Err(serde::Error::custom(format!(
                    "missing field `GatewayStats.{name}`"
                ))),
            }
        };
        let optional = |name: &str| -> Result<u64, serde::Error> {
            match obj.iter().find(|(k, _)| k.as_str() == name) {
                Some((_, v)) => Deserialize::from_value(v)
                    .map_err(|e: serde::Error| e.contextualize(&format!("GatewayStats.{name}"))),
                None => Ok(0),
            }
        };
        Ok(GatewayStats {
            decoded: required("decoded")?,
            demod_refused: required("demod_refused")?,
            sinr_failures: required("sinr_failures")?,
            below_sensitivity: required("below_sensitivity")?,
            outage_drops: required("outage_drops")?,
            half_duplex_drops: required("half_duplex_drops")?,
            jammed_drops: optional("jammed_drops")?,
            backhaul_drops: optional("backhaul_drops")?,
        })
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-device statistics, indexed like the topology's device list.
    pub devices: Vec<DeviceStats>,
    /// Per-gateway statistics.
    pub gateways: Vec<GatewayStats>,
    /// Unique frames delivered network-wide.
    pub frames_delivered: u64,
    /// Redundant copies discarded by de-duplication.
    pub duplicate_copies: u64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
}

impl SimReport {
    /// Energy efficiency of every device, bits per millijoule.
    pub fn ee_values(&self) -> Vec<f64> {
        self.devices.iter().map(|d| d.ee_bits_per_mj).collect()
    }

    /// The paper's fairness metric: the minimum energy efficiency across
    /// devices, bits per millijoule.
    pub fn min_energy_efficiency_bits_per_mj(&self) -> f64 {
        metrics::minimum(&self.ee_values())
    }

    /// Mean energy efficiency, bits per millijoule.
    pub fn mean_energy_efficiency_bits_per_mj(&self) -> f64 {
        metrics::mean(&self.ee_values())
    }

    /// Jain's fairness index of the energy efficiencies.
    pub fn jain_fairness(&self) -> f64 {
        metrics::jain_index(&self.ee_values())
    }

    /// Mean packet reception ratio across devices.
    pub fn mean_prr(&self) -> f64 {
        metrics::mean(
            &self
                .devices
                .iter()
                .map(DeviceStats::prr)
                .collect::<Vec<_>>(),
        )
    }

    /// Network lifetime per the paper's Section IV definition: the time at
    /// which `dead_fraction` (e.g. 0.10) of the devices have exhausted
    /// their batteries — the `dead_fraction`-quantile of device lifetimes.
    /// Devices that never transmitted are excluded.
    pub fn network_lifetime_s(&self, dead_fraction: f64) -> f64 {
        let lifetimes: Vec<f64> = self.devices.iter().filter_map(|d| d.lifetime_s).collect();
        metrics::percentile(&lifetimes, dead_fraction * 100.0)
    }

    /// The empirical CDF of energy efficiencies (paper Fig. 5).
    pub fn ee_cdf(&self) -> Vec<(f64, f64)> {
        metrics::empirical_cdf(&self.ee_values())
    }

    /// Per-spreading-factor breakdown of the run, given the allocation the
    /// run used: device count, mean PRR and mean EE per SF — the view the
    /// paper's Fig. 4 discussion reasons in ("end devices that use large
    /// spreading factors…").
    ///
    /// # Panics
    ///
    /// Panics if `alloc` does not have one entry per reported device.
    pub fn per_sf_breakdown(&self, alloc: &[TxConfig]) -> [SfBreakdown; 6] {
        assert_eq!(
            alloc.len(),
            self.devices.len(),
            "allocation/report size mismatch"
        );
        let mut out = [SfBreakdown::default(); 6];
        for (cfg, d) in alloc.iter().zip(&self.devices) {
            let b = &mut out[cfg.sf.index()];
            b.devices += 1;
            b.mean_prr += d.prr();
            b.mean_ee_bits_per_mj += d.ee_bits_per_mj;
        }
        for b in &mut out {
            if b.devices > 0 {
                b.mean_prr /= b.devices as f64;
                b.mean_ee_bits_per_mj /= b.devices as f64;
            }
        }
        out
    }
}

/// Aggregated statistics for the devices sharing one spreading factor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SfBreakdown {
    /// Devices allocated this SF.
    pub devices: usize,
    /// Their mean packet reception ratio.
    pub mean_prr: f64,
    /// Their mean energy efficiency, bits/mJ.
    pub mean_ee_bits_per_mj: f64,
}

impl SfBreakdown {
    /// Convenience: the six SFs in order, for labelling breakdown rows.
    pub fn sf_labels() -> [SpreadingFactor; 6] {
        SpreadingFactor::ALL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            devices: vec![
                DeviceStats {
                    attempts: 10,
                    delivered: 9,
                    energy_j: 1.0,
                    ee_bits_per_mj: 1.5,
                    lifetime_s: Some(1_000.0),
                },
                DeviceStats {
                    attempts: 10,
                    delivered: 5,
                    energy_j: 2.0,
                    ee_bits_per_mj: 0.5,
                    lifetime_s: Some(500.0),
                },
                DeviceStats {
                    attempts: 10,
                    delivered: 8,
                    energy_j: 1.5,
                    ee_bits_per_mj: 1.0,
                    lifetime_s: Some(750.0),
                },
            ],
            gateways: vec![GatewayStats::default()],
            frames_delivered: 22,
            duplicate_copies: 3,
            duration_s: 6_000.0,
        }
    }

    #[test]
    fn min_and_mean_ee() {
        let r = report();
        assert_eq!(r.min_energy_efficiency_bits_per_mj(), 0.5);
        assert!((r.mean_energy_efficiency_bits_per_mj() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prr_per_device_and_mean() {
        let r = report();
        assert!((r.devices[0].prr() - 0.9).abs() < 1e-12);
        assert!((r.mean_prr() - (0.9 + 0.5 + 0.8) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_attempts_prr_is_zero() {
        let d = DeviceStats {
            attempts: 0,
            delivered: 0,
            energy_j: 0.0,
            ee_bits_per_mj: 0.0,
            lifetime_s: None,
        };
        assert_eq!(d.prr(), 0.0);
    }

    #[test]
    fn network_lifetime_is_low_quantile() {
        let r = report();
        // 10 % quantile of {500, 750, 1000} by interpolation: 550.
        assert!((r.network_lifetime_s(0.10) - 550.0).abs() < 1e-9);
        // First-death definition (fraction → 0).
        assert_eq!(r.network_lifetime_s(0.0), 500.0);
    }

    #[test]
    fn per_sf_breakdown_partitions_devices() {
        let r = report();
        let alloc = vec![
            TxConfig::new(SpreadingFactor::Sf7, lora_phy::TxPowerDbm::new(14.0), 0),
            TxConfig::new(SpreadingFactor::Sf9, lora_phy::TxPowerDbm::new(14.0), 1),
            TxConfig::new(SpreadingFactor::Sf9, lora_phy::TxPowerDbm::new(2.0), 2),
        ];
        let b = r.per_sf_breakdown(&alloc);
        assert_eq!(b[SpreadingFactor::Sf7.index()].devices, 1);
        assert_eq!(b[SpreadingFactor::Sf9.index()].devices, 2);
        assert_eq!(b.iter().map(|x| x.devices).sum::<usize>(), 3);
        // SF9 group: PRRs 0.5 and 0.8 → mean 0.65.
        assert!((b[SpreadingFactor::Sf9.index()].mean_prr - 0.65).abs() < 1e-12);
        // Empty SFs stay zeroed.
        assert_eq!(b[SpreadingFactor::Sf12.index()], SfBreakdown::default());
    }

    #[test]
    fn cdf_covers_all_devices() {
        let r = report();
        let cdf = r.ee_cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, 0.5);
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }
}
