//! The shared radio medium: concurrent transmissions and interference.
//!
//! Every in-flight transmission carries, per gateway, the received signal
//! power (path loss + one Rayleigh draw) and an accumulator of interfering
//! power. When a new transmission starts, it exchanges interference
//! contributions with every overlapping transmission on the same channel,
//! weighted by the inter-SF policy (1 for co-SF pairs — the paper's rule —
//! and 0 or a rejection-derived weight for cross-SF pairs). The paper's
//! "any overlap counts" rule is inherited from this bookkeeping: any
//! overlap deposits the full interferer power into the accumulator.

use lora_mac::collision::InterSfPolicy;
use lora_phy::SpreadingFactor;

/// One transmission currently in the air.
#[derive(Debug, Clone)]
pub struct ActiveTx {
    /// Transmitting device index.
    pub device: usize,
    /// Transmission sequence number on that device.
    pub seq: u32,
    /// Start time, seconds.
    pub start_s: f64,
    /// End time, seconds.
    pub end_s: f64,
    /// Spreading factor in use.
    pub sf: SpreadingFactor,
    /// Channel index in use.
    pub channel: usize,
    /// Received signal power per gateway, milliwatts (fading applied).
    pub rx_power_mw: Vec<f64>,
    /// Accumulated interference per gateway, milliwatts.
    pub interference_mw: Vec<f64>,
    /// Whether a demodulator path was locked per gateway.
    pub demod_locked: Vec<bool>,
}

impl ActiveTx {
    /// Signal-to-interference-plus-noise ratio in dB at gateway `gw`, given
    /// a noise floor in milliwatts.
    pub fn sinr_db(&self, gw: usize, noise_mw: f64) -> f64 {
        let signal = self.rx_power_mw[gw];
        let denom = self.interference_mw[gw] + noise_mw;
        10.0 * (signal / denom).log10()
    }

    /// Total jamming power overlapping this transmission, milliwatts.
    /// Added to the noise floor in [`ActiveTx::sinr_db`]'s `noise_mw`
    /// argument; `0.0` when no burst touches the reception, which keeps
    /// the fault-free SINR bit-identical (`x + 0.0 == x` in IEEE 754).
    pub fn jam_noise_mw(&self, bursts: &[crate::faults::JamBurst]) -> f64 {
        bursts
            .iter()
            .filter(|b| b.overlaps(self.channel, self.start_s, self.end_s))
            .map(|b| b.power_mw)
            .sum()
    }
}

/// The set of in-flight transmissions with interference bookkeeping.
#[derive(Debug)]
pub struct Medium {
    active: Vec<ActiveTx>,
    inter_sf: InterSfPolicy,
    n_gateways: usize,
}

impl Medium {
    /// Creates an empty medium.
    pub fn new(inter_sf: InterSfPolicy, n_gateways: usize) -> Self {
        Medium {
            active: Vec::new(),
            inter_sf,
            n_gateways,
        }
    }

    /// Number of transmissions currently in the air.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Inserts a new transmission, exchanging interference with every
    /// overlapping transmission on the same channel.
    pub fn start(&mut self, mut tx: ActiveTx) {
        debug_assert_eq!(tx.rx_power_mw.len(), self.n_gateways);
        debug_assert_eq!(tx.interference_mw.len(), self.n_gateways);
        for other in &mut self.active {
            if other.channel != tx.channel {
                continue;
            }
            // `other` suffers from `tx` …
            let w_other = self.inter_sf.interference_weight(other.sf, tx.sf);
            // … and `tx` suffers from `other`.
            let w_tx = self.inter_sf.interference_weight(tx.sf, other.sf);
            if w_other == 0.0 && w_tx == 0.0 {
                continue;
            }
            for gw in 0..self.n_gateways {
                other.interference_mw[gw] += w_other * tx.rx_power_mw[gw];
                tx.interference_mw[gw] += w_tx * other.rx_power_mw[gw];
            }
        }
        self.active.push(tx);
    }

    /// Removes and returns the transmission `(device, seq)` at its end time.
    ///
    /// # Panics
    ///
    /// Panics if the transmission is not in flight — the event queue
    /// guarantees one `TxEnd` per `TxStart`.
    pub fn end(&mut self, device: usize, seq: u32) -> ActiveTx {
        let idx = self
            .active
            .iter()
            .position(|t| t.device == device && t.seq == seq)
            .expect("TxEnd without matching TxStart");
        self.active.swap_remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(device: usize, sf: SpreadingFactor, channel: usize, power_mw: f64) -> ActiveTx {
        ActiveTx {
            device,
            seq: 0,
            start_s: 0.0,
            end_s: 1.0,
            sf,
            channel,
            rx_power_mw: vec![power_mw, power_mw / 2.0],
            interference_mw: vec![0.0; 2],
            demod_locked: vec![true; 2],
        }
    }

    #[test]
    fn co_sf_co_channel_exchange_full_power() {
        let mut m = Medium::new(InterSfPolicy::Orthogonal, 2);
        m.start(tx(0, SpreadingFactor::Sf7, 0, 1.0));
        m.start(tx(1, SpreadingFactor::Sf7, 0, 2.0));
        let a = m.end(0, 0);
        let b = m.end(1, 0);
        assert_eq!(a.interference_mw[0], 2.0);
        assert_eq!(a.interference_mw[1], 1.0);
        assert_eq!(b.interference_mw[0], 1.0);
        assert_eq!(b.interference_mw[1], 0.5);
    }

    #[test]
    fn different_channel_does_not_interfere() {
        let mut m = Medium::new(InterSfPolicy::Orthogonal, 2);
        m.start(tx(0, SpreadingFactor::Sf7, 0, 1.0));
        m.start(tx(1, SpreadingFactor::Sf7, 1, 2.0));
        assert_eq!(m.end(0, 0).interference_mw, vec![0.0, 0.0]);
    }

    #[test]
    fn different_sf_orthogonal_policy() {
        let mut m = Medium::new(InterSfPolicy::Orthogonal, 2);
        m.start(tx(0, SpreadingFactor::Sf7, 0, 1.0));
        m.start(tx(1, SpreadingFactor::Sf9, 0, 2.0));
        assert_eq!(m.end(0, 0).interference_mw, vec![0.0, 0.0]);
    }

    #[test]
    fn different_sf_imperfect_policy_leaks() {
        let mut m = Medium::new(InterSfPolicy::ImperfectOrthogonality, 2);
        m.start(tx(0, SpreadingFactor::Sf7, 0, 1.0));
        m.start(tx(1, SpreadingFactor::Sf9, 0, 2.0));
        let a = m.end(0, 0);
        assert!(a.interference_mw[0] > 0.0);
        assert!(a.interference_mw[0] < 2.0, "cross-SF leak is attenuated");
    }

    #[test]
    fn three_way_interference_accumulates() {
        let mut m = Medium::new(InterSfPolicy::Orthogonal, 2);
        m.start(tx(0, SpreadingFactor::Sf8, 3, 1.0));
        m.start(tx(1, SpreadingFactor::Sf8, 3, 2.0));
        m.start(tx(2, SpreadingFactor::Sf8, 3, 4.0));
        let a = m.end(0, 0);
        assert_eq!(a.interference_mw[0], 6.0);
    }

    #[test]
    fn sinr_computation() {
        let mut t = tx(0, SpreadingFactor::Sf7, 0, 1.0);
        t.interference_mw = vec![0.0, 0.0];
        // No interference: SINR = signal / noise.
        let sinr = t.sinr_db(0, 0.1);
        assert!((sinr - 10.0).abs() < 1e-9);
        t.interference_mw[0] = 0.9;
        assert!((t.sinr_db(0, 0.1) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn ended_transmissions_stop_interfering() {
        let mut m = Medium::new(InterSfPolicy::Orthogonal, 2);
        m.start(tx(0, SpreadingFactor::Sf7, 0, 1.0));
        let _ = m.end(0, 0);
        m.start(tx(1, SpreadingFactor::Sf7, 0, 2.0));
        assert_eq!(m.end(1, 0).interference_mw, vec![0.0, 0.0]);
    }

    #[test]
    fn jam_noise_sums_overlapping_bursts_only() {
        use crate::faults::JamBurst;
        let t = tx(0, SpreadingFactor::Sf7, 2, 1.0); // airborne over [0, 1)
        let bursts = [
            JamBurst {
                channel: 2,
                from_s: 0.5,
                to_s: 2.0,
                power_mw: 1e-6,
            },
            JamBurst {
                channel: 2,
                from_s: 0.0,
                to_s: 0.2,
                power_mw: 3e-6,
            },
            JamBurst {
                channel: 1,
                from_s: 0.0,
                to_s: 2.0,
                power_mw: 7e-6,
            }, // other channel
            JamBurst {
                channel: 2,
                from_s: 1.0,
                to_s: 2.0,
                power_mw: 9e-6,
            }, // starts at end
        ];
        assert!((t.jam_noise_mw(&bursts) - 4e-6).abs() < 1e-18);
        assert_eq!(t.jam_noise_mw(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "TxEnd without matching TxStart")]
    fn end_without_start_panics() {
        let mut m = Medium::new(InterSfPolicy::Orthogonal, 1);
        let _ = m.end(3, 1);
    }
}
