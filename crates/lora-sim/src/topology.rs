//! Network deployments: device and gateway placement.
//!
//! The paper deploys end devices uniformly inside a disc of 5 km radius and
//! places gateways on the cross positions of a mesh over the region — one
//! gateway sits at the centre, multiple gateways form a grid scaled to the
//! coverage (Section IV).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use lora_phy::path_loss::LinkEnvironment;

use crate::config::SimConfig;
use crate::error::SimError;

/// A 2-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate, metres.
    pub x: f64,
    /// Y coordinate, metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, metres.
    ///
    /// ```
    /// use lora_sim::Position;
    /// let d = Position::new(0.0, 0.0).distance_to(&Position::new(3.0, 4.0));
    /// assert!((d - 5.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn distance_to(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// One end-device site: where the device sits and how it propagates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSite {
    /// Device position.
    pub position: Position,
    /// Line-of-sight or not — selects the path-loss exponent from the
    /// configured [`lora_phy::path_loss::BetaProfile`].
    pub environment: LinkEnvironment,
}

/// A deployment: device sites plus gateway positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    devices: Vec<DeviceSite>,
    gateways: Vec<Position>,
    radius_m: f64,
}

impl Topology {
    /// Creates a topology from explicit sites (for tests and motivation
    /// scenarios).
    pub fn from_sites(devices: Vec<DeviceSite>, gateways: Vec<Position>, radius_m: f64) -> Self {
        Topology {
            devices,
            gateways,
            radius_m,
        }
    }

    /// Generates the paper's deployment: `n_devices` uniform in a disc of
    /// `radius_m`, `n_gateways` on a mesh grid (one gateway → centre), and
    /// LoS/NLoS environments drawn with probability `config.p_los`.
    ///
    /// The `seed` controls placement only; it is independent of the
    /// simulation seed so that the same topology can be re-simulated under
    /// different channel randomness (the paper repeats each deployment 100
    /// times).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive radius, or `config.p_los`
    /// outside `[0, 1]` — inputs that previously produced NaN positions or
    /// a skewed LoS mix silently. Use [`Topology::try_disc`] to handle the
    /// error instead.
    pub fn disc(
        n_devices: usize,
        n_gateways: usize,
        radius_m: f64,
        config: &SimConfig,
        seed: u64,
    ) -> Self {
        Self::try_disc(n_devices, n_gateways, radius_m, config, seed)
            .expect("invalid disc deployment parameters")
    }

    /// Fallible variant of [`Topology::disc`]: validates the generation
    /// parameters before sampling. For valid inputs the result is
    /// byte-identical to `disc` (same RNG stream, same draws).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTopology`] when `radius_m` is NaN, infinite,
    /// zero or negative, or when `config.p_los` is NaN or outside
    /// `[0, 1]` — previously those inputs sailed through and produced NaN
    /// device positions (every distance, and hence every path loss,
    /// became NaN) or an impossible LoS probability.
    pub fn try_disc(
        n_devices: usize,
        n_gateways: usize,
        radius_m: f64,
        config: &SimConfig,
        seed: u64,
    ) -> Result<Self, SimError> {
        if !radius_m.is_finite() || radius_m <= 0.0 {
            return Err(SimError::InvalidTopology {
                reason: format!("disc radius must be positive and finite, got {radius_m}"),
            });
        }
        if !config.p_los.is_finite() || !(0.0..=1.0).contains(&config.p_los) {
            return Err(SimError::InvalidTopology {
                reason: format!("p_los must lie in [0, 1], got {}", config.p_los),
            });
        }
        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x746f_706f_6c6f_6779); // "topology"
        let devices = (0..n_devices)
            .map(|_| {
                // Uniform in a disc: r = R·sqrt(u), θ uniform.
                let r = radius_m * rng.gen::<f64>().sqrt();
                let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                let environment = if rng.gen::<f64>() < config.p_los {
                    LinkEnvironment::LineOfSight
                } else {
                    LinkEnvironment::NonLineOfSight
                };
                DeviceSite {
                    position: Position::new(r * theta.cos(), r * theta.sin()),
                    environment,
                }
            })
            .collect();
        let gateways = grid_gateways(n_gateways, radius_m);
        Ok(Topology {
            devices,
            gateways,
            radius_m,
        })
    }

    /// The device sites.
    #[inline]
    pub fn devices(&self) -> &[DeviceSite] {
        &self.devices
    }

    /// The gateway positions.
    #[inline]
    pub fn gateways(&self) -> &[Position] {
        &self.gateways
    }

    /// The deployment radius in metres.
    #[inline]
    pub fn radius_m(&self) -> f64 {
        self.radius_m
    }

    /// Number of devices.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of gateways.
    #[inline]
    pub fn gateway_count(&self) -> usize {
        self.gateways.len()
    }

    /// Distance matrix `[device][gateway]` in metres.
    pub fn distances(&self) -> Vec<Vec<f64>> {
        self.devices
            .iter()
            .map(|d| {
                self.gateways
                    .iter()
                    .map(|g| d.position.distance_to(g))
                    .collect()
            })
            .collect()
    }

    /// Distance from device `i` to its nearest gateway.
    pub fn nearest_gateway_distance(&self, device: usize) -> f64 {
        let p = self.devices[device].position;
        self.gateways
            .iter()
            .map(|g| p.distance_to(g))
            .fold(f64::INFINITY, f64::min)
    }
}

/// The linear path-loss attenuation matrix `[device][gateway]`, stored
/// row-major in one contiguous allocation.
///
/// The matrix sits on the hottest loops of the whole stack — the
/// simulator's per-reception loss lookup and the analytical model's
/// per-candidate interference sums — where the former `Vec<Vec<f64>>`
/// representation cost one pointer chase per access and one heap
/// allocation per device. The flat layout makes `at(i, k)` a single
/// indexed load and lets the simulator *reuse* the matrix the model
/// already built (see [`crate::Simulation::with_attenuation`]) instead
/// of re-deriving every `powf` per repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct AttenuationMatrix {
    n_gateways: usize,
    /// Row-major `[device][gateway]` linear attenuations.
    data: Vec<f64>,
}

impl AttenuationMatrix {
    /// Wraps a row-major buffer. `data.len()` must be a multiple of
    /// `n_gateways` (a zero-gateway matrix must be empty).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a whole number of rows.
    pub fn from_raw(n_gateways: usize, data: Vec<f64>) -> Self {
        if n_gateways == 0 {
            assert!(data.is_empty(), "zero-gateway matrix must be empty");
        } else {
            assert_eq!(data.len() % n_gateways, 0, "ragged attenuation matrix");
        }
        AttenuationMatrix { n_gateways, data }
    }

    /// Number of device rows.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.data.len().checked_div(self.n_gateways).unwrap_or(0)
    }

    /// Number of gateway columns.
    #[inline]
    pub fn gateway_count(&self) -> usize {
        self.n_gateways
    }

    /// Linear attenuation between device `i` and gateway `k`.
    #[inline]
    pub fn at(&self, device: usize, gateway: usize) -> f64 {
        debug_assert!(gateway < self.n_gateways);
        self.data[device * self.n_gateways + gateway]
    }

    /// The per-gateway attenuation row of device `i`.
    #[inline]
    pub fn row(&self, device: usize) -> &[f64] {
        &self.data[device * self.n_gateways..(device + 1) * self.n_gateways]
    }

    /// Appends one row per site in `new_sites` (a batch of joining
    /// devices). Each row is produced by the same kernel
    /// ([`attenuation_row`]) as a from-scratch build, so the extended
    /// matrix is bitwise equal to rebuilding over the full population.
    pub fn extend_rows(
        &mut self,
        config: &SimConfig,
        new_sites: &[DeviceSite],
        gateways: &[Position],
    ) {
        assert_eq!(gateways.len(), self.n_gateways, "gateway count changed");
        self.data.reserve(new_sites.len() * self.n_gateways);
        for site in new_sites {
            attenuation_row(config, site, gateways, &mut self.data);
        }
    }

    /// Drops the rows of leaving devices in one compaction pass —
    /// the flat-buffer mirror of the population's `retain_kept`
    /// compaction, so row `i` of the result corresponds to the `i`-th
    /// surviving device.
    ///
    /// # Panics
    ///
    /// Panics when the mask length disagrees with the row count.
    pub fn retire_rows(&mut self, leaving: &[bool]) {
        assert_eq!(leaving.len(), self.device_count(), "leave mask shape");
        let g = self.n_gateways;
        let mut write = 0;
        for (i, &leaves) in leaving.iter().enumerate() {
            if leaves {
                continue;
            }
            if write != i {
                self.data.copy_within(i * g..(i + 1) * g, write * g);
            }
            write += 1;
        }
        self.data.truncate(write * g);
    }

    /// Recomputes the row of device `i` for an updated site (migration
    /// moves a device across propagation classes without moving it, but
    /// the kernel is cheap enough to recompute unconditionally).
    ///
    /// # Panics
    ///
    /// Panics when `device` is out of range.
    pub fn patch_row(
        &mut self,
        config: &SimConfig,
        device: usize,
        site: &DeviceSite,
        gateways: &[Position],
    ) {
        assert!(device < self.device_count(), "patch_row out of range");
        assert_eq!(gateways.len(), self.n_gateways, "gateway count changed");
        let mut row = Vec::with_capacity(self.n_gateways);
        attenuation_row(config, site, gateways, &mut row);
        self.data[device * self.n_gateways..(device + 1) * self.n_gateways].copy_from_slice(&row);
    }
}

/// Appends the per-gateway linear attenuation row of one device site to
/// `out` — the single kernel shared by the from-scratch
/// [`attenuation_matrix`] build and the incremental row operations
/// ([`AttenuationMatrix::extend_rows`] / [`AttenuationMatrix::patch_row`]),
/// which is what makes "incrementally maintained" and "rebuilt from
/// scratch" bitwise-indistinguishable.
#[inline]
pub fn attenuation_row(
    config: &SimConfig,
    site: &DeviceSite,
    gateways: &[Position],
    out: &mut Vec<f64>,
) {
    let beta = config.betas.beta(site.environment);
    out.extend(gateways.iter().map(|gw| {
        config
            .path_loss
            .attenuation(site.position.distance_to(gw), beta)
    }));
}

/// Builds the linear path-loss attenuation matrix `[device][gateway]`
/// for a deployment — the O(devices × gateways) kernel shared by the
/// simulator and the analytical model.
///
/// Large matrices (≥ [`ATTENUATION_PARALLEL_THRESHOLD`] cells) are built
/// with one scoped worker per contiguous device chunk, controlled by
/// `EF_LORA_THREADS`. Each row is a pure function of its device index, so
/// the result is byte-identical for every worker count.
pub fn attenuation_matrix(
    config: &crate::config::SimConfig,
    topology: &Topology,
) -> AttenuationMatrix {
    let n_gw = topology.gateway_count();
    let cells = topology.device_count() * n_gw;
    let threads = if cells >= ATTENUATION_PARALLEL_THRESHOLD {
        lora_parallel::threads_from_env()
    } else {
        1
    };
    let row_of = |i: usize, out: &mut Vec<f64>| {
        attenuation_row(config, &topology.devices()[i], topology.gateways(), out);
    };
    let data = if threads <= 1 {
        // Serial fast path: fill the flat buffer directly, one allocation.
        let mut data = Vec::with_capacity(cells);
        for i in 0..topology.device_count() {
            row_of(i, &mut data);
        }
        data
    } else {
        // Parallel path: workers produce per-row buffers (each row is a
        // pure function of its index), concatenated in device order.
        let rows = lora_parallel::par_map_indexed(topology.device_count(), threads, |i| {
            let mut row = Vec::with_capacity(n_gw);
            row_of(i, &mut row);
            row
        });
        let mut data = Vec::with_capacity(cells);
        for row in rows {
            data.extend_from_slice(&row);
        }
        data
    };
    AttenuationMatrix::from_raw(n_gw, data)
}

/// Matrix size (device × gateway cells) above which
/// [`attenuation_matrix`] fans out across threads. Below this the scoped
/// spawn overhead outweighs the arithmetic.
pub const ATTENUATION_PARALLEL_THRESHOLD: usize = 16_384;

/// Default byte budget for [`try_attenuation_matrix`]: 2 GiB, enough for
/// any deployment the dense analytical pipeline should reasonably hold
/// in one allocation. Overridable via the `EF_LORA_ATTENUATION_BUDGET`
/// environment variable (bytes).
pub const DEFAULT_ATTENUATION_BUDGET_BYTES: u64 = 2 << 30;

/// The byte budget for dense attenuation matrices:
/// `EF_LORA_ATTENUATION_BUDGET` when set to a parseable byte count,
/// otherwise [`DEFAULT_ATTENUATION_BUDGET_BYTES`].
pub fn attenuation_budget_from_env() -> u64 {
    std::env::var("EF_LORA_ATTENUATION_BUDGET")
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(DEFAULT_ATTENUATION_BUDGET_BYTES)
}

/// Fallible front of [`attenuation_matrix`]: refuses with
/// [`SimError::TopologyTooLarge`] when the dense `[device][gateway]`
/// matrix would exceed `budget_bytes`, instead of aborting on OOM deep
/// inside the allocator. Below the budget the result is the
/// byte-identical dense build.
pub fn try_attenuation_matrix(
    config: &crate::config::SimConfig,
    topology: &Topology,
    budget_bytes: u64,
) -> Result<AttenuationMatrix, crate::error::SimError> {
    let required = topology.device_count() as u64 * topology.gateway_count() as u64 * 8;
    if required > budget_bytes {
        return Err(crate::error::SimError::TopologyTooLarge {
            devices: topology.device_count(),
            gateways: topology.gateway_count(),
            required_bytes: required,
            budget_bytes,
        });
    }
    Ok(attenuation_matrix(config, topology))
}

/// Places `n` gateways on the cross positions of a mesh over a disc of
/// radius `radius_m`: one gateway sits at the centre; otherwise a
/// `ceil(sqrt(n)) × ceil(sqrt(n))` grid is scaled to the inscribed square
/// and the first `n` cells (row-major, centred) are used.
pub fn grid_gateways(n: usize, radius_m: f64) -> Vec<Position> {
    match n {
        0 => Vec::new(),
        1 => vec![Position::new(0.0, 0.0)],
        _ => {
            let side = (n as f64).sqrt().ceil() as usize;
            // Inscribed square of the disc has half-side R/√2; grid cross
            // positions sit at the cell centres so every gateway is inside
            // the coverage.
            let half = radius_m / std::f64::consts::SQRT_2;
            let step = 2.0 * half / side as f64;
            let mut out = Vec::with_capacity(n);
            'outer: for row in 0..side {
                for col in 0..side {
                    if out.len() == n {
                        break 'outer;
                    }
                    let x = -half + step * (col as f64 + 0.5);
                    let y = -half + step * (row as f64 + 0.5);
                    out.push(Position::new(x, y));
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_stay_inside_disc() {
        let config = SimConfig::default();
        let topo = Topology::disc(500, 3, 5_000.0, &config, 1);
        let origin = Position::default();
        for d in topo.devices() {
            assert!(d.position.distance_to(&origin) <= 5_000.0 + 1e-9);
        }
    }

    #[test]
    fn attenuation_budget_refuses_oversize_matrices() {
        let config = SimConfig::default();
        let topo = Topology::disc(100, 2, 2_000.0, &config, 4);
        // 100 × 2 × 8 = 1600 bytes: one under the need refuses, at the
        // need succeeds with the byte-identical dense build.
        match try_attenuation_matrix(&config, &topo, 1_599) {
            Err(crate::error::SimError::TopologyTooLarge {
                devices,
                gateways,
                required_bytes,
                budget_bytes,
            }) => {
                assert_eq!((devices, gateways), (100, 2));
                assert_eq!(required_bytes, 1_600);
                assert_eq!(budget_bytes, 1_599);
            }
            other => panic!("expected TopologyTooLarge, got {other:?}"),
        }
        let fallible = try_attenuation_matrix(&config, &topo, 1_600).unwrap();
        assert_eq!(fallible, attenuation_matrix(&config, &topo));
    }

    #[test]
    fn disc_sampling_is_roughly_uniform() {
        // Half the area of a disc lies beyond r = R/√2: check the split.
        let config = SimConfig::default();
        let topo = Topology::disc(4_000, 1, 1_000.0, &config, 2);
        let origin = Position::default();
        let outer = topo
            .devices()
            .iter()
            .filter(|d| d.position.distance_to(&origin) > 1_000.0 / std::f64::consts::SQRT_2)
            .count();
        let frac = outer as f64 / 4_000.0;
        assert!((frac - 0.5).abs() < 0.03, "outer fraction {frac}");
    }

    #[test]
    fn single_gateway_is_central() {
        assert_eq!(grid_gateways(1, 5_000.0), vec![Position::new(0.0, 0.0)]);
    }

    #[test]
    fn grid_gateways_inside_disc_and_distinct() {
        for n in [2, 3, 4, 5, 9, 16, 25] {
            let gws = grid_gateways(n, 5_000.0);
            assert_eq!(gws.len(), n);
            let origin = Position::default();
            for (i, g) in gws.iter().enumerate() {
                assert!(g.distance_to(&origin) <= 5_000.0, "n={n} gw={i}");
                for other in &gws[i + 1..] {
                    assert!(g.distance_to(other) > 1.0, "n={n}: coincident gateways");
                }
            }
        }
    }

    #[test]
    fn four_gateways_form_a_symmetric_square() {
        let gws = grid_gateways(4, 1_000.0);
        let origin = Position::default();
        let d0 = gws[0].distance_to(&origin);
        for g in &gws {
            assert!((g.distance_to(&origin) - d0).abs() < 1e-9);
        }
    }

    #[test]
    fn topology_seed_is_reproducible() {
        let config = SimConfig::default();
        let a = Topology::disc(100, 3, 5_000.0, &config, 7);
        let b = Topology::disc(100, 3, 5_000.0, &config, 7);
        assert_eq!(a, b);
        let c = Topology::disc(100, 3, 5_000.0, &config, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn p_los_controls_environment_mix() {
        let mut config = SimConfig {
            p_los: 1.0,
            ..SimConfig::default()
        };
        let all_los = Topology::disc(200, 1, 1_000.0, &config, 3);
        assert!(all_los
            .devices()
            .iter()
            .all(|d| d.environment == LinkEnvironment::LineOfSight));
        config.p_los = 0.0;
        let all_nlos = Topology::disc(200, 1, 1_000.0, &config, 3);
        assert!(all_nlos
            .devices()
            .iter()
            .all(|d| d.environment == LinkEnvironment::NonLineOfSight));
    }

    #[test]
    fn try_disc_rejects_degenerate_radii() {
        let config = SimConfig::default();
        for radius in [0.0, -5_000.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let r = Topology::try_disc(10, 1, radius, &config, 1);
            assert!(
                matches!(r, Err(SimError::InvalidTopology { .. })),
                "radius {radius} must be rejected"
            );
        }
    }

    #[test]
    fn try_disc_rejects_out_of_range_p_los() {
        for p_los in [-0.1, 1.1, f64::NAN] {
            let config = SimConfig {
                p_los,
                ..SimConfig::default()
            };
            let r = Topology::try_disc(10, 1, 1_000.0, &config, 1);
            assert!(
                matches!(r, Err(SimError::InvalidTopology { .. })),
                "p_los {p_los} must be rejected"
            );
        }
    }

    #[test]
    fn try_disc_matches_disc_for_valid_inputs() {
        let config = SimConfig::default();
        let fallible = Topology::try_disc(50, 3, 4_000.0, &config, 13).unwrap();
        let infallible = Topology::disc(50, 3, 4_000.0, &config, 13);
        assert_eq!(fallible, infallible);
        // Every generated position must be a real number.
        assert!(fallible
            .devices()
            .iter()
            .all(|d| d.position.x.is_finite() && d.position.y.is_finite()));
    }

    #[test]
    #[should_panic(expected = "invalid disc deployment parameters")]
    fn disc_panics_loudly_on_nan_radius() {
        let config = SimConfig::default();
        let _ = Topology::disc(10, 1, f64::NAN, &config, 1);
    }

    #[test]
    fn extend_rows_matches_from_scratch_build() {
        let config = SimConfig::default();
        let full = Topology::disc(40, 3, 5_000.0, &config, 11);
        let want = attenuation_matrix(&config, &full);
        let head = Topology::from_sites(
            full.devices()[..25].to_vec(),
            full.gateways().to_vec(),
            5_000.0,
        );
        let mut got = attenuation_matrix(&config, &head);
        got.extend_rows(&config, &full.devices()[25..], full.gateways());
        assert_eq!(got, want);
    }

    #[test]
    fn retire_rows_matches_from_scratch_build() {
        let config = SimConfig::default();
        let full = Topology::disc(40, 3, 5_000.0, &config, 11);
        let mut got = attenuation_matrix(&config, &full);
        let leaving: Vec<bool> = (0..40).map(|i| i % 3 == 1).collect();
        got.retire_rows(&leaving);
        let kept: Vec<DeviceSite> = full
            .devices()
            .iter()
            .zip(&leaving)
            .filter(|(_, &l)| !l)
            .map(|(s, _)| *s)
            .collect();
        let survivors = Topology::from_sites(kept, full.gateways().to_vec(), 5_000.0);
        assert_eq!(got, attenuation_matrix(&config, &survivors));
    }

    #[test]
    fn patch_row_matches_from_scratch_build() {
        let config = SimConfig::default();
        let full = Topology::disc(40, 3, 5_000.0, &config, 11);
        let mut got = attenuation_matrix(&config, &full);
        let mut sites = full.devices().to_vec();
        // Flip a device's propagation class, as a Migrate event does.
        sites[7].environment = match sites[7].environment {
            LinkEnvironment::LineOfSight => LinkEnvironment::NonLineOfSight,
            LinkEnvironment::NonLineOfSight => LinkEnvironment::LineOfSight,
        };
        got.patch_row(&config, 7, &sites[7], full.gateways());
        let moved = Topology::from_sites(sites, full.gateways().to_vec(), 5_000.0);
        assert_eq!(got, attenuation_matrix(&config, &moved));
    }

    #[test]
    fn distance_matrix_shape() {
        let config = SimConfig::default();
        let topo = Topology::disc(10, 4, 2_000.0, &config, 5);
        let m = topo.distances();
        assert_eq!(m.len(), 10);
        assert!(m.iter().all(|row| row.len() == 4));
        for (i, row) in m.iter().enumerate() {
            let nearest = row.iter().copied().fold(f64::INFINITY, f64::min);
            assert!((topo.nearest_gateway_distance(i) - nearest).abs() < 1e-12);
        }
    }
}
