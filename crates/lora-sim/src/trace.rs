//! Event tracing: observe every transmission and reception decision.
//!
//! [`Simulation::run_with_trace`](crate::Simulation::run_with_trace) feeds
//! each decision the simulator takes to a [`TraceSink`] — the packet-level
//! visibility one normally gets from NS-3 logs, here with zero cost when
//! not requested (the default run path uses [`NullSink`] and the calls
//! monomorphise away).

use serde::Serialize;

use lora_phy::SpreadingFactor;

/// Why a gateway did not (or did) accept a transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReceptionOutcome {
    /// Decoded and forwarded to the network server.
    Decoded,
    /// A demodulator path was locked but the SINR/capture check failed at
    /// the end of reception (collision).
    SinrFailure,
    /// Received power below the SF's sensitivity (out of range or deep
    /// fade) — no demodulator was committed.
    BelowSensitivity,
    /// All demodulator paths were busy (the SX1301 capacity limit).
    DemodBusy,
    /// The gateway was in an injected outage window.
    Outage,
    /// The gateway was transmitting a downlink acknowledgement and, being
    /// half-duplex, could not receive.
    GatewayTransmitting,
    /// The SINR check failed only because a jammer burst raised the noise
    /// floor — without the jam power the copy would have decoded.
    Jammed,
    /// Decoded at the PHY but dropped on the lossy gateway→network-server
    /// backhaul before de-duplication.
    BackhaulLoss,
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum TraceEvent {
    /// A device keyed up.
    TxStart {
        /// Simulation time, seconds.
        t: f64,
        /// Device index.
        device: usize,
        /// Frame sequence number (retransmissions repeat it).
        seq: u32,
        /// Spreading factor in use.
        sf: SpreadingFactor,
        /// Channel index in use.
        channel: usize,
    },
    /// A gateway's verdict on one transmission.
    Reception {
        /// Simulation time of the verdict, seconds.
        t: f64,
        /// Device index.
        device: usize,
        /// Frame sequence number.
        seq: u32,
        /// Gateway index.
        gateway: usize,
        /// The verdict.
        outcome: ReceptionOutcome,
    },
    /// The network server delivered a unique frame (first copy).
    Delivered {
        /// Simulation time, seconds.
        t: f64,
        /// Device index.
        device: usize,
        /// Frame sequence number.
        seq: u32,
    },
}

/// A consumer of trace events.
pub trait TraceSink {
    /// Receives one event; called in simulation-time order.
    fn record(&mut self, event: TraceEvent);
}

/// Discards everything (the default run path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Buffers every event in memory. Fine for unit-test-sized runs; prefer a
/// streaming sink for large simulations.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The recorded events, in time order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Counts events by kind without storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// `TxStart` events seen.
    pub tx_starts: u64,
    /// `Reception` events seen, by outcome: decoded, SINR failure, below
    /// sensitivity, demod busy, outage.
    pub decoded: u64,
    /// SINR/capture failures.
    pub sinr_failures: u64,
    /// Below-sensitivity receptions.
    pub below_sensitivity: u64,
    /// Capacity refusals.
    pub demod_busy: u64,
    /// Outage drops.
    pub outage: u64,
    /// Half-duplex (gateway transmitting) drops.
    pub gateway_transmitting: u64,
    /// Jammer-attributed SINR failures.
    pub jammed: u64,
    /// Backhaul losses of PHY-decoded copies.
    pub backhaul_loss: u64,
    /// Unique frames delivered.
    pub delivered: u64,
}

impl TraceSink for CountingSink {
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::TxStart { .. } => self.tx_starts += 1,
            TraceEvent::Delivered { .. } => self.delivered += 1,
            TraceEvent::Reception { outcome, .. } => match outcome {
                ReceptionOutcome::Decoded => self.decoded += 1,
                ReceptionOutcome::SinrFailure => self.sinr_failures += 1,
                ReceptionOutcome::BelowSensitivity => self.below_sensitivity += 1,
                ReceptionOutcome::DemodBusy => self.demod_busy += 1,
                ReceptionOutcome::Outage => self.outage += 1,
                ReceptionOutcome::GatewayTransmitting => self.gateway_transmitting += 1,
                ReceptionOutcome::Jammed => self.jammed += 1,
                ReceptionOutcome::BackhaulLoss => self.backhaul_loss += 1,
            },
        }
    }
}

/// Writes each event as one JSON line (JSONL) to any writer.
#[derive(Debug)]
pub struct JsonLinesSink<W: std::io::Write> {
    writer: W,
}

impl<W: std::io::Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink { writer }
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, event: TraceEvent) {
        // Serialisation of these simple enums cannot fail; IO errors are
        // reported once via a best-effort eprintln rather than panicking
        // mid-simulation.
        if let Ok(line) = serde_json::to_string(&event) {
            let _ = writeln!(self.writer, "{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_tallies() {
        let mut sink = CountingSink::default();
        sink.record(TraceEvent::TxStart {
            t: 0.0,
            device: 0,
            seq: 0,
            sf: SpreadingFactor::Sf7,
            channel: 0,
        });
        sink.record(TraceEvent::Reception {
            t: 0.1,
            device: 0,
            seq: 0,
            gateway: 0,
            outcome: ReceptionOutcome::Decoded,
        });
        sink.record(TraceEvent::Delivered {
            t: 0.1,
            device: 0,
            seq: 0,
        });
        assert_eq!(sink.tx_starts, 1);
        assert_eq!(sink.decoded, 1);
        assert_eq!(sink.delivered, 1);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.record(TraceEvent::Delivered {
            t: 1.5,
            device: 3,
            seq: 7,
        });
        let body = String::from_utf8(sink.into_inner()).unwrap();
        assert!(body.contains("Delivered"), "{body}");
        assert!(body.ends_with('\n'));
    }

    #[test]
    fn null_sink_is_a_no_op() {
        let mut sink = NullSink;
        sink.record(TraceEvent::Delivered {
            t: 0.0,
            device: 0,
            seq: 0,
        });
    }
}
