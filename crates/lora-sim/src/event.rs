//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::TimeKey;

/// A simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Device `device` begins its `seq`-th transmission.
    TxStart {
        /// Device index.
        device: usize,
        /// 0-based transmission sequence number.
        seq: u32,
    },
    /// Device `device` finishes its `seq`-th transmission.
    TxEnd {
        /// Device index.
        device: usize,
        /// 0-based transmission sequence number.
        seq: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Queued {
    time: TimeKey,
    /// Monotone tie-breaker so simultaneous events pop in insertion order,
    /// keeping runs deterministic.
    tie: u64,
    event: Event,
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic earliest-first event queue.
///
/// ```
/// use lora_sim::event::{Event, EventQueue};
/// let mut q = EventQueue::new();
/// q.push(2.0, Event::TxEnd { device: 0, seq: 0 });
/// q.push(1.0, Event::TxStart { device: 0, seq: 0 });
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, 1.0);
/// assert_eq!(e, Event::TxStart { device: 0, seq: 0 });
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Queued>,
    next_tie: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at time `at_s`.
    pub fn push(&mut self, at_s: f64, event: Event) {
        let tie = self.next_tie;
        self.next_tie += 1;
        self.heap.push(Queued {
            time: TimeKey::new(at_s),
            tie,
            event,
        });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|q| (q.time.seconds(), q.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (i, t) in [5.0, 1.0, 3.0, 2.0, 4.0].iter().enumerate() {
            q.push(*t, Event::TxStart { device: i, seq: 0 });
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::TxStart { device: 0, seq: 0 });
        q.push(1.0, Event::TxStart { device: 1, seq: 0 });
        q.push(1.0, Event::TxStart { device: 2, seq: 0 });
        assert_eq!(q.pop().unwrap().1, Event::TxStart { device: 0, seq: 0 });
        assert_eq!(q.pop().unwrap().1, Event::TxStart { device: 1, seq: 0 });
        assert_eq!(q.pop().unwrap().1, Event::TxStart { device: 2, seq: 0 });
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, Event::TxEnd { device: 0, seq: 3 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
