//! Tests for the traffic models: per-device intervals (Section III-E
//! heterogeneous rates) and the duty-cycle-target regime (Section IV).

use lora_phy::path_loss::LinkEnvironment;
use lora_phy::{Fading, SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::{DeviceSite, Position, SimConfig, SimError, Simulation, Topology, Traffic};

fn near_topology(n: usize) -> Topology {
    let devices = (0..n)
        .map(|i| DeviceSite {
            position: Position::new(100.0 + i as f64, 0.0),
            environment: LinkEnvironment::LineOfSight,
        })
        .collect();
    Topology::from_sites(devices, vec![Position::new(0.0, 0.0)], 1_000.0)
}

#[test]
fn per_device_intervals_control_attempt_counts() {
    let config = SimConfig {
        fading: Fading::None,
        per_device_intervals_s: Some(vec![600.0, 1_200.0]),
        ..SimConfig::builder().seed(1).duration_s(6_000.0).build()
    };
    let alloc = vec![
        TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 0),
        TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 1),
    ];
    let report = Simulation::new(config, near_topology(2), alloc)
        .unwrap()
        .run();
    assert_eq!(report.devices[0].attempts, 10);
    assert_eq!(report.devices[1].attempts, 5);
    // The faster reporter also consumes more energy in total.
    assert!(report.devices[0].energy_j > report.devices[1].energy_j);
}

#[test]
fn interval_length_mismatch_is_rejected() {
    let config = SimConfig {
        per_device_intervals_s: Some(vec![600.0]),
        ..SimConfig::default()
    };
    let alloc = vec![TxConfig::default(); 2];
    assert!(matches!(
        Simulation::new(config, near_topology(2), alloc),
        Err(SimError::InvalidConfig { .. })
    ));
}

#[test]
fn nonpositive_interval_is_rejected() {
    let config = SimConfig {
        per_device_intervals_s: Some(vec![600.0, 0.0]),
        ..SimConfig::default()
    };
    let alloc = vec![TxConfig::default(); 2];
    assert!(matches!(
        Simulation::new(config, near_topology(2), alloc),
        Err(SimError::InvalidConfig { .. })
    ));
}

#[test]
fn duty_cycle_target_equalises_airtime_share() {
    // SF7 and SF12 devices at 1 % duty: attempts scale inversely with
    // time-on-air but attempted airtime is equal.
    let mut config = SimConfig::builder().seed(2).duration_s(10_000.0).build();
    config.fading = Fading::None;
    config.traffic = Traffic::DutyCycleTarget { duty: 0.01 };
    let alloc = vec![
        TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 0),
        TxConfig::new(SpreadingFactor::Sf12, TxPowerDbm::new(14.0), 1),
    ];
    let sim = Simulation::new(config, near_topology(2), alloc).unwrap();
    assert!((sim.interval_s(0) - sim.time_on_air_s(0) / 0.01).abs() < 1e-12);
    assert!((sim.interval_s(1) - sim.time_on_air_s(1) / 0.01).abs() < 1e-12);
    let report = sim.run();
    let airtime0 = f64::from(report.devices[0].attempts) * sim.time_on_air_s(0);
    let airtime1 = f64::from(report.devices[1].attempts) * sim.time_on_air_s(1);
    let ratio = airtime0 / airtime1;
    assert!(
        (0.8..1.25).contains(&ratio),
        "airtime shares should match: {ratio}"
    );
    // And the SF7 device sends far more packets.
    assert!(report.devices[0].attempts > 20 * report.devices[1].attempts);
}

#[test]
fn invalid_duty_target_is_rejected() {
    for duty in [0.0, -0.1, 1.5, f64::NAN] {
        let config = SimConfig {
            traffic: Traffic::DutyCycleTarget { duty },
            ..SimConfig::default()
        };
        let alloc = vec![TxConfig::default()];
        assert!(
            matches!(
                Simulation::new(config, near_topology(1), alloc),
                Err(SimError::InvalidConfig { .. })
            ),
            "duty {duty} should be rejected"
        );
    }
}

#[test]
fn duty_target_produces_contention() {
    // 30 co-SF, co-channel devices at 1 % duty each: expect collisions
    // that the light periodic default would not show.
    let mut config = SimConfig::builder().seed(3).duration_s(2_000.0).build();
    config.fading = Fading::None;
    config.traffic = Traffic::DutyCycleTarget { duty: 0.01 };
    let alloc = vec![TxConfig::new(SpreadingFactor::Sf9, TxPowerDbm::new(14.0), 0); 30];
    let report = Simulation::new(config, near_topology(30), alloc)
        .unwrap()
        .run();
    let sinr_failures: u64 = report.gateways.iter().map(|g| g.sinr_failures).sum();
    assert!(sinr_failures > 0, "1% duty × 30 co-SF devices must collide");
    assert!(
        report.mean_prr() < 0.95,
        "PRR should visibly suffer: {}",
        report.mean_prr()
    );
}
