//! Tests for confirmed-uplink retransmissions.

use lora_phy::path_loss::LinkEnvironment;
use lora_phy::{Fading, SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::{ConfirmedTraffic, DeviceSite, Position, SimConfig, Simulation, Topology};

fn topology_at(distance_m: f64) -> Topology {
    let devices = vec![DeviceSite {
        position: Position::new(distance_m, 0.0),
        environment: LinkEnvironment::NonLineOfSight,
    }];
    Topology::from_sites(devices, vec![Position::new(0.0, 0.0)], 10_000.0)
}

fn config(confirmed: bool) -> SimConfig {
    let mut c = SimConfig::builder()
        .seed(5)
        .duration_s(3_000.0)
        .report_interval_s(600.0)
        .build();
    if confirmed {
        c.confirmed = Some(ConfirmedTraffic::default());
    }
    c
}

#[test]
fn reliable_link_never_retransmits() {
    let mut c = config(true);
    c.fading = Fading::None;
    let alloc = vec![TxConfig::new(
        SpreadingFactor::Sf7,
        TxPowerDbm::new(14.0),
        0,
    )];
    let report = Simulation::new(c, topology_at(200.0), alloc).unwrap().run();
    assert_eq!(report.devices[0].attempts, 5, "no retries on a clean link");
    assert_eq!(report.devices[0].delivered, 5);
}

#[test]
fn lossy_link_retries_and_spends_energy() {
    // ~3 km NLoS at SF7 is far below sensitivity on the mean, so most
    // attempts fail and the retry budget gets used.
    let alloc = vec![TxConfig::new(
        SpreadingFactor::Sf7,
        TxPowerDbm::new(14.0),
        0,
    )];
    let unconfirmed = Simulation::new(config(false), topology_at(3_000.0), alloc.clone())
        .unwrap()
        .run();
    let confirmed = Simulation::new(config(true), topology_at(3_000.0), alloc)
        .unwrap()
        .run();
    assert!(
        confirmed.devices[0].attempts > unconfirmed.devices[0].attempts,
        "retries must add transmissions: {} vs {}",
        confirmed.devices[0].attempts,
        unconfirmed.devices[0].attempts
    );
    assert!(
        confirmed.devices[0].energy_j > unconfirmed.devices[0].energy_j,
        "retries must cost energy"
    );
    // Retrying can only help per-cycle delivery: 5 cycles max.
    assert!(confirmed.devices[0].delivered >= unconfirmed.devices[0].delivered);
    assert!(confirmed.devices[0].delivered <= 5);
}

#[test]
fn retry_budget_is_respected() {
    // A hopeless link: every cycle burns exactly max_attempts tries.
    let mut c = config(true);
    c.fading = Fading::None;
    c.confirmed = Some(ConfirmedTraffic {
        max_attempts: 3,
        backoff_min_s: 1.0,
        backoff_max_s: 2.0,
        ..ConfirmedTraffic::default()
    });
    let alloc = vec![TxConfig::new(
        SpreadingFactor::Sf7,
        TxPowerDbm::new(14.0),
        0,
    )];
    let report = Simulation::new(c, topology_at(50_000.0), alloc)
        .unwrap()
        .run();
    assert_eq!(report.devices[0].attempts, 15, "5 cycles × 3 attempts");
    assert_eq!(report.devices[0].delivered, 0);
}

#[test]
fn confirmed_lifetime_shortens_on_lossy_links() {
    let alloc = vec![TxConfig::new(
        SpreadingFactor::Sf7,
        TxPowerDbm::new(14.0),
        0,
    )];
    let unconfirmed = Simulation::new(config(false), topology_at(3_000.0), alloc.clone())
        .unwrap()
        .run();
    let confirmed = Simulation::new(config(true), topology_at(3_000.0), alloc)
        .unwrap()
        .run();
    let lu = unconfirmed.devices[0].lifetime_s.unwrap();
    let lc = confirmed.devices[0].lifetime_s.unwrap();
    assert!(
        lc < lu,
        "retransmissions must shorten measured lifetime: {lc} vs {lu}"
    );
}

#[test]
fn deterministic_with_retries() {
    let alloc = vec![TxConfig::new(SpreadingFactor::Sf8, TxPowerDbm::new(8.0), 1)];
    let a = Simulation::new(config(true), topology_at(2_500.0), alloc.clone())
        .unwrap()
        .run();
    let b = Simulation::new(config(true), topology_at(2_500.0), alloc)
        .unwrap()
        .run();
    assert_eq!(a, b);
}
