//! Tests for half-duplex gateway behaviour under confirmed traffic.

use lora_phy::path_loss::LinkEnvironment;
use lora_phy::{Fading, SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::{ConfirmedTraffic, DeviceSite, Position, SimConfig, Simulation, Topology, Traffic};

fn dense_cell(n: usize, confirmed: bool) -> Simulation {
    let devices = (0..n)
        .map(|i| DeviceSite {
            position: Position::new(150.0 + i as f64, 0.0),
            environment: LinkEnvironment::LineOfSight,
        })
        .collect();
    let topo = Topology::from_sites(devices, vec![Position::new(0.0, 0.0)], 1_000.0);
    let mut config = SimConfig {
        fading: Fading::None,
        traffic: Traffic::DutyCycleTarget { duty: 0.01 },
        ..SimConfig::builder().seed(2).duration_s(2_000.0).build()
    };
    if confirmed {
        config.confirmed = Some(ConfirmedTraffic::default());
    }
    let alloc = (0..n)
        .map(|i| TxConfig::new(SpreadingFactor::Sf8, TxPowerDbm::new(14.0), i % 8))
        .collect();
    Simulation::new(config, topo, alloc).unwrap()
}

#[test]
fn acknowledgements_deafen_the_gateway() {
    // A busy single-gateway cell with confirmed traffic: acks occupy the
    // gateway's transmitter and some uplinks must be lost to half-duplex.
    let report = dense_cell(40, true).run();
    let hd: u64 = report.gateways.iter().map(|g| g.half_duplex_drops).sum();
    assert!(hd > 0, "acks should cost uplink receptions in a busy cell");
}

#[test]
fn unconfirmed_traffic_never_half_duplex_drops() {
    let report = dense_cell(40, false).run();
    let hd: u64 = report.gateways.iter().map(|g| g.half_duplex_drops).sum();
    assert_eq!(hd, 0);
}

#[test]
fn half_duplex_cost_reduces_capacity() {
    let unconfirmed = dense_cell(40, false).run();
    let confirmed = dense_cell(40, true).run();
    // Confirmed delivers at most as many unique frames per attempt: the
    // ack tax plus retry congestion cannot make reception *better* per
    // attempt in a saturated cell.
    assert!(confirmed.mean_prr() <= unconfirmed.mean_prr() + 0.05);
    // And the dropped receptions are visible in the trace counters too.
    let mut counts = lora_sim::trace::CountingSink::default();
    dense_cell(40, true).run_with_trace(&mut counts);
    let hd: u64 = confirmed.gateways.iter().map(|g| g.half_duplex_drops).sum();
    assert_eq!(counts.gateway_transmitting, hd);
}

#[test]
fn deterministic_with_acks() {
    let a = dense_cell(25, true).run();
    let b = dense_cell(25, true).run();
    assert_eq!(a, b);
}
