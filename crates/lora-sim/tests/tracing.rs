//! Tests for the simulation trace facility.

use lora_phy::path_loss::LinkEnvironment;
use lora_phy::{Fading, SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::trace::{CountingSink, ReceptionOutcome, TraceEvent, VecSink};
use lora_sim::{DeviceSite, Position, SimConfig, Simulation, Topology};

fn sim(n: usize, distance: f64) -> Simulation {
    let devices = (0..n)
        .map(|i| DeviceSite {
            position: Position::new(distance + i as f64, 0.0),
            environment: LinkEnvironment::LineOfSight,
        })
        .collect();
    let topo = Topology::from_sites(devices, vec![Position::new(0.0, 0.0)], 10_000.0);
    let config = SimConfig {
        fading: Fading::None,
        ..SimConfig::builder()
            .seed(1)
            .duration_s(3_000.0)
            .report_interval_s(600.0)
            .build()
    };
    let alloc = (0..n)
        .map(|i| TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), i % 8))
        .collect();
    Simulation::new(config, topo, alloc).unwrap()
}

#[test]
fn counting_sink_matches_report() {
    let sim = sim(5, 200.0);
    let mut counts = CountingSink::default();
    let report = sim.run_with_trace(&mut counts);
    let attempts: u64 = report.devices.iter().map(|d| u64::from(d.attempts)).sum();
    assert_eq!(counts.tx_starts, attempts);
    assert_eq!(counts.delivered, report.frames_delivered);
    let decoded: u64 = report.gateways.iter().map(|g| g.decoded).sum();
    assert_eq!(counts.decoded, decoded);
}

#[test]
fn traced_and_untraced_runs_agree() {
    let sim = sim(8, 300.0);
    let mut sink = VecSink::default();
    let traced = sim.run_with_trace(&mut sink);
    let untraced = sim.run();
    assert_eq!(traced, untraced, "tracing must not perturb the simulation");
    assert!(!sink.events.is_empty());
}

#[test]
fn events_are_time_ordered() {
    let sim = sim(6, 250.0);
    let mut sink = VecSink::default();
    sim.run_with_trace(&mut sink);
    let mut last = f64::NEG_INFINITY;
    for e in &sink.events {
        let t = match *e {
            TraceEvent::TxStart { t, .. }
            | TraceEvent::Reception { t, .. }
            | TraceEvent::Delivered { t, .. } => t,
        };
        assert!(t >= last, "events out of order: {t} after {last}");
        last = t;
    }
}

#[test]
fn out_of_range_devices_trace_below_sensitivity() {
    let sim = sim(1, 50_000.0);
    let mut counts = CountingSink::default();
    let report = sim.run_with_trace(&mut counts);
    assert_eq!(report.frames_delivered, 0);
    assert_eq!(counts.below_sensitivity, counts.tx_starts);
    assert_eq!(counts.decoded, 0);
}

#[test]
fn each_delivery_has_a_decode() {
    let sim = sim(4, 150.0);
    let mut sink = VecSink::default();
    sim.run_with_trace(&mut sink);
    let delivered: Vec<(usize, u32)> = sink
        .events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::Delivered { device, seq, .. } => Some((device, seq)),
            _ => None,
        })
        .collect();
    for (device, seq) in delivered {
        assert!(
            sink.events.iter().any(|e| matches!(
                *e,
                TraceEvent::Reception {
                    device: d,
                    seq: s,
                    outcome: ReceptionOutcome::Decoded,
                    ..
                } if d == device && s == seq
            )),
            "delivery of ({device},{seq}) without a decode"
        );
    }
}
