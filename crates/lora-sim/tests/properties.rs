//! Property-based tests for the simulator.

use lora_phy::{SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::metrics::{empirical_cdf, jain_index, mean, minimum, percentile};
use lora_sim::{
    BackhaulLink, FaultConfig, GatewayChurn, GatewayOutage, JamBurst, SimConfig, Simulation,
    Topology,
};
use proptest::prelude::*;

fn random_alloc(n: usize, seed: u64) -> Vec<TxConfig> {
    // Deterministic pseudo-random allocation without pulling in rand here.
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9);
            let sf = SpreadingFactor::from_u8(7 + (h % 6) as u8).unwrap();
            let tp = TxPowerDbm::new(2.0 + 2.0 * ((h >> 8) % 7) as f64);
            let ch = ((h >> 16) % 8) as usize;
            TxConfig::new(sf, tp, ch)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simulation_invariants_hold(
        n_devices in 1usize..40,
        n_gateways in 1usize..5,
        seed in any::<u64>(),
        alloc_seed in any::<u64>(),
    ) {
        let config = SimConfig::builder()
            .seed(seed)
            .duration_s(2_400.0)
            .report_interval_s(600.0)
            .build();
        let topo = Topology::disc(n_devices, n_gateways, 5_000.0, &config, seed);
        let alloc = random_alloc(n_devices, alloc_seed);
        let report = Simulation::new(config, topo, alloc).unwrap().run();

        prop_assert_eq!(report.devices.len(), n_devices);
        prop_assert_eq!(report.gateways.len(), n_gateways);
        let mut total_delivered = 0u64;
        for d in &report.devices {
            prop_assert!(d.delivered <= d.attempts, "delivered > attempts");
            prop_assert!(d.energy_j >= 0.0);
            prop_assert!(d.ee_bits_per_mj >= 0.0);
            prop_assert!(d.ee_bits_per_mj.is_finite());
            prop_assert!((0.0..=1.0).contains(&d.prr()));
            if let Some(l) = d.lifetime_s {
                prop_assert!(l > 0.0);
            }
            total_delivered += u64::from(d.delivered);
        }
        // Every delivered transmission corresponds to exactly one unique
        // frame at the server.
        prop_assert_eq!(report.frames_delivered, total_delivered);
        prop_assert!((0.0..=1.0).contains(&report.jain_fairness()));
        prop_assert!(
            report.min_energy_efficiency_bits_per_mj()
                <= report.mean_energy_efficiency_bits_per_mj() + 1e-12
        );
    }

    #[test]
    fn same_seed_same_report(seed in any::<u64>()) {
        let config = SimConfig::builder().seed(seed).duration_s(1_800.0).build();
        let topo = Topology::disc(15, 2, 4_000.0, &config, seed);
        let alloc = random_alloc(15, seed);
        let sim = Simulation::new(config, topo, alloc).unwrap();
        prop_assert_eq!(sim.run(), sim.run());
    }

    #[test]
    fn jain_index_is_in_unit_interval(values in proptest::collection::vec(0.0f64..100.0, 0..50)) {
        let j = jain_index(&values);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&j));
    }

    #[test]
    fn percentile_is_bounded_by_extremes(
        values in proptest::collection::vec(-50.0f64..50.0, 1..40),
        q in 0.0f64..100.0,
    ) {
        let p = percentile(&values, q);
        let lo = minimum(&values).min(values.iter().copied().fold(f64::INFINITY, f64::min));
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn outage_window_is_half_open(
        gateway in 0usize..4,
        probe_gw in 0usize..4,
        from in 0.0f64..5_000.0,
        len in 0.0f64..5_000.0,
        frac in 0.0f64..1.0,
    ) {
        let o = GatewayOutage { gateway, from_s: from, to_s: from + len };
        // Half-open `[from, to)`: the start is covered iff non-empty, the
        // end never is, and interior points are covered exactly for the
        // outage's own gateway.
        prop_assert_eq!(o.covers(gateway, from), len > 0.0);
        prop_assert!(!o.covers(gateway, from + len));
        prop_assert!(!o.covers(gateway, from - 1e-9));
        let t = from + frac * len;
        if t < from + len {
            prop_assert!(o.covers(gateway, t));
            prop_assert_eq!(o.covers(probe_gw, t), probe_gw == gateway);
        }
        // An empty window covers nothing, anywhere.
        let empty = GatewayOutage { gateway, from_s: from, to_s: from };
        prop_assert!(!empty.covers(gateway, from));
        prop_assert!(!empty.covers(gateway, from + 1.0));
    }

    #[test]
    fn outage_accounting_is_conserved(
        n_devices in 4usize..25,
        seed in any::<u64>(),
        alloc_seed in any::<u64>(),
        start_frac in 0.0f64..0.8,
        len_frac in 0.05f64..0.5,
    ) {
        let duration = 2_400.0;
        let from = start_frac * duration;
        let to = (start_frac + len_frac).min(1.0) * duration;
        let mut builder = SimConfig::builder();
        builder.seed(seed).duration_s(duration).report_interval_s(600.0);
        builder.outage(GatewayOutage { gateway: 0, from_s: from, to_s: to });
        let config = builder.build();
        let topo = Topology::disc(n_devices, 2, 4_000.0, &config, seed);
        let alloc = random_alloc(n_devices, alloc_seed);
        let report = Simulation::new(config, topo, alloc).unwrap().run();

        let attempts: u64 = report.devices.iter().map(|d| u64::from(d.attempts)).sum();
        let delivered: u64 = report.devices.iter().map(|d| u64::from(d.delivered)).sum();
        for (i, g) in report.gateways.iter().enumerate() {
            // Every attempt meets exactly one fate at every gateway.
            prop_assert_eq!(
                g.decoded
                    + g.demod_refused
                    + g.sinr_failures
                    + g.below_sensitivity
                    + g.outage_drops
                    + g.half_duplex_drops,
                attempts,
                "gateway {} accounting", i
            );
            // ISSUE gate: drops + deliveries + collisions never exceed attempts.
            prop_assert!(g.outage_drops + g.decoded + g.sinr_failures <= attempts);
        }
        // The outage was injected on gateway 0 only.
        prop_assert_eq!(report.gateways[1].outage_drops, 0);
        // De-duplication conserves copies: every decoded copy is either the
        // first of its frame or a discarded duplicate.
        let decoded: u64 = report.gateways.iter().map(|g| g.decoded).sum();
        prop_assert_eq!(decoded, report.frames_delivered + report.duplicate_copies);
        prop_assert_eq!(report.frames_delivered, delivered);
    }

    #[test]
    fn fault_accounting_is_conserved(
        n_devices in 4usize..20,
        seed in any::<u64>(),
        alloc_seed in any::<u64>(),
        mtbf_s in 200.0f64..1_500.0,
        mttr_s in 100.0f64..800.0,
        jam_channel in 0usize..8,
        jam_power_mw in 1e-9f64..1e-3,
        drop_prob in 0.0f64..1.0,
    ) {
        // All three fault classes at once: the eight fates must still
        // partition every (attempt, gateway) pair, and the de-duplication
        // identity must hold with backhaul losses excluded from
        // `decoded` (no double-counting).
        let duration = 2_400.0;
        let mut builder = SimConfig::builder();
        builder.seed(seed).duration_s(duration).report_interval_s(600.0);
        builder.faults(FaultConfig {
            churn: vec![GatewayChurn { gateway: 0, mtbf_s, mttr_s }],
            jammers: Vec::new(),
            jam_bursts: vec![JamBurst {
                channel: jam_channel,
                from_s: 0.3 * duration,
                to_s: 0.7 * duration,
                power_mw: jam_power_mw,
            }],
            backhaul: vec![BackhaulLink { gateway: 1, drop_prob, latency_s: 0.01 }],
        });
        let config = builder.try_build().unwrap();
        let topo = Topology::disc(n_devices, 2, 4_000.0, &config, seed);
        let alloc = random_alloc(n_devices, alloc_seed);
        let report = Simulation::new(config, topo, alloc).unwrap().run();

        let attempts: u64 = report.devices.iter().map(|d| u64::from(d.attempts)).sum();
        let delivered: u64 = report.devices.iter().map(|d| u64::from(d.delivered)).sum();
        for (i, g) in report.gateways.iter().enumerate() {
            // Every attempt meets exactly one of the eight fates at
            // every gateway.
            prop_assert_eq!(
                g.decoded
                    + g.demod_refused
                    + g.sinr_failures
                    + g.below_sensitivity
                    + g.outage_drops
                    + g.half_duplex_drops
                    + g.jammed_drops
                    + g.backhaul_drops,
                attempts,
                "gateway {} accounting", i
            );
        }
        // Fault attribution: churn runs on gateway 0 only, the lossy
        // backhaul on gateway 1 only.
        prop_assert_eq!(report.gateways[1].outage_drops, 0);
        prop_assert_eq!(report.gateways[0].backhaul_drops, 0);
        // Dedup conservation with backhaul losses excluded from decoded:
        // every copy that reached the server is the first of its frame
        // or a discarded duplicate.
        let decoded: u64 = report.gateways.iter().map(|g| g.decoded).sum();
        prop_assert_eq!(decoded, report.frames_delivered + report.duplicate_copies);
        prop_assert_eq!(report.frames_delivered, delivered);
    }

    #[test]
    fn backhaul_loss_never_double_counts(
        n_devices in 2usize..12,
        seed in any::<u64>(),
        alloc_seed in any::<u64>(),
    ) {
        // Same seed, same traffic, backhaul drop 0 vs 1: the lossy run
        // must convert exactly the lossless run's decoded copies into
        // backhaul drops, leaving every PHY-level counter untouched.
        let mut builder = SimConfig::builder();
        builder.seed(seed).duration_s(1_800.0).report_interval_s(600.0);
        let clean_cfg = builder.build();
        builder.faults(FaultConfig {
            backhaul: vec![BackhaulLink { gateway: 0, drop_prob: 1.0, latency_s: 0.0 }],
            ..FaultConfig::default()
        });
        let lossy_cfg = builder.build();
        let topo = Topology::disc(n_devices, 1, 4_000.0, &clean_cfg, seed);
        let alloc = random_alloc(n_devices, alloc_seed);
        let clean = Simulation::new(clean_cfg, topo.clone(), alloc.clone()).unwrap().run();
        let lossy = Simulation::new(lossy_cfg, topo, alloc).unwrap().run();

        let (c, l) = (&clean.gateways[0], &lossy.gateways[0]);
        prop_assert_eq!(l.backhaul_drops, c.decoded, "each decoded copy dropped exactly once");
        prop_assert_eq!(l.decoded, 0);
        prop_assert_eq!(l.sinr_failures, c.sinr_failures);
        prop_assert_eq!(l.below_sensitivity, c.below_sensitivity);
        prop_assert_eq!(l.demod_refused, c.demod_refused);
        prop_assert_eq!(l.jammed_drops, 0);
        prop_assert_eq!(lossy.frames_delivered, 0);
    }

    #[test]
    fn cdf_is_a_distribution(values in proptest::collection::vec(0.0f64..10.0, 1..60)) {
        let cdf = empirical_cdf(&values);
        prop_assert_eq!(cdf.len(), values.len());
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1);
        }
        let m = mean(&values);
        prop_assert!(m >= cdf[0].0 - 1e-9 && m <= cdf.last().unwrap().0 + 1e-9);
    }
}
