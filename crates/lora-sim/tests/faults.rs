//! Integration tests for the fault-injection engine: determinism,
//! attribution of the new drop fates, and backward compatibility.

use lora_phy::path_loss::LinkEnvironment;
use lora_phy::{Fading, SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::topology::{DeviceSite, Position};
use lora_sim::{
    BackhaulLink, FaultConfig, GatewayChurn, JamBurst, JammerProcess, SimConfig, SimError,
    Simulation, Topology,
};

fn near_topology(n: usize, gateways: usize) -> Topology {
    let devices = (0..n)
        .map(|i| DeviceSite {
            position: Position::new(100.0 + i as f64, 0.0),
            environment: LinkEnvironment::LineOfSight,
        })
        .collect();
    let gws = (0..gateways)
        .map(|g| Position::new(g as f64 * 50.0, 50.0))
        .collect();
    Topology::from_sites(devices, gws, 1_000.0)
}

fn quiet_config(seed: u64) -> SimConfig {
    let mut c = SimConfig::builder()
        .seed(seed)
        .duration_s(3_000.0)
        .report_interval_s(600.0)
        .build();
    c.fading = Fading::None;
    c
}

fn sf7_alloc(n: usize) -> Vec<TxConfig> {
    (0..n)
        .map(|i| TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), i % 8))
        .collect()
}

#[test]
fn faulted_runs_are_deterministic() {
    let mut c = quiet_config(11);
    c.fading = Fading::Rayleigh;
    c.faults = Some(FaultConfig {
        churn: vec![GatewayChurn {
            gateway: 0,
            mtbf_s: 400.0,
            mttr_s: 300.0,
        }],
        jammers: vec![JammerProcess {
            channel: 0,
            mean_gap_s: 500.0,
            mean_burst_s: 300.0,
            power_mw: 1e-6,
        }],
        jam_bursts: Vec::new(),
        backhaul: vec![BackhaulLink {
            gateway: 1,
            drop_prob: 0.3,
            latency_s: 0.05,
        }],
    });
    let topo = near_topology(20, 2);
    let sim = Simulation::new(c.clone(), topo.clone(), sf7_alloc(20)).unwrap();
    let again = Simulation::new(c, topo, sf7_alloc(20)).unwrap();
    assert_eq!(sim.run(), again.run());
}

#[test]
fn fault_windows_change_with_seed_but_traffic_does_not() {
    // The fault RNG stream is separate from the traffic stream: two
    // configs differing only in fault *processes* keep identical attempt
    // schedules (same phases), even though their outage windows differ.
    let base = quiet_config(5);
    let mut faulted = base.clone();
    faulted.faults = Some(FaultConfig {
        churn: vec![GatewayChurn {
            gateway: 0,
            mtbf_s: 600.0,
            mttr_s: 200.0,
        }],
        ..FaultConfig::default()
    });
    let topo = near_topology(10, 1);
    let clean = Simulation::new(base, topo.clone(), sf7_alloc(10))
        .unwrap()
        .run();
    let churned = Simulation::new(faulted, topo, sf7_alloc(10)).unwrap().run();
    for (a, b) in clean.devices.iter().zip(&churned.devices) {
        assert_eq!(
            a.attempts, b.attempts,
            "traffic schedule must be unperturbed"
        );
        assert_eq!(
            a.energy_j, b.energy_j,
            "energy follows the schedule exactly"
        );
    }
    assert!(
        churned.gateways[0].outage_drops > 0,
        "the churn process must bite"
    );
}

#[test]
fn compiled_windows_merge_with_static_outages() {
    let mut c = quiet_config(3);
    c.outages.push(lora_sim::GatewayOutage {
        gateway: 0,
        from_s: 0.0,
        to_s: 10.0,
    });
    c.faults = Some(FaultConfig {
        churn: vec![GatewayChurn {
            gateway: 0,
            mtbf_s: 500.0,
            mttr_s: 500.0,
        }],
        ..FaultConfig::default()
    });
    let sim = Simulation::new(c, near_topology(2, 1), sf7_alloc(2)).unwrap();
    assert!(
        sim.outage_windows().len() > 1,
        "static plus compiled windows"
    );
    assert_eq!(
        sim.outage_windows()[0].to_s,
        10.0,
        "hand-placed window comes first"
    );
}

#[test]
fn jammer_burst_drops_are_attributed_to_the_jammer() {
    // A strong jammer on channel 0 over the whole run; devices on other
    // channels are untouched. Quiet fading keeps links comfortably above
    // sensitivity, so every loss on channel 0 is the jammer's.
    let mut c = quiet_config(7);
    c.faults = Some(FaultConfig {
        jam_bursts: vec![JamBurst {
            channel: 0,
            from_s: 0.0,
            to_s: 1e9,
            power_mw: 1.0,
        }],
        ..FaultConfig::default()
    });
    let n = 8;
    let sim = Simulation::new(c, near_topology(n, 1), sf7_alloc(n)).unwrap();
    let report = sim.run();
    assert!(
        report.gateways[0].jammed_drops > 0,
        "jammer must drop channel-0 copies"
    );
    assert_eq!(
        report.gateways[0].sinr_failures, 0,
        "no plain SINR losses in a quiet net"
    );
    // Device 0 sits on the jammed channel and delivers nothing.
    assert_eq!(report.devices[0].delivered, 0);
    // Devices on the other channels still deliver everything.
    assert!(report
        .devices
        .iter()
        .skip(1)
        .all(|d| d.delivered == d.attempts));
}

#[test]
fn weak_jammer_is_harmless() {
    let mut c = quiet_config(7);
    c.faults = Some(FaultConfig {
        jam_bursts: vec![JamBurst {
            channel: 0,
            from_s: 0.0,
            to_s: 1e9,
            power_mw: 1e-15,
        }],
        ..FaultConfig::default()
    });
    let sim = Simulation::new(c, near_topology(4, 1), sf7_alloc(4)).unwrap();
    let report = sim.run();
    assert_eq!(report.gateways[0].jammed_drops, 0);
    assert!(report.devices.iter().all(|d| d.delivered == d.attempts));
}

#[test]
fn total_backhaul_loss_delivers_nothing_and_counts_once() {
    let mut c = quiet_config(9);
    c.faults = Some(FaultConfig {
        backhaul: vec![BackhaulLink {
            gateway: 0,
            drop_prob: 1.0,
            latency_s: 0.0,
        }],
        ..FaultConfig::default()
    });
    let n = 6;
    let sim = Simulation::new(c, near_topology(n, 1), sf7_alloc(n)).unwrap();
    let report = sim.run();
    let attempts: u64 = report.devices.iter().map(|d| u64::from(d.attempts)).sum();
    assert_eq!(report.frames_delivered, 0);
    assert_eq!(
        report.gateways[0].decoded, 0,
        "backhaul losses never count as decoded"
    );
    assert_eq!(
        report.gateways[0].backhaul_drops, attempts,
        "every copy died on the backhaul"
    );
    assert_eq!(
        report.gateways[0].sinr_failures, 0,
        "no double-count against PHY drops"
    );
    assert_eq!(report.gateways[0].below_sensitivity, 0);
}

#[test]
fn partial_backhaul_loss_is_softened_by_gateway_diversity() {
    // Gateway 0 drops half its copies; gateway 1 is lossless. The
    // network-level delivery should barely notice (dedup needs one copy).
    let mut c = quiet_config(13);
    c.faults = Some(FaultConfig {
        backhaul: vec![BackhaulLink {
            gateway: 0,
            drop_prob: 0.5,
            latency_s: 0.0,
        }],
        ..FaultConfig::default()
    });
    let n = 6;
    let sim = Simulation::new(c, near_topology(n, 2), sf7_alloc(n)).unwrap();
    let report = sim.run();
    assert!(report.gateways[0].backhaul_drops > 0);
    assert_eq!(report.gateways[1].backhaul_drops, 0);
    let attempts: u64 = report.devices.iter().map(|d| u64::from(d.attempts)).sum();
    assert_eq!(
        report.frames_delivered, attempts,
        "gateway 1 covers the losses"
    );
}

#[test]
fn out_of_range_fault_indices_are_rejected() {
    let topo = near_topology(2, 2);
    let mut c = quiet_config(1);
    c.outages.push(lora_sim::GatewayOutage {
        gateway: 5,
        from_s: 0.0,
        to_s: 1.0,
    });
    let err = Simulation::new(c, topo.clone(), sf7_alloc(2)).unwrap_err();
    assert!(matches!(err, SimError::InvalidFault { .. }), "{err}");

    let mut c = quiet_config(1);
    c.faults = Some(FaultConfig {
        churn: vec![GatewayChurn {
            gateway: 2,
            mtbf_s: 100.0,
            mttr_s: 100.0,
        }],
        ..FaultConfig::default()
    });
    assert!(Simulation::new(c, topo.clone(), sf7_alloc(2)).is_err());

    let mut c = quiet_config(1);
    c.faults = Some(FaultConfig {
        jammers: vec![JammerProcess {
            channel: 64,
            mean_gap_s: 100.0,
            mean_burst_s: 100.0,
            power_mw: 1.0,
        }],
        ..FaultConfig::default()
    });
    assert!(Simulation::new(c, topo.clone(), sf7_alloc(2)).is_err());

    let mut c = quiet_config(1);
    c.faults = Some(FaultConfig {
        backhaul: vec![BackhaulLink {
            gateway: 9,
            drop_prob: 0.1,
            latency_s: 0.0,
        }],
        ..FaultConfig::default()
    });
    assert!(Simulation::new(c, topo, sf7_alloc(2)).is_err());
}

#[test]
fn inverted_window_is_rejected_at_construction() {
    let mut c = quiet_config(1);
    c.outages.push(lora_sim::GatewayOutage {
        gateway: 0,
        from_s: 100.0,
        to_s: 50.0,
    });
    let err = Simulation::new(c, near_topology(1, 1), sf7_alloc(1)).unwrap_err();
    assert!(err.to_string().contains("exceeds"), "{err}");
}

#[test]
fn pre_fault_engine_config_json_still_parses() {
    // A config serialised before the fault engine existed has no
    // `faults` key; it must deserialise to `faults: None` and behave
    // identically to an explicitly fault-free config.
    let with_field = serde_json::to_string(&quiet_config(21)).unwrap();
    let without_field = {
        let mut c = serde_json::to_string(&quiet_config(21)).unwrap();
        c = c.replace(",\"faults\":null", "");
        assert!(!c.contains("faults"), "fixture must lack the new key");
        c
    };
    let a: SimConfig = serde_json::from_str(&with_field).unwrap();
    let b: SimConfig = serde_json::from_str(&without_field).unwrap();
    assert_eq!(a, b);
    assert!(b.faults.is_none());
}

#[test]
fn gateway_stats_json_round_trips_and_defaults() {
    use lora_sim::GatewayStats;
    let faulted = GatewayStats {
        decoded: 10,
        demod_refused: 1,
        sinr_failures: 2,
        below_sensitivity: 3,
        outage_drops: 4,
        half_duplex_drops: 5,
        jammed_drops: 6,
        backhaul_drops: 7,
    };
    let json = serde_json::to_string(&faulted).unwrap();
    assert!(json.contains("jammed_drops"));
    let back: GatewayStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, faulted);

    // Fault-free stats serialise without the new keys (byte-compatible
    // with the pre-fault engine) and old JSON parses with zero defaults.
    let clean = GatewayStats {
        jammed_drops: 0,
        backhaul_drops: 0,
        ..faulted
    };
    let json = serde_json::to_string(&clean).unwrap();
    assert!(
        !json.contains("jammed_drops") && !json.contains("backhaul_drops"),
        "{json}"
    );
    let back: GatewayStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, clean);
}
