//! Process-isolated coverage for `Scale::from_env` and the
//! `EF_LORA_THREADS` override.
//!
//! Environment variables are process-global, so everything lives in ONE
//! `#[test]` inside its own integration-test binary: cargo gives the file
//! a dedicated process, and the single test mutates the environment
//! sequentially without racing any other test.

use ef_lora_bench::harness::{Scale, ScaleKind};

fn clear_overrides() {
    for var in [
        "EF_LORA_SCALE",
        "EF_LORA_REPS",
        "EF_LORA_DURATION",
        "EF_LORA_THREADS",
    ] {
        std::env::remove_var(var);
    }
}

#[test]
fn from_env_handles_every_override_shape() {
    clear_overrides();

    // Defaults: no variables set → the `small` preset, all cores.
    let base = Scale::from_env();
    assert_eq!(base.kind, ScaleKind::Small);
    assert_eq!(base, Scale::small());
    assert_eq!(base.threads, lora_parallel::available_threads());

    // Preset selection, including an unknown name falling back to small.
    std::env::set_var("EF_LORA_SCALE", "smoke");
    assert_eq!(Scale::from_env().kind, ScaleKind::Smoke);
    std::env::set_var("EF_LORA_SCALE", "paper");
    assert_eq!(Scale::from_env().kind, ScaleKind::Paper);
    std::env::set_var("EF_LORA_SCALE", "enormous");
    assert_eq!(Scale::from_env().kind, ScaleKind::Small);
    std::env::set_var("EF_LORA_SCALE", "smoke");

    // Well-formed numeric overrides are applied verbatim.
    std::env::set_var("EF_LORA_REPS", "7");
    std::env::set_var("EF_LORA_DURATION", "1234.5");
    let tuned = Scale::from_env();
    assert_eq!(tuned.reps, 7);
    assert_eq!(tuned.duration_s, 1_234.5);

    // Malformed overrides are rejected and the preset value is kept:
    // zero reps (would NaN every averaged metric), negative duration,
    // and plain garbage.
    for bad_reps in ["0", "-3", "three", ""] {
        std::env::set_var("EF_LORA_REPS", bad_reps);
        assert_eq!(
            Scale::from_env().reps,
            Scale::smoke().reps,
            "reps={bad_reps:?}"
        );
    }
    for bad_duration in ["0", "-10", "inf", "NaN", "long"] {
        std::env::set_var("EF_LORA_DURATION", bad_duration);
        assert_eq!(
            Scale::from_env().duration_s,
            Scale::smoke().duration_s,
            "duration={bad_duration:?}"
        );
    }
    std::env::remove_var("EF_LORA_REPS");
    std::env::remove_var("EF_LORA_DURATION");

    // EF_LORA_THREADS: 0 means "available parallelism", a plain count is
    // taken at face value (even an absurd one — it is a wall-clock knob,
    // not a correctness knob, and chunking clamps the fan-out to the
    // number of repetitions), and garbage falls back with a warning.
    std::env::set_var("EF_LORA_THREADS", "0");
    assert_eq!(
        Scale::from_env().threads,
        lora_parallel::available_threads()
    );
    std::env::set_var("EF_LORA_THREADS", "3");
    assert_eq!(Scale::from_env().threads, 3);
    std::env::set_var("EF_LORA_THREADS", "100000");
    assert_eq!(Scale::from_env().threads, 100_000);
    for bad_threads in ["-1", "many", "1.5", ""] {
        std::env::set_var("EF_LORA_THREADS", bad_threads);
        assert_eq!(
            Scale::from_env().threads,
            lora_parallel::available_threads(),
            "threads={bad_threads:?}"
        );
    }

    clear_overrides();
}
