//! Pins the experiment registry to the `src/bin/` directory: every
//! binary is either a registered experiment or a declared driver, and
//! vice versa — so adding a binary without registering it (or retiring
//! one without cleaning up) fails here, and `run_all`/CI never silently
//! drop an experiment.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use ef_lora_bench::registry::{find, DRIVER_BINS, EXPERIMENTS};

fn bin_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("src")
        .join("bin")
}

fn bin_stems() -> BTreeSet<String> {
    std::fs::read_dir(bin_dir())
        .expect("src/bin exists")
        .map(|entry| entry.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .map(|p| {
            p.file_stem()
                .expect("file stem")
                .to_str()
                .expect("utf-8 name")
                .to_string()
        })
        .collect()
}

#[test]
fn registry_matches_bin_directory() {
    let on_disk = bin_stems();
    let registered: BTreeSet<String> = EXPERIMENTS
        .iter()
        .map(|e| e.name.to_string())
        .chain(DRIVER_BINS.iter().map(|d| d.to_string()))
        .collect();

    let unregistered: Vec<_> = on_disk.difference(&registered).collect();
    assert!(
        unregistered.is_empty(),
        "binaries missing from the registry (add to EXPERIMENTS or DRIVER_BINS): {unregistered:?}"
    );
    let phantom: Vec<_> = registered.difference(&on_disk).collect();
    assert!(
        phantom.is_empty(),
        "registry entries without a src/bin file: {phantom:?}"
    );
}

#[test]
fn registry_lookup_round_trips() {
    for experiment in EXPERIMENTS {
        let found = find(experiment.name).expect("registered name resolves");
        assert_eq!(found.name, experiment.name);
    }
    assert!(find("run_all").is_none(), "drivers are not experiments");
    assert!(find("no_such_bin").is_none());
}

#[test]
fn ci_consumes_the_registry_drivers() {
    // CI runs experiments through the drivers, not by naming individual
    // experiment bins — so the registry stays the single source of truth.
    let ci = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join(".github")
            .join("workflows")
            .join("ci.yml"),
    )
    .expect("ci.yml exists");
    for driver in DRIVER_BINS {
        assert!(
            ci.contains(&format!("--bin {driver}")),
            "ci.yml must run the `{driver}` driver"
        );
    }
}
