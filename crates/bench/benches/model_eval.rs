//! Criterion benchmark of analytical-model evaluation: the mean-field
//! path, the paper's Laplace/PPP reduction (Eq. 18–20, the
//! "reducing computational overhead" claim), the exact Poisson–binomial θ,
//! and the incremental single-move evaluation the greedy relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lora_model::NetworkModel;
use lora_phy::{SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::{SimConfig, Topology};

fn mixed_alloc(n: usize) -> Vec<TxConfig> {
    (0..n)
        .map(|i| {
            TxConfig::new(
                SpreadingFactor::from_u8(7 + (i % 6) as u8).unwrap(),
                TxPowerDbm::new(2.0 + 2.0 * ((i / 6) % 7) as f64),
                i % 8,
            )
        })
        .collect()
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/full_evaluation");
    for &n in &[100usize, 300, 1000] {
        let config = SimConfig::default();
        let topo = Topology::disc(n, 3, 5_000.0, &config, 3);
        let model = NetworkModel::new(&config, &topo);
        let alloc = mixed_alloc(n);
        group.bench_with_input(BenchmarkId::new("mean_field", n), &n, |b, _| {
            b.iter(|| model.evaluate(&alloc))
        });
        group.bench_with_input(BenchmarkId::new("laplace_ppp", n), &n, |b, _| {
            b.iter(|| model.evaluate_laplace(&alloc))
        });
        if n <= 300 {
            group.bench_with_input(BenchmarkId::new("exact_theta", n), &n, |b, _| {
                b.iter(|| model.evaluate_exact_theta(&alloc))
            });
        }
    }
    group.finish();
}

fn bench_incremental_move(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/incremental_move");
    for &n in &[300usize, 1000, 3000] {
        let config = SimConfig::default();
        let topo = Topology::disc(n, 3, 5_000.0, &config, 3);
        let model = NetworkModel::new(&config, &topo);
        let state = model.state(mixed_alloc(n)).unwrap();
        let cfg = TxConfig::new(SpreadingFactor::Sf9, TxPowerDbm::new(8.0), 2);
        group.bench_with_input(BenchmarkId::new("min_ee_if", n), &n, |b, _| {
            b.iter(|| state.min_ee_if(n / 2, cfg, f64::NEG_INFINITY))
        });
        group.bench_with_input(BenchmarkId::new("min_ee_if_pruned", n), &n, |b, _| {
            // A floor above everything prunes after the mover's own EE.
            b.iter(|| state.min_ee_if(n / 2, cfg, f64::INFINITY))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_evaluation, bench_incremental_move);
criterion_main!(benches);
