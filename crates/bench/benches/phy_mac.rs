//! Criterion benchmark of the PHY/MAC primitives: time-on-air arithmetic
//! (per-call vs the [`ToaLut`] full-grid cache), the link-budget chain,
//! the AES-CMAC frame MIC, and the capacity Poisson–binomial DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lora_mac::crypto::{Aes128, Cmac};
use lora_mac::frame::UplinkFrame;
use lora_model::capacity::{poisson_at_most, poisson_binomial_at_most};
use lora_phy::link::{min_feasible_sf, noise_floor_dbm, received_power_dbm};
use lora_phy::toa::{CodingRate, ToaLut, ToaParams, MAX_PHY_PAYLOAD};
use lora_phy::{Bandwidth, SpreadingFactor};

fn bench_toa(c: &mut Criterion) {
    let params = ToaParams::new(SpreadingFactor::Sf12, Bandwidth::Bw125, CodingRate::Cr4_7);
    c.bench_function("phy/time_on_air_21B_sf12", |b| {
        b.iter(|| params.time_on_air_s(std::hint::black_box(21)).unwrap())
    });
}

fn bench_toa_grid(c: &mut Criterion) {
    // The full SF × payload grid, exactly the work `Simulation::new` and
    // the model evaluators repeat per device: recomputing Eq. 4 every
    // call vs one `ToaLut` lookup.
    let grid = SpreadingFactor::ALL.len() * (MAX_PHY_PAYLOAD + 1);
    let mut group = c.benchmark_group("phy/toa_grid");
    group.throughput(Throughput::Elements(grid as u64));
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for sf in SpreadingFactor::ALL {
                let params = ToaParams::new(sf, Bandwidth::Bw125, CodingRate::Cr4_7);
                for len in 0..=MAX_PHY_PAYLOAD {
                    acc += params.time_on_air_s(len).unwrap();
                }
            }
            acc
        })
    });
    let lut = ToaLut::new(Bandwidth::Bw125, CodingRate::Cr4_7);
    group.bench_function("lut", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for sf in SpreadingFactor::ALL {
                for len in 0..=MAX_PHY_PAYLOAD {
                    acc += lut.time_on_air_s(sf, len).unwrap();
                }
            }
            acc
        })
    });
    group.bench_function("lut_build", |b| {
        b.iter(|| ToaLut::new(Bandwidth::Bw125, CodingRate::Cr4_7))
    });
    group.finish();
}

fn bench_link_budget(c: &mut Criterion) {
    // The per-(device, gateway) reception chain the simulator evaluates
    // on every transmission: RX power, noise floor, feasible SF.
    c.bench_function("phy/link_budget", |b| {
        b.iter(|| {
            let rx = received_power_dbm(std::hint::black_box(14.0), 128.0, 1.0);
            let noise = noise_floor_dbm(Bandwidth::Bw125, 6.0);
            min_feasible_sf(rx, Bandwidth::Bw125, 6.0, 0.0).map(|sf| (sf, noise))
        })
    });
}

fn bench_crypto(c: &mut Criterion) {
    let key = [0x2b; 16];
    let cipher = Aes128::new(&key);
    c.bench_function("mac/aes128_block", |b| {
        b.iter(|| cipher.encrypt(std::hint::black_box([7u8; 16])))
    });
    let cmac = Cmac::new(&key);
    c.bench_function("mac/cmac_21B", |b| {
        b.iter(|| cmac.tag(std::hint::black_box(&[1u8; 21])))
    });
    let frame = UplinkFrame::new(0xdead_beef, 7, 1, vec![0u8; 8]);
    c.bench_function("mac/frame_encode", |b| b.iter(|| frame.encode(&key)));
}

fn bench_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/capacity_theta");
    for &n in &[100usize, 1000, 5000] {
        let probs = vec![0.003f64; n];
        group.bench_with_input(BenchmarkId::new("poisson_binomial", n), &n, |b, _| {
            b.iter(|| poisson_binomial_at_most(&probs, 7))
        });
    }
    group.bench_function("poisson_tail", |b| b.iter(|| poisson_at_most(3.0, 7)));
    group.finish();
}

criterion_group!(
    benches,
    bench_toa,
    bench_toa_grid,
    bench_link_budget,
    bench_crypto,
    bench_capacity
);
criterion_main!(benches);
