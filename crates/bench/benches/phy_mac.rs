//! Criterion benchmark of the PHY/MAC primitives: time-on-air arithmetic,
//! the AES-CMAC frame MIC, and the capacity Poisson–binomial DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lora_mac::crypto::{Aes128, Cmac};
use lora_mac::frame::UplinkFrame;
use lora_model::capacity::{poisson_at_most, poisson_binomial_at_most};
use lora_phy::toa::{CodingRate, ToaParams};
use lora_phy::{Bandwidth, SpreadingFactor};

fn bench_toa(c: &mut Criterion) {
    let params =
        ToaParams::new(SpreadingFactor::Sf12, Bandwidth::Bw125, CodingRate::Cr4_7);
    c.bench_function("phy/time_on_air_21B_sf12", |b| {
        b.iter(|| params.time_on_air_s(std::hint::black_box(21)).unwrap())
    });
}

fn bench_crypto(c: &mut Criterion) {
    let key = [0x2b; 16];
    let cipher = Aes128::new(&key);
    c.bench_function("mac/aes128_block", |b| {
        b.iter(|| cipher.encrypt(std::hint::black_box([7u8; 16])))
    });
    let cmac = Cmac::new(&key);
    c.bench_function("mac/cmac_21B", |b| b.iter(|| cmac.tag(std::hint::black_box(&[1u8; 21]))));
    let frame = UplinkFrame::new(0xdead_beef, 7, 1, vec![0u8; 8]);
    c.bench_function("mac/frame_encode", |b| b.iter(|| frame.encode(&key)));
}

fn bench_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/capacity_theta");
    for &n in &[100usize, 1000, 5000] {
        let probs = vec![0.003f64; n];
        group.bench_with_input(BenchmarkId::new("poisson_binomial", n), &n, |b, _| {
            b.iter(|| poisson_binomial_at_most(&probs, 7))
        });
    }
    group.bench_function("poisson_tail", |b| b.iter(|| poisson_at_most(3.0, 7)));
    group.finish();
}

criterion_group!(benches, bench_toa, bench_crypto, bench_capacity);
criterion_main!(benches);
