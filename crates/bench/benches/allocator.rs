//! Criterion benchmark of the EF-LoRa greedy allocator — the
//! machine-checked counterpart of the paper's Fig. 10 convergence study,
//! including the Section III-D density-first vs. random ordering ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ef_lora::{AllocationContext, DeviceOrdering, EfLora, IncrementalAllocator, Strategy};
use lora_model::NetworkModel;
use lora_sim::{SimConfig, Topology};

fn bench_allocator_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/allocator_convergence");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        for &gws in &[3usize, 9] {
            let config = SimConfig::default();
            let topo = Topology::disc(n, gws, 5_000.0, &config, 14);
            let model = NetworkModel::new(&config, &topo);
            group.bench_with_input(BenchmarkId::new(format!("{gws}gw"), n), &n, |b, _| {
                b.iter(|| {
                    let ctx = AllocationContext::new(&config, &topo, &model);
                    EfLora::default().allocate_with_report(&ctx).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_ordering_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec3d/device_ordering");
    group.sample_size(10);
    let config = SimConfig::default();
    let topo = Topology::disc(300, 3, 5_000.0, &config, 14);
    let model = NetworkModel::new(&config, &topo);
    for (label, ordering) in [
        ("density_first", DeviceOrdering::DensityFirst),
        ("random", DeviceOrdering::Random { seed: 7 }),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let ctx = AllocationContext::new(&config, &topo, &model);
                EfLora::default()
                    .with_ordering(ordering)
                    .allocate_with_report(&ctx)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    // The Section III-E churn scenario: +5 % devices on a 300-device
    // network — incremental repair vs a full re-run.
    let mut group = c.benchmark_group("ext/incremental_growth");
    group.sample_size(10);
    let config = SimConfig::default();
    let grown = Topology::disc(315, 3, 5_000.0, &config, 19);
    let old = Topology::from_sites(
        grown.devices()[..300].to_vec(),
        grown.gateways().to_vec(),
        grown.radius_m(),
    );
    let old_model = NetworkModel::new(&config, &old);
    let old_ctx = AllocationContext::new(&config, &old, &old_model);
    let previous = EfLora::default().allocate(&old_ctx).unwrap();
    let new_model = NetworkModel::new(&config, &grown);

    group.bench_function("incremental", |b| {
        b.iter(|| {
            let ctx = AllocationContext::new(&config, &grown, &new_model);
            IncrementalAllocator::default()
                .extend(&ctx, previous.as_slice())
                .unwrap()
        })
    });
    group.bench_function("full_rerun", |b| {
        b.iter(|| {
            let ctx = AllocationContext::new(&config, &grown, &new_model);
            EfLora::default().allocate_with_report(&ctx).unwrap()
        })
    });
    group.finish();
}

fn bench_scan_threads(c: &mut Criterion) {
    // The greedy candidate scan (336 candidates per device) with the
    // serial path vs the order-preserving parallel reduction — results
    // are byte-identical, only wall-clock differs.
    let mut group = c.benchmark_group("ef_lora/scan_threads");
    group.sample_size(10);
    let config = SimConfig::default();
    let topo = Topology::disc(400, 3, 5_000.0, &config, 14);
    let model = NetworkModel::new(&config, &topo);
    let available = lora_parallel::available_threads().max(2);
    let mut thread_counts = vec![1usize, available];
    thread_counts.dedup();
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let ctx = AllocationContext::new(&config, &topo, &model);
                    EfLora::default()
                        .with_threads(threads)
                        .allocate(&ctx)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_allocator_scaling,
    bench_ordering_ablation,
    bench_incremental_vs_full,
    bench_scan_threads
);
criterion_main!(benches);
