//! Criterion benchmark of the discrete-event simulator: events per second
//! as deployments grow (the substrate cost underlying every figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ef_lora::{AllocationContext, LegacyLora, Strategy};
use lora_model::NetworkModel;
use lora_sim::{SimConfig, Simulation, Topology};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/run");
    group.sample_size(10);
    for &n in &[100usize, 500, 1000] {
        let config = SimConfig::builder().seed(1).duration_s(6_000.0).build();
        let topo = Topology::disc(n, 3, 5_000.0, &config, 5);
        let model = NetworkModel::new(&config, &topo);
        let ctx = AllocationContext::new(&config, &topo, &model);
        let alloc = LegacyLora::default().allocate(&ctx).unwrap();
        let sim = Simulation::new(config, topo, alloc.into_inner()).unwrap();
        // ~10 transmissions per device over the 6000 s horizon.
        group.throughput(Throughput::Elements(n as u64 * 10));
        group.bench_with_input(BenchmarkId::new("transmissions", n), &n, |b, _| {
            b.iter(|| sim.run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
