//! Criterion benchmark of the discrete-event simulator: events per second
//! as deployments grow (the substrate cost underlying every figure), the
//! attenuation-matrix build, fresh vs shared-matrix construction, and the
//! medium's interference/SINR bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ef_lora::{AllocationContext, LegacyLora, Strategy};
use lora_model::NetworkModel;
use lora_phy::SpreadingFactor;
use lora_sim::medium::{ActiveTx, Medium};
use lora_sim::{attenuation_matrix, SimConfig, Simulation, Topology};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/run");
    group.sample_size(10);
    for &n in &[100usize, 500, 1000] {
        let config = SimConfig::builder().seed(1).duration_s(6_000.0).build();
        let topo = Topology::disc(n, 3, 5_000.0, &config, 5);
        let model = NetworkModel::new(&config, &topo);
        let ctx = AllocationContext::new(&config, &topo, &model);
        let alloc = LegacyLora::default().allocate(&ctx).unwrap();
        let sim = Simulation::new(config, topo, alloc.into_inner()).unwrap();
        // ~10 transmissions per device over the 6000 s horizon.
        group.throughput(Throughput::Elements(n as u64 * 10));
        group.bench_with_input(BenchmarkId::new("transmissions", n), &n, |b, _| {
            b.iter(|| sim.run())
        });
    }
    group.finish();
}

fn bench_attenuation_build(c: &mut Criterion) {
    // The O(devices × gateways) path-loss table rebuilt per simulation
    // before the shared-matrix optimization; now built once per model.
    let mut group = c.benchmark_group("sim/attenuation_build");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let config = SimConfig::default();
        let topo = Topology::disc(n, 3, 5_000.0, &config, 5);
        group.throughput(Throughput::Elements(n as u64 * 3));
        group.bench_with_input(BenchmarkId::new("devices", n), &n, |b, _| {
            b.iter(|| attenuation_matrix(&config, &topo))
        });
    }
    group.finish();
}

fn bench_sim_construction(c: &mut Criterion) {
    // Fresh construction recomputes the attenuation matrix; the shared
    // path clones the model's matrix — the per-repetition saving the
    // harness banks on.
    let mut group = c.benchmark_group("sim/construction");
    group.sample_size(10);
    let n = 1000;
    let config = SimConfig::builder().seed(1).duration_s(6_000.0).build();
    let topo = Topology::disc(n, 3, 5_000.0, &config, 5);
    let model = NetworkModel::new(&config, &topo);
    let ctx = AllocationContext::new(&config, &topo, &model);
    let alloc = LegacyLora::default().allocate(&ctx).unwrap().into_inner();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("fresh", |b| {
        b.iter(|| Simulation::new(config.clone(), topo.clone(), alloc.clone()).unwrap())
    });
    group.bench_function("shared", |b| {
        b.iter(|| {
            Simulation::with_attenuation(
                config.clone(),
                topo.clone(),
                alloc.clone(),
                model.shared_attenuation().clone(),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_medium(c: &mut Criterion) {
    // The interference bookkeeping inside the event loop: start/end a
    // batch of overlapping co-channel transmissions and read the SINR
    // every reception fate decision depends on.
    const BATCH: usize = 64;
    let n_gw = 3;
    let mut group = c.benchmark_group("sim/medium");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function(BenchmarkId::new("overlap_cycle", BATCH), |b| {
        b.iter(|| {
            let mut medium = Medium::new(lora_mac::collision::InterSfPolicy::Orthogonal, n_gw);
            for i in 0..BATCH {
                medium.start(ActiveTx {
                    device: i,
                    seq: 0,
                    start_s: i as f64 * 0.01,
                    end_s: 2.0 + i as f64 * 0.01,
                    sf: SpreadingFactor::Sf9,
                    channel: 0,
                    rx_power_mw: vec![1e-9; n_gw],
                    interference_mw: vec![0.0; n_gw],
                    demod_locked: vec![true; n_gw],
                });
            }
            let mut sinr_sum = 0.0f64;
            for i in 0..BATCH {
                let tx = medium.end(i, 0);
                sinr_sum += tx.sinr_db(0, 1e-12);
            }
            sinr_sum
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_attenuation_build,
    bench_sim_construction,
    bench_medium
);
criterion_main!(benches);
