//! The stylised motivation examples of paper Section II (Tables I & II).
//!
//! These are not simulations: the paper stipulates the inputs — a 10-byte
//! packet takes 14 ms at SF7 and 26 ms at SF8, and the reception ratio of
//! a gateway with 2/3/4 co-SF contenders is 67 %/54 %/45 % — and derives
//! each device's *expected transmission time per delivered packet*,
//! `ToA / PRR`, as the energy proxy. The min-max of those times is the
//! fairness indicator.
//!
//! The exact device/gateway geometry exists only in the paper's figures;
//! the scenarios below are reconstructed so that every qualitative step of
//! the paper's argument reproduces (a second gateway helps; *adjusting* an
//! SF upward reduces collisions and helps again; raising one device's TP
//! to reach a second gateway evens the times out).

use serde::Serialize;

use lora_phy::SpreadingFactor;

/// Stipulated time-on-air of the example's 10-byte packet, milliseconds.
pub fn example_toa_ms(sf: SpreadingFactor) -> f64 {
    match sf {
        SpreadingFactor::Sf7 => 14.0,
        SpreadingFactor::Sf8 => 26.0,
        // The examples only use SF7/SF8; extend with the ×2-per-step rule.
        other => 26.0 * f64::from(other.chips_per_symbol()) / 256.0,
    }
}

/// Stipulated single-gateway reception ratio as a function of the number
/// of devices sharing the SF at that gateway (including the sender).
pub fn example_prr(co_sf_devices: usize) -> f64 {
    match co_sf_devices {
        0 | 1 => 1.0,
        2 => 0.67,
        3 => 0.54,
        4 => 0.45,
        // Extrapolate the stipulated sequence.
        n => (0.45 * 0.83f64.powi(n as i32 - 4)).max(0.05),
    }
}

/// One device of a motivation scenario: its SF and which gateways hear it.
#[derive(Debug, Clone, Serialize)]
pub struct MotiveDevice {
    /// Assigned spreading factor.
    pub sf: SpreadingFactor,
    /// Indices of the gateways in reach at the device's TP.
    pub reach: Vec<usize>,
}

/// A full scenario: devices plus the gateway count.
#[derive(Debug, Clone, Serialize)]
pub struct Scenario {
    /// Scenario label (matches the paper's table column).
    pub label: String,
    /// The devices.
    pub devices: Vec<MotiveDevice>,
    /// Number of gateways.
    pub n_gateways: usize,
}

/// Expected transmission time per delivered packet for every device,
/// milliseconds.
///
/// Per gateway, the reception ratio is the stipulated function of how many
/// co-SF devices reach that gateway; across gateways the paper's
/// multi-gateway rule applies (delivered if any copy survives,
/// `1 − Π(1 − p)`).
pub fn expected_tx_times_ms(scenario: &Scenario) -> Vec<f64> {
    scenario
        .devices
        .iter()
        .map(|d| {
            let mut miss_all = 1.0;
            for &gw in &d.reach {
                let contenders = scenario
                    .devices
                    .iter()
                    .filter(|o| o.sf == d.sf && o.reach.contains(&gw))
                    .count();
                miss_all *= 1.0 - example_prr(contenders);
            }
            let prr = 1.0 - miss_all;
            if prr <= 0.0 {
                f64::INFINITY
            } else {
                example_toa_ms(d.sf) / prr
            }
        })
        .collect()
}

/// Summary of a scenario: per-device times, average and max.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// Scenario label.
    pub label: String,
    /// Expected per-device transmission time, ms.
    pub times_ms: Vec<f64>,
    /// Average across devices, ms.
    pub average_ms: f64,
    /// The fairness indicator: the worst device's time, ms.
    pub max_ms: f64,
}

/// Evaluates a scenario.
pub fn evaluate(scenario: &Scenario) -> ScenarioResult {
    let times = expected_tx_times_ms(scenario);
    let average = times.iter().sum::<f64>() / times.len() as f64;
    let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    ScenarioResult {
        label: scenario.label.clone(),
        times_ms: times,
        average_ms: average,
        max_ms: max,
    }
}

/// The three Table-I scenarios (Fig. 1a/b/c).
///
/// Five devices. With a single gateway, devices 1 and 4 are too far for
/// SF7 and must use SF8. With two gateways every device can reach one
/// gateway at SF7 (device 3 sits between and reaches both). The adjusted
/// allocation moves device 5 to SF8, relieving the SF7 contention.
pub fn table1_scenarios() -> [Scenario; 3] {
    use SpreadingFactor::{Sf7, Sf8};
    let single = Scenario {
        label: "Single GW".into(),
        n_gateways: 1,
        devices: vec![
            MotiveDevice {
                sf: Sf8,
                reach: vec![0],
            }, // 1
            MotiveDevice {
                sf: Sf7,
                reach: vec![0],
            }, // 2
            MotiveDevice {
                sf: Sf7,
                reach: vec![0],
            }, // 3
            MotiveDevice {
                sf: Sf8,
                reach: vec![0],
            }, // 4
            MotiveDevice {
                sf: Sf7,
                reach: vec![0],
            }, // 5
        ],
    };
    // Reach sets reconstructed from Table I's numbers: devices 1 and 3
    // hear only the first gateway, device 4 only the second, devices 2
    // and 5 both — this reproduces the paper's column 2 (31/19/31/26/19)
    // and column 3 (26/17/26/21/26) to within rounding.
    let smallest = Scenario {
        label: "Two GWs / smallest SF".into(),
        n_gateways: 2,
        devices: vec![
            MotiveDevice {
                sf: Sf7,
                reach: vec![0],
            }, // 1
            MotiveDevice {
                sf: Sf7,
                reach: vec![0, 1],
            }, // 2
            MotiveDevice {
                sf: Sf7,
                reach: vec![0],
            }, // 3
            MotiveDevice {
                sf: Sf7,
                reach: vec![1],
            }, // 4
            MotiveDevice {
                sf: Sf7,
                reach: vec![0, 1],
            }, // 5
        ],
    };
    let mut adjusted = smallest.clone();
    adjusted.label = "Two GWs / adjusted SF".into();
    adjusted.devices[4].sf = Sf8; // re-assign device #5 from SF7 to SF8
    [single, smallest, adjusted]
}

/// The two Table-II scenarios (Fig. 2a/b).
///
/// Three devices, two gateways, all SF7. Reconstructed from the paper's
/// stated reception ratios (100 %, 54 %, 54 %): device 1 reaches both
/// gateways (its private gateway 0 gives it 100 %), devices 2 and 3 only
/// gateway 1, which carries three co-SF devices (54 %). Raising device 3's
/// TP lets it also reach gateway 0, reproducing the paper's adjusted times
/// (17/26/17 ms to within rounding).
pub fn table2_scenarios() -> [Scenario; 2] {
    use SpreadingFactor::Sf7;
    let smallest = Scenario {
        label: "Smallest TP".into(),
        n_gateways: 2,
        devices: vec![
            MotiveDevice {
                sf: Sf7,
                reach: vec![0, 1],
            },
            MotiveDevice {
                sf: Sf7,
                reach: vec![1],
            },
            MotiveDevice {
                sf: Sf7,
                reach: vec![1],
            },
        ],
    };
    let mut adjusted = smallest.clone();
    adjusted.label = "Adjusted TP".into();
    adjusted.devices[2].reach = vec![0, 1];
    [smallest, adjusted]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stipulated_inputs_match_paper() {
        assert_eq!(example_toa_ms(SpreadingFactor::Sf7), 14.0);
        assert_eq!(example_toa_ms(SpreadingFactor::Sf8), 26.0);
        assert_eq!(example_prr(2), 0.67);
        assert_eq!(example_prr(3), 0.54);
        assert_eq!(example_prr(4), 0.45);
        assert_eq!(example_prr(1), 1.0);
    }

    #[test]
    fn table1_single_gateway_matches_paper_column() {
        // Paper Table I column 1: 39, 26, 26, 39, 26 (ms).
        let result = evaluate(&table1_scenarios()[0]);
        let expected = [39.0, 26.0, 26.0, 39.0, 26.0];
        for (got, want) in result.times_ms.iter().zip(expected) {
            assert!((got - want).abs() < 0.5, "{got} vs {want}");
        }
        assert!((result.average_ms - 31.2).abs() < 0.2);
        assert!((result.max_ms - 39.0).abs() < 0.5);
    }

    #[test]
    fn table1_two_gateways_improve_fairness() {
        let [single, smallest, adjusted] = table1_scenarios();
        let s0 = evaluate(&single);
        let s1 = evaluate(&smallest);
        let s2 = evaluate(&adjusted);
        assert!(
            s1.max_ms < s0.max_ms,
            "a second gateway reduces the worst time"
        );
        assert!(s2.max_ms < s1.max_ms, "the adjusted SF reduces it further");
        assert!(s2.average_ms < s0.average_ms);
        // Paper Table I columns 2 and 3 (31/19/31/26/19 and 26/17/26/21/26),
        // reproduced to within 0.5 ms of their rounding.
        let want1 = [31.1, 18.7, 31.1, 25.9, 18.7];
        let want2 = [25.9, 16.5, 25.9, 20.9, 26.0];
        for (got, want) in s1.times_ms.iter().zip(want1) {
            assert!((got - want).abs() < 0.5, "col2: {got} vs {want}");
        }
        for (got, want) in s2.times_ms.iter().zip(want2) {
            assert!((got - want).abs() < 0.5, "col3: {got} vs {want}");
        }
        assert!((s1.average_ms - 25.1).abs() < 0.3, "paper: 25.2");
        assert!((s2.average_ms - 23.0).abs() < 0.3, "paper: 23.2");
    }

    #[test]
    fn table2_adjusted_tp_evens_out_times() {
        let [smallest, adjusted] = table2_scenarios();
        let s0 = evaluate(&smallest);
        let s1 = evaluate(&adjusted);
        // Paper text: smallest-TP times 14/26/26 ms → adjusted 17/26/17.
        let want0 = [14.0, 25.9, 25.9];
        let want1 = [16.5, 25.9, 16.5];
        for (got, want) in s0.times_ms.iter().zip(want0) {
            assert!((got - want).abs() < 0.5, "{got} vs {want}");
        }
        for (got, want) in s1.times_ms.iter().zip(want1) {
            assert!((got - want).abs() < 0.5, "{got} vs {want}");
        }
        // Fairness improves: the spread between best and worst narrows.
        let spread = |r: &ScenarioResult| {
            r.max_ms - r.times_ms.iter().copied().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(&s1) < spread(&s0));
        assert!(
            s1.times_ms[2] < s0.times_ms[2],
            "the boosted device improves itself"
        );
    }

    #[test]
    fn unreachable_device_costs_infinity() {
        let s = Scenario {
            label: "island".into(),
            n_gateways: 1,
            devices: vec![MotiveDevice {
                sf: SpreadingFactor::Sf7,
                reach: vec![],
            }],
        };
        assert!(expected_tx_times_ms(&s)[0].is_infinite());
    }
}
