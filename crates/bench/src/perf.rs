//! Machine-readable performance harness (`ef-lora-bench --bin perf`).
//!
//! Runs a fixed, deterministic workload matrix — deployments of
//! (devices × gateways) crossed with worker-thread counts — over the
//! proven hot paths: the EF-LoRa greedy candidate scan, a full simulator
//! epoch, the analytical model evaluation, the attenuation-matrix build,
//! the fresh-vs-shared simulation construction and the time-on-air grid
//! (recomputed vs [`lora_phy::ToaLut`]).
//!
//! Each workload is repeated `reps` times; the report records the median
//! and 95th-percentile wall-clock plus derived throughput
//! (events/second, devices/second). Reports serialise as
//! [`SCHEMA`]-tagged JSON (`BENCH_PERF.json`); everything except the
//! timing fields and the `git_describe` stamp is a pure function of the
//! scale preset and thread count, so [`normalized`] reports are
//! byte-stable across runs — a property the test-suite pins.
//!
//! The regression gate compares a fresh report against the checked-in
//! baseline `tests/golden/perf_baseline.json` with a fractional
//! tolerance (CI uses 25 %); `EF_LORA_UPDATE_GOLDEN=1` rewrites the
//! baseline, mirroring the conformance golden workflow.

use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use ef_lora::{AllocationContext, EfLora, Strategy};
use lora_model::NetworkModel;
use lora_phy::toa::{ToaLut, ToaParams, MAX_PHY_PAYLOAD};
use lora_phy::{Bandwidth, SpreadingFactor};
use lora_sim::{Simulation, Topology};

use crate::harness::{paper_config_at, Scale, ScaleKind};

/// Schema tag carried by every report.
pub const SCHEMA: &str = "ef-lora-perf/v1";

/// Default output file name for the perf binary.
pub const DEFAULT_OUTPUT: &str = "BENCH_PERF.json";

/// Default fractional regression tolerance (25 %, the CI gate).
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Default repetitions per workload.
pub const DEFAULT_REPS: usize = 5;

/// Environment variable that rewrites the checked-in baseline instead of
/// gating against it (shared with the conformance goldens).
pub const UPDATE_ENV: &str = "EF_LORA_UPDATE_GOLDEN";

/// One measured workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Stable workload identifier, e.g. `alloc_scan/60dev_1gw_t4`.
    pub id: String,
    /// Devices in the deployment (0 when not applicable).
    pub devices: usize,
    /// Gateways in the deployment (0 when not applicable).
    pub gateways: usize,
    /// Worker threads the workload ran with.
    pub threads: usize,
    /// Deterministic count of work units processed per repetition
    /// (transmission attempts, candidate evaluations, matrix cells, …).
    pub events: u64,
    /// Median wall-clock over the repetitions, milliseconds.
    pub median_ms: f64,
    /// 95th-percentile wall-clock over the repetitions, milliseconds.
    pub p95_ms: f64,
    /// `events / median`, per second (0 when `events` is 0).
    pub events_per_sec: f64,
    /// `devices / median`, per second (0 when `devices` is 0).
    pub devices_per_sec: f64,
}

/// A full perf report (`BENCH_PERF.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// `git describe --always --dirty` of the working tree, or
    /// `"unknown"` outside a repository.
    pub git_describe: String,
    /// Scale preset the matrix was derived from.
    pub scale: String,
    /// Repetitions per workload.
    pub reps: usize,
    /// The measured workloads, in matrix order.
    pub workloads: Vec<WorkloadResult>,
}

/// One finding from the regression comparator.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfIssue {
    /// A workload's median exceeded the baseline by more than the
    /// tolerance.
    Slower {
        /// Workload identifier.
        id: String,
        /// Baseline median, milliseconds.
        baseline_ms: f64,
        /// Current median, milliseconds.
        current_ms: f64,
        /// `current / baseline`.
        ratio: f64,
    },
    /// A baseline workload is absent from the current report — the
    /// matrix silently shrank.
    Missing {
        /// Workload identifier.
        id: String,
    },
}

impl std::fmt::Display for PerfIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfIssue::Slower {
                id,
                baseline_ms,
                current_ms,
                ratio,
            } => write!(
                f,
                "{id}: {current_ms:.3} ms vs baseline {baseline_ms:.3} ms ({ratio:.2}x)"
            ),
            PerfIssue::Missing { id } => {
                write!(f, "{id}: present in baseline but missing from this run")
            }
        }
    }
}

/// Compares `current` against `baseline`: flags any workload whose median
/// regressed by more than `tolerance` (fractional — 0.25 means 25 %
/// slower) and any baseline workload missing from `current`. Workloads
/// new in `current` pass silently (the next baseline refresh picks them
/// up).
pub fn compare(current: &PerfReport, baseline: &PerfReport, tolerance: f64) -> Vec<PerfIssue> {
    let mut issues = Vec::new();
    for base in &baseline.workloads {
        match current.workloads.iter().find(|w| w.id == base.id) {
            None => issues.push(PerfIssue::Missing {
                id: base.id.clone(),
            }),
            Some(cur) => {
                if base.median_ms > 0.0 && cur.median_ms > base.median_ms * (1.0 + tolerance) {
                    issues.push(PerfIssue::Slower {
                        id: base.id.clone(),
                        baseline_ms: base.median_ms,
                        current_ms: cur.median_ms,
                        ratio: cur.median_ms / base.median_ms,
                    });
                }
            }
        }
    }
    issues
}

/// The report with every machine/run-dependent field zeroed: timings,
/// throughputs and the `git_describe` stamp. What remains — the schema,
/// the matrix shape and the deterministic event counts — must be
/// byte-stable across runs at a fixed scale and thread count.
#[must_use]
pub fn normalized(report: &PerfReport) -> PerfReport {
    let mut out = report.clone();
    out.git_describe = String::new();
    for w in &mut out.workloads {
        w.median_ms = 0.0;
        w.p95_ms = 0.0;
        w.events_per_sec = 0.0;
        w.devices_per_sec = 0.0;
    }
    out
}

/// Serialises a report the way the perf binary writes it: pretty JSON
/// plus a trailing newline.
pub fn to_json(report: &PerfReport) -> String {
    let mut body = serde_json::to_string_pretty(report).expect("report serialises");
    body.push('\n');
    body
}

/// Path of the checked-in perf baseline
/// (`<repo>/tests/golden/perf_baseline.json`), mirroring the conformance
/// golden layout.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("tests")
        .join("golden")
        .join("perf_baseline.json")
}

/// `git describe --always --dirty`, or `"unknown"` when git or the
/// repository is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The (devices, gateways) deployments measured at each scale preset.
pub fn deployments(scale: &Scale) -> Vec<(usize, usize)> {
    match scale.kind {
        ScaleKind::Smoke => vec![(60, 1), (100, 2)],
        ScaleKind::Small => vec![(300, 2), (600, 3)],
        ScaleKind::Paper => vec![(1_500, 3), (3_000, 5)],
    }
}

/// Runs one closure `reps` times and reduces to (median ms, p95 ms,
/// events from the last repetition).
fn measure(reps: usize, mut f: impl FnMut() -> u64) -> (f64, f64, u64) {
    assert!(reps > 0, "at least one repetition");
    let mut times_ms = Vec::with_capacity(reps);
    let mut events = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        events = f();
        times_ms.push(t0.elapsed().as_secs_f64() * 1_000.0);
    }
    times_ms.sort_by(f64::total_cmp);
    let median = times_ms[times_ms.len() / 2];
    let p95_idx = ((times_ms.len() as f64 * 0.95).ceil() as usize).clamp(1, times_ms.len()) - 1;
    (median, times_ms[p95_idx], events)
}

fn result_from(
    id: String,
    devices: usize,
    gateways: usize,
    threads: usize,
    reps: usize,
    f: impl FnMut() -> u64,
) -> WorkloadResult {
    let (median_ms, p95_ms, events) = measure(reps, f);
    let per_sec = |count: f64| {
        if median_ms > 0.0 {
            count / (median_ms / 1_000.0)
        } else {
            0.0
        }
    };
    WorkloadResult {
        id,
        devices,
        gateways,
        threads,
        events,
        median_ms,
        p95_ms,
        events_per_sec: per_sec(events as f64),
        devices_per_sec: per_sec(devices as f64),
    }
}

/// Measures the workload matrix over the given deployments. The public
/// entry point is [`run_workloads`]; tests call this with a single tiny
/// deployment.
pub fn run_matrix(deps: &[(usize, usize)], scale: &Scale, reps: usize) -> PerfReport {
    let config = paper_config_at(scale);
    let mut thread_counts = vec![1usize];
    if scale.threads > 1 {
        thread_counts.push(scale.threads);
    }

    let mut workloads = Vec::new();
    for &(n_dev, n_gw) in deps {
        let topology = Topology::disc(n_dev, n_gw, 5_000.0, &config, 11);
        let model = NetworkModel::new(&config, &topology);
        let ctx = AllocationContext::new(&config, &topology, &model);
        let tag = format!("{n_dev}dev_{n_gw}gw");

        // EF-LoRa greedy candidate scan, serial and parallel.
        for &threads in &thread_counts {
            workloads.push(result_from(
                format!("alloc_scan/{tag}_t{threads}"),
                n_dev,
                n_gw,
                threads,
                reps,
                || {
                    let alloc = EfLora::default()
                        .with_threads(threads)
                        .allocate(&ctx)
                        .expect("allocates");
                    // Candidate evaluations per pass: every device scans
                    // the full (SF × channel × TP) grid.
                    std::hint::black_box(alloc.as_slice().len() as u64)
                        * ctx.candidate_count() as u64
                },
            ));
        }

        // One full simulator epoch under the EF-LoRa allocation.
        let alloc = EfLora::default()
            .with_threads(scale.threads)
            .allocate(&ctx)
            .expect("allocates");
        let mut sim_cfg = config.clone();
        sim_cfg.duration_s = scale.duration_s;
        let sim = Simulation::with_attenuation(
            sim_cfg.clone(),
            topology.clone(),
            alloc.as_slice().to_vec(),
            model.shared_attenuation().clone(),
        )
        .expect("builds");
        workloads.push(result_from(
            format!("sim_epoch/{tag}"),
            n_dev,
            n_gw,
            1,
            reps,
            || {
                let report = sim.run();
                report.devices.iter().map(|d| u64::from(d.attempts)).sum()
            },
        ));

        // Analytical model evaluation (Eq. 5–20) of the allocation.
        workloads.push(result_from(
            format!("model_eval/{tag}"),
            n_dev,
            n_gw,
            1,
            reps,
            || {
                let ee = model.evaluate(alloc.as_slice());
                std::hint::black_box(ee.len() as u64)
            },
        ));

        // Path-loss grid build (the O(devices × gateways) powf sweep).
        workloads.push(result_from(
            format!("attenuation_build/{tag}"),
            n_dev,
            n_gw,
            1,
            reps,
            || {
                let m = lora_sim::attenuation_matrix(&config, &topology);
                (m.device_count() * m.gateway_count()) as u64
            },
        ));

        // Simulation construction: from scratch vs reusing the model's
        // shared matrix (the optimization `run_strategy` relies on).
        workloads.push(result_from(
            format!("sim_build/fresh/{tag}"),
            n_dev,
            n_gw,
            1,
            reps,
            || {
                let sim =
                    Simulation::new(sim_cfg.clone(), topology.clone(), alloc.as_slice().to_vec())
                        .expect("builds");
                std::hint::black_box(sim.topology().device_count() as u64)
            },
        ));
        workloads.push(result_from(
            format!("sim_build/shared/{tag}"),
            n_dev,
            n_gw,
            1,
            reps,
            || {
                let sim = Simulation::with_attenuation(
                    sim_cfg.clone(),
                    topology.clone(),
                    alloc.as_slice().to_vec(),
                    model.shared_attenuation().clone(),
                )
                .expect("builds");
                std::hint::black_box(sim.topology().device_count() as u64)
            },
        ));
    }

    // Time-on-air over the full (SF × payload) grid: Eq. 4 recomputed
    // per call vs one ToaLut lookup (the cached-ToA optimization).
    const TOA_SWEEPS: u64 = 40;
    workloads.push(result_from(
        "toa_grid/raw".to_string(),
        0,
        0,
        1,
        reps,
        || {
            let mut acc = 0.0f64;
            for _ in 0..TOA_SWEEPS {
                for sf in SpreadingFactor::ALL {
                    for len in 0..=MAX_PHY_PAYLOAD {
                        acc += ToaParams::new(sf, Bandwidth::Bw125, Default::default())
                            .time_on_air_s(len)
                            .expect("in range");
                    }
                }
            }
            std::hint::black_box(acc);
            TOA_SWEEPS * 6 * (MAX_PHY_PAYLOAD as u64 + 1)
        },
    ));
    let lut = ToaLut::new(Bandwidth::Bw125, Default::default());
    workloads.push(result_from(
        "toa_grid/lut".to_string(),
        0,
        0,
        1,
        reps,
        || {
            let mut acc = 0.0f64;
            for _ in 0..TOA_SWEEPS {
                for sf in SpreadingFactor::ALL {
                    for len in 0..=MAX_PHY_PAYLOAD {
                        acc += lut.time_on_air_s(sf, len).expect("in range");
                    }
                }
            }
            std::hint::black_box(acc);
            TOA_SWEEPS * 6 * (MAX_PHY_PAYLOAD as u64 + 1)
        },
    ));

    PerfReport {
        schema: SCHEMA.to_string(),
        git_describe: git_describe(),
        scale: format!("{:?}", scale.kind).to_lowercase(),
        reps,
        workloads,
    }
}

/// Measures the full workload matrix for `scale`.
pub fn run_workloads(scale: &Scale, reps: usize) -> PerfReport {
    run_matrix(&deployments(scale), scale, reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(id: &str, median_ms: f64) -> PerfReport {
        PerfReport {
            schema: SCHEMA.to_string(),
            git_describe: "test".to_string(),
            scale: "smoke".to_string(),
            reps: 1,
            workloads: vec![WorkloadResult {
                id: id.to_string(),
                devices: 10,
                gateways: 1,
                threads: 1,
                events: 100,
                median_ms,
                p95_ms: median_ms,
                events_per_sec: 0.0,
                devices_per_sec: 0.0,
            }],
        }
    }

    #[test]
    fn comparator_passes_identical_baseline() {
        let r = report_with("w", 10.0);
        assert!(compare(&r, &r, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn comparator_flags_synthetic_2x_slowdown() {
        let baseline = report_with("w", 10.0);
        let slow = report_with("w", 20.0);
        let issues = compare(&slow, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(issues.len(), 1);
        match &issues[0] {
            PerfIssue::Slower { id, ratio, .. } => {
                assert_eq!(id, "w");
                assert!((ratio - 2.0).abs() < 1e-9);
            }
            other => panic!("expected Slower, got {other:?}"),
        }
        // The reverse direction — getting faster — is never an issue.
        assert!(compare(&baseline, &slow, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn comparator_flags_missing_workload() {
        let baseline = report_with("w", 10.0);
        let mut current = report_with("other", 10.0);
        let issues = compare(&current, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(
            issues,
            vec![PerfIssue::Missing {
                id: "w".to_string()
            }]
        );
        // Within tolerance passes.
        current = report_with("w", 12.0);
        assert!(compare(&current, &baseline, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn normalized_report_serialization_is_byte_stable() {
        // Two independent measurement runs at a fixed scale must agree on
        // everything except wall-clock: same matrix, same ids, same
        // deterministic event counts. Timing fields are zeroed by
        // `normalized`, so the serialized bytes must match exactly.
        let scale = Scale::smoke().with_threads(2);
        let a = run_matrix(&[(20, 1)], &scale, 1);
        let b = run_matrix(&[(20, 1)], &scale, 1);
        assert_eq!(to_json(&normalized(&a)), to_json(&normalized(&b)));
        // And the raw report round-trips through serde.
        let back: PerfReport = serde_json::from_str(&to_json(&a)).expect("parses");
        assert_eq!(back, a);
    }

    #[test]
    fn measure_orders_percentiles() {
        let mut calls = 0u64;
        let (median, p95, events) = measure(5, || {
            calls += 1;
            calls
        });
        assert_eq!(events, 5, "events come from the last repetition");
        assert!(median >= 0.0 && p95 >= median);
    }
}
