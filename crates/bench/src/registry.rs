//! Single source of truth for the experiment binaries.
//!
//! Every experiment under `src/bin/` is a thin wrapper over a library
//! function; this registry names them all once, so the `run_all` driver
//! and CI consume the same list and a test can assert the registry and
//! the `src/bin/` directory never drift apart.

use crate::harness::Scale;

/// One experiment binary: its `src/bin/<name>.rs` stem and the library
/// entry point it wraps.
pub struct ExperimentBin {
    /// Binary name (the `src/bin/` file stem).
    pub name: &'static str,
    /// Runs the experiment at the given scale, discarding its result
    /// (results are archived as JSON under `target/experiments/`).
    pub run: fn(&Scale),
}

fn table1(_: &Scale) {
    crate::experiments::table1_sf_motivation::run();
}
fn table2(_: &Scale) {
    crate::experiments::table2_tp_motivation::run();
}
fn fig4(scale: &Scale) {
    let _ = crate::experiments::fig4_ee_per_device::run(scale);
}
fn fig5(scale: &Scale) {
    let _ = crate::experiments::fig5_ee_cdf::run(scale);
}
fn fig6(scale: &Scale) {
    let _ = crate::experiments::fig6_min_ee_vs_devices::run(scale);
}
fn fig7(scale: &Scale) {
    let _ = crate::experiments::fig7_min_ee_vs_gateways::run(scale);
}
fn fig8(scale: &Scale) {
    let _ = crate::experiments::fig8_network_lifetime::run(scale);
}
fn fig9(scale: &Scale) {
    let _ = crate::experiments::fig9_decomposition::run(scale);
}
fn fig10(scale: &Scale) {
    let _ = crate::experiments::fig10_convergence::run(scale);
}
fn model_validation(scale: &Scale) {
    let _ = crate::experiments::model_validation::run(scale);
}
fn ext_inter_sf(scale: &Scale) {
    let _ = crate::experiments::ext_inter_sf::run(scale);
}
fn ext_heterogeneous_rates(scale: &Scale) {
    let _ = crate::experiments::ext_heterogeneous_rates::run(scale);
}
fn ext_incremental(scale: &Scale) {
    let _ = crate::experiments::ext_incremental::run(scale);
}
fn ext_confirmed_traffic(scale: &Scale) {
    let _ = crate::experiments::ext_confirmed_traffic::run(scale);
}
fn ext_adr(scale: &Scale) {
    let _ = crate::experiments::ext_adr::run(scale);
}
fn resilience(scale: &Scale) {
    let _ = crate::experiments::resilience::run(scale);
}
fn ext_scenarios(scale: &Scale) {
    let _ = crate::experiments::ext_scenarios::run(scale);
}
fn ext_serve_soak(scale: &Scale) {
    let _ = crate::experiments::ext_serve_soak::run(scale);
}
fn ext_scale(scale: &Scale) {
    let _ = crate::experiments::ext_scale::run(scale);
}

/// Every experiment binary, in the order `run_all` executes them.
pub const EXPERIMENTS: &[ExperimentBin] = &[
    ExperimentBin {
        name: "table1_sf_motivation",
        run: table1,
    },
    ExperimentBin {
        name: "table2_tp_motivation",
        run: table2,
    },
    ExperimentBin {
        name: "fig4_ee_per_device",
        run: fig4,
    },
    ExperimentBin {
        name: "fig5_ee_cdf",
        run: fig5,
    },
    ExperimentBin {
        name: "fig6_min_ee_vs_devices",
        run: fig6,
    },
    ExperimentBin {
        name: "fig7_min_ee_vs_gateways",
        run: fig7,
    },
    ExperimentBin {
        name: "fig8_network_lifetime",
        run: fig8,
    },
    ExperimentBin {
        name: "fig9_decomposition",
        run: fig9,
    },
    ExperimentBin {
        name: "fig10_convergence",
        run: fig10,
    },
    ExperimentBin {
        name: "model_validation",
        run: model_validation,
    },
    ExperimentBin {
        name: "ext_inter_sf",
        run: ext_inter_sf,
    },
    ExperimentBin {
        name: "ext_heterogeneous_rates",
        run: ext_heterogeneous_rates,
    },
    ExperimentBin {
        name: "ext_incremental",
        run: ext_incremental,
    },
    ExperimentBin {
        name: "ext_confirmed_traffic",
        run: ext_confirmed_traffic,
    },
    ExperimentBin {
        name: "ext_adr",
        run: ext_adr,
    },
    ExperimentBin {
        name: "resilience",
        run: resilience,
    },
    ExperimentBin {
        name: "ext_scenarios",
        run: ext_scenarios,
    },
    ExperimentBin {
        name: "ext_serve_soak",
        run: ext_serve_soak,
    },
    ExperimentBin {
        name: "ext_scale",
        run: ext_scale,
    },
];

/// Binaries under `src/bin/` that drive experiments rather than being
/// one: the sequential runner and the perf harness.
pub const DRIVER_BINS: &[&str] = &["run_all", "perf"];

/// Looks an experiment up by binary name.
pub fn find(name: &str) -> Option<&'static ExperimentBin> {
    EXPERIMENTS.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_unique_and_findable() {
        for e in EXPERIMENTS {
            assert!(find(e.name).is_some());
            assert!(!DRIVER_BINS.contains(&e.name), "{} is both kinds", e.name);
        }
        let mut names: Vec<_> = EXPERIMENTS.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EXPERIMENTS.len(), "duplicate registry entries");
    }
}
