//! Experiment harness for the EF-LoRa reproduction.
//!
//! One module per paper table/figure (see `experiments`), shared pipeline
//! plumbing in [`harness`], the stylised Section-II motivation engine in
//! [`motivation`], and table/JSON output in [`output`].
//!
//! Every experiment is exposed both as a library function (so `run_all`
//! and the integration tests can drive them) and as a binary under
//! `src/bin/`. Results print as aligned tables and are archived as JSON
//! under `target/experiments/`.
//!
//! Scale is controlled by the `EF_LORA_SCALE` environment variable:
//! `smoke` (seconds, CI-sized), `small` (default, minutes, paper shapes at
//! reduced population) or `paper` (the full 3000–5000-device deployments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod motivation;
pub mod output;
pub mod perf;
pub mod registry;

/// The per-table/figure experiment implementations.
pub mod experiments {
    pub mod ext_adr;
    pub mod ext_confirmed_traffic;
    pub mod ext_heterogeneous_rates;
    pub mod ext_incremental;
    pub mod ext_inter_sf;
    pub mod ext_scale;
    pub mod ext_scenarios;
    pub mod ext_serve_soak;
    pub mod fig10_convergence;
    pub mod fig4_ee_per_device;
    pub mod fig5_ee_cdf;
    pub mod fig6_min_ee_vs_devices;
    pub mod fig7_min_ee_vs_gateways;
    pub mod fig8_network_lifetime;
    pub mod fig9_decomposition;
    pub mod model_validation;
    pub mod resilience;
    pub mod table1_sf_motivation;
    pub mod table2_tp_motivation;
}

pub use harness::{Scale, ScaleKind};
