//! Paper Fig. 5 — CDF of per-device energy efficiency for the six series
//! of Fig. 4 (three strategies × {3, 5} gateways).

use serde::Serialize;

use lora_sim::metrics::empirical_cdf;

use crate::experiments::fig4_ee_per_device;
use crate::harness::Scale;
use crate::output::{f3, print_table, write_json};

/// One CDF series.
#[derive(Debug, Serialize)]
pub struct CdfSeries {
    /// `"<strategy> / <gw>GW"` label, as in the paper's legend.
    pub label: String,
    /// `(ee, P[EE ≤ ee])` pairs.
    pub cdf: Vec<(f64, f64)>,
}

/// Runs the Fig. 4 pipeline and extracts the six CDFs; prints the EE at
/// fixed cumulative-probability grid points.
pub fn run(scale: &Scale) -> Vec<CdfSeries> {
    let panels = fig4_ee_per_device::run(scale);
    let mut series = Vec::new();
    for panel in &panels {
        for outcome in &panel.outcomes {
            series.push(CdfSeries {
                label: format!("{} / {}GW", outcome.strategy, panel.gateways),
                cdf: empirical_cdf(&outcome.ee_per_device),
            });
        }
    }

    let grid = [0.05, 0.25, 0.5, 0.75, 0.95];
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.label.clone()];
            for &p in &grid {
                // EE value at which the CDF first reaches p.
                let v = s
                    .cdf
                    .iter()
                    .find(|(_, cp)| *cp >= p)
                    .map(|(x, _)| *x)
                    .unwrap_or(f64::NAN);
                row.push(f3(v));
            }
            let spread = s.cdf.last().map(|l| l.0).unwrap_or(0.0)
                - s.cdf.first().map(|f| f.0).unwrap_or(0.0);
            row.push(f3(spread));
            row
        })
        .collect();
    print_table(
        "Fig. 5 — CDF of energy efficiency (EE in bits/mJ at cumulative probability)",
        &[
            "series", "p=0.05", "p=0.25", "p=0.50", "p=0.75", "p=0.95", "spread",
        ],
        &rows,
    );
    write_json("fig5_ee_cdf", &series);
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_produces_six_valid_cdfs() {
        let series = run(&Scale::smoke());
        assert_eq!(series.len(), 6);
        for s in &series {
            assert!(!s.cdf.is_empty(), "{}", s.label);
            assert!((s.cdf.last().unwrap().1 - 1.0).abs() < 1e-12, "{}", s.label);
            for w in s.cdf.windows(2) {
                assert!(
                    w[1].0 >= w[0].0 && w[1].1 >= w[0].1,
                    "{} not monotone",
                    s.label
                );
            }
        }
        // The narrow-interval claim ("EF-LoRa distributes within a narrow
        // interval", checked on measured values at small/paper scale in
        // EXPERIMENTS.md) needs contention to show; at smoke scale only
        // the structural invariants above are stable.
    }
}
