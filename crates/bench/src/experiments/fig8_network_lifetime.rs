//! Paper Fig. 8 — network lifetime (time until 10 % of devices die)
//! across deployments of decreasing density, three strategies.
//!
//! Lifetime is the paper's Section IV definition — the time at which 10 %
//! of devices have drained their batteries under the measured energy draw
//! (TX + overhead + sleep). The ETX-adjusted variant (a delivered packet
//! costs `E_s/PRR`, Eq. 2) is reported alongside: it additionally punishes
//! lossy devices that would retransmit. Deployments follow the paper's
//! x-axis with density decreasing left to right.

use serde::Serialize;

use ef_lora::{EfLora, LegacyLora, RsLora, Strategy};

use crate::harness::{paper_config_at, run_deployment, Deployment, Scale};
use crate::output::{f2, print_table, write_json};

/// The paper's deployments, densest first: (gateways, devices).
pub const DEPLOYMENTS: [(usize, usize); 4] = [(3, 5000), (3, 3000), (5, 3000), (5, 1000)];

/// One deployment's lifetimes.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Gateways deployed.
    pub gateways: usize,
    /// Devices after scaling.
    pub devices: usize,
    /// Network lifetime (years, 10 % dead) per strategy.
    pub lifetime_years: Vec<(String, f64)>,
    /// ETX-adjusted network lifetime (years, 10 % dead) per strategy.
    pub etx_lifetime_years: Vec<(String, f64)>,
}

/// Runs the sweep and prints lifetimes per deployment.
pub fn run(scale: &Scale) -> Vec<Point> {
    let config = paper_config_at(scale);
    let legacy = LegacyLora::default();
    let rs = RsLora::default();
    let ef = EfLora::default();
    let strategies: [&dyn Strategy; 3] = [&legacy, &rs, &ef];

    let mut points = Vec::new();
    for &(gws, paper_n) in &DEPLOYMENTS {
        let n = scale.devices(paper_n);
        let outcomes = run_deployment(&config, Deployment::disc(n, gws, 10), &strategies, scale);
        points.push(Point {
            gateways: gws,
            devices: n,
            lifetime_years: outcomes
                .iter()
                .map(|o| (o.strategy.clone(), o.lifetime_years))
                .collect(),
            etx_lifetime_years: outcomes
                .iter()
                .map(|o| (o.strategy.clone(), o.etx_lifetime_years))
                .collect(),
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![format!("{}GW/{}ED", p.gateways, p.devices)];
            row.extend(p.lifetime_years.iter().map(|(_, v)| f2(*v)));
            row.extend(p.etx_lifetime_years.iter().map(|(_, v)| f2(*v)));
            let ef = p
                .etx_lifetime_years
                .iter()
                .find(|(s, _)| s == "EF-LoRa")
                .unwrap()
                .1;
            let legacy = p
                .etx_lifetime_years
                .iter()
                .find(|(s, _)| s == "Legacy-LoRa")
                .unwrap()
                .1;
            row.push(format!(
                "{:+.1}%",
                ef_lora::fairness::improvement_percent(ef, legacy)
            ));
            row
        })
        .collect();
    print_table(
        "Fig. 8 — network lifetime, 10 % dead (years; plain energy | ETX-adjusted)",
        &[
            "deployment",
            "Legacy",
            "RS-LoRa",
            "EF-LoRa",
            "Legacy(ETX)",
            "RS(ETX)",
            "EF(ETX)",
            "EF vs legacy (ETX)",
        ],
        &rows,
    );
    write_json("fig8_network_lifetime", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_lifetime_ordering_holds() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.03;
        let points = run(&scale);
        // The paper's claim (EF +41.5 % over legacy on average) shows under
        // ETX accounting in the contention-dominated dense deployments; at
        // smoke scale assert the two densest points, which carry the
        // claim, plus basic sanity everywhere.
        for p in &points[..2] {
            let get = |name: &str| {
                p.etx_lifetime_years
                    .iter()
                    .find(|(s, _)| s == name)
                    .unwrap()
                    .1
            };
            assert!(
                get("EF-LoRa") >= get("Legacy-LoRa") - 1e-9,
                "{}GW/{}ED: EF {} vs legacy {}",
                p.gateways,
                p.devices,
                get("EF-LoRa"),
                get("Legacy-LoRa")
            );
        }
        for p in &points {
            for (_, v) in p.lifetime_years.iter().chain(&p.etx_lifetime_years) {
                assert!(v.is_finite() && *v >= 0.0);
            }
        }
    }
}
