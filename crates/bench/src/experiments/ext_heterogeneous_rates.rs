//! Extension experiment — heterogeneous transmission rates
//! (paper Section III-E, "different transmission rates of end devices").
//!
//! Half the devices report 5× more often than the rest. The model's
//! generalised contention term (`h_i = 1 − exp(−Σ α_j)` over each
//! contender's own duty cycle) lets EF-LoRa steer fast reporters away from
//! slow ones; this experiment compares the rate-aware allocation against
//! one computed under the (wrong) uniform-rate assumption.

use serde::Serialize;

use ef_lora::{AllocationContext, EfLora, Strategy};
use lora_model::NetworkModel;
use lora_sim::metrics::minimum;
use lora_sim::{SimConfig, Simulation, Topology};

use crate::harness::Scale;
use crate::output::{f3, print_table, write_json};

/// Paper-scale devices.
pub const PAPER_DEVICES: usize = 3000;
/// Gateways.
pub const GATEWAYS: usize = 3;
/// Interval of slow reporters, seconds (≈ the SF12 1 % duty interval).
pub const SLOW_INTERVAL_S: f64 = 200.0;
/// Interval of fast reporters, seconds: a 10× heavier load that only the
/// rate-aware model sees coming.
pub const FAST_INTERVAL_S: f64 = 20.0;

/// Outcome of one arm of the comparison.
#[derive(Debug, Serialize)]
pub struct Arm {
    /// Arm label.
    pub label: String,
    /// Measured minimum EE, bits/mJ.
    pub min_ee: f64,
    /// Measured mean PRR.
    pub mean_prr: f64,
}

fn measure(
    config: &SimConfig,
    topo: &Topology,
    alloc: Vec<lora_phy::TxConfig>,
    scale: &Scale,
) -> (f64, f64) {
    let mut ee_min = 0.0;
    let mut prr = 0.0;
    for rep in 0..scale.reps {
        let mut cfg = config.clone();
        cfg.seed = 77 ^ rep;
        cfg.duration_s = scale.duration_s;
        let report = Simulation::new(cfg, topo.clone(), alloc.clone())
            .expect("valid")
            .run();
        ee_min += minimum(
            &report
                .devices
                .iter()
                .map(|d| d.ee_bits_per_mj)
                .collect::<Vec<_>>(),
        );
        prr += report.mean_prr();
    }
    (ee_min / scale.reps as f64, prr / scale.reps as f64)
}

/// Runs the rate-aware vs rate-blind comparison.
pub fn run(scale: &Scale) -> Vec<Arm> {
    let n = scale.devices(PAPER_DEVICES);
    let intervals: Vec<f64> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                FAST_INTERVAL_S
            } else {
                SLOW_INTERVAL_S
            }
        })
        .collect();

    // Rate-aware: the model knows each device's true interval.
    let aware_config = SimConfig {
        per_device_intervals_s: Some(intervals.clone()),
        ..SimConfig::default()
    };
    let topo = Topology::disc(n, GATEWAYS, 5_000.0, &aware_config, 18);
    let aware_model = NetworkModel::new(&aware_config, &topo);
    let aware_ctx = AllocationContext::new(&aware_config, &topo, &aware_model);
    let aware_alloc = EfLora::default().allocate(&aware_ctx).expect("allocation");

    // Rate-blind: allocated as if everyone reported at the slow interval,
    // then simulated under the true mixed rates.
    let blind_config = SimConfig {
        report_interval_s: SLOW_INTERVAL_S,
        ..SimConfig::default()
    };
    let blind_model = NetworkModel::new(&blind_config, &topo);
    let blind_ctx = AllocationContext::new(&blind_config, &topo, &blind_model);
    let blind_alloc = EfLora::default().allocate(&blind_ctx).expect("allocation");

    let mut arms = Vec::new();
    for (label, alloc) in [
        ("rate-aware EF-LoRa", aware_alloc),
        ("rate-blind EF-LoRa", blind_alloc),
    ] {
        let (min_ee, mean_prr) = measure(&aware_config, &topo, alloc.into_inner(), scale);
        arms.push(Arm {
            label: label.into(),
            min_ee,
            mean_prr,
        });
    }

    let rows: Vec<Vec<String>> = arms
        .iter()
        .map(|a| vec![a.label.clone(), f3(a.min_ee), f3(a.mean_prr)])
        .collect();
    print_table(
        &format!(
            "Extension — heterogeneous rates ({n} devices, half at {FAST_INTERVAL_S} s, half at {SLOW_INTERVAL_S} s)"
        ),
        &["allocation", "min EE", "mean PRR"],
        &rows,
    );
    write_json("ext_heterogeneous_rates", &arms);
    arms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_aware_allocation_is_not_worse() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.05;
        let arms = run(&scale);
        assert_eq!(arms.len(), 2);
        let aware = &arms[0];
        let blind = &arms[1];
        // At smoke scale the gap is noisy; rate awareness must at least
        // not collapse relative to the blind allocation.
        assert!(
            aware.min_ee >= blind.min_ee * 0.5,
            "aware {} vs blind {}",
            aware.min_ee,
            blind.min_ee
        );
        assert!(aware.mean_prr > 0.0 && blind.mean_prr > 0.0);
    }
}
