//! Extension experiment — EF-LoRa across the scenario catalog.
//!
//! The paper evaluates on one deployment shape (uniform disc, grid
//! gateways, homogeneous traffic). This experiment plays every scenario
//! in the [`lora_scenario::catalog`] — the paper shape plus hotspot,
//! PPP, corridor and churn-heavy workloads — under EF-LoRa and two
//! baselines, and compares final-epoch minimum EE and Jain fairness.
//! The catalog's non-uniform shapes are exactly where max-min allocation
//! should open the largest gap over range-only SF rules.

use serde::Serialize;

use ef_lora::{EfLora, LegacyLora, RsLora, Strategy};
use lora_scenario::{catalog, compile, run_scenario, RunOptions};

use crate::harness::{Scale, ScaleKind};
use crate::output::{f2, f3, print_table, write_json};

/// Catalog population multiplier per preset. The catalog is authored at
/// a few hundred devices per scenario, so `small` runs it as-is; `smoke`
/// shrinks it to CI size and `paper` doubles it.
pub fn catalog_factor(scale: &Scale) -> f64 {
    match scale.kind {
        ScaleKind::Smoke => 0.1,
        ScaleKind::Small => 1.0,
        ScaleKind::Paper => 2.0,
    }
}

/// One strategy's final-epoch outcome on one scenario.
#[derive(Debug, Serialize)]
pub struct StrategyRecord {
    /// Strategy name.
    pub strategy: String,
    /// Measured minimum EE, bits/mJ (final epoch, mean over reps).
    pub min_ee: f64,
    /// Measured mean EE, bits/mJ.
    pub mean_ee: f64,
    /// Jain fairness of per-device EE.
    pub jain: f64,
    /// Mean packet reception ratio.
    pub mean_prr: f64,
    /// Analytical-model minimum EE (deterministic; what EF-LoRa
    /// optimises).
    pub model_min_ee: f64,
    /// Over-the-air reconfigurations across the churn timeline.
    pub reconfigured: usize,
}

/// One scenario's comparison across strategies.
#[derive(Debug, Serialize)]
pub struct ScenarioRecord {
    /// Scenario name.
    pub scenario: String,
    /// Initial device count (after preset scaling).
    pub devices: usize,
    /// Gateway count.
    pub gateways: usize,
    /// Epochs played (1 + churn timeline length).
    pub epochs: u32,
    /// Per-strategy outcomes.
    pub strategies: Vec<StrategyRecord>,
}

/// Runs the catalog comparison and archives
/// `target/experiments/ext_scenarios.json`.
pub fn run(scale: &Scale) -> Vec<ScenarioRecord> {
    let factor = catalog_factor(scale);
    let options = RunOptions {
        reps: scale.reps as usize,
        threads: scale.threads,
        epoch_duration_s: Some(scale.duration_s),
    };
    let ef = EfLora::default();
    let legacy = LegacyLora::default();
    let rs = RsLora::default();
    let strategies: [&dyn Strategy; 3] = [&ef, &legacy, &rs];

    let mut records = Vec::new();
    for spec in catalog::all() {
        let spec = catalog::scale_devices(&spec, factor);
        let compiled = compile(&spec).expect("catalog scenario must compile");
        let mut strategy_records = Vec::new();
        for strategy in strategies {
            let report =
                run_scenario(&compiled, strategy, &options).expect("catalog scenario must run");
            let last = report.epochs.last().expect("a run always has epoch 0");
            strategy_records.push(StrategyRecord {
                strategy: report.strategy.clone(),
                min_ee: last.min_ee,
                mean_ee: last.mean_ee,
                jain: last.jain,
                mean_prr: last.mean_prr,
                model_min_ee: last.model_min_ee,
                reconfigured: report.total_reconfigured(),
            });
        }
        records.push(ScenarioRecord {
            scenario: spec.name.clone(),
            devices: compiled.device_count(),
            gateways: compiled.topology.gateway_count(),
            epochs: compiled.epoch_count(),
            strategies: strategy_records,
        });
    }

    for record in &records {
        let rows: Vec<Vec<String>> = record
            .strategies
            .iter()
            .map(|s| {
                vec![
                    s.strategy.clone(),
                    f2(s.min_ee),
                    f2(s.mean_ee),
                    f3(s.jain),
                    f3(s.mean_prr),
                    f2(s.model_min_ee),
                    s.reconfigured.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "ext_scenarios: {} ({} devices, {} gateways, {} epochs)",
                record.scenario, record.devices, record.gateways, record.epochs
            ),
            &[
                "strategy",
                "min EE",
                "mean EE",
                "Jain",
                "PRR",
                "model min EE",
                "reconf",
            ],
            &rows,
        );
    }
    write_json("ext_scenarios", &records);
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_catalog_and_ef_lora_wins_off_uniform() {
        let records = run(&Scale::smoke().with_threads(2));
        assert_eq!(records.len(), catalog::CATALOG.len());
        for r in &records {
            assert_eq!(r.strategies.len(), 3);
            assert!(r.devices > 0, "{}", r.scenario);
        }
        // The acceptance claim: on at least one non-uniform scenario,
        // EF-LoRa's minimum EE beats both baselines. The analytical-model
        // number is deterministic, so the assertion cannot flake on the
        // smoke preset's single repetition.
        let wins = records
            .iter()
            .filter(|r| r.scenario != "paper-uniform")
            .filter(|r| {
                let ef = r.strategies.iter().find(|s| s.strategy == "EF-LoRa");
                let Some(ef) = ef else { return false };
                r.strategies
                    .iter()
                    .filter(|s| s.strategy != "EF-LoRa")
                    .all(|s| ef.model_min_ee > s.model_min_ee)
            })
            .count();
        assert!(
            wins >= 1,
            "EF-LoRa must dominate both baselines on some non-uniform scenario"
        );
    }

    #[test]
    fn churn_heavy_reports_reconfigurations() {
        let records = run(&Scale::smoke().with_threads(1));
        let churny = records
            .iter()
            .find(|r| r.scenario == "churn-heavy")
            .expect("churn-heavy is in the catalog");
        assert!(churny.epochs > 1);
    }
}
