//! Extension experiment — inter-SF imperfect orthogonality
//! (paper Section III-E).
//!
//! The paper's main model treats spreading factors as perfectly orthogonal
//! and defers imperfect orthogonality (Croce et al., references \[37\]/\[38\])
//! to future work. The simulator implements it via the measured co-channel
//! rejection matrix; this experiment quantifies how much of the paper's
//! reported performance survives when the idealisation is dropped.

use serde::Serialize;

use ef_lora::{EfLora, LegacyLora, RsLora, Strategy};
use lora_mac::collision::InterSfPolicy;

use crate::harness::{paper_config_at, run_deployment, Deployment, Scale};
use crate::output::{f3, print_table, write_json};

/// Devices (paper Fig. 4 deployment).
pub const PAPER_DEVICES: usize = 3000;
/// Gateways.
pub const GATEWAYS: usize = 3;

/// One (policy, strategy) cell.
#[derive(Debug, Serialize)]
pub struct Cell {
    /// `Orthogonal` or `ImperfectOrthogonality`.
    pub policy: String,
    /// Strategy name.
    pub strategy: String,
    /// Measured minimum EE, bits/mJ.
    pub min_ee: f64,
    /// Measured mean PRR.
    pub mean_prr: f64,
}

/// Runs both interference policies across the three strategies.
pub fn run(scale: &Scale) -> Vec<Cell> {
    let n = scale.devices(PAPER_DEVICES);
    let legacy = LegacyLora::default();
    let rs = RsLora::default();
    let ef = EfLora::default();
    let strategies: [&dyn Strategy; 3] = [&legacy, &rs, &ef];

    let mut cells = Vec::new();
    for (label, policy) in [
        ("Orthogonal", InterSfPolicy::Orthogonal),
        (
            "ImperfectOrthogonality",
            InterSfPolicy::ImperfectOrthogonality,
        ),
    ] {
        let mut config = paper_config_at(scale);
        config.inter_sf = policy;
        let outcomes = run_deployment(
            &config,
            Deployment::disc(n, GATEWAYS, 16),
            &strategies,
            scale,
        );
        for o in outcomes {
            cells.push(Cell {
                policy: label.into(),
                strategy: o.strategy.clone(),
                min_ee: o.min_ee,
                mean_prr: o.mean_prr,
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.policy.clone(),
                c.strategy.clone(),
                f3(c.min_ee),
                f3(c.mean_prr),
            ]
        })
        .collect();
    print_table(
        &format!("Extension — inter-SF imperfect orthogonality, {n} devices / {GATEWAYS} gateways"),
        &["interference policy", "strategy", "min EE", "mean PRR"],
        &rows,
    );
    write_json("ext_inter_sf", &cells);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imperfect_orthogonality_costs_prr() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.04;
        let cells = run(&scale);
        assert_eq!(cells.len(), 6);
        for strategy in ["Legacy-LoRa", "RS-LoRa", "EF-LoRa"] {
            let get = |policy: &str| {
                cells
                    .iter()
                    .find(|c| c.policy == policy && c.strategy == strategy)
                    .unwrap()
            };
            let ideal = get("Orthogonal");
            let real = get("ImperfectOrthogonality");
            // Cross-SF leakage can only add interference.
            assert!(
                real.mean_prr <= ideal.mean_prr + 0.02,
                "{strategy}: {} vs {}",
                real.mean_prr,
                ideal.mean_prr
            );
        }
    }
}
