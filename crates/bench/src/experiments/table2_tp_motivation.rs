//! Paper Table II — the transmission-power-allocation motivation example.

use crate::motivation::{evaluate, table2_scenarios, ScenarioResult};
use crate::output::{f2, print_table, write_json};

/// Paper Section II per-device times (ms): smallest TP then adjusted TP.
pub const PAPER_TIMES: [[f64; 3]; 2] = [[14.0, 26.0, 26.0], [17.0, 26.0, 17.0]];

#[allow(clippy::needless_range_loop)] // device index addresses parallel paper tables
/// Runs Table II and prints measured-vs-paper values.
pub fn run() -> Vec<ScenarioResult> {
    let results: Vec<ScenarioResult> = table2_scenarios().iter().map(evaluate).collect();
    let mut rows = Vec::new();
    for device in 0..3 {
        let mut row = vec![format!("{}", device + 1)];
        for (s, result) in results.iter().enumerate() {
            row.push(f2(result.times_ms[device]));
            row.push(f2(PAPER_TIMES[s][device]));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    for result in &results {
        avg_row.push(f2(result.average_ms));
        avg_row.push(String::from("—"));
    }
    rows.push(avg_row);
    print_table(
        "Table II — TP allocation motivation (expected TX time per delivered packet, ms)",
        &[
            "End device",
            "Smallest TP (ours)",
            "Smallest TP (paper)",
            "Adjusted TP (ours)",
            "Adjusted TP (paper)",
        ],
        &rows,
    );
    write_json("table2_tp_motivation", &results);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_values() {
        let results = run();
        for (s, result) in results.iter().enumerate() {
            for (got, want) in result.times_ms.iter().zip(PAPER_TIMES[s]) {
                assert!((got - want).abs() < 1.0, "scenario {s}: {got} vs {want}");
            }
        }
        // The adjusted allocation narrows the spread between the best and
        // worst device (the paper's 24.2 % fairness improvement).
        let spread = |r: &ScenarioResult| {
            r.max_ms - r.times_ms.iter().copied().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(&results[1]) < spread(&results[0]));
    }
}
