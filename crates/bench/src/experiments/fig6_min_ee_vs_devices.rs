//! Paper Fig. 6 — minimum energy efficiency vs. number of end devices
//! (500..5000), three gateways, three strategies.

use serde::Serialize;

use ef_lora::{EfLora, LegacyLora, RsLora, Strategy};

use crate::harness::{paper_config_at, run_deployment, Deployment, Scale};
use crate::output::{f3, print_table, write_json};

/// The paper's x-axis.
pub const PAPER_COUNTS: [usize; 6] = [500, 1000, 2000, 3000, 4000, 5000];
/// Gateways in Fig. 6.
pub const GATEWAYS: usize = 3;

/// One x-axis point.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Devices after scaling.
    pub devices: usize,
    /// Measured minimum EE per strategy, ordered legacy / RS / EF.
    pub min_ee: Vec<(String, f64)>,
    /// Model-predicted minimum EE per strategy (deterministic; used by the
    /// smoke-scale shape tests).
    pub model_min_ee: Vec<(String, f64)>,
}

/// Runs the sweep and prints the three series.
pub fn run(scale: &Scale) -> Vec<Point> {
    let config = paper_config_at(scale);
    let legacy = LegacyLora::default();
    let rs = RsLora::default();
    let ef = EfLora::default();
    let strategies: [&dyn Strategy; 3] = [&legacy, &rs, &ef];

    let mut points = Vec::new();
    for &paper_n in &PAPER_COUNTS {
        let n = scale.devices(paper_n);
        let outcomes = run_deployment(
            &config,
            Deployment::disc(n, GATEWAYS, 6),
            &strategies,
            scale,
        );
        points.push(Point {
            devices: n,
            min_ee: outcomes
                .iter()
                .map(|o| (o.strategy.clone(), o.min_ee))
                .collect(),
            model_min_ee: outcomes
                .iter()
                .map(|o| (o.strategy.clone(), o.model_min_ee))
                .collect(),
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![p.devices.to_string()];
            row.extend(p.min_ee.iter().map(|(_, v)| f3(*v)));
            let ef = p.min_ee.iter().find(|(s, _)| s == "EF-LoRa").unwrap().1;
            let best_base = p
                .min_ee
                .iter()
                .filter(|(s, _)| s != "EF-LoRa")
                .map(|(_, v)| *v)
                .fold(f64::NEG_INFINITY, f64::max);
            row.push(format!(
                "{:+.1}%",
                ef_lora::fairness::improvement_percent(ef, best_base)
            ));
            row
        })
        .collect();
    print_table(
        &format!("Fig. 6 — minimum EE vs. number of devices ({GATEWAYS} gateways, bits/mJ)"),
        &[
            "devices",
            "Legacy-LoRa",
            "RS-LoRa",
            "EF-LoRa",
            "EF vs best baseline",
        ],
        &rows,
    );
    write_json("fig6_min_ee_vs_devices", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_ordering_holds_at_smoke_scale() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.05;
        let points = run(&scale);
        assert_eq!(points.len(), PAPER_COUNTS.len());
        let mut ef_wins = 0;
        for p in &points {
            // Measured minima at smoke scale are shot noise; the ordering
            // claim is asserted on the deterministic model minima (the
            // measured curves are recorded at small/paper scale in
            // EXPERIMENTS.md).
            let get = |name: &str| p.model_min_ee.iter().find(|(s, _)| s == name).unwrap().1;
            if get("EF-LoRa") >= get("Legacy-LoRa") - 0.01
                && get("EF-LoRa") >= get("RS-LoRa") - 0.01
            {
                ef_wins += 1;
            }
        }
        // EF-LoRa should lead at (nearly) every population; allow one
        // noisy point at smoke scale.
        assert!(
            ef_wins + 1 >= points.len(),
            "EF-LoRa led at only {ef_wins} points"
        );
    }
}
