//! Paper Fig. 4 — per-device energy efficiency under three strategies,
//! 3000 end devices, three and five gateways.

use serde::Serialize;

use ef_lora::{EfLora, LegacyLora, RsLora, Strategy};
use lora_sim::metrics::percentile;

use crate::harness::{paper_config_at, run_deployment, Deployment, Scale, StrategyOutcome};
use crate::output::{f3, print_table, write_json};

/// The two deployments of Fig. 4.
pub const PAPER_DEVICES: usize = 3000;
/// Gateway counts of Fig. 4(a)/(b) (and the companion Fig. 5 series).
pub const GATEWAYS: [usize; 2] = [3, 5];

/// Serialisable record of one Fig. 4 panel.
#[derive(Debug, Serialize)]
pub struct Panel {
    /// Number of gateways.
    pub gateways: usize,
    /// Number of devices after scaling.
    pub devices: usize,
    /// Per-strategy outcomes (with full per-device EE vectors).
    pub outcomes: Vec<StrategyOutcome>,
}

/// Runs both panels and prints per-strategy EE distribution summaries.
pub fn run(scale: &Scale) -> Vec<Panel> {
    let n = scale.devices(PAPER_DEVICES);
    let config = paper_config_at(scale);
    let legacy = LegacyLora::default();
    let rs = RsLora::default();
    let ef = EfLora::default();
    let strategies: [&dyn Strategy; 3] = [&legacy, &rs, &ef];

    let mut panels = Vec::new();
    for &gws in &GATEWAYS {
        let outcomes = run_deployment(&config, Deployment::disc(n, gws, 4), &strategies, scale);
        let rows: Vec<Vec<String>> = outcomes
            .iter()
            .map(|o| {
                vec![
                    o.strategy.clone(),
                    f3(o.min_ee),
                    f3(percentile(&o.ee_per_device, 10.0)),
                    f3(percentile(&o.ee_per_device, 50.0)),
                    f3(percentile(&o.ee_per_device, 90.0)),
                    f3(o.mean_ee),
                    f3(o.jain),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 4 — per-device EE, {n} devices, {gws} gateways (bits/mJ)"),
            &["strategy", "min", "p10", "median", "p90", "mean", "Jain"],
            &rows,
        );
        panels.push(Panel {
            gateways: gws,
            devices: n,
            outcomes,
        });
    }
    write_json("fig4_ee_per_device", &panels);
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes_hold_at_smoke_scale() {
        let panels = run(&Scale::smoke());
        assert_eq!(panels.len(), 2);
        for panel in &panels {
            assert_eq!(panel.outcomes.len(), 3);
            let ef = panel
                .outcomes
                .iter()
                .find(|o| o.strategy == "EF-LoRa")
                .unwrap();
            let legacy = panel
                .outcomes
                .iter()
                .find(|o| o.strategy == "Legacy-LoRa")
                .unwrap();
            // Measured minima at smoke scale (one repetition, five packets
            // per device) are dominated by shot noise, so the shape check
            // uses the deterministic model prediction; the measured-value
            // shapes are exercised by the `small`/`paper` scale runs
            // recorded in EXPERIMENTS.md.
            assert!(
                ef.model_min_ee >= legacy.model_min_ee - 0.02,
                "{} gateways: EF model min {} vs legacy {}",
                panel.gateways,
                ef.model_min_ee,
                legacy.model_min_ee
            );
            for o in &panel.outcomes {
                assert!(o.min_ee.is_finite() && o.min_ee >= 0.0);
                assert!((0.0..=1.0).contains(&o.jain));
                assert_eq!(o.ee_per_device.len(), panel.devices);
            }
        }
    }
}
