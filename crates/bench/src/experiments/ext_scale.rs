//! Extension experiment — scaling curves of the cell-sharded allocator.
//!
//! Allocates and model-evaluates growing PPP-like disc deployments with
//! [`SpatialEfLora`], recording wall-clock and peak memory per point in
//! the perf-harness schema (`ef-lora-perf/v1`) so the scale-out numbers
//! live next to the hot-path baselines and diff with the same tooling.
//!
//! The curve keeps the *density* fixed while the population grows: the
//! disc radius scales with `sqrt(n)` and the gateway count with `n`, so
//! every point sees the paper's deployment regime and the measurement
//! isolates how the sharded pipeline scales rather than how contention
//! degrades. Three rows are emitted per point:
//!
//! * `ext_scale/alloc/<n>dev` — the full four-phase sharded allocation
//!   (`events` = candidate configurations examined);
//! * `ext_scale/eval/<n>dev` — the sharded model evaluation of the
//!   produced allocation (`events` = devices);
//! * `ext_scale/rss_mib/<n>dev` — the process peak RSS (`VmHWM`) in MiB,
//!   carried in the `median_ms`/`p95_ms` fields — the schema has no
//!   memory column, and a separate row keeps the 25 % regression gate
//!   watching memory exactly like it watches latency. Linux-only; the
//!   row reads 0 elsewhere and the gate treats 0 as "not measured".
//!
//! Like the hot-path matrix, the curve gates against a checked-in
//! baseline (`tests/golden/scale_baseline.json`, recorded at smoke
//! scale) with the CI regression tolerance; `EF_LORA_UPDATE_GOLDEN=1`
//! rewrites it. Latency rows are normalised by the machine-speed probe
//! ([`CALIBRATION_ID`]) so shared-runner speed swings don't masquerade
//! as allocator regressions; the RSS row is deliberately *not*
//! normalised — memory does not scale with clock speed.

use std::path::PathBuf;

use ef_lora::SpatialEfLora;
use lora_sim::{SimConfig, Topology};

use crate::harness::{Scale, ScaleKind};
use crate::output::{f2, print_table, write_json};
use crate::perf::{
    compare, git_describe, to_json, PerfIssue, PerfReport, WorkloadResult, DEFAULT_TOLERANCE,
    SCHEMA, UPDATE_ENV,
};

/// Topology seed of every curve point.
pub const SCALE_SEED: u64 = 11;

/// The population curve per preset. Smoke keeps CI fast just above the
/// dense threshold; `paper` is the ISSUE target curve ending at one
/// million devices.
pub fn scale_points(scale: &Scale) -> Vec<usize> {
    match scale.kind {
        ScaleKind::Smoke => vec![2_000, 5_000],
        ScaleKind::Small => vec![10_000, 50_000],
        ScaleKind::Paper => vec![10_000, 100_000, 1_000_000],
    }
}

/// Disc radius holding the reference density — 5k devices in an 8 km
/// disc (~25 devices/km², the README quick-start deployment) — as `n`
/// grows.
pub fn radius_m(devices: usize) -> f64 {
    8_000.0 * (devices as f64 / 5_000.0).sqrt()
}

/// Gateway count holding ~1250 devices per gateway (at least two).
pub fn gateway_count(devices: usize) -> usize {
    (devices / 1_250).max(2)
}

/// Measurement repetitions per point: the smoke points are cheap enough
/// to take a best-of envelope; the larger curves run once.
pub fn reps_for(scale: &Scale) -> usize {
    match scale.kind {
        ScaleKind::Smoke => 2,
        ScaleKind::Small | ScaleKind::Paper => 1,
    }
}

/// Path of the checked-in scaling baseline
/// (`<repo>/tests/golden/scale_baseline.json`).
pub fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("tests")
        .join("golden")
        .join("scale_baseline.json")
}

/// Identifier of the machine-speed calibration row.
pub const CALIBRATION_ID: &str = "ext_scale/calibration";

/// Iterations of the calibration kernel.
const CALIBRATION_ITERS: u64 = 400_000;

/// Raw machine speed from a fixed floating-point kernel independent of
/// every crate code path (see `ext_serve_soak` for the rationale: the
/// gate compares work per cycle, not wall-clock on a shared CI box).
fn machine_probe_ms() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        let mut acc = 1.0f64;
        for i in 1..CALIBRATION_ITERS {
            acc = (acc + 1.0 / i as f64).sqrt() * 1.000_000_1;
        }
        std::hint::black_box(acc);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The calibration probe as a workload row, so the baseline records the
/// machine speed it was measured at.
fn calibration_row() -> WorkloadResult {
    let ms = machine_probe_ms();
    WorkloadResult {
        id: CALIBRATION_ID.to_string(),
        devices: 0,
        gateways: 0,
        threads: 1,
        events: CALIBRATION_ITERS,
        median_ms: ms,
        p95_ms: ms,
        events_per_sec: if ms > 0.0 {
            CALIBRATION_ITERS as f64 / (ms / 1_000.0)
        } else {
            0.0
        },
        devices_per_sec: 0.0,
    }
}

/// The process peak resident set (`VmHWM`) in MiB; 0 off Linux.
pub fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                let kb = line.strip_prefix("VmHWM:")?.trim();
                let kb: f64 = kb.split_whitespace().next()?.parse().ok()?;
                Some(kb / 1024.0)
            })
        })
        .unwrap_or(0.0)
}

/// One row of the curve's human-readable table.
struct PointSummary {
    devices: usize,
    gateways: usize,
    cells: usize,
    alloc_ms: f64,
    eval_ms: f64,
    min_ee: f64,
    mean_ee: f64,
    jain: f64,
    tail_moved: usize,
    rss_mib: f64,
}

/// Measures one curve point: allocate with the sharded solver, evaluate
/// the allocation under the same localized objective, snapshot peak RSS.
fn run_point(devices: usize, scale: &Scale, reps: usize) -> (Vec<WorkloadResult>, PointSummary) {
    // Periodic reporting with the interval growing with the population
    // (600 s at the 5k reference, so ~33 h at 1M — the massive-IoT
    // metering regime). Contention in the model is Eq. 14's *global*
    // per-(SF, channel) load `1 − e^{−α·m}`: at a fixed interval ALOHA
    // saturates as n grows and every point past ~20k reads EE ≈ 0
    // regardless of the allocator. Holding `α·m` fixed instead keeps
    // every point at the same operating point, so the EE columns stay
    // comparable along the curve and keep sanity-checking the
    // allocator; wall-clock and RSS — the quantities under test — do
    // not depend on the interval. The preset-duty contention sweeps
    // live in the fig4–fig10 experiments.
    let config = SimConfig {
        report_interval_s: 600.0 * (devices as f64 / 5_000.0).max(1.0),
        ..SimConfig::default()
    };
    let gateways = gateway_count(devices);
    let topology = Topology::disc(devices, gateways, radius_m(devices), &config, SCALE_SEED);
    let solver = SpatialEfLora::default().with_threads(scale.threads);

    let mut alloc_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let r = solver
            .allocate_with_report(&config, &topology)
            .expect("scaling-curve deployment allocates");
        alloc_ms = alloc_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    let report = report.expect("at least one repetition ran");

    let mut eval_ms = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let ee = solver
            .evaluate_sharded(&config, &topology, report.allocation.as_slice())
            .expect("produced allocation evaluates");
        std::hint::black_box(ee.len());
        eval_ms = eval_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    let rss_mib = peak_rss_mib();
    let per_sec = |count: f64, ms: f64| {
        if ms > 0.0 {
            count / (ms / 1_000.0)
        } else {
            0.0
        }
    };
    let rows = vec![
        WorkloadResult {
            id: format!("ext_scale/alloc/{devices}dev"),
            devices,
            gateways,
            threads: scale.threads,
            events: report.candidates_evaluated,
            median_ms: alloc_ms,
            p95_ms: alloc_ms,
            events_per_sec: per_sec(report.candidates_evaluated as f64, alloc_ms),
            devices_per_sec: per_sec(devices as f64, alloc_ms),
        },
        WorkloadResult {
            id: format!("ext_scale/eval/{devices}dev"),
            devices,
            gateways,
            threads: scale.threads,
            events: devices as u64,
            median_ms: eval_ms,
            p95_ms: eval_ms,
            events_per_sec: per_sec(devices as f64, eval_ms),
            devices_per_sec: per_sec(devices as f64, eval_ms),
        },
        WorkloadResult {
            id: format!("ext_scale/rss_mib/{devices}dev"),
            devices,
            gateways,
            threads: scale.threads,
            events: 0,
            median_ms: rss_mib,
            p95_ms: rss_mib,
            events_per_sec: 0.0,
            devices_per_sec: 0.0,
        },
    ];
    let summary = PointSummary {
        devices,
        gateways,
        cells: report.cells,
        alloc_ms,
        eval_ms,
        min_ee: report.min_ee,
        mean_ee: report.mean_ee,
        jain: report.jain,
        tail_moved: report.tail_reconfigured,
        rss_mib,
    };
    (rows, summary)
}

/// Runs an explicit population curve (the preset-driven entry point is
/// [`run`]; tests call this with a tiny curve).
pub fn run_points(points: &[usize], scale: &Scale, reps: usize) -> PerfReport {
    let mut workloads = Vec::new();
    let mut table = Vec::new();
    for &devices in points {
        let (rows, s) = run_point(devices, scale, reps);
        workloads.extend(rows);
        table.push(vec![
            s.devices.to_string(),
            s.gateways.to_string(),
            s.cells.to_string(),
            f2(s.alloc_ms / 1_000.0),
            f2(s.eval_ms / 1_000.0),
            format!("{:.3}", s.min_ee),
            format!("{:.3}", s.mean_ee),
            format!("{:.3}", s.jain),
            s.tail_moved.to_string(),
            f2(s.rss_mib),
        ]);
    }
    workloads.push(calibration_row());
    let perf = PerfReport {
        schema: SCHEMA.to_string(),
        git_describe: git_describe(),
        scale: format!("{:?}", scale.kind).to_lowercase(),
        reps,
        workloads,
    };
    print_table(
        "ext_scale: cell-sharded allocation scaling curve (fixed density, sqrt-n radius)",
        &[
            "devices",
            "gateways",
            "cells",
            "alloc (s)",
            "eval (s)",
            "min EE",
            "mean EE",
            "jain",
            "tail",
            "RSS (MiB)",
        ],
        &table,
    );
    write_json("ext_scale", &perf);
    perf
}

/// Runs the preset scaling curve and archives
/// `target/experiments/ext_scale.json` (a [`PerfReport`]).
pub fn run(scale: &Scale) -> PerfReport {
    run_points(&scale_points(scale), scale, reps_for(scale))
}

/// Gates `perf` against `baseline` at `tolerance`: latency rows are
/// normalised by the machine-speed probe ratio first; the `rss_mib` rows
/// are compared raw (memory does not scale with clock speed), except
/// that a 0 reading — no `/proc` — is treated as "not measured" and
/// skipped. Reports recorded at a different scale are not comparable
/// and pass vacuously. Pure — the binary wires it to [`baseline_path`].
pub fn gate_against(perf: &PerfReport, baseline: &PerfReport, tolerance: f64) -> Vec<PerfIssue> {
    if baseline.scale != perf.scale {
        return Vec::new();
    }
    let probe_of = |report: &PerfReport| {
        report
            .workloads
            .iter()
            .find(|w| w.id == CALIBRATION_ID)
            .map(|w| w.median_ms)
            .filter(|&ms| ms > 0.0)
    };
    let speed = match (probe_of(perf), probe_of(baseline)) {
        (Some(cur), Some(base)) => cur / base,
        _ => 1.0,
    };
    let mut scaled = perf.clone();
    scaled.workloads.retain_mut(|w| {
        if w.id.contains("/rss_mib/") {
            // An unmeasured RSS (non-Linux) must not read as "0 MiB used".
            w.median_ms > 0.0
        } else {
            w.median_ms /= speed;
            w.p95_ms /= speed;
            true
        }
    });
    let mut baseline = baseline.clone();
    baseline.workloads.retain(|w| {
        !w.id.contains("/rss_mib/")
            || (w.median_ms > 0.0 && scaled.workloads.iter().any(|c| c.id == w.id))
    });
    compare(&scaled, &baseline, tolerance)
}

/// Applies the golden-baseline workflow: `EF_LORA_UPDATE_GOLDEN=1`
/// rewrites [`baseline_path`]; otherwise, when a baseline recorded at
/// the same scale exists, regressions beyond [`DEFAULT_TOLERANCE`] are
/// returned (the binary exits non-zero on any).
///
/// # Errors
///
/// The list of regressions, when the gate fails.
pub fn gate(perf: &PerfReport) -> Result<(), Vec<PerfIssue>> {
    let path = baseline_path();
    if std::env::var(UPDATE_ENV).is_ok_and(|v| v == "1") {
        std::fs::write(&path, to_json(perf)).expect("baseline path is writable");
        println!("ext_scale: baseline updated at {}", path.display());
        return Ok(());
    }
    let Ok(body) = std::fs::read_to_string(&path) else {
        println!("ext_scale: no baseline at {}; gate skipped", path.display());
        return Ok(());
    };
    let baseline: PerfReport = serde_json::from_str(&body).expect("baseline parses");
    let issues = gate_against(perf, &baseline, DEFAULT_TOLERANCE);
    if issues.is_empty() {
        println!(
            "ext_scale: within {:.0}% of baseline {}",
            DEFAULT_TOLERANCE * 100.0,
            baseline.git_describe
        );
        Ok(())
    } else {
        Err(issues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_emits_three_rows_per_point_plus_probe() {
        // One point just above the sharded threshold keeps this unit
        // test debug-build-friendly; the preset curves run in CI's
        // release-mode scale-smoke job.
        let scale = Scale::smoke().with_threads(0);
        let perf = run_points(&[1_100], &scale, 1);
        assert_eq!(perf.schema, SCHEMA);
        assert_eq!(perf.workloads.len(), 4);
        let [alloc, eval, rss, probe] = perf.workloads.as_slice() else {
            panic!("expected 4 rows");
        };
        assert_eq!(alloc.id, "ext_scale/alloc/1100dev");
        assert!(alloc.median_ms > 0.0 && alloc.events > 0);
        assert_eq!(eval.id, "ext_scale/eval/1100dev");
        assert_eq!(eval.events, 1_100);
        assert_eq!(rss.id, "ext_scale/rss_mib/1100dev");
        if cfg!(target_os = "linux") {
            assert!(rss.median_ms > 0.0, "VmHWM reads on Linux");
        }
        assert_eq!(probe.id, CALIBRATION_ID);
        assert!(probe.median_ms > 0.0);
    }

    #[test]
    fn curve_geometry_holds_density_and_gateway_load() {
        let d5 = radius_m(5_000);
        let d20 = radius_m(20_000);
        assert!((d5 - 8_000.0).abs() < 1e-9);
        assert!((d20 / d5 - 2.0).abs() < 1e-9, "radius scales with sqrt(n)");
        assert_eq!(gateway_count(1_000), 2, "floor of two gateways");
        assert_eq!(gateway_count(1_000_000), 800);
    }

    fn row(id: &str, median_ms: f64) -> WorkloadResult {
        WorkloadResult {
            id: id.into(),
            devices: 2_000,
            gateways: 2,
            threads: 1,
            events: 10,
            median_ms,
            p95_ms: median_ms,
            events_per_sec: 0.0,
            devices_per_sec: 0.0,
        }
    }

    fn report(scale: &str, rows: Vec<WorkloadResult>) -> PerfReport {
        PerfReport {
            schema: SCHEMA.to_string(),
            git_describe: "test".into(),
            scale: scale.into(),
            reps: 1,
            workloads: rows,
        }
    }

    #[test]
    fn gate_normalises_latency_but_not_memory() {
        let baseline = report(
            "smoke",
            vec![
                row("ext_scale/alloc/2000dev", 10.0),
                row("ext_scale/rss_mib/2000dev", 100.0),
                row(CALIBRATION_ID, 2.0),
            ],
        );
        // A uniformly 2x-slower box is not an allocator regression …
        let slow_box = report(
            "smoke",
            vec![
                row("ext_scale/alloc/2000dev", 20.0),
                row("ext_scale/rss_mib/2000dev", 100.0),
                row(CALIBRATION_ID, 4.0),
            ],
        );
        assert!(gate_against(&slow_box, &baseline, 0.25).is_empty());
        // … but 2x the memory on the same box is, probe ratio or not.
        let fat = report(
            "smoke",
            vec![
                row("ext_scale/alloc/2000dev", 20.0),
                row("ext_scale/rss_mib/2000dev", 200.0),
                row(CALIBRATION_ID, 4.0),
            ],
        );
        let issues = gate_against(&fat, &baseline, 0.25);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].to_string().contains("rss_mib"));
    }

    #[test]
    fn gate_skips_unmeasured_rss_and_mismatched_scales() {
        let baseline = report(
            "smoke",
            vec![
                row("ext_scale/alloc/2000dev", 10.0),
                row("ext_scale/rss_mib/2000dev", 100.0),
                row(CALIBRATION_ID, 2.0),
            ],
        );
        // A platform without /proc reports 0 MiB — not a shrunken matrix,
        // and not a memory win to gate future runs against.
        let no_proc = report(
            "smoke",
            vec![
                row("ext_scale/alloc/2000dev", 10.0),
                row("ext_scale/rss_mib/2000dev", 0.0),
                row(CALIBRATION_ID, 2.0),
            ],
        );
        assert!(gate_against(&no_proc, &baseline, 0.25).is_empty());
        // A small-scale run is not comparable to the smoke baseline.
        let small = report("small", vec![row("ext_scale/alloc/10000dev", 999.0)]);
        assert!(gate_against(&small, &baseline, 0.25).is_empty());
    }
}
