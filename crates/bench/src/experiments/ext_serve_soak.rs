//! Extension experiment — soak test of the `ef-lora-serve` daemon.
//!
//! Boots the daemon in-process on an ephemeral loopback port once per
//! point of a population scaling curve, drives a seeded churn burst
//! through the JSON-lines protocol with the crate's own load generator,
//! and reports sustained throughput plus per-request repair-latency
//! percentiles in the perf-harness schema (`ef-lora-perf/v1`), so soak
//! numbers live next to the hot-path baselines and the same tooling can
//! diff them across runs.
//!
//! The curve scales the churn-heavy catalog scenario (200 devices at
//! factor 1.0) to 20, 200 and — beyond smoke scale — 1000 devices,
//! pinning how event throughput degrades with population. Four workload
//! rows are emitted per point: `serve_churn/<tag>` carries the p50/p95
//! repair latency (as `median_ms`/`p95_ms`) and the sustained
//! `events_per_sec`; `serve_churn/<tag>/p99` carries the p99/max tail —
//! [`crate::perf::WorkloadResult`] has no p99 field, so the tail gets
//! its own row rather than a schema fork. The `/journal` twins of both
//! repeat the point with a `--fsync batch` write-ahead journal enabled,
//! measuring the durability overhead; the gate bounds those rows against
//! the *plain* baseline rows, so journaling must stay within the same
//! regression tolerance as any other serve-path change.
//!
//! Like the hot-path matrix, the soak gates against a checked-in
//! baseline (`tests/golden/serve_perf_baseline.json`, recorded at smoke
//! scale) with the CI regression tolerance; `EF_LORA_UPDATE_GOLDEN=1`
//! rewrites it. Every point is the best-of-`REPS_PER_POINT` envelope,
//! and the gate normalises by a fixed machine-speed probe
//! ([`CALIBRATION_ID`]) so shared-runner speed swings don't masquerade
//! as serve-path regressions.

use std::net::TcpListener;
use std::path::PathBuf;

use ef_lora::EfLora;
use ef_lora_serve::journal::{FsyncPolicy, Journal, JournalRecord};
use ef_lora_serve::loadgen::{self, LoadReport};
use ef_lora_serve::{serve_journaled, ServeState, ServerOptions};
use lora_scenario::catalog;

use crate::harness::{Scale, ScaleKind};
use crate::output::{f2, print_table, write_json};
use crate::perf::{
    compare, git_describe, to_json, PerfIssue, PerfReport, WorkloadResult, DEFAULT_TOLERANCE,
    SCHEMA, UPDATE_ENV,
};

/// Seed of the load-generator event stream.
pub const SOAK_SEED: u64 = 7;

/// The population scaling curve: (population factor over the 200-device
/// churn-heavy catalog scenario, churn events driven at that point).
/// Smoke keeps CI fast with the 20- and 200-device points; the larger
/// presets add the 1000-device point.
pub fn soak_points(scale: &Scale) -> Vec<(f64, usize)> {
    match scale.kind {
        ScaleKind::Smoke => vec![(0.1, 300), (1.0, 300)],
        ScaleKind::Small => vec![(0.1, 1_500), (1.0, 1_500), (5.0, 400)],
        ScaleKind::Paper => vec![(0.1, 5_000), (1.0, 5_000), (5.0, 1_000)],
    }
}

/// Path of the checked-in soak baseline
/// (`<repo>/tests/golden/serve_perf_baseline.json`).
pub fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("tests")
        .join("golden")
        .join("serve_perf_baseline.json")
}

/// Bursts per point: each rep boots a fresh daemon and replays the same
/// seeded stream, and the point keeps the best value per metric (minimum
/// latencies, maximum throughput). A single burst's p99 is its third-
/// worst sample, so one scheduler hiccup on a shared CI box would trip
/// the regression gate; the min-over-reps floor is stable.
const REPS_PER_POINT: usize = 3;

/// Identifier of the machine-speed calibration row.
pub const CALIBRATION_ID: &str = "serve_churn/calibration";

/// Iterations of the calibration kernel.
const CALIBRATION_ITERS: u64 = 400_000;

/// Measures raw machine speed with a fixed floating-point kernel that is
/// deliberately independent of every crate code path: a regression in
/// the serve stack cannot leak into the probe and cancel itself out of
/// the gate. Shared CI boxes swing well beyond the 25 % tolerance run to
/// run; [`gate_against`] divides the measured latencies by the ratio of
/// this probe to the baseline's, so the gate compares work per cycle
/// rather than wall-clock.
fn machine_probe_ms() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS_PER_POINT {
        let t0 = std::time::Instant::now();
        let mut acc = 1.0f64;
        for i in 1..CALIBRATION_ITERS {
            acc = (acc + 1.0 / i as f64).sqrt() * 1.000_000_1;
        }
        std::hint::black_box(acc);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The calibration probe as a workload row, so the baseline records the
/// machine speed it was measured at.
fn calibration_row() -> WorkloadResult {
    let ms = machine_probe_ms();
    WorkloadResult {
        id: CALIBRATION_ID.to_string(),
        devices: 0,
        gateways: 0,
        threads: 1,
        events: CALIBRATION_ITERS,
        median_ms: ms,
        p95_ms: ms,
        events_per_sec: if ms > 0.0 {
            CALIBRATION_ITERS as f64 / (ms / 1_000.0)
        } else {
            0.0
        },
        devices_per_sec: 0.0,
    }
}

/// One point of the scaling curve: boots a fresh daemon per rep over the
/// scaled scenario, runs the burst, returns the two workload rows built
/// from the best-of-reps envelope. With `journaled`, every rep runs with
/// a `--fsync batch` write-ahead journal on the temp filesystem, and the
/// rows get a `/journal` id segment — the journal-overhead curve.
fn run_point(factor: f64, events: usize, journaled: bool) -> (Vec<WorkloadResult>, LoadReport) {
    let spec = catalog::scale_devices(&catalog::churn_heavy(), factor);
    let mut devices = 0;
    let mut gateways = 0;
    let mut best: Option<LoadReport> = None;
    for rep_index in 0..REPS_PER_POINT {
        let state =
            ServeState::new(spec.clone(), &EfLora::default()).expect("catalog scenario allocates");
        devices = state.device_count();
        gateways = state.gateway_count();

        let journal = journaled.then(|| {
            let dir = std::env::temp_dir().join(format!("ef-lora-soak-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("soak journal dir");
            let path = dir.join(format!("{devices}dev-{events}ev-{rep_index}.journal"));
            let base = JournalRecord::Genesis {
                strategy: "ef-lora".to_string(),
                spec: spec.clone(),
            };
            Journal::create(&path, FsyncPolicy::Batch, &base).expect("soak journal creates")
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address")
            .to_string();
        let server = std::thread::spawn(move || {
            serve_journaled(listener, state, journal, &ServerOptions::default())
        });
        let rep = loadgen::run_burst(&addr, SOAK_SEED, events, false, true)
            .expect("soak burst completes cleanly");
        server
            .join()
            .expect("server thread joins")
            .expect("server exits cleanly");
        best = Some(match best {
            None => rep,
            Some(mut acc) => {
                acc.events_per_sec = acc.events_per_sec.max(rep.events_per_sec);
                acc.latency.p50_us = acc.latency.p50_us.min(rep.latency.p50_us);
                acc.latency.p95_us = acc.latency.p95_us.min(rep.latency.p95_us);
                acc.latency.p99_us = acc.latency.p99_us.min(rep.latency.p99_us);
                acc.latency.max_us = acc.latency.max_us.min(rep.latency.max_us);
                acc
            }
        });
    }
    let report = best.expect("at least one rep ran");

    let tag = format!("{devices}dev_{gateways}gw");
    let suffix = if journaled { "/journal" } else { "" };
    let latency = report.latency;
    let row = |id: String, median_ms: f64, p95_ms: f64| WorkloadResult {
        id,
        devices,
        gateways,
        threads: 1,
        events: report.events as u64,
        median_ms,
        p95_ms,
        events_per_sec: report.events_per_sec,
        devices_per_sec: 0.0,
    };
    let rows = vec![
        row(
            format!("serve_churn/{tag}{suffix}"),
            latency.p50_us / 1_000.0,
            latency.p95_us / 1_000.0,
        ),
        row(
            format!("serve_churn/{tag}{suffix}/p99"),
            latency.p99_us / 1_000.0,
            latency.max_us / 1_000.0,
        ),
    ];
    (rows, report)
}

/// Runs the scaling curve, prints the throughput table and archives
/// `target/experiments/ext_serve_soak.json` (a [`PerfReport`]).
pub fn run(scale: &Scale) -> PerfReport {
    let mut workloads = Vec::new();
    let mut table = Vec::new();
    let mut overheads = Vec::new();
    for (factor, events) in soak_points(scale) {
        let (rows, report) = run_point(factor, events, false);
        let (journal_rows, journal_report) = run_point(factor, events, true);
        let devices = rows[0].devices;
        for (label, r) in [("", &report), (" +wal", &journal_report)] {
            let latency = r.latency;
            table.push(vec![
                format!("{devices}{label}"),
                r.events.to_string(),
                f2(r.events_per_sec),
                f2(latency.p50_us),
                f2(latency.p95_us),
                f2(latency.p99_us),
                f2(latency.max_us),
            ]);
        }
        if report.latency.p99_us > 0.0 {
            overheads.push((
                devices,
                (journal_report.latency.p99_us / report.latency.p99_us - 1.0) * 100.0,
            ));
        }
        workloads.extend(rows);
        workloads.extend(journal_rows);
    }
    workloads.push(calibration_row());
    let perf = PerfReport {
        schema: SCHEMA.to_string(),
        git_describe: git_describe(),
        scale: format!("{:?}", scale.kind).to_lowercase(),
        reps: REPS_PER_POINT,
        workloads,
    };
    print_table(
        "ext_serve_soak: sustained daemon throughput vs population (incremental model state; \
         +wal = batch-fsync write-ahead journal)",
        &[
            "devices", "events", "events/s", "p50 (us)", "p95 (us)", "p99 (us)", "max (us)",
        ],
        &table,
    );
    for (devices, pct) in overheads {
        println!("ext_serve_soak: journal overhead at {devices} devices: p99 {pct:+.1}%");
    }
    write_json("ext_serve_soak", &perf);
    perf
}

/// Gates `perf` against `baseline`: every baseline row measured at the
/// same scale must be present and within the tolerance after machine-
/// speed normalisation. When both reports carry a [`CALIBRATION_ID`]
/// row, every latency in `perf` is divided by the probe ratio
/// `perf_probe / baseline_probe` first, so a uniformly slower (or
/// faster) box cancels out and only genuine serve-path regressions
/// surface. Pure — the binary wires it to [`baseline_path`].
pub fn gate_against(perf: &PerfReport, baseline: &PerfReport, tolerance: f64) -> Vec<PerfIssue> {
    if baseline.scale != perf.scale {
        return Vec::new();
    }
    let probe_of = |report: &PerfReport| {
        report
            .workloads
            .iter()
            .find(|w| w.id == CALIBRATION_ID)
            .map(|w| w.median_ms)
            .filter(|&ms| ms > 0.0)
    };
    let speed = match (probe_of(perf), probe_of(baseline)) {
        (Some(cur), Some(base)) => cur / base,
        _ => 1.0,
    };
    let mut scaled = perf.clone();
    for w in &mut scaled.workloads {
        w.median_ms /= speed;
        w.p95_ms /= speed;
    }
    let mut issues = compare(&scaled, baseline, tolerance);
    // Journal-overhead rows (`serve_churn/<tag>/journal[...]`) have no
    // counterpart in pre-journal baselines, and `compare` ignores
    // current-only rows — so gate them explicitly against the *plain*
    // baseline rows: batch-fsync journaling must keep the daemon within
    // the same tolerance that bounds any other serve-path regression.
    let journal_view = PerfReport {
        workloads: scaled
            .workloads
            .iter()
            .filter(|w| w.id.contains("/journal"))
            .map(|w| {
                let mut plain = w.clone();
                plain.id = plain.id.replace("/journal", "");
                plain
            })
            .collect(),
        ..scaled.clone()
    };
    if !journal_view.workloads.is_empty() {
        issues.extend(
            compare(&journal_view, baseline, tolerance)
                .into_iter()
                .filter_map(|issue| match issue {
                    PerfIssue::Slower {
                        id,
                        baseline_ms,
                        current_ms,
                        ratio,
                    } => Some(PerfIssue::Slower {
                        id: format!("{id} (journaled)"),
                        baseline_ms,
                        current_ms,
                        ratio,
                    }),
                    // Rows absent from the journal view (the probe, any
                    // point without a journaled twin) are not journal
                    // regressions; the plain pass already gates shape.
                    PerfIssue::Missing { .. } => None,
                }),
        );
    }
    issues
}

/// Applies the golden-baseline workflow: `EF_LORA_UPDATE_GOLDEN=1`
/// rewrites [`baseline_path`]; otherwise, when a baseline recorded at
/// the same scale exists, regressions beyond [`DEFAULT_TOLERANCE`] are
/// returned (the binary exits non-zero on any).
///
/// # Errors
///
/// The list of regressions, when the gate fails.
pub fn gate(perf: &PerfReport) -> Result<(), Vec<PerfIssue>> {
    let path = baseline_path();
    if std::env::var(UPDATE_ENV).is_ok_and(|v| v == "1") {
        std::fs::write(&path, to_json(perf)).expect("baseline path is writable");
        println!("ext_serve_soak: baseline updated at {}", path.display());
        return Ok(());
    }
    let Ok(body) = std::fs::read_to_string(&path) else {
        println!(
            "ext_serve_soak: no baseline at {}; gate skipped",
            path.display()
        );
        return Ok(());
    };
    let baseline: PerfReport = serde_json::from_str(&body).expect("baseline parses");
    let issues = gate_against(perf, &baseline, DEFAULT_TOLERANCE);
    if issues.is_empty() {
        println!(
            "ext_serve_soak: within {:.0}% of baseline {}",
            DEFAULT_TOLERANCE * 100.0,
            baseline.git_describe
        );
        Ok(())
    } else {
        Err(issues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_emits_a_scaling_curve_with_p99_tails() {
        let perf = run(&Scale::smoke().with_threads(1));
        assert_eq!(perf.schema, SCHEMA);
        let points = soak_points(&Scale::smoke());
        // Four rows per curve point — plain and journaled, each with its
        // p99 twin — plus the machine-speed probe.
        assert_eq!(perf.workloads.len(), 4 * points.len() + 1);
        let calibration = perf.workloads.last().expect("probe row");
        assert_eq!(calibration.id, CALIBRATION_ID);
        assert!(calibration.median_ms > 0.0);
        let mut devices_seen = Vec::new();
        for (i, pair) in perf.workloads[..4 * points.len()].chunks(2).enumerate() {
            let [head, tail] = pair else { unreachable!() };
            assert!(head.id.starts_with("serve_churn/"));
            assert_eq!(tail.id, format!("{}/p99", head.id));
            // Rows alternate plain / journaled per point.
            assert_eq!(head.id.ends_with("/journal"), i % 2 == 1, "id: {}", head.id);
            assert!(head.events_per_sec > 0.0, "throughput must be measured");
            // Percentiles are ordered: p50 <= p95 <= p99 <= max.
            assert!(head.median_ms <= head.p95_ms);
            assert!(head.p95_ms <= tail.median_ms + 1e-12);
            assert!(tail.median_ms <= tail.p95_ms);
            devices_seen.push(head.devices);
        }
        // The smoke curve covers the 20- and 200-device points of the
        // churn-heavy scenario, each measured plain and journaled.
        assert_eq!(devices_seen, vec![20, 20, 200, 200]);
        assert_eq!(perf.workloads[0].events as usize, points[0].1);
    }

    #[test]
    fn gate_bounds_journal_overhead_against_the_plain_baseline_rows() {
        let row = |id: &str, median_ms: f64| WorkloadResult {
            id: id.into(),
            devices: 200,
            gateways: 2,
            threads: 1,
            events: 300,
            median_ms,
            p95_ms: median_ms,
            events_per_sec: 1000.0,
            devices_per_sec: 0.0,
        };
        let report = |rows: Vec<WorkloadResult>| PerfReport {
            schema: SCHEMA.to_string(),
            git_describe: "test".into(),
            scale: "smoke".into(),
            reps: 1,
            workloads: rows,
        };
        // The baseline predates the journal: plain rows only.
        let baseline = report(vec![
            row("serve_churn/200dev_2gw/p99", 10.0),
            row(CALIBRATION_ID, 2.0),
        ]);
        // Journaling within tolerance passes …
        let fine = report(vec![
            row("serve_churn/200dev_2gw/p99", 10.0),
            row("serve_churn/200dev_2gw/journal/p99", 12.0),
            row(CALIBRATION_ID, 2.0),
        ]);
        assert!(gate_against(&fine, &baseline, 0.25).is_empty());
        // … but journal overhead past it is a regression of its own,
        // even when the plain row is healthy.
        let slow = report(vec![
            row("serve_churn/200dev_2gw/p99", 10.0),
            row("serve_churn/200dev_2gw/journal/p99", 20.0),
            row(CALIBRATION_ID, 2.0),
        ]);
        let issues = gate_against(&slow, &baseline, 0.25);
        assert_eq!(issues.len(), 1);
        assert!(
            issues[0].to_string().contains("(journaled)"),
            "issue must name the journaled row: {}",
            issues[0]
        );
    }

    #[test]
    fn gate_ignores_mismatched_scales_and_flags_regressions() {
        let row = |id: &str, median_ms: f64| WorkloadResult {
            id: id.into(),
            devices: 200,
            gateways: 2,
            threads: 1,
            events: 300,
            median_ms,
            p95_ms: median_ms,
            events_per_sec: 1000.0,
            devices_per_sec: 0.0,
        };
        let report = |scale: &str, median_ms: f64, probe_ms: f64| PerfReport {
            schema: SCHEMA.to_string(),
            git_describe: "test".into(),
            scale: scale.into(),
            reps: 1,
            workloads: vec![
                row("serve_churn/200dev_2gw/p99", median_ms),
                row(CALIBRATION_ID, probe_ms),
            ],
        };
        let baseline = report("smoke", 10.0, 2.0);
        assert!(gate_against(&report("smoke", 11.0, 2.0), &baseline, 0.25).is_empty());
        assert_eq!(
            gate_against(&report("smoke", 20.0, 2.0), &baseline, 0.25).len(),
            1
        );
        // A paper-scale run is not comparable to the smoke baseline.
        assert!(gate_against(&report("paper", 20.0, 2.0), &baseline, 0.25).is_empty());
    }

    #[test]
    fn gate_normalises_by_the_machine_speed_probe() {
        let row = |id: &str, median_ms: f64| WorkloadResult {
            id: id.into(),
            devices: 200,
            gateways: 2,
            threads: 1,
            events: 300,
            median_ms,
            p95_ms: median_ms,
            events_per_sec: 1000.0,
            devices_per_sec: 0.0,
        };
        let report = |median_ms: f64, probe_ms: f64| PerfReport {
            schema: SCHEMA.to_string(),
            git_describe: "test".into(),
            scale: "smoke".into(),
            reps: 1,
            workloads: vec![
                row("serve_churn/200dev_2gw/p99", median_ms),
                row(CALIBRATION_ID, probe_ms),
            ],
        };
        let baseline = report(10.0, 2.0);
        // The whole box running 2x slower is not a serve regression …
        assert!(gate_against(&report(20.0, 4.0), &baseline, 0.25).is_empty());
        // … but a 3x latency on a 2x-slower box is a genuine 1.5x one.
        assert_eq!(gate_against(&report(30.0, 4.0), &baseline, 0.25).len(), 1);
        // A faster box must not mask a real regression: same wall-clock
        // on a 2x-faster machine is a 2x work-per-cycle regression.
        assert_eq!(gate_against(&report(10.0, 1.0), &baseline, 0.25).len(), 1);
    }
}
