//! Extension experiment — soak test of the `ef-lora-serve` daemon.
//!
//! Boots the daemon in-process on an ephemeral loopback port, drives a
//! seeded churn burst through the JSON-lines protocol with the crate's
//! own load generator, and reports sustained throughput plus
//! per-request repair-latency percentiles in the perf-harness schema
//! (`ef-lora-perf/v1`), so soak numbers live next to the hot-path
//! baselines and the same tooling can diff them across runs.
//!
//! Two workload rows are emitted per soak: `serve_churn/<tag>` carries
//! the p50/p95 repair latency (as `median_ms`/`p95_ms`) and the
//! sustained `events_per_sec`; `serve_churn/<tag>/p99` carries the
//! p99/max tail — [`crate::perf::WorkloadResult`] has no p99 field, so
//! the tail gets its own row rather than a schema fork.

use std::net::TcpListener;

use ef_lora::EfLora;
use ef_lora_serve::{loadgen, serve, ServeState, ServerOptions};
use lora_scenario::catalog;

use crate::harness::{Scale, ScaleKind};
use crate::output::{f2, print_table, write_json};
use crate::perf::{git_describe, PerfReport, WorkloadResult, SCHEMA};

/// Seed of the load-generator event stream.
pub const SOAK_SEED: u64 = 7;

/// Churn events driven through the daemon per preset.
pub fn soak_events(scale: &Scale) -> usize {
    match scale.kind {
        ScaleKind::Smoke => 300,
        ScaleKind::Small => 1_500,
        ScaleKind::Paper => 5_000,
    }
}

/// Population multiplier applied to the churn-heavy catalog scenario.
pub fn soak_factor(scale: &Scale) -> f64 {
    match scale.kind {
        ScaleKind::Smoke => 0.1,
        ScaleKind::Small => 1.0,
        ScaleKind::Paper => 2.0,
    }
}

/// Runs the soak, prints the latency table and archives
/// `target/experiments/ext_serve_soak.json` (a [`PerfReport`]).
pub fn run(scale: &Scale) -> PerfReport {
    let spec = catalog::scale_devices(&catalog::churn_heavy(), soak_factor(scale));
    let state = ServeState::new(spec, &EfLora::default()).expect("catalog scenario allocates");
    let devices = state.device_count();
    let gateways = state.gateway_count();

    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener
        .local_addr()
        .expect("bound listener has an address")
        .to_string();
    let server = std::thread::spawn(move || serve(listener, state, &ServerOptions::default()));
    let events = soak_events(scale);
    let report = loadgen::run_burst(&addr, SOAK_SEED, events, false, true)
        .expect("soak burst completes cleanly");
    server
        .join()
        .expect("server thread joins")
        .expect("server exits cleanly");

    let tag = format!("{devices}dev_{gateways}gw");
    let latency = report.latency;
    let row = |id: String, median_ms: f64, p95_ms: f64, events_per_sec: f64| WorkloadResult {
        id,
        devices,
        gateways,
        threads: 1,
        events: report.events as u64,
        median_ms,
        p95_ms,
        events_per_sec,
        devices_per_sec: 0.0,
    };
    let perf = PerfReport {
        schema: SCHEMA.to_string(),
        git_describe: git_describe(),
        scale: format!("{:?}", scale.kind).to_lowercase(),
        reps: 1,
        workloads: vec![
            row(
                format!("serve_churn/{tag}"),
                latency.p50_us / 1_000.0,
                latency.p95_us / 1_000.0,
                report.events_per_sec,
            ),
            row(
                format!("serve_churn/{tag}/p99"),
                latency.p99_us / 1_000.0,
                latency.max_us / 1_000.0,
                report.events_per_sec,
            ),
        ],
    };

    print_table(
        &format!(
            "ext_serve_soak: {} events over {devices} devices, {gateways} gateways \
             ({} joined, {} left, {} migrated, {} reconfigured, {} warnings)",
            report.events,
            report.joined,
            report.left,
            report.migrated,
            report.reconfigured,
            report.warnings
        ),
        &["metric", "value"],
        &[
            vec!["events/sec".into(), f2(report.events_per_sec)],
            vec!["p50 repair latency (us)".into(), f2(latency.p50_us)],
            vec!["p95 repair latency (us)".into(), f2(latency.p95_us)],
            vec!["p99 repair latency (us)".into(), f2(latency.p99_us)],
            vec!["max repair latency (us)".into(), f2(latency.max_us)],
        ],
    );
    write_json("ext_serve_soak", &perf);
    perf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_emits_perf_schema_rows_with_a_p99_tail() {
        let perf = run(&Scale::smoke().with_threads(1));
        assert_eq!(perf.schema, SCHEMA);
        assert_eq!(perf.workloads.len(), 2);
        let [head, tail] = &perf.workloads[..] else {
            unreachable!()
        };
        assert!(head.id.starts_with("serve_churn/"));
        assert_eq!(tail.id, format!("{}/p99", head.id));
        assert_eq!(head.events as usize, soak_events(&Scale::smoke()));
        assert!(head.events_per_sec > 0.0, "throughput must be measured");
        // Percentiles are ordered: p50 <= p95 <= p99 <= max.
        assert!(head.median_ms <= head.p95_ms);
        assert!(head.p95_ms <= tail.median_ms + 1e-12);
        assert!(tail.median_ms <= tail.p95_ms);
    }
}
