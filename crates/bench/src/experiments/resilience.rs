//! Resilience experiment — fairness and minimum EE versus gateway
//! failure rate under three recovery policies.
//!
//! A two-gateway NLoS deployment (a far arc only gateway A can serve, a
//! cluster next to gateway B) runs under seed-derived gateway churn at a
//! sweep of MTBF levels. For each failure rate the same fault timeline
//! is replayed under `Static` (the paper's one-shot allocation),
//! `Reactive` (degradation detection plus masked repair) and `Oracle`
//! (ground-truth full re-plan) — the trajectory summaries land in
//! `target/experiments/resilience.json`.

use serde::Serialize;

use ef_lora::{
    run_faulted, AllocationContext, EfLora, RecoveryMode, ResilienceConfig, ResilienceRun, Strategy,
};
use lora_model::NetworkModel;
use lora_phy::path_loss::LinkEnvironment;
use lora_phy::Fading;
use lora_sim::topology::{DeviceSite, Position};
use lora_sim::{FaultConfig, GatewayChurn, SimConfig, Topology};

use crate::harness::{paper_config_at, Scale};
use crate::output::{f3, print_table, write_json};

/// Full-scale device count (split between the far arc and the cluster).
pub const PAPER_DEVICES: usize = 120;
/// Epoch width in seconds; also the controller's observation window.
pub const EPOCH_S: f64 = 1_800.0;
/// Epochs per run (the simulated horizon is `EPOCHS × EPOCH_S`).
pub const EPOCHS: u32 = 6;
/// Mean time to repair, fixed across the sweep, seconds.
pub const MTTR_S: f64 = 2_700.0;
/// Mean time between failures sweep, seconds (high → low failure rate).
pub const MTBF_SWEEP: [f64; 4] = [14_400.0, 7_200.0, 3_600.0, 1_800.0];

/// One (failure rate, recovery policy) summary point.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Mean time between gateway failures, seconds.
    pub mtbf_s: f64,
    /// Mean time to repair, seconds.
    pub mttr_s: f64,
    /// Long-run fraction of time the churned gateway is down,
    /// `mttr / (mtbf + mttr)`.
    pub unavailability: f64,
    /// Recovery policy label.
    pub mode: String,
    /// Healthy minimum EE from the fault-free baseline epoch, bits/mJ.
    pub baseline_min_ee: f64,
    /// Worst epoch minimum EE while a gateway was down, bits/mJ
    /// (`None` when no epoch had a ground-truth failure).
    pub min_ee_under_failure: Option<f64>,
    /// Mean epoch minimum EE while a gateway was down, bits/mJ.
    pub mean_min_ee_under_failure: Option<f64>,
    /// Mean Jain fairness over the failed epochs.
    pub mean_jain_under_failure: Option<f64>,
    /// Epochs with a ground-truth gateway failure.
    pub failed_epochs: usize,
    /// Re-allocations the policy applied over the horizon.
    pub reallocations: usize,
    /// First epoch back at the recovery threshold, if any.
    pub recovered_epoch: Option<u32>,
    /// Seconds from first degradation to recovery, if recovered.
    pub time_to_recover_s: Option<f64>,
}

/// The asymmetric NLoS deployment: gateway A at the origin, gateway B at
/// 4.5 km. The far arc sits 4.2 km from A on the half-plane away from B
/// (only A can serve it, at SF10/14 dBm); the cluster sits a few hundred
/// metres from B (SF7 via B, only SF10+/14 dBm via A). Losing B strands
/// the cluster until a re-allocation lifts it toward A.
fn resilience_topology(far: usize, cluster: usize) -> Topology {
    let mut devices = Vec::new();
    for i in 0..far {
        let angle = std::f64::consts::PI * (0.5 + i as f64 / (far.max(2) - 1) as f64);
        devices.push(DeviceSite {
            position: Position::new(4_200.0 * angle.cos(), 4_200.0 * angle.sin()),
            environment: LinkEnvironment::NonLineOfSight,
        });
    }
    for i in 0..cluster {
        devices.push(DeviceSite {
            position: Position::new(4_250.0 + 8.0 * i as f64, 0.0),
            environment: LinkEnvironment::NonLineOfSight,
        });
    }
    let gateways = vec![Position::new(0.0, 0.0), Position::new(4_500.0, 0.0)];
    Topology::from_sites(devices, gateways, 5_000.0)
}

fn mode_label(mode: RecoveryMode) -> &'static str {
    match mode {
        RecoveryMode::Static => "Static",
        RecoveryMode::Reactive => "Reactive",
        RecoveryMode::Oracle => "Oracle",
    }
}

fn summarise(mtbf_s: f64, mode: RecoveryMode, run: &ResilienceRun) -> Point {
    let failed: Vec<_> = run
        .epochs
        .iter()
        .filter(|e| !e.failed_gateways.is_empty())
        .collect();
    let mean = |f: &dyn Fn(&ef_lora::EpochReport) -> f64| {
        (!failed.is_empty()).then(|| failed.iter().map(|e| f(e)).sum::<f64>() / failed.len() as f64)
    };
    Point {
        mtbf_s,
        mttr_s: MTTR_S,
        unavailability: MTTR_S / (mtbf_s + MTTR_S),
        mode: mode_label(mode).into(),
        baseline_min_ee: run.baseline_min_ee,
        min_ee_under_failure: (!failed.is_empty()).then(|| run.min_ee_under_failure()),
        mean_min_ee_under_failure: mean(&|e| e.min_ee),
        mean_jain_under_failure: mean(&|e| e.jain),
        failed_epochs: failed.len(),
        reallocations: run.epochs.iter().filter(|e| e.reallocated).count(),
        recovered_epoch: run.recovered_epoch,
        time_to_recover_s: run.time_to_recover_s,
    }
}

/// The scenario config at one churn level: epoch-width duration, no
/// fading (the geometry is the experiment), gateway B churning.
fn scenario(scale: &Scale, mtbf_s: f64) -> SimConfig {
    let mut config = paper_config_at(scale);
    config.seed = 23;
    config.duration_s = EPOCH_S;
    config.report_interval_s = 600.0;
    config.fading = Fading::None;
    config.faults = Some(FaultConfig {
        churn: vec![GatewayChurn {
            gateway: 1,
            mtbf_s,
            mttr_s: MTTR_S,
        }],
        ..FaultConfig::default()
    });
    config
}

/// Runs the failure-rate sweep.
pub fn run(scale: &Scale) -> Vec<Point> {
    let n = scale.devices(PAPER_DEVICES);
    let far = n / 2;
    let topology = resilience_topology(far, n - far);
    let rc = ResilienceConfig::default();

    let mut points = Vec::new();
    for &mtbf_s in &MTBF_SWEEP {
        let config = scenario(scale, mtbf_s);
        // The initial plan is fault-blind: EF-LoRa on the healthy network.
        let model = NetworkModel::new(&config, &topology);
        let ctx = AllocationContext::new(&config, &topology, &model);
        let initial = EfLora::default()
            .allocate(&ctx)
            .expect("initial allocation");
        for mode in [
            RecoveryMode::Static,
            RecoveryMode::Reactive,
            RecoveryMode::Oracle,
        ] {
            let run = run_faulted(&config, &topology, initial.as_slice(), EPOCHS, mode, &rc)
                .expect("faulted run");
            points.push(summarise(mtbf_s, mode, &run));
        }
    }

    let opt = |v: Option<f64>| v.map_or_else(|| "-".into(), f3);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.mtbf_s),
                f3(p.unavailability),
                p.mode.clone(),
                f3(p.baseline_min_ee),
                opt(p.min_ee_under_failure),
                opt(p.mean_min_ee_under_failure),
                opt(p.mean_jain_under_failure),
                p.failed_epochs.to_string(),
                p.reallocations.to_string(),
                p.time_to_recover_s
                    .map_or_else(|| "-".into(), |t| format!("{t:.0}")),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Resilience — min EE and fairness vs gateway failure rate ({n} devices, {EPOCHS} epochs of {EPOCH_S:.0} s)"
        ),
        &[
            "MTBF (s)",
            "unavail",
            "policy",
            "baseline min EE",
            "worst min EE",
            "mean min EE",
            "mean Jain",
            "failed epochs",
            "re-allocs",
            "recover (s)",
        ],
        &rows,
    );
    write_json("resilience", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_policies_dominate_static_under_churn() {
        let scale = Scale::smoke();
        let points = run(&scale);
        assert_eq!(points.len(), MTBF_SWEEP.len() * 3);

        // The fault timeline is mode-invariant: each rate's three runs
        // must agree on the baseline and on which epochs failed.
        for chunk in points.chunks(3) {
            assert!(chunk[0].baseline_min_ee > 0.0);
            for p in &chunk[1..] {
                assert_eq!(p.baseline_min_ee, chunk[0].baseline_min_ee);
                assert_eq!(p.failed_epochs, chunk[0].failed_epochs);
            }
        }

        // At least one churn level produces a ground-truth failure, and
        // there the repair loops beat (or match) the static allocation on
        // the mean floor while the gateway is down.
        let mut compared = false;
        for chunk in points.chunks(3) {
            let (st, re, or) = (&chunk[0], &chunk[1], &chunk[2]);
            assert_eq!((st.mode.as_str(), re.mode.as_str()), ("Static", "Reactive"));
            assert_eq!(or.mode, "Oracle");
            assert_eq!(st.reallocations, 0, "static must never re-plan");
            let (Some(s), Some(r), Some(o)) = (
                st.mean_min_ee_under_failure,
                re.mean_min_ee_under_failure,
                or.mean_min_ee_under_failure,
            ) else {
                continue;
            };
            compared = true;
            assert!(r >= s - 1e-9, "reactive {r} below static {s}");
            assert!(o >= s - 1e-9, "oracle {o} below static {s}");
        }
        assert!(
            compared,
            "the sweep must exercise at least one real failure"
        );
    }
}
