//! Paper Fig. 7 — minimum energy efficiency vs. number of gateways
//! (1..25), 3000 end devices, three strategies.

use serde::Serialize;

use ef_lora::{EfLora, LegacyLora, RsLora, Strategy};

use crate::harness::{paper_config_at, run_deployment, Deployment, Scale};
use crate::output::{f3, print_table, write_json};

/// The paper's x-axis (it plots 1..25; Fig. 7 labels 5/9/15/18/25).
pub const GATEWAY_COUNTS: [usize; 7] = [1, 3, 5, 9, 15, 20, 25];
/// Devices in Fig. 7.
pub const PAPER_DEVICES: usize = 3000;

/// One x-axis point.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Gateways deployed.
    pub gateways: usize,
    /// Minimum EE per strategy.
    pub min_ee: Vec<(String, f64)>,
}

/// Runs the sweep and prints the three series.
pub fn run(scale: &Scale) -> Vec<Point> {
    let n = scale.devices(PAPER_DEVICES);
    let config = paper_config_at(scale);
    let legacy = LegacyLora::default();
    let rs = RsLora::default();
    let ef = EfLora::default();
    let strategies: [&dyn Strategy; 3] = [&legacy, &rs, &ef];

    let mut points = Vec::new();
    for &gws in &GATEWAY_COUNTS {
        let outcomes = run_deployment(&config, Deployment::disc(n, gws, 8), &strategies, scale);
        points.push(Point {
            gateways: gws,
            min_ee: outcomes
                .iter()
                .map(|o| (o.strategy.clone(), o.min_ee))
                .collect(),
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![p.gateways.to_string()];
            row.extend(p.min_ee.iter().map(|(_, v)| f3(*v)));
            row
        })
        .collect();
    print_table(
        &format!("Fig. 7 — minimum EE vs. number of gateways ({n} devices, bits/mJ)"),
        &["gateways", "Legacy-LoRa", "RS-LoRa", "EF-LoRa"],
        &rows,
    );
    write_json("fig7_min_ee_vs_gateways", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_ef_lora_benefits_from_gateways() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.04;
        let points = run(&scale);
        let ef = |p: &Point| p.min_ee.iter().find(|(s, _)| s == "EF-LoRa").unwrap().1;
        // The paper's shape: EF-LoRa's minimum EE with several gateways
        // clearly exceeds the single-gateway value.
        let single = ef(&points[0]);
        let multi = points[1..].iter().map(ef).fold(f64::NEG_INFINITY, f64::max);
        assert!(
            multi > single,
            "more gateways should raise EF-LoRa's floor: {multi} vs {single}"
        );
        // And EF-LoRa leads the baselines at the multi-gateway points.
        for p in &points[1..3] {
            let get = |name: &str| p.min_ee.iter().find(|(s, _)| s == name).unwrap().1;
            assert!(
                get("EF-LoRa") >= get("Legacy-LoRa") - 0.02,
                "{} GW",
                p.gateways
            );
        }
    }
}
