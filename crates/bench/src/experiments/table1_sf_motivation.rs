//! Paper Table I — the spreading-factor-allocation motivation example.

use crate::motivation::{evaluate, table1_scenarios, ScenarioResult};
use crate::output::{f2, print_table, write_json};

/// Paper Table I values, for side-by-side comparison: per-device times,
/// average and max per scenario.
pub const PAPER_TIMES: [[f64; 5]; 3] = [
    [39.0, 26.0, 26.0, 39.0, 26.0],
    [31.0, 19.0, 31.0, 26.0, 19.0],
    [26.0, 17.0, 26.0, 21.0, 26.0],
];

#[allow(clippy::needless_range_loop)] // device index addresses parallel paper tables
/// Runs Table I and prints measured-vs-paper values.
pub fn run() -> Vec<ScenarioResult> {
    let results: Vec<ScenarioResult> = table1_scenarios().iter().map(evaluate).collect();
    let mut rows = Vec::new();
    for device in 0..5 {
        let mut row = vec![format!("{}", device + 1)];
        for (s, result) in results.iter().enumerate() {
            row.push(f2(result.times_ms[device]));
            row.push(f2(PAPER_TIMES[s][device]));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    let mut max_row = vec!["Max".to_string()];
    let paper_avg = [31.2, 25.2, 23.2];
    let paper_max = [39.0, 31.0, 26.0];
    for (s, result) in results.iter().enumerate() {
        avg_row.push(f2(result.average_ms));
        avg_row.push(f2(paper_avg[s]));
        max_row.push(f2(result.max_ms));
        max_row.push(f2(paper_max[s]));
    }
    rows.push(avg_row);
    rows.push(max_row);
    print_table(
        "Table I — SF allocation motivation (expected TX time per delivered packet, ms)",
        &[
            "End device",
            "1 GW (ours)",
            "1 GW (paper)",
            "2 GW smallest (ours)",
            "2 GW smallest (paper)",
            "2 GW adjusted (ours)",
            "2 GW adjusted (paper)",
        ],
        &rows,
    );
    write_json("table1_sf_motivation", &results);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_runs_and_matches_paper_shape() {
        let results = run();
        assert_eq!(results.len(), 3);
        // Fairness (max time) improves monotonically across the scenarios.
        assert!(results[0].max_ms > results[1].max_ms);
        assert!(results[1].max_ms > results[2].max_ms);
        // Every measured value within 1 ms of the paper's rounded table.
        for (s, result) in results.iter().enumerate() {
            for (got, want) in result.times_ms.iter().zip(PAPER_TIMES[s]) {
                assert!((got - want).abs() < 1.0, "scenario {s}: {got} vs {want}");
            }
        }
    }
}
