//! Extension experiment — incremental re-allocation on device additions
//! (paper Section III-E future work).
//!
//! A deployment grows by 5 % new devices. Compare three responses:
//! keeping the old allocation and giving newcomers the legacy rule,
//! the bounded incremental allocator, and a full EF-LoRa re-run — on
//! (a) the resulting minimum EE and (b) how many *existing* devices had to
//! be reconfigured over the air.

use serde::Serialize;

use ef_lora::{AllocationContext, EfLora, IncrementalAllocator, Strategy};
use lora_model::NetworkModel;
use lora_phy::{SpreadingFactor, TxConfig};
use lora_sim::Topology;

use crate::harness::{paper_config_at, Scale};
use crate::output::{f3, print_table, write_json};

/// Devices before growth.
pub const PAPER_DEVICES: usize = 2000;
/// Gateways.
pub const GATEWAYS: usize = 3;
/// Fraction of new devices added.
pub const GROWTH: f64 = 0.05;

/// One response to the growth event.
#[derive(Debug, Serialize)]
pub struct Response {
    /// Response label.
    pub label: String,
    /// Model minimum EE after the growth, bits/mJ.
    pub min_ee: f64,
    /// Existing devices whose configuration changed.
    pub reconfigured: usize,
    /// Candidate evaluations spent.
    pub candidates: u64,
}

/// Runs the growth scenario.
pub fn run(scale: &Scale) -> Vec<Response> {
    let n_old = scale.devices(PAPER_DEVICES);
    let n_new = ((n_old as f64 * GROWTH).round() as usize).max(1);
    let config = paper_config_at(scale);

    let grown = Topology::disc(n_old + n_new, GATEWAYS, 5_000.0, &config, 19);
    let old_topo = Topology::from_sites(
        grown.devices()[..n_old].to_vec(),
        grown.gateways().to_vec(),
        grown.radius_m(),
    );
    let old_model = NetworkModel::new(&config, &old_topo);
    let old_ctx = AllocationContext::new(&config, &old_topo, &old_model);
    let previous = EfLora::default()
        .allocate(&old_ctx)
        .expect("initial allocation");

    let new_model = NetworkModel::new(&config, &grown);
    let new_ctx = AllocationContext::new(&config, &grown, &new_model);

    let mut responses = Vec::new();

    // (a) Do nothing clever: newcomers get the legacy rule.
    {
        let mut alloc = previous.as_slice().to_vec();
        for i in n_old..n_old + n_new {
            let sf = new_model
                .min_feasible_sf(i, new_ctx.max_tp())
                .unwrap_or(SpreadingFactor::Sf12);
            alloc.push(TxConfig::new(
                sf,
                new_ctx.max_tp(),
                i % new_ctx.channel_count(),
            ));
        }
        let min_ee = ef_lora::fairness::min_ee(&new_model.evaluate(&alloc));
        responses.push(Response {
            label: "keep + legacy newcomers".into(),
            min_ee,
            reconfigured: 0,
            candidates: 0,
        });
    }

    // (b) The incremental allocator.
    {
        let outcome = IncrementalAllocator::default()
            .extend(&new_ctx, previous.as_slice())
            .expect("incremental allocation");
        responses.push(Response {
            label: "incremental EF-LoRa".into(),
            min_ee: outcome.min_ee,
            reconfigured: outcome.reconfigured,
            candidates: outcome.candidates_evaluated,
        });
    }

    // (c) A full re-run.
    {
        let report = EfLora::default()
            .allocate_with_report(&new_ctx)
            .expect("full re-run");
        let reconfigured = previous
            .as_slice()
            .iter()
            .zip(report.allocation.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        responses.push(Response {
            label: "full EF-LoRa re-run".into(),
            min_ee: report.final_min_ee,
            reconfigured,
            candidates: report.candidates_evaluated,
        });
    }

    let rows: Vec<Vec<String>> = responses
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                f3(r.min_ee),
                r.reconfigured.to_string(),
                r.candidates.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Extension — incremental re-allocation after +{n_new} devices on {n_old}"),
        &[
            "response",
            "min EE (model)",
            "existing devices reconfigured",
            "candidates",
        ],
        &rows,
    );
    write_json("ext_incremental", &responses);
    responses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_is_cheap_and_competitive() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.05;
        let responses = run(&scale);
        assert_eq!(responses.len(), 3);
        let keep = &responses[0];
        let incremental = &responses[1];
        let full = &responses[2];
        // Incremental at least matches doing nothing clever…
        assert!(incremental.min_ee >= keep.min_ee - 1e-9);
        // …approaches the full re-run…
        assert!(incremental.min_ee >= full.min_ee * 0.7);
        // …at a fraction of the search and reconfiguration cost.
        assert!(incremental.candidates < full.candidates);
        assert!(incremental.reconfigured <= full.reconfigured);
    }
}
