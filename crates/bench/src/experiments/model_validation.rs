//! Cross-validation — modelled vs. measured per-device energy efficiency.
//!
//! The allocator optimises the analytical model of Section III; the
//! figures report the packet simulator. This experiment measures how well
//! the two agree per device (correlation, rank agreement, bias) under
//! each strategy's allocation — the repository's standing answer to "does
//! the model the greedy trusts actually describe the network it runs on?"

use serde::Serialize;

use ef_lora::{EfLora, LegacyLora, RsLora, Strategy};
use lora_model::validation::{agreement, Agreement};

use crate::harness::{paper_config_at, run_deployment, Deployment, Scale};
use crate::output::{f3, print_table, write_json};

/// Devices (Fig. 4 deployment).
pub const PAPER_DEVICES: usize = 3000;
/// Gateways.
pub const GATEWAYS: usize = 3;

/// One strategy's agreement record.
#[derive(Debug, Serialize)]
pub struct Record {
    /// Strategy name.
    pub strategy: String,
    /// Agreement statistics between model EE and measured EE.
    pub agreement: Agreement,
}

/// Runs the validation.
pub fn run(scale: &Scale) -> Vec<Record> {
    let n = scale.devices(PAPER_DEVICES);
    let config = paper_config_at(scale);
    let legacy = LegacyLora::default();
    let rs = RsLora::default();
    let ef = EfLora::default();
    let strategies: [&dyn Strategy; 3] = [&legacy, &rs, &ef];

    // run_deployment gives the measured per-device EE; recompute the model
    // side per strategy for the same allocation.
    let topology = lora_sim::Topology::disc(n, GATEWAYS, 5_000.0, &config, 25);
    let model = lora_model::NetworkModel::new(&config, &topology);
    let outcomes = run_deployment(
        &config,
        Deployment {
            n_devices: n,
            n_gateways: GATEWAYS,
            radius_m: 5_000.0,
            seed: 25,
        },
        &strategies,
        scale,
    );

    let mut records = Vec::new();
    for (outcome, strategy) in outcomes.iter().zip(strategies) {
        let ctx = ef_lora::AllocationContext::new(&config, &topology, &model);
        let alloc = strategy.allocate(&ctx).expect("allocation");
        let model_ee = model.evaluate(alloc.as_slice());
        records.push(Record {
            strategy: outcome.strategy.clone(),
            agreement: agreement(&model_ee, &outcome.ee_per_device),
        });
    }

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                f3(r.agreement.pearson),
                f3(r.agreement.spearman),
                f3(r.agreement.mean_bias),
                f3(r.agreement.mean_absolute_error),
            ]
        })
        .collect();
    print_table(
        &format!("Model validation — model vs measured EE, {n} devices / {GATEWAYS} gateways"),
        &["strategy", "Pearson", "Spearman", "bias (model−sim)", "MAE"],
        &rows,
    );
    write_json("model_validation", &records);
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_simulator_per_device() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.05;
        scale.duration_s = 6_000.0;
        // One repetition leaves too much single-run channel noise for a
        // stable correlation estimate (the paper averages 100 runs);
        // six keeps the test fast while separating it from the 0.5 bar.
        scale.reps = 6;
        let records = run(&scale);
        assert_eq!(records.len(), 3);
        for r in &records {
            assert!(
                r.agreement.pearson > 0.5,
                "{}: model decoupled from simulator (r = {})",
                r.strategy,
                r.agreement.pearson
            );
            assert!(r.agreement.spearman > 0.5, "{}", r.strategy);
        }
    }
}
