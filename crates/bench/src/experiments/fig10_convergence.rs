//! Paper Fig. 10 — wall-clock convergence time of the allocation
//! algorithm vs. network size (1000..3000 devices, 3..9 gateways), plus
//! the Section III-D density-first vs. random ordering measurement.

use std::time::Instant;

use serde::Serialize;

use ef_lora::{AllocationContext, DeviceOrdering, EfLora};
use lora_model::NetworkModel;
use lora_sim::Topology;

use crate::harness::{paper_config_at, Scale};
use crate::output::{f2, print_table, write_json};

/// The paper's device-count axis.
pub const PAPER_COUNTS: [usize; 3] = [1000, 2000, 3000];
/// The paper's gateway-count axis.
pub const GATEWAY_COUNTS: [usize; 3] = [3, 6, 9];

/// One convergence measurement.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Devices after scaling.
    pub devices: usize,
    /// Gateways.
    pub gateways: usize,
    /// Wall-clock seconds for the allocator to converge.
    pub seconds: f64,
    /// Passes to convergence.
    pub passes: usize,
    /// Final minimum EE, bits/mJ.
    pub final_min_ee: f64,
}

fn time_allocation(
    n: usize,
    gws: usize,
    ordering: DeviceOrdering,
    scale: &Scale,
) -> (f64, usize, f64) {
    let config = paper_config_at(scale);
    let topo = Topology::disc(n, gws, 5_000.0, &config, 14);
    let model = NetworkModel::new(&config, &topo);
    let ctx = AllocationContext::new(&config, &topo, &model);
    let start = Instant::now();
    let report = EfLora::default()
        .with_ordering(ordering)
        .allocate_with_report(&ctx)
        .expect("allocation succeeds");
    (
        start.elapsed().as_secs_f64(),
        report.passes,
        report.final_min_ee,
    )
}

/// Runs the convergence sweep and the ordering ablation.
pub fn run(scale: &Scale) -> Vec<Point> {
    let mut points = Vec::new();
    for &paper_n in &PAPER_COUNTS {
        let n = scale.devices(paper_n);
        for &gws in &GATEWAY_COUNTS {
            let (seconds, passes, final_min_ee) =
                time_allocation(n, gws, DeviceOrdering::DensityFirst, scale);
            points.push(Point {
                devices: n,
                gateways: gws,
                seconds,
                passes,
                final_min_ee,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.devices.to_string(),
                p.gateways.to_string(),
                format!("{:.2}", p.seconds),
                p.passes.to_string(),
                f2(p.final_min_ee),
            ]
        })
        .collect();
    print_table(
        "Fig. 10 — allocator convergence time",
        &["devices", "gateways", "seconds", "passes", "final min EE"],
        &rows,
    );

    // Section III-D ordering ablation at the paper's 1000-device point,
    // averaged over repetitions (wall-clock noise at small sizes would
    // otherwise swamp the ~10 % effect).
    let n = scale.devices(1000);
    let reps = 3;
    let mut dense_s = 0.0;
    let mut random_s = 0.0;
    for rep in 0..reps {
        dense_s += time_allocation(n, 3, DeviceOrdering::DensityFirst, scale).0;
        random_s += time_allocation(n, 3, DeviceOrdering::Random { seed: 7 + rep }, scale).0;
    }
    dense_s /= reps as f64;
    random_s /= reps as f64;
    let reduction = (random_s - dense_s) / random_s * 100.0;
    print_table(
        "Section III-D — density-first vs. random start ordering",
        &["ordering", "seconds"],
        &[
            vec!["density-first".into(), format!("{dense_s:.3}")],
            vec!["random".into(), format!("{random_s:.3}")],
            vec![
                "reduction".into(),
                format!("{reduction:.1}% (paper: 10.3%)"),
            ],
        ],
    );

    write_json("fig10_convergence", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_time_grows_with_network_size() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.05;
        let points = run(&scale);
        assert_eq!(points.len(), PAPER_COUNTS.len() * GATEWAY_COUNTS.len());
        for p in &points {
            assert!(p.seconds >= 0.0 && p.seconds.is_finite());
            assert!(p.passes >= 1);
        }
        // Near-linear growth claim: the largest network should cost more
        // than the smallest at equal gateway count (allow noise at tiny
        // smoke sizes by comparing min vs max devices at 9 gateways).
        let small = points
            .iter()
            .find(|p| p.devices == scale.devices(1000) && p.gateways == 9)
            .unwrap();
        let large = points
            .iter()
            .find(|p| p.devices == scale.devices(3000) && p.gateways == 9)
            .unwrap();
        assert!(
            large.seconds >= small.seconds * 0.5,
            "larger networks should not be dramatically faster"
        );
    }
}
