//! Extension experiment — confirmed traffic with retransmissions.
//!
//! The paper's energy model charges `E_s/PRR` per delivered packet
//! (Eq. 2), i.e. it *assumes* lossy devices retransmit. This experiment
//! makes that assumption physical: the simulator's confirmed-uplink mode
//! retransmits lost frames (up to the LoRaWAN budget of 8), so the energy
//! cost of collisions is measured, not imputed. The headline: EF-LoRa's
//! higher reception ratios translate into fewer retries, which widens its
//! measured lifetime advantage over legacy LoRa.

use serde::Serialize;

use ef_lora::{EfLora, LegacyLora, RsLora, Strategy};
use lora_sim::ConfirmedTraffic;

use crate::harness::{paper_config_at, run_deployment, Deployment, Scale};
use crate::output::{f2, f3, print_table, write_json};

/// Devices (the paper's Fig. 8 densest deployment, scaled).
pub const PAPER_DEVICES: usize = 3000;
/// Gateways.
pub const GATEWAYS: usize = 3;

/// One (mode, strategy) cell.
#[derive(Debug, Serialize)]
pub struct Cell {
    /// `unconfirmed` or `confirmed`.
    pub mode: String,
    /// Strategy name.
    pub strategy: String,
    /// Measured minimum EE, bits/mJ.
    pub min_ee: f64,
    /// Measured network lifetime, years (10 % dead, plain energy).
    pub lifetime_years: f64,
    /// Mean PRR (delivery per radio attempt).
    pub mean_prr: f64,
}

/// Runs both traffic modes across the three strategies.
pub fn run(scale: &Scale) -> Vec<Cell> {
    let n = scale.devices(PAPER_DEVICES);
    let legacy = LegacyLora::default();
    let rs = RsLora::default();
    let ef = EfLora::default();
    let strategies: [&dyn Strategy; 3] = [&legacy, &rs, &ef];

    let mut cells = Vec::new();
    for (mode, confirmed) in [
        ("unconfirmed", None),
        ("confirmed", Some(ConfirmedTraffic::default())),
    ] {
        let mut config = paper_config_at(scale);
        config.confirmed = confirmed;
        let outcomes = run_deployment(
            &config,
            Deployment::disc(n, GATEWAYS, 21),
            &strategies,
            scale,
        );
        for o in outcomes {
            cells.push(Cell {
                mode: mode.into(),
                strategy: o.strategy.clone(),
                min_ee: o.min_ee,
                lifetime_years: o.lifetime_years,
                mean_prr: o.mean_prr,
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.mode.clone(),
                c.strategy.clone(),
                f3(c.min_ee),
                f2(c.lifetime_years),
                f3(c.mean_prr),
            ]
        })
        .collect();
    print_table(
        &format!("Extension — confirmed vs unconfirmed traffic, {n} devices / {GATEWAYS} gateways"),
        &["mode", "strategy", "min EE", "lifetime (yr)", "mean PRR"],
        &rows,
    );
    write_json("ext_confirmed_traffic", &cells);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retransmissions_cost_lifetime() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.03;
        let cells = run(&scale);
        assert_eq!(cells.len(), 6);
        for strategy in ["Legacy-LoRa", "RS-LoRa", "EF-LoRa"] {
            let get = |mode: &str| {
                cells
                    .iter()
                    .find(|c| c.mode == mode && c.strategy == strategy)
                    .unwrap()
            };
            // Retries can only add energy, so the plain-energy lifetime
            // cannot grow.
            assert!(
                get("confirmed").lifetime_years <= get("unconfirmed").lifetime_years + 0.02,
                "{strategy}"
            );
        }
    }
}
