//! Extension experiment — LoRaWAN ADR vs. the paper's strategies.
//!
//! The paper's related work (Section V) surveys ADR variants at length but
//! never measures plain network-server ADR against EF-LoRa. This
//! experiment adds that comparison: ADR is link-margin-driven, so it picks
//! sensible *individual* links (tidy power levels) while remaining blind
//! to contention — the same systemic failure as legacy LoRa, softened by
//! its power discipline.

use serde::Serialize;

use ef_lora::{AdrLora, EfLora, LegacyLora, RsLora, Strategy};

use crate::harness::{paper_config_at, run_deployment, Deployment, Scale};
use crate::output::{f2, f3, print_table, write_json};

/// Devices (the paper's Fig. 4 deployment).
pub const PAPER_DEVICES: usize = 3000;
/// Gateways.
pub const GATEWAYS: usize = 3;

/// One strategy's outcome.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Strategy name.
    pub strategy: String,
    /// Measured minimum EE, bits/mJ.
    pub min_ee: f64,
    /// Measured mean EE, bits/mJ.
    pub mean_ee: f64,
    /// Mean PRR.
    pub mean_prr: f64,
    /// ETX network lifetime, years.
    pub etx_lifetime_years: f64,
}

/// Runs the four-way comparison.
pub fn run(scale: &Scale) -> Vec<Row> {
    let n = scale.devices(PAPER_DEVICES);
    let config = paper_config_at(scale);
    let legacy = LegacyLora::default();
    let adr = AdrLora::default();
    let rs = RsLora::default();
    let ef = EfLora::default();
    let strategies: [&dyn Strategy; 4] = [&legacy, &adr, &rs, &ef];

    let outcomes = run_deployment(
        &config,
        Deployment::disc(n, GATEWAYS, 23),
        &strategies,
        scale,
    );
    let rows: Vec<Row> = outcomes
        .into_iter()
        .map(|o| Row {
            strategy: o.strategy,
            min_ee: o.min_ee,
            mean_ee: o.mean_ee,
            mean_prr: o.mean_prr,
            etx_lifetime_years: o.etx_lifetime_years,
        })
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                f3(r.min_ee),
                f3(r.mean_ee),
                f3(r.mean_prr),
                f2(r.etx_lifetime_years),
            ]
        })
        .collect();
    print_table(
        &format!("Extension — ADR comparison, {n} devices / {GATEWAYS} gateways"),
        &[
            "strategy",
            "min EE",
            "mean EE",
            "mean PRR",
            "ETX lifetime (yr)",
        ],
        &table,
    );
    write_json("ext_adr", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ef_lora_beats_adr_on_the_fairness_floor() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.04;
        let rows = run(&scale);
        assert_eq!(rows.len(), 4);
        let get = |name: &str| rows.iter().find(|r| r.strategy == name).unwrap();
        // ADR is a per-link optimiser: its floor cannot beat the
        // network-wide max-min allocator's.
        assert!(
            get("EF-LoRa").min_ee >= get("ADR").min_ee - 0.02,
            "EF {} vs ADR {}",
            get("EF-LoRa").min_ee,
            get("ADR").min_ee
        );
        for r in &rows {
            assert!(r.min_ee >= 0.0 && r.min_ee.is_finite());
            assert!((0.0..=1.0).contains(&r.mean_prr));
        }
    }
}
