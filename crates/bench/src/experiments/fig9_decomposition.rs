//! Paper Fig. 9 — performance decomposition: sensitivity to the path-loss
//! exponent β and the transmission-power-allocation ablation
//! (EF-LoRa-14dBm), at 3000 devices / 3 gateways.

use serde::Serialize;

use ef_lora::{EfLora, EfLoraFixedTp, LegacyLora, RsLora, Strategy};
use lora_phy::path_loss::BetaProfile;

use crate::harness::{paper_config_at, run_deployment, Deployment, Scale};
use crate::output::{f3, print_table, write_json};

/// Devices in Fig. 9.
pub const PAPER_DEVICES: usize = 3000;
/// Gateways in Fig. 9.
pub const GATEWAYS: usize = 3;

/// One Fig. 9 bar.
#[derive(Debug, Serialize)]
pub struct Bar {
    /// Configuration label.
    pub label: String,
    /// Measured minimum EE, bits/mJ.
    pub min_ee: f64,
    /// Model-predicted minimum EE for the same allocation (deterministic;
    /// used by the smoke-scale shape tests).
    pub model_min_ee: f64,
}

/// Runs the decomposition and prints the bars.
pub fn run(scale: &Scale) -> Vec<Bar> {
    let n = scale.devices(PAPER_DEVICES);
    let deployment = Deployment::disc(n, GATEWAYS, 12);
    let mut bars = Vec::new();

    // β sensitivity: base (2.7/4.0), less (2.4/3.7), more (3.0/4.3).
    let profiles = [
        ("EF-LoRa β base (2.7/4.0)", BetaProfile::PAPER_BASE),
        ("EF-LoRa β less (2.4/3.7)", BetaProfile::PAPER_LESS),
        ("EF-LoRa β more (3.0/4.3)", BetaProfile::PAPER_MORE),
    ];
    let ef = EfLora::default();
    for (label, profile) in profiles {
        let mut config = paper_config_at(scale);
        config.betas = profile;
        let outcomes = run_deployment(&config, deployment, &[&ef as &dyn Strategy], scale);
        bars.push(Bar {
            label: label.into(),
            min_ee: outcomes[0].min_ee,
            model_min_ee: outcomes[0].model_min_ee,
        });
    }

    // TP ablation + baselines at the base profile.
    let config = paper_config_at(scale);
    let fixed = EfLoraFixedTp::default();
    let legacy = LegacyLora::default();
    let rs = RsLora::default();
    let others: [&dyn Strategy; 3] = [&fixed, &legacy, &rs];
    for outcome in run_deployment(&config, deployment, &others, scale) {
        bars.push(Bar {
            label: outcome.strategy.clone(),
            min_ee: outcome.min_ee,
            model_min_ee: outcome.model_min_ee,
        });
    }

    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| vec![b.label.clone(), f3(b.min_ee), f3(b.model_min_ee)])
        .collect();
    print_table(
        &format!("Fig. 9 — decomposition, {n} devices / {GATEWAYS} gateways (min EE, bits/mJ)"),
        &["configuration", "min EE (measured)", "min EE (model)"],
        &rows,
    );
    write_json("fig9_decomposition", &bars);
    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_ablation_and_sensitivity_shapes() {
        let mut scale = Scale::smoke();
        scale.device_factor = 0.04;
        let bars = run(&scale);
        assert_eq!(bars.len(), 6);
        // Measured minima are shot-noise at smoke scale; the shape checks
        // run on the deterministic model predictions.
        let get = |label_prefix: &str| {
            bars.iter()
                .find(|b| b.label.starts_with(label_prefix))
                .unwrap()
                .model_min_ee
        };
        let base = get("EF-LoRa β base");
        // Monotone in the exponent: less path loss raises the floor, more
        // lowers it. (The paper reports only −25 %/−3 % swings on its
        // testbed-calibrated channel; our log-distance calibration is more
        // β-sensitive at the 5 km disc edge — see EXPERIMENTS.md.)
        let less = get("EF-LoRa β less");
        let more = get("EF-LoRa β more");
        assert!(less > base, "less path loss must help: {less} vs {base}");
        assert!(more < base, "more path loss must hurt: {more} vs {base}");
        assert!(more > 0.0, "the β-more network must remain operable");
        // Even the fixed-TP ablation still beats legacy LoRa (paper: +71 %).
        assert!(get("EF-LoRa-14dBm") >= get("Legacy-LoRa") - 0.02);
    }
}
