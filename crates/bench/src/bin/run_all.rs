//! Runs every table and figure of the paper in sequence and prints the
//! headline comparisons.
use ef_lora_bench::experiments::*;
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());

    table1_sf_motivation::run();
    table2_tp_motivation::run();
    fig4_ee_per_device::run(&scale);
    fig5_ee_cdf::run(&scale);
    let fig6 = fig6_min_ee_vs_devices::run(&scale);
    fig7_min_ee_vs_gateways::run(&scale);
    let fig8 = fig8_network_lifetime::run(&scale);
    fig9_decomposition::run(&scale);
    fig10_convergence::run(&scale);
    model_validation::run(&scale);
    ext_inter_sf::run(&scale);
    ext_heterogeneous_rates::run(&scale);
    ext_incremental::run(&scale);
    ext_confirmed_traffic::run(&scale);
    ext_adr::run(&scale);
    resilience::run(&scale);

    // Headline numbers (paper: +177.8 % fairness vs. state of the art at
    // 3 GW / 3000 ED; +64 % lifetime vs. legacy).
    let headline = fig6
        .iter()
        .map(|p| {
            let get = |name: &str| p.min_ee.iter().find(|(s, _)| s == name).unwrap().1;
            ef_lora::fairness::improvement_percent(
                get("EF-LoRa"),
                get("RS-LoRa").max(get("Legacy-LoRa")),
            )
        })
        .collect::<Vec<_>>();
    let avg = headline.iter().sum::<f64>() / headline.len() as f64;
    let lifetime_gain = fig8
        .iter()
        .map(|p| {
            let get = |name: &str| {
                p.etx_lifetime_years.iter().find(|(s, _)| s == name).unwrap().1
            };
            ef_lora::fairness::improvement_percent(get("EF-LoRa"), get("Legacy-LoRa"))
        })
        .sum::<f64>()
        / fig8.len() as f64;
    println!("\n== Headline ==");
    println!("mean min-EE improvement over the best baseline across Fig. 6: {avg:+.1}% (paper: +177.8% at 3GW/3000ED)");
    println!("mean ETX lifetime improvement over legacy LoRa across Fig. 8: {lifetime_gain:+.1}% (paper: +41.5%; +64% in the ICDCS version)");
}
