//! Runs every table and figure of the paper in sequence and prints the
//! headline comparisons.
//!
//! The experiment list comes from [`ef_lora_bench::registry`] — the same
//! single source of truth CI consumes — and the headline numbers are
//! computed from the JSON records each experiment archives under
//! `target/experiments/`.

use ef_lora_bench::output::read_json;
use ef_lora_bench::registry::EXPERIMENTS;
use ef_lora_bench::Scale;
use serde::Value;

/// Pulls `value` out of a `[["name", value], …]` pair list at `field`.
fn strategy_value(point: &Value, field: &str, name: &str) -> Option<f64> {
    let (_, pairs) = point.as_object()?.iter().find(|(k, _)| k == field)?;
    pairs.as_array()?.iter().find_map(|pair| {
        let pair = pair.as_array()?;
        match pair.first()? {
            Value::Str(s) if s == name => pair.get(1)?.as_f64(),
            _ => None,
        }
    })
}

/// Mean percentage improvement of EF-LoRa over `baseline_of` across every
/// archived point of `record` at `field`.
fn mean_improvement(
    record: &Value,
    field: &str,
    baseline_of: impl Fn(&Value) -> Option<f64>,
) -> Option<f64> {
    let points = record.as_array()?;
    let gains: Vec<f64> = points
        .iter()
        .filter_map(|p| {
            let ef = strategy_value(p, field, "EF-LoRa")?;
            let base = baseline_of(p)?;
            Some(ef_lora::fairness::improvement_percent(ef, base))
        })
        .collect();
    if gains.is_empty() {
        return None;
    }
    Some(gains.iter().sum::<f64>() / gains.len() as f64)
}

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());

    for experiment in EXPERIMENTS {
        (experiment.run)(&scale);
    }

    // Headline numbers (paper: +177.8 % fairness vs. state of the art at
    // 3 GW / 3000 ED; +64 % lifetime vs. legacy), recomputed from the
    // archived records.
    let fairness = read_json("fig6_min_ee_vs_devices").and_then(|record| {
        mean_improvement(&record, "min_ee", |p| {
            let rs = strategy_value(p, "min_ee", "RS-LoRa")?;
            let legacy = strategy_value(p, "min_ee", "Legacy-LoRa")?;
            Some(rs.max(legacy))
        })
    });
    let lifetime = read_json("fig8_network_lifetime").and_then(|record| {
        mean_improvement(&record, "etx_lifetime_years", |p| {
            strategy_value(p, "etx_lifetime_years", "Legacy-LoRa")
        })
    });

    println!("\n== Headline ==");
    match fairness {
        Some(avg) => println!(
            "mean min-EE improvement over the best baseline across Fig. 6: {avg:+.1}% (paper: +177.8% at 3GW/3000ED)"
        ),
        None => println!("fig6 record unavailable; no fairness headline"),
    }
    match lifetime {
        Some(gain) => println!(
            "mean ETX lifetime improvement over legacy LoRa across Fig. 8: {gain:+.1}% (paper: +41.5%; +64% in the ICDCS version)"
        ),
        None => println!("fig8 record unavailable; no lifetime headline"),
    }
}
