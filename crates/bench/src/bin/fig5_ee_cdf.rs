//! Regenerates the paper's fig5 experiment.
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::fig5_ee_cdf::run(&scale);
}
