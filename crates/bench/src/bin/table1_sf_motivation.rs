//! Regenerates paper Table I.
fn main() {
    ef_lora_bench::experiments::table1_sf_motivation::run();
}
