//! Regenerates the paper's fig4 experiment.
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::fig4_ee_per_device::run(&scale);
}
