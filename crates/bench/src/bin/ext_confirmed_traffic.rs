//! Runs the confirmed-traffic extension experiment.
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::ext_confirmed_traffic::run(&scale);
}
