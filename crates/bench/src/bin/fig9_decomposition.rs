//! Regenerates the paper's fig9 experiment.
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::fig9_decomposition::run(&scale);
}
