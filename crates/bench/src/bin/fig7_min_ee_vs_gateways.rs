//! Regenerates the paper's fig7 experiment.
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::fig7_min_ee_vs_gateways::run(&scale);
}
