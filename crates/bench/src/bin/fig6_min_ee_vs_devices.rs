//! Regenerates the paper's fig6 experiment.
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::fig6_min_ee_vs_devices::run(&scale);
}
