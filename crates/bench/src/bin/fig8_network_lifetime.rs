//! Regenerates the paper's fig8 experiment.
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::fig8_network_lifetime::run(&scale);
}
