//! Hot-path performance harness: runs the fixed workload matrix and
//! writes a machine-readable `BENCH_PERF.json`, optionally gating against
//! the checked-in baseline.
//!
//! ```text
//! perf [--output PATH] [--baseline PATH] [--tolerance FRAC] [--reps N]
//! ```
//!
//! * `--output` — where the report lands (default `BENCH_PERF.json`).
//! * `--baseline` — baseline to gate against (default
//!   `tests/golden/perf_baseline.json`; gating is skipped when the file
//!   does not exist).
//! * `--tolerance` — fractional regression tolerance (default 0.25).
//! * `--reps` — repetitions per workload (default 5).
//!
//! `EF_LORA_UPDATE_GOLDEN=1` rewrites the baseline from this run instead
//! of gating. Exits non-zero when any workload regresses.

use std::path::PathBuf;
use std::process::ExitCode;

use ef_lora_bench::experiments::ext_scale;
use ef_lora_bench::output::{f2, print_table};
use ef_lora_bench::perf::{
    baseline_path, compare, run_workloads, to_json, PerfReport, DEFAULT_OUTPUT, DEFAULT_REPS,
    DEFAULT_TOLERANCE, UPDATE_ENV,
};
use ef_lora_bench::Scale;

struct Args {
    output: PathBuf,
    baseline: PathBuf,
    tolerance: f64,
    reps: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        output: PathBuf::from(DEFAULT_OUTPUT),
        baseline: baseline_path(),
        tolerance: DEFAULT_TOLERANCE,
        reps: DEFAULT_REPS,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--output" => args.output = PathBuf::from(value("--output")?),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--tolerance" => {
                let raw = value("--tolerance")?;
                args.tolerance = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("--tolerance {raw:?} is not a non-negative number"))?;
            }
            "--reps" => {
                let raw = value("--reps")?;
                args.reps = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|r| *r > 0)
                    .ok_or_else(|| format!("--reps {raw:?} is not a positive integer"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn print_report(report: &PerfReport) {
    let rows: Vec<Vec<String>> = report
        .workloads
        .iter()
        .map(|w| {
            vec![
                w.id.clone(),
                w.threads.to_string(),
                w.events.to_string(),
                format!("{:.3}", w.median_ms),
                format!("{:.3}", w.p95_ms),
                f2(w.events_per_sec),
            ]
        })
        .collect();
    print_table(
        &format!("perf matrix (scale={}, reps={})", report.scale, report.reps),
        &[
            "workload",
            "threads",
            "events",
            "median ms",
            "p95 ms",
            "events/s",
        ],
        &rows,
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let scale = Scale::from_env();
    println!("{}", scale.banner());
    let mut report = run_workloads(&scale, args.reps);
    // The sharded-allocator scaling curve rides along in the same
    // report, so BENCH_PERF.json carries the scale-out rows next to the
    // hot-path ones. Regression-gating of these rows happens in the
    // `ext_scale` binary against `tests/golden/scale_baseline.json`
    // (machine-probe-normalised); here they are data, not a gate — the
    // hot-path baseline predates them, and new rows pass `compare`
    // silently.
    report.workloads.extend(ext_scale::run(&scale).workloads);
    print_report(&report);

    if let Err(e) = std::fs::write(&args.output, to_json(&report)) {
        eprintln!("error: cannot write {}: {e}", args.output.display());
        return ExitCode::FAILURE;
    }
    println!("[wrote {}]", args.output.display());

    if std::env::var(UPDATE_ENV).as_deref() == Ok("1") {
        if let Err(e) = std::fs::write(&args.baseline, to_json(&report)) {
            eprintln!("error: cannot write {}: {e}", args.baseline.display());
            return ExitCode::FAILURE;
        }
        println!("[updated baseline {}]", args.baseline.display());
        return ExitCode::SUCCESS;
    }

    let baseline_body = match std::fs::read_to_string(&args.baseline) {
        Ok(body) => body,
        Err(_) => {
            println!(
                "no baseline at {}; skipping the regression gate (set {UPDATE_ENV}=1 to create it)",
                args.baseline.display()
            );
            return ExitCode::SUCCESS;
        }
    };
    let baseline: PerfReport = match serde_json::from_str(&baseline_body) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "error: {} is not a perf report: {e}",
                args.baseline.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let issues = compare(&report, &baseline, args.tolerance);
    if issues.is_empty() {
        println!(
            "perf gate: OK ({} workloads within {:.0}% of {})",
            baseline.workloads.len(),
            args.tolerance * 100.0,
            args.baseline.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perf gate: {} regression(s) beyond {:.0}%:",
            issues.len(),
            args.tolerance * 100.0
        );
        for issue in &issues {
            eprintln!("  {issue}");
        }
        eprintln!("(rerun with {UPDATE_ENV}=1 to accept the new baseline)");
        ExitCode::FAILURE
    }
}
