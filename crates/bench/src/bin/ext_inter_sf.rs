//! Runs the ext_inter_sf extension experiment (paper Section III-E).
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::ext_inter_sf::run(&scale);
}
