//! Runs the resilience experiment: min EE and fairness vs gateway
//! failure rate under Static / Reactive / Oracle recovery.
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::resilience::run(&scale);
}
