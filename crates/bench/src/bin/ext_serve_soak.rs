//! Runs the ext_serve_soak extension experiment (daemon soak test) and
//! gates the result against `tests/golden/serve_perf_baseline.json`
//! (`EF_LORA_UPDATE_GOLDEN=1` rewrites the baseline).
use ef_lora_bench::experiments::ext_serve_soak;
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    let perf = ext_serve_soak::run(&scale);
    if let Err(issues) = ext_serve_soak::gate(&perf) {
        eprintln!("ext_serve_soak: performance regression gate failed:");
        for issue in issues {
            eprintln!("  {issue}");
        }
        std::process::exit(1);
    }
}
