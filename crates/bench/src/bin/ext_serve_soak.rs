//! Runs the ext_serve_soak extension experiment (daemon soak test).
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::ext_serve_soak::run(&scale);
}
