//! Regenerates paper Table II.
fn main() {
    ef_lora_bench::experiments::table2_tp_motivation::run();
}
