//! Runs the ext_scale extension experiment (cell-sharded allocator
//! scaling curve) and gates the result against
//! `tests/golden/scale_baseline.json` (`EF_LORA_UPDATE_GOLDEN=1`
//! rewrites the baseline).
use ef_lora_bench::experiments::ext_scale;
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    let perf = ext_scale::run(&scale);
    if let Err(issues) = ext_scale::gate(&perf) {
        eprintln!("ext_scale: performance regression gate failed:");
        for issue in issues {
            eprintln!("  {issue}");
        }
        std::process::exit(1);
    }
}
