//! Runs the model-vs-simulator validation experiment.
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::model_validation::run(&scale);
}
