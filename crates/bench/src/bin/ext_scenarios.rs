//! Runs the ext_scenarios extension experiment (scenario-catalog sweep).
use ef_lora_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.banner());
    ef_lora_bench::experiments::ext_scenarios::run(&scale);
}
