//! Shared experiment pipeline: deploy → allocate → simulate → aggregate.
//!
//! The paper repeats every parameter set 100 times on NS-3 and reports
//! averages; this harness does the same with a configurable repetition
//! count (the topology stays fixed per deployment seed; repetitions vary
//! the channel/traffic randomness, mirroring the paper's methodology).

use serde::Serialize;

use ef_lora::{AllocationContext, Strategy};
use lora_model::NetworkModel;
use lora_sim::metrics::{jain_index, mean, minimum, percentile};
use lora_sim::{SimConfig, Simulation, Topology, Traffic};

/// Which scale preset is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleKind {
    /// Seconds-long runs for CI and tests.
    Smoke,
    /// The default: paper shapes at ~1/5 population, minutes per figure.
    Small,
    /// The paper's full deployments (3000–5000 devices, up to 25 gateways).
    Paper,
}

/// Experiment sizing knobs derived from `EF_LORA_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// The preset in effect.
    pub kind: ScaleKind,
    /// Simulation repetitions per deployment (the paper uses 100).
    pub reps: u64,
    /// Simulated seconds per repetition.
    pub duration_s: f64,
    /// Multiplier applied to the paper's device counts.
    pub device_factor: f64,
    /// Per-device offered duty cycle. Scaled inversely with the device
    /// factor so the *per-gateway Erlang load* — what actually binds
    /// against the SX1301's eight demodulators — matches across presets:
    /// at full population a 1 % duty would offer 30 concurrent
    /// transmissions to 24 demodulator-servers and flatline every
    /// strategy at θ ≈ 0.
    pub duty: f64,
    /// Worker threads for the replication fan-out (`EF_LORA_THREADS`).
    /// Results are byte-identical for every value — per-repetition seeds
    /// are derived up front and repetitions reduce in index order — so
    /// this is purely a wall-clock knob. `1` reproduces the historical
    /// serial loop exactly.
    pub threads: usize,
}

/// Parses an `EF_LORA_REPS`-style value: a positive integer. Zero is
/// rejected explicitly — every aggregate divides by the repetition count,
/// so `reps = 0` would previously sail through and poison all metrics
/// with a silent divide-by-zero NaN.
///
/// # Errors
///
/// Returns a human-readable message for malformed or zero values.
pub fn parse_reps(raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(0) => Err(format!("EF_LORA_REPS={raw:?} must be at least 1")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("EF_LORA_REPS={raw:?} is not a positive integer")),
    }
}

/// Parses an `EF_LORA_DURATION`-style value: a finite number of simulated
/// seconds, strictly positive.
///
/// # Errors
///
/// Returns a human-readable message for malformed or non-positive values.
pub fn parse_duration(raw: &str) -> Result<f64, String> {
    match raw.trim().parse::<f64>() {
        Ok(d) if d.is_finite() && d > 0.0 => Ok(d),
        Ok(_) => Err(format!(
            "EF_LORA_DURATION={raw:?} must be a positive, finite number"
        )),
        Err(_) => Err(format!("EF_LORA_DURATION={raw:?} is not a number")),
    }
}

impl Scale {
    /// Reads `EF_LORA_SCALE` (`smoke`/`small`/`paper`), defaulting to
    /// `small`; `EF_LORA_REPS`, `EF_LORA_DURATION` and `EF_LORA_THREADS`
    /// override the preset's repetition count, simulated seconds and
    /// worker count. Malformed overrides are rejected with a warning on
    /// stderr and the preset value is kept — previously they were
    /// silently ignored, and `EF_LORA_REPS=0` was silently *accepted*,
    /// turning every averaged metric into NaN.
    pub fn from_env() -> Scale {
        let mut scale = match std::env::var("EF_LORA_SCALE").as_deref() {
            Ok("smoke") => Scale::smoke(),
            Ok("paper") => Scale::paper(),
            _ => Scale::small(),
        };
        if let Ok(raw) = std::env::var("EF_LORA_REPS") {
            match parse_reps(&raw) {
                Ok(reps) => scale.reps = reps,
                Err(msg) => eprintln!("warning: {msg}; keeping reps={}", scale.reps),
            }
        }
        if let Ok(raw) = std::env::var("EF_LORA_DURATION") {
            match parse_duration(&raw) {
                Ok(duration) => scale.duration_s = duration,
                Err(msg) => {
                    eprintln!("warning: {msg}; keeping duration={}", scale.duration_s);
                }
            }
        }
        scale.threads = lora_parallel::threads_from_env();
        scale
    }

    /// CI-sized preset.
    pub fn smoke() -> Scale {
        Scale {
            kind: ScaleKind::Smoke,
            reps: 1,
            duration_s: 3_000.0,
            device_factor: 0.02,
            duty: 0.01,
            threads: lora_parallel::available_threads(),
        }
    }

    /// Default preset.
    pub fn small() -> Scale {
        Scale {
            kind: ScaleKind::Small,
            reps: 3,
            duration_s: 6_000.0,
            device_factor: 0.2,
            duty: 0.01,
            threads: lora_parallel::available_threads(),
        }
    }

    /// Full paper-sized preset: five times the population at one fifth the
    /// per-device duty, so the Erlang load per gateway matches `small`.
    pub fn paper() -> Scale {
        Scale {
            kind: ScaleKind::Paper,
            reps: 10,
            duration_s: 30_000.0,
            device_factor: 1.0,
            duty: 0.002,
            threads: lora_parallel::available_threads(),
        }
    }

    /// Returns the scale with an explicit worker count (`0` = available
    /// parallelism). Tests use this instead of `EF_LORA_THREADS` to avoid
    /// process-global environment races.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Scale {
        self.threads = if threads == 0 {
            lora_parallel::available_threads()
        } else {
            threads
        };
        self
    }

    /// Scales one of the paper's device counts, keeping at least 10.
    pub fn devices(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.device_factor).round() as usize).max(10)
    }

    /// A banner line describing the preset.
    pub fn banner(&self) -> String {
        format!(
            "scale={:?} (device factor {}, {} repetitions of {} simulated seconds on {} thread(s); set EF_LORA_SCALE=paper for full size)",
            self.kind, self.device_factor, self.reps, self.duration_s, self.threads
        )
    }
}

/// The paper's Section IV configuration: every device offers a fixed duty
/// cycle (`Traffic::DutyCycleTarget`), which puts the network in the
/// contention-dominated regime the paper's figures show. The duty comes
/// from the scale preset so the per-gateway load stays fixed as the
/// population scales (see [`Scale::duty`]).
pub fn paper_config_at(scale: &Scale) -> SimConfig {
    SimConfig {
        traffic: Traffic::DutyCycleTarget { duty: scale.duty },
        ..SimConfig::default()
    }
}

/// [`paper_config_at`] with the ETSI 1 % duty — the `small`-preset regime.
pub fn paper_config() -> SimConfig {
    SimConfig {
        traffic: Traffic::DutyCycleTarget { duty: 0.01 },
        ..SimConfig::default()
    }
}

/// One deployment to run strategies against.
#[derive(Debug, Clone, Copy)]
pub struct Deployment {
    /// Number of end devices.
    pub n_devices: usize,
    /// Number of gateways.
    pub n_gateways: usize,
    /// Disc radius in metres (the paper: 5 km).
    pub radius_m: f64,
    /// Topology seed.
    pub seed: u64,
}

impl Deployment {
    /// The paper's 5 km disc.
    pub fn disc(n_devices: usize, n_gateways: usize, seed: u64) -> Self {
        Deployment {
            n_devices,
            n_gateways,
            radius_m: 5_000.0,
            seed,
        }
    }
}

/// Aggregated outcome of one (deployment, strategy) pair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StrategyOutcome {
    /// Strategy name.
    pub strategy: String,
    /// Minimum per-device EE (bits/mJ), averaged per device across
    /// repetitions first — the paper's energy-fairness metric.
    pub min_ee: f64,
    /// Mean per-device EE, bits/mJ.
    pub mean_ee: f64,
    /// Jain's fairness index over per-device EE.
    pub jain: f64,
    /// Mean packet reception ratio.
    pub mean_prr: f64,
    /// Network lifetime in years (10 % dead) under plain energy
    /// accounting — battery divided by the measured average power draw
    /// (TX + overhead + sleep), the paper's Section IV definition.
    pub lifetime_years: f64,
    /// Network lifetime in years (10 % dead) under ETX accounting
    /// (delivering a packet costs `E_s/PRR`, paper Eq. 2) — punishes
    /// lossy devices that would retransmit.
    pub etx_lifetime_years: f64,
    /// Model-predicted minimum EE for the same allocation (cross-check).
    pub model_min_ee: f64,
    /// Per-device EE averaged across repetitions (for Fig. 4/5).
    pub ee_per_device: Vec<f64>,
}

/// Per-device lifetime in years under the paper's retransmission (ETX)
/// energy accounting: delivering one packet costs `E_s / PRR` (paper
/// Eq. 2), so a device that consumed `energy_j` over `duration_s` of
/// simulated time at reception ratio `PRR` drains its battery after
/// `battery · PRR · duration / energy` seconds. A device that delivered
/// nothing has lifetime 0 (it would retransmit forever). The formulation
/// is interval-agnostic, so it holds for heterogeneous rates and the
/// duty-cycle-target traffic model alike.
pub fn etx_lifetime_years(
    battery_j: f64,
    duration_s: f64,
    attempts: u32,
    delivered: u32,
    energy_j: f64,
) -> f64 {
    if attempts == 0 || energy_j <= 0.0 {
        return 0.0;
    }
    let prr = f64::from(delivered) / f64::from(attempts);
    battery_j * prr * duration_s / energy_j / (365.25 * 24.0 * 3_600.0)
}

/// Per-device metrics from a single simulation repetition, computed on a
/// worker thread and reduced sequentially in repetition order.
struct RepMetrics {
    ee: Vec<f64>,
    prr: Vec<f64>,
    lifetime: Vec<f64>,
    etx: Vec<f64>,
}

/// Runs `strategy` on the deployment: allocate once, simulate `reps`
/// times with distinct seeds, average per device.
///
/// Repetitions fan out across `scale.threads` workers. Determinism is
/// preserved by construction: each repetition's simulator seed is derived
/// from the master seed and the repetition index *before* any work is
/// scheduled, and per-device accumulators fold the repetition results in
/// strict index order — so float addition happens in the same order the
/// old serial loop used, and results are byte-identical for any worker
/// count.
pub fn run_strategy(
    config: &SimConfig,
    topology: &Topology,
    model: &NetworkModel,
    strategy: &dyn Strategy,
    scale: &Scale,
) -> StrategyOutcome {
    let ctx = AllocationContext::new(config, topology, model);
    let alloc = strategy.allocate(&ctx).expect("allocation must succeed");
    let model_ee = model.evaluate(alloc.as_slice());

    let n = topology.device_count();
    let year = 365.25 * 24.0 * 3_600.0;
    // One simulator seed per repetition, all derived up front from the
    // master seed (same formula the serial loop used).
    let rep_seeds: Vec<u64> = (0..scale.reps)
        .map(|rep| config.seed ^ (rep.wrapping_mul(0x9e37_79b9) + 1))
        .collect();

    let simulate_rep = |rep: usize| -> RepMetrics {
        let mut cfg = config.clone();
        cfg.seed = rep_seeds[rep];
        cfg.duration_s = scale.duration_s;
        // Reuse the model's attenuation matrix instead of rebuilding the
        // O(devices × gateways) path-loss grid every repetition; the
        // matrix is a pure function of (config, topology), both fixed
        // across repetitions, so the simulation output is byte-identical.
        let sim = Simulation::with_attenuation(
            cfg,
            topology.clone(),
            alloc.as_slice().to_vec(),
            model.shared_attenuation().clone(),
        )
        .expect("validated allocation");
        let report = sim.run();
        let mut m = RepMetrics {
            ee: Vec::with_capacity(n),
            prr: Vec::with_capacity(n),
            lifetime: Vec::with_capacity(n),
            etx: Vec::with_capacity(n),
        };
        for d in &report.devices {
            m.ee.push(d.ee_bits_per_mj);
            m.prr.push(d.prr());
            m.lifetime.push(if d.energy_j > 0.0 {
                config.battery.capacity_j() * scale.duration_s / d.energy_j / year
            } else {
                0.0
            });
            m.etx.push(etx_lifetime_years(
                config.battery.capacity_j(),
                scale.duration_s,
                d.attempts,
                d.delivered,
                d.energy_j,
            ));
        }
        m
    };

    let mut ee_acc = vec![0.0f64; n];
    let mut prr_acc = vec![0.0f64; n];
    let mut lifetime_acc = vec![0.0f64; n];
    let mut etx_acc = vec![0.0f64; n];
    let rep_count = usize::try_from(scale.reps).expect("repetition count fits in usize");
    for m in lora_parallel::par_map_indexed(rep_count, scale.threads, simulate_rep) {
        for i in 0..n {
            ee_acc[i] += m.ee[i];
            prr_acc[i] += m.prr[i];
            lifetime_acc[i] += m.lifetime[i];
            etx_acc[i] += m.etx[i];
        }
    }
    let reps = scale.reps as f64;
    for v in ee_acc
        .iter_mut()
        .chain(&mut prr_acc)
        .chain(&mut lifetime_acc)
        .chain(&mut etx_acc)
    {
        *v /= reps;
    }

    StrategyOutcome {
        strategy: strategy.name().to_string(),
        min_ee: minimum(&ee_acc),
        mean_ee: mean(&ee_acc),
        jain: jain_index(&ee_acc),
        mean_prr: mean(&prr_acc),
        lifetime_years: percentile(&lifetime_acc, 10.0),
        etx_lifetime_years: percentile(&etx_acc, 10.0),
        model_min_ee: minimum(&model_ee),
        ee_per_device: ee_acc,
    }
}

/// Runs a set of strategies on one deployment.
pub fn run_deployment(
    config: &SimConfig,
    deployment: Deployment,
    strategies: &[&dyn Strategy],
    scale: &Scale,
) -> Vec<StrategyOutcome> {
    let topology = Topology::disc(
        deployment.n_devices,
        deployment.n_gateways,
        deployment.radius_m,
        config,
        deployment.seed,
    );
    let model = NetworkModel::new(config, &topology);
    strategies
        .iter()
        .map(|s| run_strategy(config, &topology, &model, *s, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_lora::LegacyLora;

    #[test]
    fn scale_presets_differ() {
        assert!(Scale::smoke().devices(3000) < Scale::small().devices(3000));
        assert_eq!(Scale::paper().devices(3000), 3000);
        assert_eq!(Scale::smoke().devices(100), 10, "floor of 10 devices");
    }

    #[test]
    fn etx_lifetime_edge_cases() {
        assert_eq!(etx_lifetime_years(1000.0, 6000.0, 0, 0, 0.0), 0.0);
        assert_eq!(etx_lifetime_years(1000.0, 6000.0, 10, 0, 1.0), 0.0);
        let full = etx_lifetime_years(28_512.0, 6000.0, 10, 10, 0.7);
        let half = etx_lifetime_years(28_512.0, 6000.0, 10, 5, 0.7);
        assert!((full / half - 2.0).abs() < 1e-9, "lifetime scales with PRR");
        // Burning energy twice as fast halves the lifetime.
        let hot = etx_lifetime_years(28_512.0, 6000.0, 10, 10, 1.4);
        assert!((full / hot - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_config_uses_duty_target() {
        assert_eq!(
            paper_config().traffic,
            Traffic::DutyCycleTarget { duty: 0.01 }
        );
        let paper = paper_config_at(&Scale::paper());
        assert_eq!(paper.traffic, Traffic::DutyCycleTarget { duty: 0.002 });
        // Constant Erlang load: duty × device-factor is preset-invariant.
        for s in [Scale::small(), Scale::paper()] {
            let load = s.duty * s.device_factor * 3_000.0;
            assert!((load - 6.0).abs() < 1e-9, "{load}");
        }
    }

    #[test]
    fn env_override_parsers_reject_garbage() {
        assert_eq!(parse_reps("7"), Ok(7));
        assert_eq!(parse_reps(" 100 "), Ok(100));
        assert!(
            parse_reps("0").is_err(),
            "reps=0 would divide every metric by zero"
        );
        assert!(parse_reps("-3").is_err());
        assert!(parse_reps("three").is_err());
        assert!(parse_reps("").is_err());

        assert_eq!(parse_duration("6000"), Ok(6000.0));
        assert_eq!(parse_duration("1.5e3"), Ok(1500.0));
        assert!(parse_duration("0").is_err());
        assert!(parse_duration("-10").is_err());
        assert!(parse_duration("inf").is_err());
        assert!(parse_duration("NaN").is_err());
        assert!(parse_duration("long").is_err());
    }

    #[test]
    fn with_threads_zero_means_available_parallelism() {
        let scale = Scale::smoke().with_threads(0);
        assert_eq!(scale.threads, lora_parallel::available_threads());
        assert_eq!(Scale::smoke().with_threads(5).threads, 5);
    }

    #[test]
    fn replication_fanout_is_thread_invariant() {
        // Satellite (d): the same deployment and master seed must produce
        // identical StrategyOutcome aggregates — and identical EF-LoRa
        // allocations — whether the repetitions run on 1 worker or 4.
        use ef_lora::{AllocationContext, EfLora};
        use lora_model::NetworkModel;

        let config = paper_config();
        let mut scale = Scale::smoke().with_threads(1);
        scale.reps = 4;
        let deployment = Deployment::disc(24, 2, 11);
        let topology = Topology::disc(
            deployment.n_devices,
            deployment.n_gateways,
            deployment.radius_m,
            &config,
            deployment.seed,
        );
        let model = NetworkModel::new(&config, &topology);
        let ctx = AllocationContext::new(&config, &topology, &model);

        let alloc_serial = EfLora::default()
            .with_threads(1)
            .allocate(&ctx)
            .expect("allocates");
        let alloc_parallel = EfLora::default()
            .with_threads(4)
            .allocate(&ctx)
            .expect("allocates");
        assert_eq!(
            alloc_serial.as_slice(),
            alloc_parallel.as_slice(),
            "EF-LoRa allocation must not depend on the scan worker count"
        );

        let ef = EfLora::default();
        let serial = run_strategy(&config, &topology, &model, &ef, &scale);
        for threads in [2usize, 4] {
            let outcome = run_strategy(
                &config,
                &topology,
                &model,
                &ef,
                &scale.with_threads(threads),
            );
            assert_eq!(serial, outcome, "threads={threads}");
        }
    }

    #[test]
    fn shared_attenuation_reuse_is_byte_identical() {
        // The per-repetition matrix reuse in `run_strategy` is only sound
        // if a simulation built from the model's shared matrix reports
        // exactly what a from-scratch construction reports.
        let config = paper_config();
        let topology = Topology::disc(24, 2, 5_000.0, &config, 11);
        let model = NetworkModel::new(&config, &topology);
        let alloc = vec![lora_phy::TxConfig::default(); 24];
        let fresh = Simulation::new(config.clone(), topology.clone(), alloc.clone())
            .expect("builds")
            .run();
        let shared = Simulation::with_attenuation(
            config,
            topology,
            alloc,
            model.shared_attenuation().clone(),
        )
        .expect("builds")
        .run();
        assert_eq!(fresh, shared);
    }

    #[test]
    fn with_attenuation_rejects_mismatched_shape() {
        let config = paper_config();
        let topology = Topology::disc(24, 2, 5_000.0, &config, 11);
        let other = Topology::disc(10, 1, 5_000.0, &config, 11);
        let wrong = lora_sim::attenuation_matrix(&config, &other);
        let alloc = vec![lora_phy::TxConfig::default(); 24];
        assert!(Simulation::with_attenuation(config, topology, alloc, wrong).is_err());
    }

    #[test]
    fn run_deployment_produces_outcomes() {
        let config = SimConfig::default();
        let scale = Scale::smoke();
        let legacy = LegacyLora::default();
        let outcomes = run_deployment(
            &config,
            Deployment::disc(20, 2, 3),
            &[&legacy as &dyn Strategy],
            &scale,
        );
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert_eq!(o.ee_per_device.len(), 20);
        assert!(o.min_ee >= 0.0 && o.mean_ee >= o.min_ee);
        assert!((0.0..=1.0).contains(&o.jain));
        assert!((0.0..=1.0).contains(&o.mean_prr));
    }
}
