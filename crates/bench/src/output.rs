//! Table printing and JSON archiving for experiment results.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Prints a fixed-width table with a title, header row and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<&str>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.to_vec());
    let separators: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(separators.iter().map(String::as_str).collect());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

/// Directory where experiment JSON records land.
pub fn experiments_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(base).join("experiments")
}

/// Archives a serialisable record as `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = experiments_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[archived {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

/// Reads back an archived record from `target/experiments/<name>.json`,
/// or `None` when it is missing or malformed.
pub fn read_json(name: &str) -> Option<serde::Value> {
    let path = experiments_dir().join(format!("{name}.json"));
    let body = fs::read_to_string(path).ok()?;
    serde_json::from_str(&body).ok()
}

/// Formats a float with 3 decimals (the precision the paper plots at).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
    }

    #[test]
    fn json_roundtrip_via_disk() {
        #[derive(Serialize)]
        struct R {
            x: f64,
        }
        write_json("unit_test_record", &R { x: 1.5 });
        let path = experiments_dir().join("unit_test_record.json");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("1.5"));
        let back = read_json("unit_test_record").expect("archived record reads back");
        let entries = back.as_object().expect("object record");
        assert_eq!(entries[0].0, "x");
        assert_eq!(entries[0].1.as_f64(), Some(1.5));
        assert!(read_json("no_such_record").is_none());
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333333".into(), "4".into()],
            ],
        );
    }
}
