//! The conformance suite: runs the smoke matrix through all three
//! oracles once (shared across tests), then checks gating, determinism,
//! golden snapshots and the negative path.
//!
//! Refresh the pinned snapshots with
//! `EF_LORA_UPDATE_GOLDEN=1 cargo test -p conformance`.

use std::sync::OnceLock;

use conformance::oracle::simulator_oracle;
use conformance::{golden, ConformanceReport, Profile, ScenarioRecord, Tolerances};

/// The smoke-matrix oracle records, computed once on 4 workers and shared
/// by every test in this binary (the matrix is the expensive part; gating
/// and serialization are cheap).
fn records() -> &'static [ScenarioRecord] {
    static RECORDS: OnceLock<Vec<ScenarioRecord>> = OnceLock::new();
    RECORDS.get_or_init(|| conformance::run_matrix_records(Profile::Smoke, 4))
}

#[test]
fn smoke_matrix_passes_default_gates() {
    let report = ConformanceReport::gate("smoke", records().to_vec(), Tolerances::default());
    assert!(
        report.passed,
        "default gates must hold on the smoke matrix:\n{:#?}",
        report.violations
    );
    assert_eq!(report.scenarios.len(), 19);
    assert!(report.summary().contains("PASS"));
    // Every simulated repetition satisfied the hard accounting invariants.
    for r in &report.scenarios {
        for s in &r.strategies {
            assert!(
                s.invariant_violations.is_empty(),
                "{} / {}: {:?}",
                r.scenario.id,
                s.strategy,
                s.invariant_violations
            );
        }
    }
    // Every enumerable instance ran the exhaustive oracle.
    assert_eq!(
        report
            .scenarios
            .iter()
            .filter(|r| r.exhaustive.is_some())
            .count(),
        3
    );
}

#[test]
fn report_json_is_run_and_thread_invariant() {
    // The shared records ran on 4 workers; a fresh single-worker pass of
    // the identical matrix must produce byte-identical JSON — the
    // determinism contract behind the golden snapshot.
    let serial = conformance::run_matrix_records(Profile::Smoke, 1);
    let a = ConformanceReport::gate("smoke", records().to_vec(), Tolerances::default());
    let b = ConformanceReport::gate("smoke", serial, Tolerances::default());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn perturbed_tolerances_fail_loudly() {
    // The engine's negative path: an impossible rank-correlation bar must
    // trip every agreement-gated pair, and an optimality demand above the
    // enumerated optimum must trip every exhaustive instance. A gate
    // engine that cannot fail protects nothing.
    let tol = Tolerances {
        min_spearman: 1.5, // Spearman ρ ≤ 1 by construction
        min_greedy_fraction: 2.0,
        ..Tolerances::default()
    };
    let report = ConformanceReport::gate("smoke", records().to_vec(), tol);
    assert!(!report.passed);
    assert!(report.summary().contains("FAIL"));
    let gated_pairs: usize = records()
        .iter()
        .filter(|r| r.scenario.agreement_gated)
        .map(|r| r.strategies.len())
        .sum();
    let spearman_hits = report
        .violations
        .iter()
        .filter(|v| v.gate == "spearman")
        .count();
    assert_eq!(
        spearman_hits, gated_pairs,
        "one spearman violation per gated pair"
    );
    let exhaustive_hits = report
        .violations
        .iter()
        .filter(|v| v.gate == "exhaustive")
        .count();
    assert_eq!(
        exhaustive_hits, 3,
        "one optimality violation per enumerable instance"
    );
}

#[test]
fn smoke_report_matches_golden_snapshot() {
    let report = ConformanceReport::gate("smoke", records().to_vec(), Tolerances::default());
    golden::check_or_update("conformance_smoke", &report.to_json())
        .unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn table1_sf_motivation_matches_golden_snapshot() {
    // Regression-pins the Table-I motivation numbers (expected per-device
    // transmission times) the paper's argument opens with.
    let results: Vec<ef_lora_bench::motivation::ScenarioResult> =
        ef_lora_bench::motivation::table1_scenarios()
            .iter()
            .map(ef_lora_bench::motivation::evaluate)
            .collect();
    let json = serde_json::to_string_pretty(&results).expect("results serialize");
    golden::check_or_update("table1_sf_motivation", &json).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn simulator_oracle_agrees_with_bench_harness() {
    // Differential check of the oracle's replication runner against
    // `ef_lora_bench::harness::run_strategy` — the pipeline every figure
    // is produced with. Same config, topology, allocation, repetition
    // count and seed schedule ⇒ identical rep-averaged per-device EE.
    use ef_lora::{EfLora, Strategy};
    use ef_lora_bench::harness::{paper_config_at, Deployment, Scale};
    use lora_model::NetworkModel;
    use lora_sim::Topology;

    let mut scale = Scale::smoke().with_threads(2);
    scale.reps = 3;
    scale.duration_s = 2_400.0;
    let mut config = paper_config_at(&scale);
    config.duration_s = scale.duration_s; // run_strategy overrides it too
    let deployment = Deployment::disc(18, 2, 5);
    let topology = Topology::disc(
        deployment.n_devices,
        deployment.n_gateways,
        deployment.radius_m,
        &config,
        deployment.seed,
    );
    let model = NetworkModel::new(&config, &topology);

    let ef = EfLora::default().with_threads(1);
    let outcome = ef_lora_bench::harness::run_strategy(&config, &topology, &model, &ef, &scale);

    let ctx = ef_lora::AllocationContext::new(&config, &topology, &model);
    let alloc = ef.allocate(&ctx).expect("allocates");
    let (oracle_ee, violations) =
        simulator_oracle(&config, &topology, alloc.as_slice(), scale.reps, 2);

    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(oracle_ee.len(), outcome.ee_per_device.len());
    for (i, (a, b)) in oracle_ee.iter().zip(&outcome.ee_per_device).enumerate() {
        assert!(
            (a - b).abs() <= 1e-12 * b.abs().max(1.0),
            "device {i}: oracle {a} vs harness {b}"
        );
    }
    let oracle_min = oracle_ee.iter().copied().fold(f64::INFINITY, f64::min);
    assert!((oracle_min - outcome.min_ee).abs() <= 1e-12 * outcome.min_ee.abs().max(1.0));
}
