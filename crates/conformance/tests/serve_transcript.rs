//! Golden serve transcript: the daemon's wire behaviour under a
//! 200-device churn-heavy schedule, pinned byte-for-byte.
//!
//! The snapshot was generated against the pre-incremental daemon (every
//! event rebuilt Topology/NetworkModel/AllocationContext from scratch),
//! so any divergence here means the incremental serve-path model state
//! changed an observable response. Refresh only via
//! `EF_LORA_UPDATE_GOLDEN=1`.

use conformance::{golden, serve_equiv};

#[test]
fn serve_transcript_matches_pre_incremental_golden() {
    let body = serve_equiv::serve_transcript();
    golden::check_or_update("serve_incremental", &body).unwrap();
}
