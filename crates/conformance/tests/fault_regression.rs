//! Fault-engine regression guards.
//!
//! The fault-injection engine must be invisible when disabled: a config
//! with no fault processes produces byte-identical JSON reports to the
//! pre-fault-engine simulator. The golden snapshot below was taken from
//! the simulator *before* the fault engine existed and pins that
//! behaviour permanently.

use conformance::golden::check_or_update;
use ef_lora::EfLora;
use ef_lora_bench::harness::{run_strategy, Scale};
use lora_model::NetworkModel;
use lora_phy::{SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::{
    BackhaulLink, FaultConfig, GatewayChurn, JamBurst, SimConfig, Simulation, Topology,
};

/// A deterministic mixed-SF allocation (no `rand` needed).
fn spread_alloc(n: usize) -> Vec<TxConfig> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0xbf58_476d_1ce4_e5b9);
            let sf = SpreadingFactor::from_u8(7 + (h % 6) as u8).unwrap();
            let tp = TxPowerDbm::new(2.0 + 2.0 * ((h >> 8) % 7) as f64);
            TxConfig::new(sf, tp, ((h >> 16) % 8) as usize)
        })
        .collect()
}

/// The reference scenario: nothing fault-related configured.
fn no_fault_report() -> lora_sim::SimReport {
    let config = SimConfig::builder()
        .seed(41)
        .duration_s(3_600.0)
        .report_interval_s(600.0)
        .build();
    let topo = Topology::disc(24, 2, 4_000.0, &config, 41);
    Simulation::new(config, topo, spread_alloc(24))
        .unwrap()
        .run()
}

#[test]
fn disabled_faults_match_pre_fault_engine_output() {
    let report = no_fault_report();
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    check_or_update("no_fault_sim_report", &json).unwrap();
}

#[test]
fn faulted_runs_are_thread_invariant() {
    // Same guarantee `candidate_scan_is_thread_invariant` gives the
    // allocator, extended to the figure pipeline under active faults:
    // the fault processes are compiled from the config seed before any
    // repetition is scheduled, and backhaul verdicts are stateless
    // hashes, so worker count must not move a single byte.
    let mut builder = SimConfig::builder();
    builder
        .seed(29)
        .duration_s(2_400.0)
        .report_interval_s(600.0);
    builder.faults(FaultConfig {
        churn: vec![GatewayChurn {
            gateway: 0,
            mtbf_s: 500.0,
            mttr_s: 300.0,
        }],
        jam_bursts: vec![JamBurst {
            channel: 2,
            from_s: 400.0,
            to_s: 1_600.0,
            power_mw: 1e-6,
        }],
        backhaul: vec![BackhaulLink {
            gateway: 1,
            drop_prob: 0.4,
            latency_s: 0.02,
        }],
        ..FaultConfig::default()
    });
    let config = builder.try_build().unwrap();
    let topo = Topology::disc(20, 2, 4_000.0, &config, 29);
    let model = NetworkModel::new(&config, &topo);

    let mut scale = Scale::smoke();
    scale.reps = 4;
    scale.duration_s = config.duration_s;
    scale.threads = 1;
    let serial = run_strategy(&config, &topo, &model, &EfLora::default(), &scale);
    scale.threads = 4;
    let parallel = run_strategy(&config, &topo, &model, &EfLora::default(), &scale);
    assert_eq!(
        serial, parallel,
        "faulted figure pipeline must be worker-count invariant"
    );
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "byte-identical JSON across worker counts"
    );

    // And the conformance oracle's own fan-out agrees with itself.
    let alloc = spread_alloc(20);
    let (ee1, v1) = conformance::oracle::simulator_oracle(&config, &topo, &alloc, 3, 1);
    let (ee4, v4) = conformance::oracle::simulator_oracle(&config, &topo, &alloc, 3, 4);
    assert_eq!(ee1, ee4);
    assert!(v1.is_empty() && v4.is_empty(), "{v1:?} {v4:?}");
}
