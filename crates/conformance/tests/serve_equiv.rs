//! Differential equivalence battery for the incremental serve path.
//!
//! Every test replays request interleavings through two daemons at once:
//! the live [`ef_lora_serve::ServeState`] (persistent, incrementally
//! maintained model state) and the frozen
//! [`ef_lora_serve::reference::ReferenceState`] oracle (the
//! pre-incremental daemon that rebuilds every model artefact from
//! scratch at the point of use). The wire encodings must match **byte
//! for byte**, and after every event the daemon's cached model must be
//! bitwise equal to a from-scratch `NetworkModel::new` over the live
//! population.

use conformance::serve_equiv::{transcript_schedule, TRANSCRIPT_SEED};
use ef_lora::EfLora;
use ef_lora_serve::protocol::{encode, Request};
use ef_lora_serve::reference::ReferenceState;
use ef_lora_serve::{respond, ServeState, ServerOptions};
use lora_scenario::catalog;
use lora_scenario::spec::{ChurnEvent, ChurnKind};
use proptest::prelude::*;

/// One step of a differential interleaving. Raw selectors (`class`,
/// `index`) are reduced modulo the live class list / population at
/// replay time, so every generated sequence is valid by construction
/// and still shrinks cleanly.
#[derive(Debug, Clone)]
enum Op {
    Join {
        class: u8,
        count: usize,
    },
    Leave {
        count: usize,
    },
    Migrate {
        from: u8,
        to: u8,
        count: usize,
    },
    Measure,
    Metrics,
    Device {
        index: u16,
    },
    Status,
    Info,
    /// Crash-and-recover: snapshot the incremental daemon, throw the
    /// live state away, restore from the image, and keep going. The
    /// reference is *not* restarted — the restored daemon must continue
    /// exactly like a daemon that never crashed.
    SnapshotRestore,
}

/// Raw generated form of an [`Op`]: a selector byte, two operand bytes
/// and a count. Decoded by [`decode`]; weights live in the selector
/// ranges (churn-heavy, with sparse measure/restore events).
type RawOp = (u8, u8, u8, usize);

/// Strategy yielding one [`RawOp`].
type RawOpStrategy = (Any<u8>, Any<u8>, Any<u8>, std::ops::Range<usize>);

fn raw_ops(len: std::ops::Range<usize>) -> collection::VecStrategy<RawOpStrategy> {
    collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), 1..6usize), len)
}

fn decode(raw: RawOp) -> Op {
    let (sel, a, b, count) = raw;
    match sel % 16 {
        0..=2 => Op::Join { class: a, count },
        3..=5 => Op::Leave {
            count: count.min(4),
        },
        6..=7 => Op::Migrate {
            from: a,
            to: b,
            count,
        },
        8 => Op::Measure,
        9..=10 => Op::Metrics,
        11..=12 => Op::Device {
            index: u16::from_le_bytes([a, b]),
        },
        13 => Op::Status,
        14 => Op::Info,
        _ => Op::SnapshotRestore,
    }
}

/// Builds the two daemons over the same smoke-scale churn-heavy
/// scenario (~30 devices, 2 gateways).
fn smoke_pair() -> (ServeState, ReferenceState) {
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.15);
    let state = ServeState::new(spec.clone(), &EfLora::default()).expect("scenario allocates");
    let reference = ReferenceState::new(spec, &EfLora::default()).expect("scenario allocates");
    (state, reference)
}

/// Renders `op` into the concrete wire request for the live population.
fn request_for(op: &Op, classes: &[String], devices: usize, epoch: u32) -> Option<Request> {
    let class_of = |raw: u8| classes[raw as usize % classes.len()].clone();
    let event = |kind: ChurnKind| Request::Churn(ChurnEvent { epoch, event: kind });
    Some(match op {
        Op::Join { class, count } => event(ChurnKind::Join {
            class: class_of(*class),
            count: *count,
        }),
        Op::Leave { count } => event(ChurnKind::Leave { count: *count }),
        Op::Migrate { from, to, count } => event(ChurnKind::Migrate {
            from: class_of(*from),
            to: class_of(*to),
            count: *count,
        }),
        Op::Measure => Request::Measure,
        Op::Metrics => Request::Metrics,
        Op::Device { index } => Request::Device {
            index: *index as usize % devices.max(1),
        },
        Op::Status => Request::Status,
        Op::Info => Request::Info,
        Op::SnapshotRestore => return None,
    })
}

/// Replays `ops` through both daemons, comparing wire bytes after every
/// exchange and the cached model against a from-scratch rebuild.
fn run_differential(ops: &[Op]) -> Result<(), TestCaseError> {
    let options = ServerOptions::default();
    let (mut state, mut reference) = smoke_pair();
    let classes = state.class_names();
    for (i, op) in ops.iter().enumerate() {
        if matches!(op, Op::SnapshotRestore) {
            let image = state.snapshot();
            prop_assert_eq!(
                &image,
                &reference.snapshot(),
                "snapshot images diverged before restore at step {}",
                i
            );
            drop(state);
            state = ServeState::restore(image).map_err(TestCaseError::fail)?;
            prop_assert_eq!(
                state.cached_model(),
                &reference.fresh_model(),
                "restored cached model diverged at step {}",
                i
            );
            continue;
        }
        let request = request_for(op, &classes, reference.device_count(), i as u32 + 1)
            .expect("non-restore ops map to requests");
        let (live, _) = respond(&mut state, &options, request.clone());
        let oracle = reference.respond(request);
        prop_assert_eq!(
            encode(&live),
            encode(&oracle),
            "wire responses diverged at step {} ({:?})",
            i,
            op
        );
        prop_assert_eq!(
            state.cached_model(),
            &reference.fresh_model(),
            "cached model diverged from from-scratch rebuild at step {} ({:?})",
            i,
            op
        );
    }
    prop_assert_eq!(
        state.snapshot(),
        reference.snapshot(),
        "final snapshots diverged"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline differential property: random interleavings of
    /// Join/Leave/Migrate/Measure, queries and crash-restore produce
    /// byte-identical wire behaviour on the incremental and the
    /// from-scratch daemons, and the cached model never drifts from a
    /// fresh rebuild.
    #[test]
    fn incremental_daemon_is_byte_equivalent_to_from_scratch(
        raw in raw_ops(1..14)
    ) {
        let ops: Vec<Op> = raw.into_iter().map(decode).collect();
        run_differential(&ops)?;
    }

    /// Satellite identity: after any churn prefix, the attenuation
    /// rows, per-device intervals and the candidate grid the allocator
    /// scans are identical between the incremental model state and a
    /// from-scratch build.
    #[test]
    fn model_artefacts_match_from_scratch(
        raw in raw_ops(1..10)
    ) {
        let ops: Vec<Op> = raw.into_iter().map(decode).collect();
        let options = ServerOptions::default();
        let (mut state, mut reference) = smoke_pair();
        let classes = state.class_names();
        for (i, op) in ops.iter().enumerate() {
            let Some(request) = request_for(op, &classes, reference.device_count(), i as u32 + 1)
            else {
                continue;
            };
            let _ = respond(&mut state, &options, request.clone());
            let _ = reference.respond(request);
        }
        let fresh = reference.fresh_model();
        prop_assert_eq!(state.cached_model().device_count(), fresh.device_count());
        for d in 0..fresh.device_count() {
            for g in 0..fresh.gateway_count() {
                prop_assert_eq!(
                    state.cached_model().attenuation(d, g).to_bits(),
                    fresh.attenuation(d, g).to_bits(),
                    "attenuation row {} gateway {} diverged",
                    d,
                    g
                );
            }
        }
        prop_assert_eq!(state.cached_model(), &fresh);
        prop_assert_eq!(state.alloc(), reference.alloc());
    }
}

/// Deterministic paper-scale differential: the full pinned transcript
/// schedule (200 devices, 48 churn events, two measurement windows)
/// replayed on both daemons, line by line.
#[test]
fn transcript_schedule_is_byte_equivalent_at_paper_scale() {
    let options = ServerOptions::default();
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 1.0);
    let mut state = ServeState::new(spec.clone(), &EfLora::default()).unwrap();
    let mut reference = ReferenceState::new(spec, &EfLora::default()).unwrap();
    let classes = state.class_names();
    let events = transcript_schedule(&classes);
    let mut exchanges = 0usize;
    let compare = |state: &mut ServeState, reference: &mut ReferenceState, req: Request| {
        let (live, _) = respond(state, &options, req.clone());
        let oracle = reference.respond(req.clone());
        assert_eq!(
            encode(&live),
            encode(&oracle),
            "daemons diverged on {:?}",
            req
        );
    };
    for (i, event) in events.iter().enumerate() {
        compare(&mut state, &mut reference, Request::Churn(event.clone()));
        exchanges += 1;
        if i % 6 == 2 {
            compare(&mut state, &mut reference, Request::Metrics);
            let index = (i * 17) % reference.device_count();
            compare(&mut state, &mut reference, Request::Device { index });
            exchanges += 2;
        }
        if i == 15 || i == 37 {
            compare(&mut state, &mut reference, Request::Measure);
            exchanges += 1;
        }
    }
    assert!(exchanges > 50, "schedule exercised {exchanges} exchanges");
    assert_eq!(*state.cached_model(), reference.fresh_model());
    assert_eq!(TRANSCRIPT_SEED, 7, "schedule seed is pinned");
}

/// Crash-recovery continuation: half the transcript, a snapshot to
/// disk, a hard drop of the live state (the in-process analogue of
/// `kill -9`), a restore from the file, then the second half — every
/// post-restore response byte-identical to the never-crashed oracle,
/// and no stale retired rows resurrected in the cached model.
#[test]
fn restore_after_hard_kill_continues_byte_identically() {
    let options = ServerOptions::default();
    let (mut state, mut reference) = smoke_pair();
    let classes = state.class_names();
    let events = transcript_schedule(&classes);
    let (first, second) = events.split_at(events.len() / 2);
    for event in first {
        let (_, _) = respond(&mut state, &options, Request::Churn(event.clone()));
        reference.respond(Request::Churn(event.clone()));
    }
    let dir = std::env::temp_dir().join(format!("ef-lora-serve-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid-kill.snapshot.json");
    state.snapshot_to_file(&path).unwrap();
    drop(state);
    let mut restored = ServeState::restore_from_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        *restored.cached_model(),
        reference.fresh_model(),
        "restore resurrected stale model rows"
    );
    for event in second {
        let (live, _) = respond(&mut restored, &options, Request::Churn(event.clone()));
        let oracle = reference.respond(Request::Churn(event.clone()));
        assert_eq!(encode(&live), encode(&oracle));
    }
    let (live, _) = respond(&mut restored, &options, Request::Metrics);
    assert_eq!(encode(&live), encode(&reference.respond(Request::Metrics)));
    let (live, _) = respond(&mut restored, &options, Request::Measure);
    assert_eq!(encode(&live), encode(&reference.respond(Request::Measure)));
    assert_eq!(restored.snapshot(), reference.snapshot());
}
