//! Golden snapshot for the scenario engine.
//!
//! Pins the full compilation of one non-trivial catalog scenario —
//! spec, sampled topology, simulator config, class assignment and churn
//! timeline — so any drift in the spatial samplers, the class
//! apportionment, the k-means placement or the serde layout shows up as
//! a reviewed golden diff rather than a silent behaviour change.
//!
//! Refresh with `EF_LORA_UPDATE_GOLDEN=1 cargo test -p conformance`.

use conformance::golden;
use lora_scenario::{catalog, compile, from_json, to_json};

/// The pinned scenario: urban-hotspot at a tenth of its authored
/// population. It exercises every new compilation path at once —
/// cluster sampling, k-means gateways and a three-class traffic mix —
/// while keeping the snapshot reviewably small.
fn pinned_spec() -> lora_scenario::ScenarioSpec {
    let spec = catalog::scenario("urban-hotspot").expect("urban-hotspot is in the catalog");
    catalog::scale_devices(&spec, 0.1)
}

#[test]
fn compiled_urban_hotspot_matches_golden() {
    let compiled = compile(&pinned_spec()).expect("the pinned scenario must compile");
    let mut json = serde_json::to_string_pretty(&compiled).expect("compiled scenario serializes");
    json.push('\n');
    golden::check_or_update("scenario_urban_hotspot", &json).unwrap();
}

#[test]
fn pinned_spec_round_trips_through_json() {
    let spec = pinned_spec();
    let text = to_json(&spec);
    let parsed = from_json(&text).expect("spec parses back");
    assert_eq!(spec, parsed);
    // And compilation of the round-tripped spec is byte-identical.
    let a = serde_json::to_string(&compile(&spec).unwrap()).unwrap();
    let b = serde_json::to_string(&compile(&parsed).unwrap()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn compilation_is_deterministic_across_processes_inputs() {
    // Same spec, two independent compile calls: byte-identical output.
    // Guards the per-component seed tags against accidental coupling to
    // ambient state (thread ids, iteration order, time).
    let spec = pinned_spec();
    let a = serde_json::to_string(&compile(&spec).unwrap()).unwrap();
    let b = serde_json::to_string(&compile(&spec).unwrap()).unwrap();
    assert_eq!(a, b);
}
