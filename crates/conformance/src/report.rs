//! The machine-readable conformance report.

use serde::Serialize;

use crate::gates::{check_scenario, GateViolation, Tolerances};
use crate::oracle::ScenarioRecord;

/// Bumped whenever the report schema changes incompatibly, so golden
/// snapshots fail with a schema message instead of a wall of diffs.
pub const REPORT_VERSION: u32 = 1;

/// The full outcome of one conformance run: every scenario's oracle
/// statistics, the tolerances they were gated under, and the verdict.
///
/// Serialization is deterministic — struct fields keep declaration order,
/// scenario records keep matrix order — so two runs of the same matrix
/// produce byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConformanceReport {
    /// Report schema version.
    pub version: u32,
    /// Matrix profile name (`smoke` / `full`).
    pub profile: String,
    /// The tolerances the gates used.
    pub tolerances: Tolerances,
    /// Per-scenario oracle statistics, in matrix order.
    pub scenarios: Vec<ScenarioRecord>,
    /// Every failed gate, in matrix order.
    pub violations: Vec<GateViolation>,
    /// `true` iff no gate failed.
    pub passed: bool,
}

impl ConformanceReport {
    /// Gates a set of oracle records and assembles the report.
    pub fn gate(profile: &str, records: Vec<ScenarioRecord>, tolerances: Tolerances) -> Self {
        let violations: Vec<GateViolation> = records
            .iter()
            .flat_map(|r| check_scenario(r, &tolerances))
            .collect();
        ConformanceReport {
            version: REPORT_VERSION,
            profile: profile.to_string(),
            tolerances,
            passed: violations.is_empty(),
            scenarios: records,
            violations,
        }
    }

    /// Pretty-printed JSON (the golden-snapshot / `--output` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// A short human-readable verdict for CLI output.
    pub fn summary(&self) -> String {
        let n_strategies: usize = self.scenarios.iter().map(|s| s.strategies.len()).sum();
        format!(
            "{} scenarios, {} oracle pairs, {} gate violation(s): {}",
            self.scenarios.len(),
            n_strategies,
            self.violations.len(),
            if self.passed { "PASS" } else { "FAIL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::StrategyConformance;
    use crate::scenario::{Regime, Scenario};
    use lora_model::validation::agreement;

    fn one_record(violation: Option<&str>) -> Vec<ScenarioRecord> {
        let series = [1.0, 2.0, 3.0];
        vec![ScenarioRecord {
            scenario: Scenario {
                id: "unit".into(),
                n_devices: 3,
                n_gateways: 1,
                radius_m: 1_000.0,
                seed: 9,
                regime: Regime::Periodic { interval_s: 600.0 },
                outage: None,
                duration_s: 600.0,
                reps: 1,
                exhaustive: false,
                agreement_gated: true,
            },
            strategies: vec![StrategyConformance {
                strategy: "EF-LoRa".into(),
                model_min_ee: 1.0,
                sim_min_ee: 1.0,
                agreement: agreement(&series, &series),
                invariant_violations: violation.map(String::from).into_iter().collect(),
            }],
            exhaustive: None,
        }]
    }

    #[test]
    fn clean_records_pass_and_serialize_deterministically() {
        let a = ConformanceReport::gate("smoke", one_record(None), Tolerances::default());
        let b = ConformanceReport::gate("smoke", one_record(None), Tolerances::default());
        assert!(a.passed);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.summary().contains("PASS"));
    }

    #[test]
    fn violations_flip_the_verdict() {
        let r = ConformanceReport::gate("smoke", one_record(Some("boom")), Tolerances::default());
        assert!(!r.passed);
        assert_eq!(r.violations.len(), 1);
        assert!(r.summary().contains("FAIL"));
        assert!(r.to_json().contains("boom"));
    }
}
