//! Tolerance gates over oracle results.
//!
//! A gate turns a cross-oracle statistic into a pass/fail decision. The
//! shipped tolerances ([`Tolerances::default`]) were calibrated against
//! the smoke matrix with generous margin below the measured values — they
//! are drift alarms, not statistical tests: every scenario is fully
//! deterministic, so a gate that passes today fails only when the
//! PHY/MAC/simulator/model/allocator semantics actually change.

use serde::Serialize;

use crate::oracle::ScenarioRecord;

/// The gate thresholds. All serialize into the conformance report so a
/// golden snapshot also pins the tolerances it was taken under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Tolerances {
    /// Minimum model↔simulator Pearson correlation per agreement-gated
    /// (scenario, strategy) pair.
    pub min_pearson: f64,
    /// Minimum model↔simulator Spearman rank correlation per
    /// agreement-gated (scenario, strategy) pair.
    pub min_spearman: f64,
    /// Minimum `greedy / exhaustive-optimal` min-EE fraction.
    pub min_greedy_fraction: f64,
}

impl Default for Tolerances {
    /// Calibrated against both matrices: the weakest agreement-gated pair
    /// measures Pearson 0.82 / Spearman 0.64 on the smoke matrix and
    /// Pearson 0.56 / Spearman 0.45 on the full one (dense duty-cycle
    /// scenarios, where collision noise compresses the EE spread), so
    /// these floors leave real margin while still catching sign flips and
    /// broken units; the greedy matches the restricted enumerated optimum
    /// on every instance, matching the claim in `ef_lora::exhaustive`.
    fn default() -> Self {
        Tolerances {
            min_pearson: 0.45,
            min_spearman: 0.35,
            min_greedy_fraction: 0.95,
        }
    }
}

/// One failed gate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GateViolation {
    /// Scenario id.
    pub scenario: String,
    /// Which gate failed (`invariant`, `pearson`, `spearman`, `exhaustive`).
    pub gate: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Applies every gate to a scenario's oracle record.
pub fn check_scenario(record: &ScenarioRecord, tol: &Tolerances) -> Vec<GateViolation> {
    let mut violations = Vec::new();
    let scenario = &record.scenario;

    for s in &record.strategies {
        // Hard invariants gate unconditionally.
        for v in &s.invariant_violations {
            violations.push(GateViolation {
                scenario: scenario.id.clone(),
                gate: "invariant".into(),
                detail: format!("{}: {v}", s.strategy),
            });
        }
        if scenario.agreement_gated {
            if s.agreement.pearson < tol.min_pearson {
                violations.push(GateViolation {
                    scenario: scenario.id.clone(),
                    gate: "pearson".into(),
                    detail: format!(
                        "{}: model↔sim Pearson r = {} below tolerance {}",
                        s.strategy, s.agreement.pearson, tol.min_pearson
                    ),
                });
            }
            if s.agreement.spearman < tol.min_spearman {
                violations.push(GateViolation {
                    scenario: scenario.id.clone(),
                    gate: "spearman".into(),
                    detail: format!(
                        "{}: model↔sim Spearman ρ = {} below tolerance {}",
                        s.strategy, s.agreement.spearman, tol.min_spearman
                    ),
                });
            }
        }
    }

    if let Some(ex) = &record.exhaustive {
        if ex.ratio < tol.min_greedy_fraction {
            violations.push(GateViolation {
                scenario: scenario.id.clone(),
                gate: "exhaustive".into(),
                detail: format!(
                    "greedy min-EE {} is {} of the enumerated optimum {} \
                     (tolerance {})",
                    ex.greedy_min_ee, ex.ratio, ex.optimal_min_ee, tol.min_greedy_fraction
                ),
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ExhaustiveConformance, StrategyConformance};
    use crate::scenario::{Regime, Scenario};
    use lora_model::validation::agreement;

    fn record(agreement_gated: bool) -> ScenarioRecord {
        let model = [1.0, 2.0, 3.0, 4.0];
        let sim = [1.1, 2.2, 2.9, 4.4];
        ScenarioRecord {
            scenario: Scenario {
                id: "unit".into(),
                n_devices: 4,
                n_gateways: 1,
                radius_m: 3_000.0,
                seed: 1,
                regime: Regime::Periodic { interval_s: 600.0 },
                outage: None,
                duration_s: 600.0,
                reps: 1,
                exhaustive: false,
                agreement_gated,
            },
            strategies: vec![StrategyConformance {
                strategy: "EF-LoRa".into(),
                model_min_ee: 1.0,
                sim_min_ee: 1.1,
                agreement: agreement(&model, &sim),
                invariant_violations: Vec::new(),
            }],
            exhaustive: None,
        }
    }

    #[test]
    fn clean_record_passes() {
        assert!(check_scenario(&record(true), &Tolerances::default()).is_empty());
    }

    #[test]
    fn invariant_violations_always_gate() {
        let mut r = record(false);
        r.strategies[0]
            .invariant_violations
            .push("rep 0: bad accounting".into());
        let v = check_scenario(&r, &Tolerances::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].gate, "invariant");
    }

    #[test]
    fn agreement_gates_respect_the_scenario_flag() {
        // Spearman of a monotone pair is 1, so force an impossible bar.
        let tol = Tolerances {
            min_spearman: 1.5,
            ..Tolerances::default()
        };
        assert!(
            check_scenario(&record(false), &tol).is_empty(),
            "ungated scenario"
        );
        let v = check_scenario(&record(true), &tol);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].gate, "spearman");
    }

    #[test]
    fn exhaustive_gate_fires_below_fraction() {
        let mut r = record(false);
        r.exhaustive = Some(ExhaustiveConformance {
            optimal_min_ee: 10.0,
            greedy_min_ee: 8.0,
            ratio: 0.8,
        });
        let v = check_scenario(&r, &Tolerances::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].gate, "exhaustive");
    }
}
