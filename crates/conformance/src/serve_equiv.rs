//! Serve-path equivalence harness.
//!
//! The daemon's incremental model state is only admissible if its wire
//! behaviour is **byte-identical** to a from-scratch rebuild of every
//! model artefact per event. This module provides the two instruments
//! that prove it:
//!
//! * [`serve_transcript`] — drives the *actual* daemon dispatcher
//!   ([`ef_lora_serve::respond`]) through a deterministic churn-heavy
//!   request schedule and renders one JSON line per request/response
//!   pair. The rendered transcript is pinned as the golden snapshot
//!   `tests/golden/serve_incremental.json`, which was generated against
//!   the pre-incremental (full-rebuild) daemon — so the test failing
//!   means the incremental path diverged from from-scratch semantics.
//! * [`transcript_schedule`] — the request schedule itself, reusable by
//!   differential tests that replay it against both the live
//!   [`ef_lora_serve::ServeState`] and the frozen reference
//!   implementation.
//!
//! The schedule interleaves Join/Leave/Migrate churn (from the daemon's
//! own seeded load generator) with `Info`/`Metrics`/`Device`/`Status`
//! queries and two full `Measure` windows, exercising every read path
//! that could observe stale incremental state.

use ef_lora::EfLora;
use ef_lora_serve::protocol::{encode, Request};
use ef_lora_serve::{loadgen, respond, ServeState, ServerOptions};
use lora_scenario::catalog;

/// Seed of the transcript's churn-event stream (shared with the soak
/// experiment so the workloads are comparable).
pub const TRANSCRIPT_SEED: u64 = 7;

/// Churn events in the pinned transcript.
pub const TRANSCRIPT_EVENTS: usize = 48;

/// The deterministic request schedule: churn events interleaved with
/// queries. `Device` indices depend on the live population size, so the
/// schedule is produced step by step by [`drive_transcript`]; this
/// helper only builds the churn backbone.
pub fn transcript_schedule(classes: &[String]) -> Vec<lora_scenario::spec::ChurnEvent> {
    loadgen::generate_events(TRANSCRIPT_SEED, TRANSCRIPT_EVENTS, classes)
}

/// Drives `state` through the transcript schedule, returning one
/// `{"request":…,"response":…}` JSON line per exchange (the exact wire
/// encodings, concatenated with newlines and a trailing newline).
pub fn drive_transcript(state: &mut ServeState) -> String {
    let options = ServerOptions::default();
    let classes = state.class_names();
    let events = transcript_schedule(&classes);
    let mut lines = Vec::new();
    let drive = |state: &mut ServeState, request: Request| {
        let (response, _) = respond(state, &options, request.clone());
        format!(
            "{{\"request\":{},\"response\":{}}}",
            encode(&request),
            encode(&response)
        )
    };
    lines.push(drive(state, Request::Info));
    for (i, event) in events.iter().enumerate() {
        lines.push(drive(state, Request::Churn(event.clone())));
        if i % 6 == 2 {
            lines.push(drive(state, Request::Metrics));
            let index = (i * 17) % state.device_count();
            lines.push(drive(state, Request::Device { index }));
        }
        if i % 12 == 5 {
            lines.push(drive(state, Request::Status));
        }
        if i == 15 || i == 37 {
            lines.push(drive(state, Request::Measure));
        }
    }
    lines.push(drive(state, Request::Metrics));
    lines.push(drive(state, Request::Info));
    let mut body = lines.join("\n");
    body.push('\n');
    body
}

/// Builds the transcript state (the churn-heavy catalog scenario at
/// paper scale — 200 devices, 2 gateways) and renders the transcript.
pub fn serve_transcript() -> String {
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 1.0);
    let mut state = ServeState::new(spec, &EfLora::default()).expect("catalog scenario allocates");
    drive_transcript(&mut state)
}
