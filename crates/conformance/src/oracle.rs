//! Runs one scenario through the three oracles.
//!
//! * **Analytical model** (`lora_model::NetworkModel`, paper Eq. 5–20):
//!   per-device energy efficiency for the allocation under test.
//! * **Discrete-event simulator** (`lora_sim::Simulation`): measured
//!   per-device EE, averaged over repetitions with the exact seed schedule
//!   the bench harness uses (`seed ^ (rep·0x9e37_79b9 + 1)`, folded in
//!   repetition order — byte-identical for every worker count).
//! * **Exhaustive search** (`ef_lora::ExhaustiveSearch`): the true
//!   max-min optimum over a restricted candidate set, for instances small
//!   enough to enumerate.
//!
//! Alongside the cross-oracle statistics, every simulated repetition is
//! checked against hard accounting invariants (reception conservation,
//! energy bookkeeping, duty-cycle compliance, outage attribution); any
//! violation is recorded verbatim so the gates can fail loudly.

use serde::Serialize;

use ef_lora::{AllocationContext, EfLora, ExhaustiveSearch, LegacyLora, Strategy};
use lora_model::validation::{agreement, Agreement};
use lora_model::NetworkModel;
use lora_phy::toa::ToaParams;
use lora_phy::{Bandwidth, TxConfig};
use lora_sim::{SimConfig, SimReport, Simulation, Topology, Traffic};

use crate::scenario::Scenario;

/// Cross-oracle statistics for one (scenario, strategy) pair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StrategyConformance {
    /// Strategy name.
    pub strategy: String,
    /// Model-predicted minimum per-device EE, bits/mJ.
    pub model_min_ee: f64,
    /// Simulator-measured minimum per-device EE (rep-averaged), bits/mJ.
    pub sim_min_ee: f64,
    /// Model↔simulator per-device agreement (Pearson, Spearman, bias).
    pub agreement: Agreement,
    /// Hard-invariant violations observed across all repetitions.
    pub invariant_violations: Vec<String>,
}

/// Greedy-vs-optimal statistics for an enumerable scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExhaustiveConformance {
    /// The enumerated max-min optimum (restricted candidate set), bits/mJ.
    pub optimal_min_ee: f64,
    /// The greedy EF-LoRa minimum EE under the model, bits/mJ.
    pub greedy_min_ee: f64,
    /// `greedy / optimal`; may exceed 1 because the greedy searches the
    /// full configuration space while the oracle's is restricted.
    pub ratio: f64,
}

/// Everything the oracles produced for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioRecord {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// One entry per strategy under test.
    pub strategies: Vec<StrategyConformance>,
    /// Present iff `scenario.exhaustive`.
    pub exhaustive: Option<ExhaustiveConformance>,
}

/// Per-device time-on-air for an allocation under a configuration.
fn toa_per_device(config: &SimConfig, alloc: &[TxConfig]) -> Vec<f64> {
    alloc
        .iter()
        .map(|cfg| {
            ToaParams::new(cfg.sf, Bandwidth::Bw125, config.coding_rate)
                .time_on_air_s(config.phy_payload_len())
                .expect("validated payload")
        })
        .collect()
}

/// Checks the hard accounting invariants of one simulation report.
///
/// These hold *exactly* (up to float rounding) by construction of the
/// simulator, so any message returned here is a real conservation bug:
///
/// 1. per device: `delivered ≤ attempts`;
/// 2. per gateway: every (attempt, gateway) pair resolves to exactly one
///    of {decoded, demod_refused, sinr_failure, below_sensitivity,
///    outage_drop, half_duplex_drop, jammed_drop, backhaul_drop} — the
///    eight counters sum to the network-wide attempt count;
/// 3. network: `Σ decoded = frames_delivered + duplicate_copies` and
///    `frames_delivered = Σ delivered`;
/// 4. fault attribution: a gateway accrues `outage_drops` only when a
///    static outage or a churn process targets it, `jammed_drops` only
///    when a jammer or jam burst is configured, and `backhaul_drops` only
///    when its own backhaul link has a positive drop probability — a
///    backhaul loss consumes a PHY-decoded copy, so it can never
///    double-count against a PHY-level drop fate;
/// 5. energy bookkeeping: consumed energy equals
///    `attempts·(E_overhead + E_tx(TP, ToA) + E_listen) + P_sleep·(T −
///    attempts·ToA)` — `E_listen` the class-A RX1+RX2 listening energy
///    per attempt for confirmed traffic, 0 otherwise — and the reported
///    EE equals `delivered·L / (1000·energy)`. Charged per *attempt*, so
///    a retransmission inside an outage-spanning retry window pays
///    exactly one overhead + TX + listen quantum, never two;
/// 6. duty-cycle compliance: measured airtime never exceeds the offered
///    duty cycle's budget by more than one frame (confirmed traffic may
///    retransmit up to `max_attempts` times per cycle, scaling the
///    budget accordingly).
pub fn check_invariants(
    config: &SimConfig,
    alloc: &[TxConfig],
    report: &SimReport,
    rep: u64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let mut fail = |msg: String| violations.push(format!("rep {rep}: {msg}"));

    let toa = toa_per_device(config, alloc);
    let total_attempts: u64 = report.devices.iter().map(|d| u64::from(d.attempts)).sum();
    let total_delivered: u64 = report.devices.iter().map(|d| u64::from(d.delivered)).sum();

    // (1) per-device sanity.
    for (i, d) in report.devices.iter().enumerate() {
        if d.delivered > d.attempts {
            fail(format!(
                "device {i}: delivered {} > attempts {}",
                d.delivered, d.attempts
            ));
        }
        if !(d.energy_j.is_finite() && d.energy_j >= 0.0) {
            fail(format!(
                "device {i}: energy {} is not a finite non-negative value",
                d.energy_j
            ));
        }
    }

    // (2) per-gateway reception conservation over all eight fates.
    for (k, g) in report.gateways.iter().enumerate() {
        let resolved = g.decoded
            + g.demod_refused
            + g.sinr_failures
            + g.below_sensitivity
            + g.outage_drops
            + g.half_duplex_drops
            + g.jammed_drops
            + g.backhaul_drops;
        if resolved != total_attempts {
            fail(format!(
                "gateway {k}: decoded {} + refused {} + sinr {} + below-sens {} + outage {} \
                 + half-duplex {} + jammed {} + backhaul {} = {resolved} ≠ attempts \
                 {total_attempts}",
                g.decoded,
                g.demod_refused,
                g.sinr_failures,
                g.below_sensitivity,
                g.outage_drops,
                g.half_duplex_drops,
                g.jammed_drops,
                g.backhaul_drops,
            ));
        }
    }

    // (3) de-duplication conservation.
    let total_decoded: u64 = report.gateways.iter().map(|g| g.decoded).sum();
    if total_decoded != report.frames_delivered + report.duplicate_copies {
        fail(format!(
            "Σ decoded {total_decoded} ≠ frames_delivered {} + duplicates {}",
            report.frames_delivered, report.duplicate_copies
        ));
    }
    if report.frames_delivered != total_delivered {
        fail(format!(
            "frames_delivered {} ≠ Σ per-device delivered {total_delivered}",
            report.frames_delivered
        ));
    }

    // (4) fault attribution: every fault-class counter needs a configured
    // cause. Backhaul drops in particular consume PHY-decoded copies, so
    // a spurious count here would double-book against a PHY fate.
    let faults = config.faults.as_ref();
    let has_jam = faults.is_some_and(|f| !f.jammers.is_empty() || !f.jam_bursts.is_empty());
    for (k, g) in report.gateways.iter().enumerate() {
        let has_outage = config.outages.iter().any(|o| o.gateway == k)
            || faults.is_some_and(|f| f.churn.iter().any(|c| c.gateway == k));
        if !has_outage && g.outage_drops > 0 {
            fail(format!(
                "gateway {k}: {} outage drops without a configured outage",
                g.outage_drops
            ));
        }
        if !has_jam && g.jammed_drops > 0 {
            fail(format!(
                "gateway {k}: {} jammed drops without a configured jammer",
                g.jammed_drops
            ));
        }
        let has_lossy_backhaul = faults.is_some_and(|f| {
            f.backhaul
                .iter()
                .any(|b| b.gateway == k && b.drop_prob > 0.0)
        });
        if !has_lossy_backhaul && g.backhaul_drops > 0 {
            fail(format!(
                "gateway {k}: {} backhaul drops without a lossy backhaul link",
                g.backhaul_drops
            ));
        }
    }

    // (5) energy bookkeeping — exact for both traffic kinds. Each attempt
    // (first transmission or retry, delivered or lost to any fate) pays
    // one overhead + TX + listening quantum, so a retry whose window
    // spans an outage is charged exactly once, never twice.
    let payload_bits = config.payload_bits();
    let listen_j = config
        .confirmed
        .map_or(0.0, |c| c.class_a.listening_energy_j());
    for (i, d) in report.devices.iter().enumerate() {
        let airtime = f64::from(d.attempts) * toa[i];
        let expected = f64::from(d.attempts)
            * (config.energy.overhead_energy_j()
                + config.energy.tx_energy_j(alloc[i].tp, toa[i])
                + listen_j)
            + config.energy.sleep_power_w() * (report.duration_s - airtime).max(0.0);
        if (d.energy_j - expected).abs() > 1e-6 * expected.max(1e-12) {
            fail(format!(
                "device {i}: energy {} J ≠ expected {expected} J from {} attempts",
                d.energy_j, d.attempts
            ));
        }
        let expected_ee = if d.energy_j > 0.0 {
            f64::from(d.delivered) * payload_bits / (d.energy_j * 1_000.0)
        } else {
            0.0
        };
        if (d.ee_bits_per_mj - expected_ee).abs() > 1e-9 * expected_ee.max(1e-12) {
            fail(format!(
                "device {i}: EE {} bits/mJ ≠ delivered·L/energy = {expected_ee}",
                d.ee_bits_per_mj
            ));
        }
    }

    // (6) duty-cycle compliance: the traffic generator must never offer
    // more airtime than the regime's duty budget plus one frame of
    // schedule-boundary slack.
    let retry_factor = config.confirmed.map_or(1.0, |c| f64::from(c.max_attempts));
    for (i, d) in report.devices.iter().enumerate() {
        let offered_duty = match config.traffic {
            Traffic::DutyCycleTarget { duty } => duty,
            Traffic::Periodic => toa[i] / config.interval_of(i),
        };
        let airtime = f64::from(d.attempts) * toa[i];
        let budget = retry_factor * offered_duty * report.duration_s + toa[i] + 1e-9;
        if airtime > budget {
            fail(format!(
                "device {i}: airtime {airtime} s exceeds duty budget {budget} s \
                 (duty {offered_duty}, {} attempts)",
                d.attempts
            ));
        }
    }

    violations
}

/// Per-repetition simulator output the conformance aggregation needs.
struct RepOutcome {
    ee: Vec<f64>,
    violations: Vec<String>,
}

/// Runs the simulator oracle for one allocation: `reps` repetitions with
/// the bench harness's seed schedule, rep-averaged per-device EE plus all
/// invariant violations. Repetitions fan out over `threads` workers and
/// fold in index order, so the result is worker-count-invariant.
///
/// Public so the test suite can differentially validate this runner
/// against `ef_lora_bench::harness::run_strategy` — the pipeline every
/// figure is produced with — on identical inputs.
pub fn simulator_oracle(
    config: &SimConfig,
    topology: &Topology,
    alloc: &[TxConfig],
    reps: u64,
    threads: usize,
) -> (Vec<f64>, Vec<String>) {
    let n = topology.device_count();
    let rep_seeds: Vec<u64> = (0..reps)
        .map(|rep| config.seed ^ (rep.wrapping_mul(0x9e37_79b9) + 1))
        .collect();
    let simulate = |rep: usize| -> RepOutcome {
        let mut cfg = config.clone();
        cfg.seed = rep_seeds[rep];
        let report = Simulation::new(cfg.clone(), topology.clone(), alloc.to_vec())
            .expect("validated allocation")
            .run();
        RepOutcome {
            ee: report.devices.iter().map(|d| d.ee_bits_per_mj).collect(),
            violations: check_invariants(&cfg, alloc, &report, rep as u64),
        }
    };

    let rep_count = usize::try_from(reps).expect("repetition count fits in usize");
    let mut ee_acc = vec![0.0f64; n];
    let mut violations = Vec::new();
    for outcome in lora_parallel::par_map_indexed(rep_count, threads, simulate) {
        for (acc, ee) in ee_acc.iter_mut().zip(&outcome.ee) {
            *acc += ee;
        }
        violations.extend(outcome.violations);
    }
    for v in &mut ee_acc {
        *v /= reps as f64;
    }
    (ee_acc, violations)
}

/// Runs one scenario through all applicable oracles.
///
/// Two strategies are cross-validated — the greedy EF-LoRa allocator the
/// paper proposes and the legacy-LoRa baseline (whose skewed EE spread
/// exercises the agreement statistics harder than EF-LoRa's flattened
/// max-min profile) — plus, on enumerable instances, the exhaustive
/// optimum.
pub fn run_scenario(scenario: &Scenario, threads: usize) -> ScenarioRecord {
    let config = scenario.sim_config();
    let topology = Topology::disc(
        scenario.n_devices,
        scenario.n_gateways,
        scenario.radius_m,
        &config,
        scenario.seed,
    );
    let model = NetworkModel::new(&config, &topology);
    let ctx = AllocationContext::new(&config, &topology, &model);

    let ef = EfLora::default().with_threads(threads);
    let legacy = LegacyLora::default();
    let strategies: [&dyn Strategy; 2] = [&ef, &legacy];

    let mut records = Vec::new();
    for strategy in strategies {
        let alloc = strategy.allocate(&ctx).expect("allocation must succeed");
        let model_ee = model.evaluate(alloc.as_slice());
        let (sim_ee, invariant_violations) =
            simulator_oracle(&config, &topology, alloc.as_slice(), scenario.reps, threads);
        records.push(StrategyConformance {
            strategy: strategy.name().to_string(),
            model_min_ee: model_ee.iter().copied().fold(f64::INFINITY, f64::min),
            sim_min_ee: sim_ee.iter().copied().fold(f64::INFINITY, f64::min),
            agreement: agreement(&model_ee, &sim_ee),
            invariant_violations,
        });
    }

    let exhaustive = scenario.exhaustive.then(|| {
        let optimal = ExhaustiveSearch::new()
            .allocate(&ctx)
            .expect("enumerable instance");
        let optimal_min_ee = model
            .evaluate(optimal.as_slice())
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        // The EF-LoRa record above was computed for this same context;
        // its model_min_ee is the greedy side of the comparison.
        let greedy_min_ee = records[0].model_min_ee;
        ExhaustiveConformance {
            optimal_min_ee,
            greedy_min_ee,
            ratio: greedy_min_ee / optimal_min_ee.max(1e-12),
        }
    });

    ScenarioRecord {
        scenario: scenario.clone(),
        strategies: records,
        exhaustive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Profile, Regime};

    fn tiny_scenario() -> Scenario {
        Scenario {
            id: "unit-tiny".into(),
            n_devices: 8,
            n_gateways: 1,
            radius_m: 3_000.0,
            seed: 42,
            regime: Regime::Periodic { interval_s: 600.0 },
            outage: None,
            duration_s: 1_800.0,
            reps: 2,
            exhaustive: false,
            agreement_gated: false,
        }
    }

    #[test]
    fn scenario_record_has_both_strategies() {
        let record = run_scenario(&tiny_scenario(), 1);
        assert_eq!(record.strategies.len(), 2);
        assert_eq!(record.strategies[0].strategy, "EF-LoRa");
        assert!(record
            .strategies
            .iter()
            .all(|s| s.invariant_violations.is_empty()));
        assert!(record.exhaustive.is_none());
    }

    #[test]
    fn run_scenario_is_thread_invariant() {
        let scenario = tiny_scenario();
        let one = run_scenario(&scenario, 1);
        let four = run_scenario(&scenario, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn exhaustive_oracle_runs_on_enumerable_instances() {
        let scenario = crate::scenario::matrix(Profile::Smoke)
            .into_iter()
            .find(|s| s.exhaustive)
            .unwrap();
        let record = run_scenario(&scenario, 1);
        let ex = record.exhaustive.expect("exhaustive scenario");
        assert!(ex.optimal_min_ee > 0.0);
        assert!(ex.ratio > 0.0);
    }

    #[test]
    fn confirmed_retry_energy_is_charged_once_per_attempt_across_outages() {
        // Satellite fix: an outage spanning the retry window must not
        // double-charge (or skip) the retransmission energy. The outage
        // blacks out the only gateway mid-run, so every cycle in the
        // window burns its full retry budget; the per-attempt energy
        // identity in `check_invariants` must still hold exactly.
        use lora_sim::ConfirmedTraffic;
        let mut config = SimConfig::builder()
            .seed(7)
            .duration_s(3_600.0)
            .report_interval_s(600.0)
            .confirmed(ConfirmedTraffic::default())
            .outage(lora_sim::GatewayOutage {
                gateway: 0,
                from_s: 900.0,
                to_s: 2_700.0,
            })
            .build();
        config.fading = lora_phy::Fading::None;
        let topology = Topology::disc(6, 1, 2_000.0, &config, 7);
        let alloc = vec![TxConfig::default(); 6];
        let report = Simulation::new(config.clone(), topology, alloc.clone())
            .unwrap()
            .run();

        // The outage must actually force retransmissions: more attempts
        // than cycles, and losses despite the quiet channel.
        let attempts: u64 = report.devices.iter().map(|d| u64::from(d.attempts)).sum();
        let delivered: u64 = report.devices.iter().map(|d| u64::from(d.delivered)).sum();
        assert!(report.gateways[0].outage_drops > 0, "outage must bite");
        assert!(attempts > delivered, "lost frames must trigger retries");

        let violations = check_invariants(&config, &alloc, &report, 0);
        assert!(violations.is_empty(), "{violations:?}");

        // Spot-check the identity by hand for the worst-hit device.
        let toa = toa_per_device(&config, &alloc);
        let conf = config.confirmed.unwrap();
        for (i, d) in report.devices.iter().enumerate() {
            let expected = f64::from(d.attempts)
                * (config.energy.overhead_energy_j()
                    + config.energy.tx_energy_j(alloc[i].tp, toa[i])
                    + conf.class_a.listening_energy_j())
                + config.energy.sleep_power_w()
                    * (report.duration_s - f64::from(d.attempts) * toa[i]);
            assert!(
                (d.energy_j - expected).abs() <= 1e-9 * expected,
                "device {i}: {} J vs {expected} J",
                d.energy_j
            );
        }
    }

    #[test]
    fn invariant_checker_accepts_faulted_reports_and_flags_phantom_fault_drops() {
        use lora_sim::{BackhaulLink, FaultConfig, GatewayChurn, JamBurst};
        let mut builder = SimConfig::builder();
        builder.seed(5).duration_s(2_400.0).report_interval_s(600.0);
        builder.faults(FaultConfig {
            churn: vec![GatewayChurn {
                gateway: 0,
                mtbf_s: 500.0,
                mttr_s: 400.0,
            }],
            jam_bursts: vec![JamBurst {
                channel: 0,
                from_s: 600.0,
                to_s: 1_800.0,
                power_mw: 1.0,
            }],
            backhaul: vec![BackhaulLink {
                gateway: 1,
                drop_prob: 0.5,
                latency_s: 0.01,
            }],
            ..FaultConfig::default()
        });
        let config = builder.try_build().unwrap();
        let topology = Topology::disc(10, 2, 3_000.0, &config, 5);
        let alloc = vec![TxConfig::default(); 10];
        let mut report = Simulation::new(config.clone(), topology, alloc.clone())
            .unwrap()
            .run();
        let violations = check_invariants(&config, &alloc, &report, 0);
        assert!(violations.is_empty(), "{violations:?}");

        // A fault-class drop without a configured cause is an attribution
        // bug: credit each new counter on the *wrong* gateway and the
        // checker must object.
        report.gateways[1].outage_drops += 1;
        report.gateways[0].backhaul_drops += 1;
        let violations = check_invariants(&config, &alloc, &report, 0);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("outage drops without")),
            "{violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| v.contains("backhaul drops without")),
            "{violations:?}"
        );
    }

    #[test]
    fn invariant_checker_flags_corrupted_reports() {
        let scenario = tiny_scenario();
        let config = scenario.sim_config();
        let topology = Topology::disc(8, 1, 3_000.0, &config, 42);
        let alloc = vec![TxConfig::default(); 8];
        let mut report = Simulation::new(config.clone(), topology, alloc.clone())
            .unwrap()
            .run();
        assert!(check_invariants(&config, &alloc, &report, 0).is_empty());

        // Corrupt the accounting in three independent ways.
        report.devices[0].energy_j *= 2.0;
        report.gateways[0].decoded += 1;
        report.frames_delivered += 5;
        let violations = check_invariants(&config, &alloc, &report, 0);
        assert!(violations.len() >= 3, "{violations:?}");
    }
}
