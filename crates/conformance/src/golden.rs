//! Golden-snapshot comparison with an explicit refresh flow.
//!
//! Golden files live under `tests/golden/` at the repository root and pin
//! the byte-exact JSON of conformance artefacts. A mismatch fails with the
//! first differing line; setting `EF_LORA_UPDATE_GOLDEN=1` rewrites the
//! snapshot instead (the diff then shows up in `git status`, where it
//! belongs — a reviewed golden refresh is the *only* sanctioned way to
//! change pinned semantics).

use std::path::PathBuf;

/// Environment variable that switches comparison to refresh mode.
pub const UPDATE_ENV: &str = "EF_LORA_UPDATE_GOLDEN";

/// The golden-snapshot directory (`<repo>/tests/golden`).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Whether the current process runs in refresh mode.
pub fn update_mode() -> bool {
    std::env::var(UPDATE_ENV).as_deref() == Ok("1")
}

/// Compares `actual` against the golden snapshot `<name>.json`, or
/// rewrites the snapshot in refresh mode.
///
/// # Errors
///
/// * the snapshot is missing (with the refresh command to create it);
/// * the snapshot differs (with the first differing line of each side);
/// * the snapshot cannot be read or written.
pub fn check_or_update(name: &str, actual: &str) -> Result<(), String> {
    let path = golden_dir().join(format!("{name}.json"));
    if update_mode() {
        std::fs::create_dir_all(golden_dir())
            .map_err(|e| format!("cannot create {}: {e}", golden_dir().display()))?;
        std::fs::write(&path, actual)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("updated golden snapshot {}", path.display());
        return Ok(());
    }
    let expected = std::fs::read_to_string(&path).map_err(|_| {
        format!(
            "golden snapshot {} is missing; run the same test with {UPDATE_ENV}=1 to create it",
            path.display()
        )
    })?;
    if expected == actual {
        return Ok(());
    }
    // Locate the first differing line for a readable failure.
    let mut line_no = 0usize;
    let (want, got);
    let mut exp_lines = expected.lines();
    let mut act_lines = actual.lines();
    loop {
        line_no += 1;
        match (exp_lines.next(), act_lines.next()) {
            (Some(e), Some(a)) if e == a => continue,
            (e, a) => {
                want = e.unwrap_or("<end of file>");
                got = a.unwrap_or("<end of file>");
                break;
            }
        }
    }
    Err(format!(
        "golden snapshot {} differs at line {line_no}:\n  golden: {want}\n  actual: {got}\n\
         re-run with {UPDATE_ENV}=1 if the change is intentional, then review the diff",
        path.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_dir_points_at_repo_tests() {
        let dir = golden_dir();
        assert!(dir.ends_with("tests/golden"));
    }

    #[test]
    fn missing_snapshot_names_the_refresh_env() {
        if update_mode() {
            return; // refresh mode would create the probe file
        }
        let err = check_or_update("definitely-not-a-snapshot", "{}").unwrap_err();
        assert!(err.contains(UPDATE_ENV), "{err}");
    }
}
