//! Differential conformance engine for the EF-LoRa reproduction.
//!
//! The repository's correctness story rests on three oracles agreeing:
//!
//! 1. the **analytical model** (`lora-model`, paper Eq. 5–20) the
//!    allocator optimises,
//! 2. the **discrete-event simulator** (`lora-sim`) the figures measure,
//! 3. the **exhaustive optimum** (`ef-lora`'s `ExhaustiveSearch`) the
//!    greedy Algorithm 1 is supposed to track.
//!
//! This crate cross-validates them systematically instead of ad hoc: a
//! deterministic [scenario matrix](scenario::matrix) (seeded grids over
//! device/gateway counts, traffic regimes and outage windows) runs every
//! scenario through all applicable oracles ([`oracle::run_scenario`]),
//! checks hard accounting invariants on every simulated repetition
//! ([`oracle::check_invariants`]), and applies tolerance
//! [gates](gates::Tolerances) — model↔simulator correlation, greedy
//! within a fixed fraction of the enumerated optimum. The outcome is a
//! machine-readable [`ConformanceReport`] whose JSON is byte-identical
//! across runs and worker counts, so it doubles as a
//! [golden snapshot](golden) pinned under `tests/golden/` and refreshed
//! only via `EF_LORA_UPDATE_GOLDEN=1`.
//!
//! Entry points: [`run_matrix_records`] (oracle runs only, re-gateable)
//! and [`run_matrix`] (records + gates → report). The CLI exposes the
//! same path as `ef-lora-plan validate --scale smoke|full`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gates;
pub mod golden;
pub mod oracle;
pub mod report;
pub mod scenario;
pub mod serve_equiv;

pub use gates::{GateViolation, Tolerances};
pub use oracle::{ScenarioRecord, StrategyConformance};
pub use report::ConformanceReport;
pub use scenario::{matrix, Profile, Scenario};

/// Runs every scenario of a profile's matrix through the oracles.
///
/// `threads` is purely a wall-clock knob (`0` = available parallelism):
/// the records are byte-identical for every worker count.
pub fn run_matrix_records(profile: Profile, threads: usize) -> Vec<ScenarioRecord> {
    let threads = if threads == 0 {
        lora_parallel::available_threads()
    } else {
        threads
    };
    scenario::matrix(profile)
        .iter()
        .map(|s| oracle::run_scenario(s, threads))
        .collect()
}

/// Runs a profile's matrix and gates it: the one-call conformance engine.
pub fn run_matrix(profile: Profile, tolerances: Tolerances, threads: usize) -> ConformanceReport {
    ConformanceReport::gate(
        profile.name(),
        run_matrix_records(profile, threads),
        tolerances,
    )
}
