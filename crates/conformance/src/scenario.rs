//! Deterministic scenario-matrix generation.
//!
//! A scenario is one fully specified deployment-plus-workload the three
//! oracles are cross-validated on: device/gateway counts, disc radius,
//! topology seed, traffic regime, optional gateway-outage window and the
//! repetition budget. Matrices are seeded grids — every scenario's seed is
//! derived from a fixed base with a SplitMix64-style mixer, so the same
//! profile always produces the identical list, independent of host, clock
//! or thread count.

use serde::Serialize;

use lora_sim::{GatewayOutage, SimConfig, Traffic};

/// Base seed of every generated matrix; mixing it with the grid indices
/// yields the per-scenario topology/simulation seeds.
pub const MATRIX_BASE_SEED: u64 = 0x5EED_C04F;

/// How a scenario's devices generate uplink traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Regime {
    /// Fixed reporting interval for every device, seconds.
    Periodic {
        /// The common reporting interval `T_g`.
        interval_s: f64,
    },
    /// Every device offers the same duty cycle (the paper's Section IV
    /// contention-dominated setting).
    DutyCycle {
        /// Offered duty cycle, e.g. 0.01.
        duty: f64,
    },
}

/// An injected gateway-outage window, expressed as fractions of the run
/// so the same spec scales with the scenario duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OutageSpec {
    /// Index of the deaf gateway.
    pub gateway: usize,
    /// Outage start as a fraction of the duration.
    pub start_frac: f64,
    /// Outage end as a fraction of the duration.
    pub end_frac: f64,
}

/// One fully specified conformance scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Scenario {
    /// Stable identifier (used in reports, gates and golden files).
    pub id: String,
    /// Number of end devices.
    pub n_devices: usize,
    /// Number of gateways.
    pub n_gateways: usize,
    /// Disc radius in metres.
    pub radius_m: f64,
    /// Topology and master simulation seed.
    pub seed: u64,
    /// Traffic regime.
    pub regime: Regime,
    /// Optional injected outage.
    pub outage: Option<OutageSpec>,
    /// Simulated seconds per repetition.
    pub duration_s: f64,
    /// Simulation repetitions (averaged like the bench harness).
    pub reps: u64,
    /// Whether the exhaustive-search oracle runs on this scenario (only
    /// sensible for instances small enough to enumerate).
    pub exhaustive: bool,
    /// Whether model↔simulator agreement gates apply. Outage scenarios
    /// switch this off: the analytical model deliberately excludes
    /// failure injection, so only the hard invariants are gated there.
    pub agreement_gated: bool,
}

impl Scenario {
    /// The simulator configuration this scenario prescribes.
    pub fn sim_config(&self) -> SimConfig {
        let mut config = SimConfig {
            seed: self.seed,
            ..SimConfig::default()
        };
        config.duration_s = self.duration_s;
        match self.regime {
            Regime::Periodic { interval_s } => {
                config.traffic = Traffic::Periodic;
                config.report_interval_s = interval_s;
            }
            Regime::DutyCycle { duty } => {
                config.traffic = Traffic::DutyCycleTarget { duty };
            }
        }
        if let Some(o) = self.outage {
            config.outages.push(GatewayOutage {
                gateway: o.gateway,
                from_s: o.start_frac * self.duration_s,
                to_s: o.end_frac * self.duration_s,
            });
        }
        config
    }
}

/// Which matrix to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// CI-sized: seconds of wall clock, run by `cargo test -p conformance`
    /// and the `validate --scale smoke` CLI path.
    Smoke,
    /// The full grid: more populations, three gateways, longer runs.
    Full,
}

impl Profile {
    /// The profile's name as used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    }

    /// Parses a CLI `--scale` value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(raw: &str) -> Result<Profile, String> {
        match raw {
            "smoke" => Ok(Profile::Smoke),
            "full" => Ok(Profile::Full),
            other => Err(format!(
                "unknown conformance scale `{other}` (expected smoke or full)"
            )),
        }
    }
}

/// SplitMix64 — the scenario-seed mixer (pure, platform-independent).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of the grid cell `(a, b, c, d)`.
fn cell_seed(a: u64, b: u64, c: u64, d: u64) -> u64 {
    mix(MATRIX_BASE_SEED
        ^ mix(a)
        ^ mix(b.wrapping_mul(3))
        ^ mix(c.wrapping_mul(5))
        ^ mix(d.wrapping_mul(7)))
}

/// Generates the scenario matrix for a profile: the cross product of
/// device counts × gateway counts × traffic regimes × outage settings,
/// plus the exhaustive-oracle instances (small enough to enumerate).
pub fn matrix(profile: Profile) -> Vec<Scenario> {
    let (device_counts, gateway_counts, duration_s, reps): (&[usize], &[usize], f64, u64) =
        match profile {
            Profile::Smoke => (&[12, 24], &[1, 2], 2_400.0, 3),
            Profile::Full => (&[60, 150], &[1, 2, 3], 6_000.0, 4),
        };
    let regimes = [
        Regime::Periodic { interval_s: 600.0 },
        Regime::DutyCycle { duty: 0.01 },
    ];
    let outages: [Option<OutageSpec>; 2] = [
        None,
        Some(OutageSpec {
            gateway: 0,
            start_frac: 0.25,
            end_frac: 0.5,
        }),
    ];

    let mut scenarios = Vec::new();
    for (di, &n_devices) in device_counts.iter().enumerate() {
        for (gi, &n_gateways) in gateway_counts.iter().enumerate() {
            for (ri, &regime) in regimes.iter().enumerate() {
                for (oi, &outage) in outages.iter().enumerate() {
                    let regime_tag = match regime {
                        Regime::Periodic { .. } => "periodic",
                        Regime::DutyCycle { .. } => "duty",
                    };
                    let outage_tag = if outage.is_some() { "outage" } else { "clear" };
                    scenarios.push(Scenario {
                        id: format!("d{n_devices}-g{n_gateways}-{regime_tag}-{outage_tag}"),
                        n_devices,
                        n_gateways,
                        radius_m: 5_000.0,
                        seed: cell_seed(di as u64, gi as u64, ri as u64, oi as u64),
                        regime,
                        outage,
                        duration_s,
                        reps,
                        exhaustive: false,
                        agreement_gated: outage.is_none(),
                    });
                }
            }
        }
    }

    // Exhaustive-oracle instances: tiny single-gateway deployments whose
    // restricted candidate space the brute-force search can enumerate.
    let exhaustive_seeds: &[u64] = match profile {
        Profile::Smoke => &[2, 7, 11],
        Profile::Full => &[2, 5, 7, 11, 13],
    };
    for (i, &seed) in exhaustive_seeds.iter().enumerate() {
        scenarios.push(Scenario {
            id: format!("exhaustive-{i}"),
            n_devices: 4,
            n_gateways: 1,
            radius_m: 3_000.0,
            seed: cell_seed(0xE0, i as u64, seed, 0),
            regime: Regime::Periodic { interval_s: 600.0 },
            outage: None,
            duration_s: duration_s.min(2_400.0),
            reps,
            exhaustive: true,
            agreement_gated: false, // 4 devices are too few for a stable rank correlation
        });
    }
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_deterministic_and_ids_unique() {
        let a = matrix(Profile::Smoke);
        let b = matrix(Profile::Smoke);
        assert_eq!(a, b);
        let mut ids: Vec<&str> = a.iter().map(|s| s.id.as_str()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "scenario ids must be unique");
    }

    #[test]
    fn smoke_matrix_shape() {
        let m = matrix(Profile::Smoke);
        // 2 device counts × 2 gateway counts × 2 regimes × 2 outage
        // settings + 3 exhaustive instances.
        assert_eq!(m.len(), 16 + 3);
        assert_eq!(m.iter().filter(|s| s.exhaustive).count(), 3);
        assert!(m
            .iter()
            .filter(|s| s.outage.is_some())
            .all(|s| !s.agreement_gated));
    }

    #[test]
    fn sim_config_reflects_scenario() {
        let m = matrix(Profile::Smoke);
        let duty = m
            .iter()
            .find(|s| matches!(s.regime, Regime::DutyCycle { .. }))
            .unwrap();
        let config = duty.sim_config();
        assert_eq!(config.seed, duty.seed);
        assert_eq!(config.duration_s, duty.duration_s);
        assert!(matches!(config.traffic, Traffic::DutyCycleTarget { .. }));

        let outage = m.iter().find(|s| s.outage.is_some()).unwrap();
        let config = outage.sim_config();
        assert_eq!(config.outages.len(), 1);
        let o = config.outages[0];
        assert!(o.from_s < o.to_s && o.to_s <= outage.duration_s);
    }

    #[test]
    fn profile_parse_round_trips() {
        assert_eq!(Profile::parse("smoke"), Ok(Profile::Smoke));
        assert_eq!(Profile::parse("full"), Ok(Profile::Full));
        assert!(Profile::parse("paper").is_err());
    }
}
