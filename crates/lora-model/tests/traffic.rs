//! Model-side tests for heterogeneous rates and the duty-cycle-target
//! traffic regime.

use lora_model::contention::{overlap_from_load, overlap_probability};
use lora_model::NetworkModel;
use lora_phy::{SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::{SimConfig, Topology, Traffic};

fn small_topo(n: usize, config: &SimConfig) -> Topology {
    Topology::disc(n, 1, 1_000.0, config, 3)
}

#[test]
fn load_generalisation_reduces_to_eq14() {
    for (alpha, m) in [(0.001, 10usize), (0.01, 100), (0.05, 3)] {
        let uniform = overlap_probability(alpha, m);
        let load = overlap_from_load(alpha * m as f64);
        assert!((uniform - load).abs() < 1e-15);
    }
}

#[test]
fn faster_reporters_contend_harder() {
    // Two configurations of the same deployment: common 600 s interval vs
    // one device reporting 10× faster. The fast reporter inflates its
    // co-group members' contention and lowers their EE.
    let mut config = SimConfig::default();
    let topo = small_topo(12, &config);
    let alloc = vec![TxConfig::new(SpreadingFactor::Sf8, TxPowerDbm::new(14.0), 0); 12];

    let base_model = NetworkModel::new(&config, &topo);
    let base_ee = base_model.evaluate(&alloc);

    let mut intervals = vec![600.0; 12];
    intervals[0] = 60.0;
    config.per_device_intervals_s = Some(intervals);
    let fast_model = NetworkModel::new(&config, &topo);
    let fast_ee = fast_model.evaluate(&alloc);

    for j in 1..12 {
        assert!(
            fast_ee[j] < base_ee[j],
            "device {j} should suffer from the fast reporter: {} vs {}",
            fast_ee[j],
            base_ee[j]
        );
    }
}

#[test]
fn duty_target_makes_duty_sf_independent() {
    let config = SimConfig {
        traffic: Traffic::DutyCycleTarget { duty: 0.01 },
        ..SimConfig::default()
    };
    let topo = small_topo(5, &config);
    let model = NetworkModel::new(&config, &topo);
    for sf in SpreadingFactor::ALL {
        assert!((model.duty_of(0, sf) - 0.01).abs() < 1e-15, "{sf}");
        // And the interval scales with the time-on-air.
        let expected = model.time_on_air_s(sf) / 0.01;
        assert!((model.interval_for(0, sf) - expected).abs() < 1e-12);
    }
}

#[test]
fn duty_target_cycle_energy_scales_with_airtime() {
    let config = SimConfig {
        traffic: Traffic::DutyCycleTarget { duty: 0.01 },
        ..SimConfig::default()
    };
    let topo = small_topo(3, &config);
    let model = NetworkModel::new(&config, &topo);
    let sf7 = model.cycle_energy_of(
        0,
        &TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 0),
    );
    let sf12 = model.cycle_energy_of(
        0,
        &TxConfig::new(SpreadingFactor::Sf12, TxPowerDbm::new(14.0), 0),
    );
    // An SF12 cycle is one frame + its 99 frames' worth of sleep — roughly
    // the ToA ratio more expensive than SF7's (not 1:1 as under common
    // periodic reporting where sleep dominates both).
    assert!(sf12 / sf7 > 3.0, "{sf12} vs {sf7}");
}

#[test]
fn duty_target_increases_modelled_contention() {
    let mut periodic = SimConfig::default();
    let topo = small_topo(40, &periodic);
    let alloc = vec![TxConfig::new(SpreadingFactor::Sf9, TxPowerDbm::new(14.0), 0); 40];
    let light = NetworkModel::new(&periodic, &topo);
    periodic.traffic = Traffic::DutyCycleTarget { duty: 0.01 };
    let heavy = NetworkModel::new(&periodic, &topo);
    let light_state = light.state(alloc.clone()).unwrap();
    let heavy_state = heavy.state(alloc).unwrap();
    assert!(
        heavy_state.overlap_for(0) > light_state.overlap_for(0) * 5.0,
        "1% duty should dominate the light periodic load: {} vs {}",
        heavy_state.overlap_for(0),
        light_state.overlap_for(0)
    );
}

#[test]
fn incremental_state_consistent_under_duty_target() {
    let config = SimConfig {
        traffic: Traffic::DutyCycleTarget { duty: 0.01 },
        ..SimConfig::default()
    };
    let topo = Topology::disc(25, 2, 4_000.0, &config, 9);
    let model = NetworkModel::new(&config, &topo);
    let alloc = vec![TxConfig::default(); 25];
    let mut state = model.state(alloc).unwrap();
    let cfg = TxConfig::new(SpreadingFactor::Sf10, TxPowerDbm::new(6.0), 4);
    let predicted = state.min_ee_if(7, cfg, f64::NEG_INFINITY).unwrap();
    state.apply(7, cfg);
    let actual = state.min_ee();
    assert!(
        (predicted - actual).abs() <= 1e-9 * actual.max(1.0),
        "{predicted} vs {actual}"
    );
    // Refresh agrees with live updates.
    let before = state.ee_all().to_vec();
    state.refresh();
    for (a, b) in before.iter().zip(state.ee_all()) {
        assert!((a - b).abs() < 1e-9);
    }
}
