//! Property-based tests for the analytical model.

use lora_model::capacity::{poisson_at_most, poisson_binomial_at_most};
use lora_model::contention::{group_occupancy, overlap_probability};
use lora_model::interference::laplace_transform;
use lora_model::model::NetworkModel;
use lora_model::pdr::{pdr, prr};
use lora_phy::{SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::{SimConfig, Topology};
use proptest::prelude::*;

fn any_cfg() -> impl Strategy<Value = TxConfig> {
    ((7u8..=12), (1u8..=7), (0usize..8)).prop_map(|(sf, tp, ch)| {
        TxConfig::new(
            SpreadingFactor::from_u8(sf).unwrap(),
            TxPowerDbm::new(f64::from(tp) * 2.0),
            ch,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pdr_is_probability(
        rx in 0.0f64..1e-3,
        th in 1e-3f64..1.0,
        h in 0.0f64..1.0,
        interference in 0.0f64..1e-3,
        noise in 1e-13f64..1e-11,
        sens in 1e-13f64..1e-11,
    ) {
        let p = pdr(rx, th, h, interference, noise, sens);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn prr_bounded_and_monotone_in_gateway_count(
        pairs in proptest::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 0..12),
    ) {
        let full = prr(pairs.clone());
        prop_assert!((0.0..=1.0).contains(&full));
        if !pairs.is_empty() {
            let fewer = prr(pairs[..pairs.len() - 1].iter().copied());
            prop_assert!(full >= fewer - 1e-12, "adding a gateway cannot hurt");
        }
    }

    #[test]
    fn poisson_binomial_is_cdf(probs in proptest::collection::vec(0.0f64..=1.0, 0..60)) {
        let mut last = 0.0;
        for k in 0..10 {
            let p = poisson_binomial_at_most(&probs, k);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= last - 1e-12);
            last = p;
        }
    }

    #[test]
    fn poisson_tail_close_to_poisson_binomial_for_small_probs(
        n in 50usize..500,
        q_milli in 1u32..20,
    ) {
        let q = f64::from(q_milli) / 1000.0;
        let probs = vec![q; n];
        let exact = poisson_binomial_at_most(&probs, 7);
        let approx = poisson_at_most(q * n as f64, 7);
        // Le Cam: total variation ≤ 2·n·q².
        let bound = (2.0 * n as f64 * q * q).max(0.02);
        prop_assert!((exact - approx).abs() <= bound, "{exact} vs {approx} (bound {bound})");
    }

    #[test]
    fn overlap_probability_valid(alpha_milli in 0u32..=1000, m in 0usize..10_000) {
        let h = overlap_probability(f64::from(alpha_milli) / 1000.0, m);
        prop_assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn laplace_transform_valid(
        s in 0.0f64..1e6,
        p in 0.1f64..100.0,
        beta in 2.1f64..4.5,
        lambda in 0.0f64..1e-3,
    ) {
        let v = laplace_transform(s, p, beta, lambda);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn occupancy_sums_match_allocation(allocs in proptest::collection::vec(any_cfg(), 1..60)) {
        let counts = group_occupancy(&allocs, 8);
        prop_assert_eq!(counts.iter().sum::<usize>(), allocs.len());
    }

    #[test]
    fn incremental_prediction_matches_commit(
        n in 5usize..30,
        seed in any::<u64>(),
        device_pick in any::<usize>(),
        cfg in any_cfg(),
    ) {
        let config = SimConfig::default();
        let topo = Topology::disc(n, 2, 4_000.0, &config, seed);
        let model = NetworkModel::new(&config, &topo);
        let alloc = vec![TxConfig::default(); n];
        let mut state = model.state(alloc).unwrap();
        let device = device_pick % n;
        let predicted = state.min_ee_if(device, cfg, f64::NEG_INFINITY).unwrap();
        state.apply(device, cfg);
        let actual = state.min_ee();
        prop_assert!(
            (predicted - actual).abs() <= 1e-9 * actual.max(1.0),
            "predicted {predicted}, actual {actual}"
        );
    }

    #[test]
    fn model_ee_values_are_finite_nonnegative(
        n in 1usize..40,
        gws in 1usize..4,
        seed in any::<u64>(),
        allocs in proptest::collection::vec(any_cfg(), 40),
    ) {
        let config = SimConfig::default();
        let topo = Topology::disc(n, gws, 5_000.0, &config, seed);
        let model = NetworkModel::new(&config, &topo);
        let alloc = allocs[..n].to_vec();
        for ee in model.evaluate(&alloc) {
            prop_assert!(ee.is_finite());
            prop_assert!(ee >= 0.0);
            // 168 bits per frame and at least ~60 mJ per cycle bound EE.
            prop_assert!(ee < 3.0, "EE out of physical range: {ee}");
        }
    }
}
