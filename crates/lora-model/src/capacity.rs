//! Gateway capacity probability `θ` (paper Eq. 12).
//!
//! A gateway decodes at most eight concurrent packets, so the model needs
//! the probability that — at the moment a tagged device transmits — the
//! *other* devices occupy at most seven demodulator paths. Device `j`
//! occupies a path at gateway `k` with probability
//! `q_{j,k} = α_j · P{rx_{j,k} ≥ sensitivity}` (it must be transmitting
//! *and* detectable).
//!
//! The paper writes this as a sum over all subsets of contenders, which is
//! exponential; the same distribution is the **Poisson–binomial** over the
//! `q_{j,k}`, computed here with an exact `O(n·k)` dynamic program and,
//! for very large populations, a Poisson tail with matched mean. The unit
//! tests cross-check the DP against brute-force subset enumeration.

/// Exact probability that at most `k` of the independent events with
/// probabilities `probs` occur (Poisson–binomial CDF at `k`).
///
/// The dynamic program caps the count dimension at `k + 1`, so the cost is
/// `O(n·k)` regardless of how many events there are.
///
/// ```
/// // Three fair coins: P(at most 1 head) = 1/8 + 3/8 = 0.5.
/// let p = lora_model::capacity::poisson_binomial_at_most(&[0.5, 0.5, 0.5], 1);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn poisson_binomial_at_most(probs: &[f64], k: usize) -> f64 {
    // dp[c] = P(exactly c occurred so far), with c = k+1 absorbing
    // "more than k".
    let mut dp = vec![0.0f64; k + 2];
    dp[0] = 1.0;
    for &q in probs {
        debug_assert!((0.0..=1.0).contains(&q), "probability out of range: {q}");
        for c in (0..=k).rev() {
            let move_up = dp[c] * q;
            dp[c] -= move_up;
            dp[c + 1] += move_up;
        }
        // dp[k+1] absorbs: events landing there stay there (already > k).
    }
    dp[..=k].iter().sum::<f64>().clamp(0.0, 1.0)
}

/// Probability that a Poisson variable with the given mean is at most `k`.
///
/// Used as the large-population approximation of
/// [`poisson_binomial_at_most`] with `mean = Σ q_j` (Le Cam's theorem
/// bounds the error by `2·Σ q_j²`).
pub fn poisson_at_most(mean: f64, k: usize) -> f64 {
    debug_assert!(mean >= 0.0);
    if mean == 0.0 {
        return 1.0;
    }
    let mut term = (-mean).exp(); // P(X = 0)
    let mut acc = term;
    for i in 1..=k {
        term *= mean / i as f64;
        acc += term;
    }
    acc.clamp(0.0, 1.0)
}

/// The SX1301 path budget available to the *other* devices when one path
/// is implicitly reserved for the tagged transmission: `8 − 1`.
pub const OTHERS_BUDGET: usize = lora_mac::GATEWAY_MAX_CONCURRENT - 1;

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force subset enumeration of the paper's Eq. 12 (exponential).
    fn brute_force_at_most(probs: &[f64], k: usize) -> f64 {
        let n = probs.len();
        assert!(n <= 20);
        let mut total = 0.0;
        for mask in 0u32..(1 << n) {
            if (mask.count_ones() as usize) > k {
                continue;
            }
            let mut p = 1.0;
            for (j, &q) in probs.iter().enumerate() {
                p *= if mask & (1 << j) != 0 { q } else { 1.0 - q };
            }
            total += p;
        }
        total
    }

    #[test]
    fn dp_matches_brute_force() {
        let probs = [0.1, 0.9, 0.5, 0.3, 0.25, 0.8, 0.05, 0.6, 0.45, 0.7];
        for k in 0..probs.len() {
            let dp = poisson_binomial_at_most(&probs, k);
            let bf = brute_force_at_most(&probs, k);
            assert!((dp - bf).abs() < 1e-12, "k={k}: {dp} vs {bf}");
        }
    }

    #[test]
    fn empty_population_always_fits() {
        assert_eq!(poisson_binomial_at_most(&[], 7), 1.0);
        assert_eq!(poisson_at_most(0.0, 7), 1.0);
    }

    #[test]
    fn certain_events_count_deterministically() {
        let probs = vec![1.0; 9];
        // Nine certain occupants never fit in 7 paths …
        assert!(poisson_binomial_at_most(&probs, 7) < 1e-12);
        // … but 9 fit in 9.
        assert!((poisson_binomial_at_most(&probs, 9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_k_and_antitone_in_load() {
        let light = vec![0.01; 100];
        let heavy = vec![0.2; 100];
        for k in 0..7 {
            assert!(poisson_binomial_at_most(&light, k) <= poisson_binomial_at_most(&light, k + 1));
        }
        assert!(
            poisson_binomial_at_most(&heavy, 7) < poisson_binomial_at_most(&light, 7),
            "heavier load must reduce availability"
        );
    }

    #[test]
    fn poisson_approximates_many_small_probabilities() {
        // 2000 devices, each occupying with probability 0.002: Le Cam bound
        // 2·Σq² = 0.016.
        let probs = vec![0.002; 2000];
        let exact = poisson_binomial_at_most(&probs, 7);
        let approx = poisson_at_most(4.0, 7);
        assert!((exact - approx).abs() < 0.02, "{exact} vs {approx}");
    }

    #[test]
    fn poisson_tail_sanity() {
        // Mean 8, k = 7: a bit under half the mass is ≤ 7.
        let p = poisson_at_most(8.0, 7);
        assert!((0.4..0.5).contains(&p), "{p}");
        // Tiny mean: essentially always available.
        assert!(poisson_at_most(0.01, 7) > 0.999_999);
    }

    #[test]
    fn others_budget_is_seven() {
        assert_eq!(OTHERS_BUDGET, 7);
    }
}
