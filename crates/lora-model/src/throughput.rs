//! Per-device goodput model — the paper's "throughput fairness" future
//! work (Section III-B closing remark).
//!
//! A device's goodput is the delivered information rate,
//! `L · PRR_i / T_{g,i}` bits per second. Because the reporting interval
//! enters, the throughput and energy-efficiency objectives *disagree*
//! under duty-cycle-target traffic (small SFs deliver more bits per second
//! *and* per mJ) but diverge under fixed-rate traffic (where EE is
//! insensitive to the interval). The functions here evaluate goodput for
//! any allocation bound to a [`crate::ModelState`], so max-min throughput
//! studies can reuse the entire machinery.

use crate::model::{ModelState, NetworkModel};
use lora_phy::TxConfig;

/// Per-device goodput in bits per second under the bound allocation.
pub fn goodput_bps(state: &ModelState<'_>) -> Vec<f64> {
    let model = state.model_ref();
    state
        .alloc()
        .iter()
        .enumerate()
        .map(|(i, cfg)| device_goodput_bps(model, state, i, cfg))
        .collect()
}

fn device_goodput_bps(
    model: &NetworkModel,
    state: &ModelState<'_>,
    device: usize,
    cfg: &TxConfig,
) -> f64 {
    // EE · cycle energy = L · PRR; divide by the interval for bits/s.
    let ee_bits_per_mj = state.ee(device);
    let delivered_bits_per_cycle = ee_bits_per_mj * model.cycle_energy_of(device, cfg) * 1_000.0;
    delivered_bits_per_cycle / model.interval_for(device, cfg.sf)
}

/// The minimum goodput across devices — the max-min throughput objective.
pub fn min_goodput_bps(state: &ModelState<'_>) -> f64 {
    goodput_bps(state).into_iter().fold(f64::INFINITY, f64::min)
}

/// Jain's fairness index over per-device goodput.
pub fn goodput_jain(state: &ModelState<'_>) -> f64 {
    lora_sim::metrics::jain_index(&goodput_bps(state))
}

/// Aggregate network goodput, bits per second.
pub fn total_goodput_bps(state: &ModelState<'_>) -> f64 {
    goodput_bps(state).into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::{SpreadingFactor, TxPowerDbm};
    use lora_sim::{SimConfig, Topology, Traffic};

    fn state_for(
        config: &SimConfig,
        topo: &Topology,
        alloc: Vec<TxConfig>,
    ) -> (NetworkModel, Vec<TxConfig>) {
        (NetworkModel::new(config, topo), alloc)
    }

    #[test]
    fn goodput_scales_with_rate() {
        let config = SimConfig::default(); // 600 s interval
        let topo = Topology::disc(5, 1, 800.0, &config, 1);
        let alloc = vec![TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 0); 5];
        let (model, alloc) = state_for(&config, &topo, alloc);
        let state = model.state(alloc.clone()).unwrap();
        let slow = goodput_bps(&state);

        let fast_config = SimConfig {
            report_interval_s: 300.0,
            ..SimConfig::default()
        };
        let fast_model = NetworkModel::new(&fast_config, &topo);
        let fast_state = fast_model.state(alloc).unwrap();
        let fast = goodput_bps(&fast_state);
        for (s, f) in slow.iter().zip(&fast) {
            // Twice the rate ≈ twice the goodput (contention still light).
            assert!((f / s - 2.0).abs() < 0.1, "{f} vs {s}");
        }
    }

    #[test]
    fn near_sf7_device_has_paper_scale_goodput() {
        // 168 bits / 600 s ≈ 0.28 bit/s at PRR ≈ 1.
        let config = SimConfig::default();
        let topo = Topology::disc(1, 1, 500.0, &config, 2);
        let alloc = vec![TxConfig::new(
            SpreadingFactor::Sf7,
            TxPowerDbm::new(14.0),
            0,
        )];
        let model = NetworkModel::new(&config, &topo);
        let state = model.state(alloc).unwrap();
        let g = goodput_bps(&state)[0];
        assert!((g - 0.28).abs() < 0.02, "{g}");
    }

    #[test]
    fn duty_target_favours_small_sf_throughput() {
        let config = SimConfig {
            traffic: Traffic::DutyCycleTarget { duty: 0.01 },
            ..SimConfig::default()
        };
        let topo = Topology::disc(2, 1, 500.0, &config, 3);
        let model = NetworkModel::new(&config, &topo);
        let alloc = vec![
            TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 0),
            TxConfig::new(SpreadingFactor::Sf12, TxPowerDbm::new(14.0), 1),
        ];
        let state = model.state(alloc).unwrap();
        let g = goodput_bps(&state);
        // At equal airtime share, SF7 carries ~SF-ratio more bits/s.
        assert!(g[0] > 5.0 * g[1], "{} vs {}", g[0], g[1]);
    }

    #[test]
    fn fairness_metrics_are_well_formed() {
        let config = SimConfig::default();
        let topo = Topology::disc(20, 2, 4_000.0, &config, 4);
        let model = NetworkModel::new(&config, &topo);
        let alloc = vec![TxConfig::default(); 20];
        let state = model.state(alloc).unwrap();
        assert!(min_goodput_bps(&state) >= 0.0);
        assert!((0.0..=1.0).contains(&goodput_jain(&state)));
        assert!(total_goodput_bps(&state) >= min_goodput_bps(&state) * 20.0 - 1e-9);
    }
}
