//! Model↔simulator agreement diagnostics.
//!
//! The allocator trusts the analytical model; the experiments trust the
//! packet simulator. This module quantifies how well they agree for a
//! given deployment and allocation — per-device correlation, bias and
//! rank agreement between modelled and measured energy efficiency — so a
//! calibration change that silently decouples the two is caught by a
//! number, not a vibe.

use serde::Serialize;

/// Agreement statistics between modelled and measured per-device values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Agreement {
    /// Pearson correlation coefficient.
    pub pearson: f64,
    /// Spearman rank correlation (computed on average ranks).
    pub spearman: f64,
    /// Mean of model − measured (positive: the model is optimistic).
    pub mean_bias: f64,
    /// Mean absolute error.
    pub mean_absolute_error: f64,
    /// Number of devices compared.
    pub n: usize,
}

/// Computes agreement statistics between two equally long slices.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn agreement(model: &[f64], measured: &[f64]) -> Agreement {
    assert_eq!(model.len(), measured.len(), "series must pair up");
    assert!(!model.is_empty(), "need at least one device");
    let n = model.len();
    Agreement {
        pearson: pearson(model, measured),
        spearman: pearson(&ranks(model), &ranks(measured)),
        mean_bias: model.iter().zip(measured).map(|(a, b)| a - b).sum::<f64>() / n as f64,
        mean_absolute_error: model
            .iter()
            .zip(measured)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / n as f64,
        n,
    }
}

/// Pearson correlation; 0 when either series is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Average ranks (ties share the mean rank), the basis of Spearman's ρ.
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = mean_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let s = agreement(&a, &a);
        assert!((s.pearson - 1.0).abs() < 1e-12);
        assert!((s.spearman - 1.0).abs() < 1e-12);
        assert_eq!(s.mean_bias, 0.0);
        assert_eq!(s.mean_absolute_error, 0.0);
    }

    #[test]
    fn anti_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        let s = agreement(&a, &b);
        assert!((s.pearson + 1.0).abs() < 1e-12);
        assert!((s.spearman + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_correlation() {
        let s = agreement(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(s.pearson, 0.0);
    }

    #[test]
    fn bias_sign() {
        // Model says 2.0 everywhere, measurement 1.0: optimistic by 1.
        let s = agreement(&[2.0, 2.0], &[1.0, 1.0]);
        assert_eq!(s.mean_bias, 1.0);
        assert_eq!(s.mean_absolute_error, 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_ignores_monotone_distortion() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b: Vec<f64> = a.iter().map(|x: &f64| x.exp()).collect(); // monotone, nonlinear
        let s = agreement(&a, &b);
        assert!((s.spearman - 1.0).abs() < 1e-12);
        assert!(s.pearson < 1.0);
    }
}
