//! Analytical model of multi-gateway LoRa networks (paper Section III).
//!
//! The EF-LoRa allocator cannot afford to simulate every candidate
//! allocation; instead it evaluates a closed-form model of each device's
//! energy efficiency:
//!
//! * [`contention`] — the ALOHA overlap probability `h_i = 1 − e^{−α·m}`
//!   over the `N_{s,c}` devices sharing a (SF, channel) group
//!   (paper Eq. 14–15);
//! * [`capacity`] — the probability `θ_{i,k}` that gateway `k` has a free
//!   demodulator path (paper Eq. 12), computed exactly as a
//!   Poisson–binomial tail and approximately as a Poisson tail;
//! * [`interference`] — mean-field cumulative interference and the paper's
//!   Poisson-point-process Laplace-transform reduction (Eq. 19–20);
//! * [`pdr`] — the Rayleigh closed-form packet delivery ratio per gateway
//!   (Eq. 10) and the multi-gateway reception ratio (Eq. 5/13);
//! * [`model`] — [`model::NetworkModel`] binding a topology + configuration,
//!   and [`model::ModelState`], the incrementally updatable evaluation the
//!   greedy allocator scans candidates with.
//!
//! # Example
//!
//! ```
//! use lora_model::model::NetworkModel;
//! use lora_phy::TxConfig;
//! use lora_sim::{SimConfig, Topology};
//!
//! let config = SimConfig::default();
//! let topology = Topology::disc(30, 2, 3_000.0, &config, 1);
//! let model = NetworkModel::new(&config, &topology);
//! let alloc = vec![TxConfig::default(); 30];
//! let ee = model.evaluate(&alloc);
//! assert_eq!(ee.len(), 30);
//! assert!(ee.iter().all(|v| *v >= 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod contention;
pub mod error;
pub mod interference;
pub mod model;
pub mod pdr;
pub mod throughput;
pub mod validation;

pub use error::ModelError;
pub use model::{Ambient, ModelState, NetworkModel, ScanCache};
pub use pdr::PdrForm;
