//! Error type for model evaluation.

use std::error::Error;
use std::fmt;

/// Errors returned by the analytical model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The allocation length does not match the modelled device count.
    AllocationLengthMismatch {
        /// Devices in the model.
        devices: usize,
        /// Entries in the allocation.
        allocation: usize,
    },
    /// A channel index outside the modelled plan.
    ChannelOutOfRange {
        /// Device with the offending entry.
        device: usize,
        /// The channel index.
        channel: usize,
        /// Channels in the plan.
        plan_len: usize,
    },
    /// The configured PHY payload exceeds the LoRa maximum, so no
    /// time-on-air exists for it.
    PayloadTooLarge {
        /// Configured payload length, bytes.
        len: usize,
        /// Largest representable PHY payload, bytes.
        max: usize,
    },
    /// The dense attenuation matrix for this deployment would exceed the
    /// byte budget (`EF_LORA_ATTENUATION_BUDGET`, default 2 GiB) — a
    /// typed refusal instead of an abort-on-OOM. Deployments past this
    /// point go through the cell-sharded path (`lora-spatial` tiles plus
    /// `ef_lora::spatial`).
    TopologyTooLarge {
        /// Number of devices in the topology.
        devices: usize,
        /// Number of gateways in the topology.
        gateways: usize,
        /// Bytes the dense matrix would need.
        required_bytes: u64,
        /// The budget that refused it.
        budget_bytes: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::AllocationLengthMismatch {
                devices,
                allocation,
            } => write!(
                f,
                "allocation has {allocation} entries but the model has {devices} devices"
            ),
            ModelError::ChannelOutOfRange {
                device,
                channel,
                plan_len,
            } => write!(
                f,
                "device {device} allocated channel {channel} outside plan of {plan_len} channels"
            ),
            ModelError::PayloadTooLarge { len, max } => write!(
                f,
                "configured PHY payload of {len} bytes exceeds the LoRa maximum of {max}"
            ),
            ModelError::TopologyTooLarge {
                devices,
                gateways,
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "dense attenuation matrix for {devices} devices x {gateways} gateways needs \
                 {required_bytes} bytes, over the {budget_bytes}-byte budget; use the \
                 cell-sharded path for deployments this large"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
