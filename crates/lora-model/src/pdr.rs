//! Closed-form packet delivery and reception ratios (paper Eq. 5, 10, 13).
//!
//! Under Rayleigh fading (`g ~ Exp(1)`), the probability that a link clears
//! both reception conditions of Eq. (7) factors into the exponential closed
//! form of Eq. (10):
//!
//! ```text
//! PDR_{i,k} = exp(−(th_{s_i}·(h_i·Ī_{i,k} + N₀) + ss_k) / (p_i·a(d_{i,k})))
//! ```
//!
//! with everything in linear (mW) units: `th` the SNR threshold as a ratio,
//! `h_i` the contention overlap probability, `Ī` the mean co-group
//! interference power, `N₀` the noise power and `ss` the sensitivity.
//! The multi-gateway reception ratio then combines the per-gateway PDRs
//! weighted by the capacity probabilities `θ` (Eq. 13).

use serde::{Deserialize, Serialize};

/// Which analytical form computes the per-gateway PDR.
///
/// Paper Eq. (10) multiplies the survival probabilities of the SNR
/// condition and the sensitivity condition as if they were independent.
/// They are not: both are events on the *same* exponential fading gain
/// `g`, and by Eq. (11) the sensitivity equals `th · N₀`, so without
/// interference the two conditions coincide and the product *squares* the
/// true probability. [`PdrForm::JointExponential`] computes the exact
/// joint probability `P{g ≥ max(a, b)} = exp(−max(a, b))` instead, which
/// matches the packet-level simulator at the coverage boundary; the
/// paper's literal form remains available for fidelity comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PdrForm {
    /// The paper's literal Eq. (10): product of the two survival terms.
    PaperEq10,
    /// The exact joint probability over the shared fading gain (default).
    #[default]
    JointExponential,
}

/// Per-gateway packet delivery ratio in the selected form, linear units.
///
/// See [`pdr`] for the parameter meanings.
pub fn pdr_with(
    form: PdrForm,
    mean_rx_mw: f64,
    snr_threshold_lin: f64,
    overlap_probability: f64,
    mean_interference_mw: f64,
    noise_mw: f64,
    sensitivity_mw: f64,
) -> f64 {
    if mean_rx_mw <= 0.0 {
        return 0.0;
    }
    match form {
        PdrForm::PaperEq10 => pdr(
            mean_rx_mw,
            snr_threshold_lin,
            overlap_probability,
            mean_interference_mw,
            noise_mw,
            sensitivity_mw,
        ),
        PdrForm::JointExponential => {
            let snr_term =
                snr_threshold_lin * (overlap_probability * mean_interference_mw + noise_mw);
            (-snr_term.max(sensitivity_mw) / mean_rx_mw).exp()
        }
    }
}

/// Per-gateway packet delivery ratio, paper Eq. (10), linear units.
///
/// * `mean_rx_mw` — `p_i · a(d_{i,k})`, the mean received power;
/// * `snr_threshold_lin` — `th_{s_i}` as a linear ratio;
/// * `overlap_probability` — `h_i` (paper Eq. 14);
/// * `mean_interference_mw` — `Ī_{i,k}`;
/// * `noise_mw` — `N₀`;
/// * `sensitivity_mw` — `ss_k` for the device's SF.
///
/// Returns a probability in `[0, 1]`; a zero `mean_rx_mw` (unreachable
/// gateway) gives 0.
pub fn pdr(
    mean_rx_mw: f64,
    snr_threshold_lin: f64,
    overlap_probability: f64,
    mean_interference_mw: f64,
    noise_mw: f64,
    sensitivity_mw: f64,
) -> f64 {
    debug_assert!(mean_rx_mw >= 0.0);
    debug_assert!((0.0..=1.0).contains(&overlap_probability));
    debug_assert!(mean_interference_mw >= 0.0 && noise_mw >= 0.0 && sensitivity_mw >= 0.0);
    if mean_rx_mw <= 0.0 {
        return 0.0;
    }
    let numerator = snr_threshold_lin * (overlap_probability * mean_interference_mw + noise_mw)
        + sensitivity_mw;
    (-numerator / mean_rx_mw).exp()
}

/// Multi-gateway packet reception ratio, paper Eq. (13):
/// `PRR = 1 − Π_k (1 − θ_{i,k}·PDR_{i,k})`.
///
/// `per_gateway` yields `(θ, PDR)` pairs; both must be probabilities.
///
/// ```
/// // Two mediocre gateways beat one: 1 − 0.5² = 0.75.
/// let prr = lora_model::pdr::prr([(1.0, 0.5), (1.0, 0.5)]);
/// assert!((prr - 0.75).abs() < 1e-12);
/// ```
pub fn prr(per_gateway: impl IntoIterator<Item = (f64, f64)>) -> f64 {
    let mut miss_all = 1.0;
    for (theta, pdr) in per_gateway {
        debug_assert!((0.0..=1.0).contains(&theta), "theta out of range: {theta}");
        debug_assert!((0.0..=1.0).contains(&pdr), "pdr out of range: {pdr}");
        miss_all *= 1.0 - theta * pdr;
    }
    (1.0 - miss_all).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOISE: f64 = 2e-12; // ≈ −117 dBm in mW
    const SENS7: f64 = 5.01e-13; // ≈ −123 dBm
    const TH7: f64 = 0.251; // −6 dB

    #[test]
    fn strong_link_without_interference_is_near_perfect() {
        let p = pdr(1e-7, TH7, 0.0, 0.0, NOISE, SENS7);
        assert!(p > 0.999_9, "{p}");
    }

    #[test]
    fn at_sensitivity_boundary_pdr_is_exp_minus_two_ish() {
        // Mean rx exactly at sensitivity: the two independent survival
        // factors of Eq. (10) each cost ≈ e⁻¹ (since ss ≈ th·N₀).
        let p = pdr(SENS7, TH7, 0.0, 0.0, NOISE, SENS7);
        let expected = (-(TH7 * NOISE + SENS7) / SENS7).exp();
        assert!((p - expected).abs() < 1e-12);
        assert!((0.1..0.2).contains(&p), "{p}");
    }

    #[test]
    fn pdr_monotone_in_power_and_antitone_in_interference() {
        let base = pdr(1e-10, TH7, 0.5, 1e-10, NOISE, SENS7);
        assert!(pdr(2e-10, TH7, 0.5, 1e-10, NOISE, SENS7) > base);
        assert!(pdr(1e-10, TH7, 0.5, 2e-10, NOISE, SENS7) < base);
        assert!(pdr(1e-10, TH7, 0.8, 1e-10, NOISE, SENS7) < base);
    }

    #[test]
    fn unreachable_gateway_gives_zero() {
        assert_eq!(pdr(0.0, TH7, 0.0, 0.0, NOISE, SENS7), 0.0);
    }

    #[test]
    fn prr_improves_with_gateways() {
        let one = prr([(1.0, 0.6)]);
        let two = prr([(1.0, 0.6), (1.0, 0.6)]);
        let three = prr([(1.0, 0.6), (1.0, 0.6), (1.0, 0.6)]);
        assert!(one < two && two < three);
        assert!((one - 0.6).abs() < 1e-12);
    }

    #[test]
    fn theta_scales_gateway_contribution() {
        // A fully busy gateway (θ = 0) contributes nothing.
        assert_eq!(prr([(0.0, 1.0)]), 0.0);
        let limited = prr([(0.5, 0.8)]);
        assert!((limited - 0.4).abs() < 1e-12);
    }

    #[test]
    fn prr_of_empty_gateway_set_is_zero() {
        assert_eq!(prr(std::iter::empty()), 0.0);
    }

    #[test]
    fn joint_form_is_exp_minus_one_at_boundary() {
        // Without interference the two conditions coincide, so the exact
        // probability at mean rx == sensitivity is e^−(ss/ss)·(th·N0 vs ss
        // whichever larger) ≈ e^−1 — what the packet simulator measures.
        let p = pdr_with(
            PdrForm::JointExponential,
            SENS7,
            TH7,
            0.0,
            0.0,
            NOISE,
            SENS7,
        );
        let expected = (-(TH7 * NOISE).max(SENS7) / SENS7).exp();
        assert!((p - expected).abs() < 1e-12);
        assert!((0.3..0.4).contains(&p), "{p}");
    }

    #[test]
    fn paper_form_squares_the_boundary_probability() {
        let joint = pdr_with(
            PdrForm::JointExponential,
            SENS7,
            TH7,
            0.0,
            0.0,
            NOISE,
            SENS7,
        );
        let paper = pdr_with(PdrForm::PaperEq10, SENS7, TH7, 0.0, 0.0, NOISE, SENS7);
        // th·N0 ≈ ss here, so the product ≈ joint².
        assert!(
            (paper - joint * joint).abs() < 0.01,
            "{paper} vs {}",
            joint * joint
        );
        assert!(paper < joint);
    }

    #[test]
    fn forms_agree_when_interference_dominates() {
        // With heavy interference th·(h·Ī + N0) ≫ ss: the sensitivity term
        // is negligible and both forms converge.
        let rx = 1e-9;
        let heavy = 1e-7;
        let joint = pdr_with(PdrForm::JointExponential, rx, TH7, 1.0, heavy, NOISE, SENS7);
        let paper = pdr_with(PdrForm::PaperEq10, rx, TH7, 1.0, heavy, NOISE, SENS7);
        assert!(
            (joint - paper).abs() / joint.max(1e-30) < 0.1,
            "{joint} vs {paper}"
        );
    }

    #[test]
    fn joint_form_is_still_a_probability_and_monotone() {
        let base = pdr_with(
            PdrForm::JointExponential,
            1e-10,
            TH7,
            0.5,
            1e-10,
            NOISE,
            SENS7,
        );
        assert!((0.0..=1.0).contains(&base));
        assert!(
            pdr_with(
                PdrForm::JointExponential,
                2e-10,
                TH7,
                0.5,
                1e-10,
                NOISE,
                SENS7
            ) > base
        );
        assert!(
            pdr_with(
                PdrForm::JointExponential,
                1e-10,
                TH7,
                0.5,
                3e-10,
                NOISE,
                SENS7
            ) < base
        );
        assert_eq!(
            pdr_with(PdrForm::JointExponential, 0.0, TH7, 0.0, 0.0, NOISE, SENS7),
            0.0
        );
    }
}
