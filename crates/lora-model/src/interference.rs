//! Cumulative interference: mean-field sums and the PPP Laplace transform.
//!
//! Evaluating the exact interference on device `i` requires every
//! co-group device's power and distance. The paper offers two levels:
//!
//! * the **mean-field** sum `Ī_{i,k} = Σ_{j∈group, j≠i} p_j·a(d_{j,k})`
//!   (the expectation of Eq. 16's numerator under unit-mean fading), which
//!   this crate maintains incrementally per (group, gateway);
//! * the **Laplace-transform reduction** (Eq. 18–20): when devices form a
//!   Poisson point process of density `λ_{s,c}`, the Laplace transform of
//!   the cumulative interference has the closed form
//!   `L_I(s) = exp(−2πλ(s·p)^{2/β}·C(β))` with
//!   `C(β) = (π/β)/sin(2π/β)` for `β > 2`, removing the per-device sum.

use std::f64::consts::PI;

/// The geometry constant `C(β) = ∫₀^∞ r/(1+r^β) dr = (π/β)/sin(2π/β)`,
/// finite for `β > 2` (paper Eq. 19's inner double integral).
///
/// # Panics
///
/// Panics if `beta <= 2`, where the integral diverges — the caller must
/// not use the PPP reduction for free-space-like exponents.
///
/// ```
/// let c = lora_model::interference::geometry_constant(4.0);
/// assert!((c - std::f64::consts::PI / 4.0).abs() < 1e-12);
/// ```
pub fn geometry_constant(beta: f64) -> f64 {
    assert!(
        beta > 2.0,
        "PPP interference integral diverges for beta <= 2"
    );
    (PI / beta) / (2.0 * PI / beta).sin()
}

/// Numerical evaluation of `∫₀^∞ r/(1+r^β) dr` by adaptive Simpson on a
/// transformed domain — used in tests to validate [`geometry_constant`].
pub fn geometry_constant_numeric(beta: f64) -> f64 {
    assert!(beta > 2.0);
    // Substitute r = t/(1−t) mapping (0,1) → (0,∞):
    // dr = dt/(1−t)², integrand r/(1+r^β)·dr.
    let f = |t: f64| {
        if t <= 0.0 || t >= 1.0 {
            return 0.0;
        }
        let r = t / (1.0 - t);
        (r / (1.0 + r.powf(beta))) / (1.0 - t).powi(2)
    };
    // Composite Simpson with a fine grid; the integrand is smooth.
    let n = 20_000;
    let h = 1.0 / n as f64;
    let mut acc = 0.0;
    for i in 0..n {
        let a = i as f64 * h;
        acc += (f(a) + 4.0 * f(a + h / 2.0) + f(a + h)) * h / 6.0;
    }
    acc
}

/// The Laplace transform of the PPP cumulative interference evaluated at
/// `s` (paper Eq. 19): `exp(−2πλ(s·p)^{2/β}·C(β))`, where `λ` is the
/// density of co-group devices per square metre and `p` their (common)
/// transmit power in milliwatts.
///
/// Returns a value in `(0, 1]`; `λ = 0` (no contenders) gives exactly 1.
pub fn laplace_transform(s: f64, power_mw: f64, beta: f64, density_per_m2: f64) -> f64 {
    debug_assert!(s >= 0.0 && power_mw >= 0.0 && density_per_m2 >= 0.0);
    if s == 0.0 || density_per_m2 == 0.0 || power_mw == 0.0 {
        return 1.0;
    }
    let c = geometry_constant(beta);
    (-2.0 * PI * density_per_m2 * (s * power_mw).powf(2.0 / beta) * c).exp()
}

/// The density `λ_{s,c} = λ·N_{s,c}/N` of a contention group when `n_group`
/// of the `n_total` devices (deployed with overall density
/// `density_per_m2`) share the group (paper Eq. 20).
pub fn group_density(density_per_m2: f64, n_group: usize, n_total: usize) -> f64 {
    if n_total == 0 {
        0.0
    } else {
        density_per_m2 * n_group as f64 / n_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_quadrature() {
        for beta in [2.5, 2.7, 3.0, 3.2, 3.7, 4.0, 4.3] {
            let closed = geometry_constant(beta);
            let numeric = geometry_constant_numeric(beta);
            assert!(
                (closed - numeric).abs() / closed < 1e-2,
                "beta={beta}: {closed} vs {numeric}"
            );
        }
    }

    #[test]
    fn beta_4_special_value() {
        // ∫ r/(1+r⁴) dr = π/4.
        assert!((geometry_constant(4.0) - PI / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn beta_2_diverges() {
        let _ = geometry_constant(2.0);
    }

    #[test]
    fn laplace_is_a_probability_like_factor() {
        for s in [1e-9, 1e-3, 1.0, 1e3] {
            for lambda in [0.0, 1e-8, 1e-6, 1e-4] {
                let v = laplace_transform(s, 25.0, 3.5, lambda);
                assert!((0.0..=1.0).contains(&v), "s={s} λ={lambda}: {v}");
            }
        }
    }

    #[test]
    fn laplace_decreases_with_density_and_s() {
        let base = laplace_transform(1.0, 25.0, 3.5, 1e-6);
        assert!(laplace_transform(1.0, 25.0, 3.5, 2e-6) < base);
        assert!(laplace_transform(2.0, 25.0, 3.5, 1e-6) < base);
        assert_eq!(laplace_transform(0.0, 25.0, 3.5, 1e-6), 1.0);
        assert_eq!(laplace_transform(1.0, 25.0, 3.5, 0.0), 1.0);
    }

    #[test]
    fn group_density_is_proportional() {
        let d = group_density(1e-4, 25, 100);
        assert!((d - 2.5e-5).abs() < 1e-18);
        assert_eq!(group_density(1e-4, 5, 0), 0.0);
    }
}
