//! The network-wide energy-efficiency model (paper Eq. 17–18) with
//! incremental evaluation.
//!
//! [`NetworkModel`] captures everything that does not depend on the
//! allocation: attenuations, per-SF time-on-air, thresholds and the energy
//! model. [`ModelState`] then binds an allocation and maintains the
//! group-level aggregates — member lists, mean interference power sums and
//! gateway occupancy loads — that let the greedy allocator evaluate
//! "what is the network minimum EE if device *i* moves to configuration
//! *c*?" in time proportional to the two affected contention groups rather
//! than the whole network.
//!
//! ## Approximations (documented deviations)
//!
//! * The gateway-capacity factor `θ` uses a Poisson tail with mean
//!   `Λ_k − q_{i,k}` where `Λ_k` is the total expected demodulator
//!   occupancy at gateway `k`. `Λ` is updated on committed moves but *not*
//!   during a hypothetical candidate scan (one device among thousands
//!   perturbs it negligibly); [`ModelState::refresh`] recomputes it, and the
//!   allocator calls it between passes. The exact Poisson–binomial is
//!   available in [`crate::capacity`] and is used by
//!   [`NetworkModel::evaluate_exact_theta`].
//! * EE values cached for devices in *unaffected* groups are not
//!   recomputed when `Λ` drifts; `refresh` flushes this too.

use lora_phy::energy::RadioEnergyModel;
use lora_phy::link::noise_floor_dbm;
use lora_phy::toa::ToaParams;
use lora_phy::{dbm_to_mw, Bandwidth, SpreadingFactor, TxConfig, TxPowerDbm};
use lora_sim::{AttenuationMatrix, DeviceSite, Position, SimConfig, Topology, Traffic};

use crate::capacity::{poisson_at_most, poisson_binomial_at_most, OTHERS_BUDGET};
use crate::contention::{group_count, group_index, overlap_from_load};
use crate::error::ModelError;
use crate::interference::{group_density, laplace_transform};
use crate::pdr::{pdr_with, prr, PdrForm};

/// Allocation-independent model of one deployment.
///
/// `PartialEq` compares every derived quantity bitwise — it exists so
/// equivalence tests can assert that an incrementally maintained model
/// ([`NetworkModel::extend_rows`] and friends) is indistinguishable from
/// a from-scratch [`NetworkModel::new`] over the same population.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Linear attenuation, flat row-major `[device][gateway]`.
    attenuation: AttenuationMatrix,
    /// Number of devices (kept explicitly: the attenuation matrix cannot
    /// recover it for a zero-gateway deployment).
    n_devices: usize,
    /// Number of gateways (kept explicitly: the attenuation matrix is
    /// empty for a zero-device deployment).
    n_gateways: usize,
    /// Per-device path-loss exponent (for the Laplace variant).
    beta: Vec<f64>,
    /// Time-on-air per SF for the configured payload, seconds.
    toa_by_sf: [f64; 6],
    /// Sensitivity per SF, mW.
    sens_mw: [f64; 6],
    /// SNR threshold per SF, linear ratio.
    th_lin: [f64; 6],
    /// Noise floor, mW.
    noise_mw: f64,
    /// Delivered bits per frame (`L` of Eq. 2).
    payload_bits: f64,
    /// Common reporting interval `T_g`, seconds.
    interval_s: f64,
    /// Per-device reporting intervals (all equal to `interval_s` unless
    /// the Section III-E heterogeneous-rates extension is configured).
    /// Under [`Traffic::DutyCycleTarget`] intervals depend on the SF, so
    /// this vector is ignored in favour of `traffic`.
    intervals: Vec<f64>,
    /// Traffic model (fixes the duty cycle under `DutyCycleTarget`).
    traffic: Traffic,
    /// Radio energy model.
    energy: RadioEnergyModel,
    /// Number of uplink channels.
    n_channels: usize,
    /// Overall deployment density, devices per m².
    density_per_m2: f64,
    /// Which analytical PDR form to evaluate (see [`PdrForm`]).
    pdr_form: PdrForm,
    /// Frozen contributions of out-of-scope devices (see [`Ambient`]);
    /// `None` means a self-contained deployment.
    ambient: Option<Ambient>,
}

/// Frozen contributions of devices *outside* a model's scope.
///
/// The cell-sharded allocator solves one cell at a time: the cell's
/// devices form the model's population, while the boundary ring and the
/// analytically priced far field stay fixed during the cell's solve.
/// Their aggregate effect enters here — as additive offsets to the three
/// group/gateway sums [`ModelState`] maintains — so the greedy scan and
/// the repair machinery run unmodified on the local subproblem:
///
/// * `power` adds to each contention group's received-power sum at each
///   gateway (interference seen by local devices);
/// * `load` adds to each group's contention load `Σα` (collision
///   pressure on the shared slots);
/// * `lambda` adds to each gateway's expected demodulator occupancy `Λ`
///   (capacity pressure).
///
/// All-zero offsets are bitwise indistinguishable from no ambient at
/// all, which is the equivalence the below-threshold proptests pin.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ambient {
    /// Added to the group received-power sums, mW, flat
    /// `[group][gateway]` with `group_count(channels)` rows.
    pub power: Vec<f64>,
    /// Added to the per-group contention loads `Σα` (dimensionless).
    pub load: Vec<f64>,
    /// Added to the per-gateway expected occupancy `Λ` (dimensionless).
    pub lambda: Vec<f64>,
}

impl Ambient {
    /// An all-zero ambient for a model with `groups` contention groups
    /// and `gateways` gateways.
    pub fn zeros(groups: usize, gateways: usize) -> Self {
        Ambient {
            power: vec![0.0; groups * gateways],
            load: vec![0.0; groups],
            lambda: vec![0.0; gateways],
        }
    }
}

impl NetworkModel {
    /// Builds the model for a deployment under a simulation configuration,
    /// guaranteeing model and simulator share every physical parameter.
    ///
    /// # Panics
    ///
    /// Panics if the configured payload exceeds the LoRa maximum; use
    /// [`NetworkModel::try_new`] to handle that case as an error.
    pub fn new(config: &SimConfig, topology: &Topology) -> Self {
        Self::try_new(config, topology).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`NetworkModel::new`]: an oversize payload surfaces as
    /// [`ModelError::PayloadTooLarge`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PayloadTooLarge`] when no time-on-air exists
    /// for `config.phy_payload_len()`, and [`ModelError::TopologyTooLarge`]
    /// when the dense attenuation matrix would exceed the byte budget
    /// (`EF_LORA_ATTENUATION_BUDGET`, default 2 GiB).
    pub fn try_new(config: &SimConfig, topology: &Topology) -> Result<Self, ModelError> {
        Self::try_new_with_budget(config, topology, lora_sim::attenuation_budget_from_env())
    }

    /// [`NetworkModel::try_new`] with an explicit byte budget for the
    /// dense attenuation matrix instead of the environment default.
    pub fn try_new_with_budget(
        config: &SimConfig,
        topology: &Topology,
        budget_bytes: u64,
    ) -> Result<Self, ModelError> {
        // Shared with the simulator — and parallelised there for large
        // deployments (see `lora_sim::attenuation_matrix`). The budget
        // turns what would be an abort-on-OOM into a typed refusal that
        // points at the cell-sharded path.
        let attenuation = lora_sim::try_attenuation_matrix(config, topology, budget_bytes)
            .map_err(|e| match e {
                lora_sim::SimError::TopologyTooLarge {
                    devices,
                    gateways,
                    required_bytes,
                    budget_bytes,
                } => ModelError::TopologyTooLarge {
                    devices,
                    gateways,
                    required_bytes,
                    budget_bytes,
                },
                other => panic!("unexpected attenuation build failure: {other}"),
            })?;
        Self::try_new_with_attenuation(config, topology, attenuation)
    }

    /// [`NetworkModel::try_new`] over a caller-supplied attenuation
    /// matrix — the entry point for the cell-sharded path, where the
    /// per-cell rows come from a `lora-spatial` tile built against the
    /// cell's gateway subset rather than a fresh dense build. The matrix
    /// must use the same kernel as [`lora_sim::attenuation_matrix`] for
    /// the model to stay bitwise consistent with the dense path.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PayloadTooLarge`] as in
    /// [`NetworkModel::try_new`], and
    /// [`ModelError::AllocationLengthMismatch`] when the matrix row count
    /// does not match the topology's device count.
    pub fn try_new_with_attenuation(
        config: &SimConfig,
        topology: &Topology,
        attenuation: AttenuationMatrix,
    ) -> Result<Self, ModelError> {
        if topology.gateway_count() > 0
            && (attenuation.device_count() != topology.device_count()
                || attenuation.gateway_count() != topology.gateway_count())
        {
            return Err(ModelError::AllocationLengthMismatch {
                devices: topology.device_count(),
                allocation: attenuation.device_count(),
            });
        }
        let bw = Bandwidth::Bw125;
        let payload = config.phy_payload_len();
        let mut toa_by_sf = [0.0; 6];
        let mut sens_mw = [0.0; 6];
        let mut th_lin = [0.0; 6];
        for sf in SpreadingFactor::ALL {
            toa_by_sf[sf.index()] = ToaParams::new(sf, bw, config.coding_rate)
                .time_on_air_s(payload)
                .map_err(|e| match e {
                    lora_phy::PhyError::PayloadTooLarge { len, max } => {
                        ModelError::PayloadTooLarge { len, max }
                    }
                    other => panic!("unexpected time-on-air failure: {other}"),
                })?;
            sens_mw[sf.index()] = dbm_to_mw(sf.sensitivity_dbm(bw, config.noise_figure_db));
            th_lin[sf.index()] = dbm_to_mw(sf.snr_threshold_db());
        }
        let beta = topology
            .devices()
            .iter()
            .map(|site| config.betas.beta(site.environment))
            .collect();
        let area = std::f64::consts::PI * topology.radius_m().powi(2);
        let density_per_m2 = if area > 0.0 {
            topology.device_count() as f64 / area
        } else {
            0.0
        };
        Ok(NetworkModel {
            attenuation,
            n_devices: topology.device_count(),
            n_gateways: topology.gateway_count(),
            beta,
            toa_by_sf,
            sens_mw,
            th_lin,
            noise_mw: dbm_to_mw(noise_floor_dbm(bw, config.noise_figure_db)),
            payload_bits: config.payload_bits(),
            interval_s: config.report_interval_s,
            intervals: (0..topology.device_count())
                .map(|i| config.interval_of(i))
                .collect(),
            traffic: config.traffic,
            energy: config.energy.clone(),
            n_channels: config.region.uplink_channel_count(),
            density_per_m2,
            pdr_form: PdrForm::default(),
            ambient: None,
        })
    }

    /// Selects the analytical PDR form. The default,
    /// [`PdrForm::JointExponential`], is the exact joint probability that
    /// matches the packet simulator; [`PdrForm::PaperEq10`] evaluates the
    /// paper's literal product form.
    #[must_use]
    pub fn with_pdr_form(mut self, form: PdrForm) -> Self {
        self.pdr_form = form;
        self
    }

    /// Installs frozen out-of-scope contributions (see [`Ambient`]).
    /// Every subsequent [`NetworkModel::state`] build — including
    /// [`ModelState::refresh`] — starts its group sums from these offsets
    /// instead of zero.
    ///
    /// # Panics
    ///
    /// Panics when the offset dimensions do not match this model
    /// (`load` per contention group, `lambda` per gateway, `power` flat
    /// `[group][gateway]`).
    #[must_use]
    pub fn with_ambient(mut self, ambient: Ambient) -> Self {
        let n_groups = group_count(self.n_channels);
        assert_eq!(ambient.load.len(), n_groups, "one load offset per group");
        assert_eq!(
            ambient.lambda.len(),
            self.n_gateways,
            "one occupancy offset per gateway"
        );
        assert_eq!(
            ambient.power.len(),
            n_groups * self.n_gateways,
            "power offsets must be flat [group][gateway]"
        );
        assert!(
            ambient
                .power
                .iter()
                .chain(&ambient.load)
                .chain(&ambient.lambda)
                .all(|v| v.is_finite() && *v >= 0.0),
            "ambient offsets must be finite and non-negative"
        );
        self.ambient = Some(ambient);
        self
    }

    /// The installed ambient offsets, if any.
    pub fn ambient(&self) -> Option<&Ambient> {
        self.ambient.as_ref()
    }

    /// Number of modelled devices.
    pub fn device_count(&self) -> usize {
        self.n_devices
    }

    /// Number of modelled gateways.
    pub fn gateway_count(&self) -> usize {
        self.n_gateways
    }

    /// Number of uplink channels in the plan.
    pub fn channel_count(&self) -> usize {
        self.n_channels
    }

    /// Linear attenuation between device `i` and gateway `k`.
    pub fn attenuation(&self, device: usize, gateway: usize) -> f64 {
        self.attenuation.at(device, gateway)
    }

    /// The full attenuation matrix, shared with the simulator. Clone it
    /// into [`lora_sim::Simulation::with_attenuation`] to build simulations
    /// of the same deployment without recomputing path loss.
    pub fn shared_attenuation(&self) -> &AttenuationMatrix {
        &self.attenuation
    }

    /// Time-on-air for the configured payload at `sf`, seconds.
    pub fn time_on_air_s(&self, sf: SpreadingFactor) -> f64 {
        self.toa_by_sf[sf.index()]
    }

    /// The duty cycle `α = T/T_g` at `sf` under the *common* reporting
    /// interval (paper Eq. 15).
    pub fn duty_cycle(&self, sf: SpreadingFactor) -> f64 {
        self.toa_by_sf[sf.index()] / self.interval_s
    }

    /// The duty cycle of device `i` if it used `sf`, honouring its own
    /// reporting interval (the heterogeneous-rates generalisation of
    /// Eq. 15). Under [`Traffic::DutyCycleTarget`] this is the fixed duty
    /// regardless of SF.
    pub fn duty_of(&self, device: usize, sf: SpreadingFactor) -> f64 {
        match self.traffic {
            Traffic::Periodic => self.toa_by_sf[sf.index()] / self.intervals[device],
            Traffic::DutyCycleTarget { duty } => duty,
        }
    }

    /// The reporting interval device `i` would use at `sf`: its configured
    /// interval under periodic traffic, `ToA(sf)/duty` under a duty-cycle
    /// target.
    pub fn interval_for(&self, device: usize, sf: SpreadingFactor) -> f64 {
        match self.traffic {
            Traffic::Periodic => self.intervals[device],
            Traffic::DutyCycleTarget { duty } => self.toa_by_sf[sf.index()] / duty,
        }
    }

    /// Energy of one reporting cycle under configuration `cfg` at the
    /// common interval, joules (the `E_s` of Eq. 2, including sleep).
    pub fn cycle_energy_j(&self, cfg: &TxConfig) -> f64 {
        self.energy
            .cycle_energy_j(cfg.tp, self.time_on_air_s(cfg.sf), self.interval_s)
    }

    /// Energy of one reporting cycle of device `i` under configuration
    /// `cfg`, honouring its own reporting interval and the traffic model.
    pub fn cycle_energy_of(&self, device: usize, cfg: &TxConfig) -> f64 {
        self.energy.cycle_energy_j(
            cfg.tp,
            self.time_on_air_s(cfg.sf),
            self.interval_for(device, cfg.sf),
        )
    }

    /// The common reporting interval `T_g`, seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// The reporting interval of device `i`, seconds.
    pub fn interval_of(&self, device: usize) -> f64 {
        self.intervals[device]
    }

    /// Delivered bits per frame (the `L` of Eq. 2).
    pub fn payload_bits(&self) -> f64 {
        self.payload_bits
    }

    /// The smallest SF whose mean received power reaches *some* gateway's
    /// sensitivity at transmit power `tp`, or `None` if even SF12 falls
    /// short everywhere. This is the legacy-LoRa SF rule (estimated SNR,
    /// no interference).
    pub fn min_feasible_sf(&self, device: usize, tp: TxPowerDbm) -> Option<SpreadingFactor> {
        let p_mw = tp.milliwatts();
        let best_atten = self
            .attenuation
            .row(device)
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        SpreadingFactor::ALL
            .into_iter()
            .find(|sf| p_mw * best_atten >= self.sens_mw[sf.index()])
    }

    /// Occupancy probability `q_{i,k}`: the chance device `i` holds a
    /// demodulator path at gateway `k` at a random instant — transmitting
    /// (duty cycle) and detectable (Rayleigh survival of the sensitivity).
    pub fn occupancy_probability(&self, device: usize, cfg: &TxConfig, gateway: usize) -> f64 {
        let mean_rx = cfg.tp.milliwatts() * self.attenuation.at(device, gateway);
        if mean_rx <= 0.0 {
            return 0.0;
        }
        let detect = (-self.sens_mw[cfg.sf.index()] / mean_rx).exp();
        self.duty_of(device, cfg.sf) * detect
    }

    /// Validates an allocation against this model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::AllocationLengthMismatch`] or
    /// [`ModelError::ChannelOutOfRange`].
    pub fn validate(&self, alloc: &[TxConfig]) -> Result<(), ModelError> {
        if alloc.len() != self.device_count() {
            return Err(ModelError::AllocationLengthMismatch {
                devices: self.device_count(),
                allocation: alloc.len(),
            });
        }
        for (device, cfg) in alloc.iter().enumerate() {
            if cfg.channel >= self.n_channels {
                return Err(ModelError::ChannelOutOfRange {
                    device,
                    channel: cfg.channel,
                    plan_len: self.n_channels,
                });
            }
        }
        Ok(())
    }

    /// Evaluates the energy efficiency (bits/mJ, Eq. 17) of every device
    /// under `alloc`, using the incremental machinery once.
    ///
    /// # Panics
    ///
    /// Panics if the allocation is invalid; use [`NetworkModel::validate`]
    /// or [`NetworkModel::state`] for fallible entry points.
    pub fn evaluate(&self, alloc: &[TxConfig]) -> Vec<f64> {
        self.state(alloc.to_vec())
            .expect("valid allocation")
            .ee_all()
            .to_vec()
    }

    /// Like [`NetworkModel::evaluate`] but with the exact Poisson–binomial
    /// capacity factor instead of the Poisson approximation. `O(N²·G)` —
    /// use for validation, not inside the allocator.
    pub fn evaluate_exact_theta(&self, alloc: &[TxConfig]) -> Vec<f64> {
        self.validate(alloc).expect("valid allocation");
        let n = self.device_count();
        let g = self.gateway_count();
        // q[k][j]
        let mut q = vec![vec![0.0; n]; g];
        for j in 0..n {
            for (k, qk) in q.iter_mut().enumerate() {
                qk[j] = self.occupancy_probability(j, &alloc[j], k);
            }
        }
        let state = self.state(alloc.to_vec()).expect("validated");
        (0..n)
            .map(|i| {
                let cfg = &alloc[i];
                let h = state.overlap_for(i);
                let per_gw = (0..g).map(|k| {
                    let probs: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| q[k][j]).collect();
                    let theta = poisson_binomial_at_most(&probs, OTHERS_BUDGET);
                    let mean_rx = cfg.tp.milliwatts() * self.attenuation.at(i, k);
                    let interference = state.interference_on(i, k);
                    let p = pdr_with(
                        self.pdr_form,
                        mean_rx,
                        self.th_lin[cfg.sf.index()],
                        h,
                        interference,
                        self.noise_mw,
                        self.sens_mw[cfg.sf.index()],
                    );
                    (theta, p)
                });
                self.payload_bits * prr(per_gw) / (self.cycle_energy_j(cfg) * 1_000.0)
            })
            .collect()
    }

    /// Evaluates EE with the paper's PPP/Laplace interference reduction
    /// (Eq. 18–20) instead of the per-device mean-field sum: the cumulative
    /// interference term is replaced by
    /// `L_I(th·h/(p·a))` at group density `λ_{s,c}` (Eq. 20).
    ///
    /// Requires every per-device path-loss exponent to exceed 2 (the PPP
    /// integral diverges otherwise); exponents are clamped to 2.05.
    pub fn evaluate_laplace(&self, alloc: &[TxConfig]) -> Vec<f64> {
        self.validate(alloc).expect("valid allocation");
        let n = self.device_count();
        let counts = crate::contention::group_occupancy(alloc, self.n_channels);
        let state = self.state(alloc.to_vec()).expect("validated");
        (0..n)
            .map(|i| {
                let cfg = &alloc[i];
                let sfi = cfg.sf.index();
                let group = group_index(cfg.sf, cfg.channel, self.n_channels);
                let lambda_sc =
                    group_density(self.density_per_m2, counts[group].saturating_sub(1), n);
                let h = state.overlap_for(i);
                let beta = self.beta[i].max(2.05);
                let per_gw = (0..self.gateway_count()).map(|k| {
                    let mean_rx = cfg.tp.milliwatts() * self.attenuation.at(i, k);
                    if mean_rx <= 0.0 {
                        return (1.0, 0.0);
                    }
                    let s = self.th_lin[sfi] * h / mean_rx;
                    let l = laplace_transform(s, cfg.tp.milliwatts(), beta, lambda_sc);
                    let noise_part =
                        (-(self.th_lin[sfi] * self.noise_mw + self.sens_mw[sfi]) / mean_rx).exp();
                    let theta = state.theta(i, k);
                    (theta, (l * noise_part).clamp(0.0, 1.0))
                });
                self.payload_bits * prr(per_gw) / (self.cycle_energy_j(cfg) * 1_000.0)
            })
            .collect()
    }

    /// Binds an allocation, producing the incrementally updatable state.
    ///
    /// # Errors
    ///
    /// Returns the validation errors of [`NetworkModel::validate`].
    pub fn state(&self, alloc: Vec<TxConfig>) -> Result<ModelState<'_>, ModelError> {
        self.validate(&alloc)?;
        Ok(ModelState::build(self, alloc))
    }

    /// Re-derives the reporting-interval fields from `config` after a
    /// churn event changed the population's class mix. `config` must
    /// differ from the construction-time configuration only in its
    /// reporting-interval fields — everything else (payload, energy
    /// model, path loss, channel plan) is immutable under churn.
    pub fn refresh_intervals(&mut self, config: &SimConfig) {
        self.interval_s = config.report_interval_s;
        self.intervals = (0..self.n_devices).map(|i| config.interval_of(i)).collect();
    }

    /// Appends the rows of a batch of joining devices (a churn `Join`),
    /// keeping the model bitwise equal to [`NetworkModel::new`] over the
    /// extended population: the attenuation rows come from the same
    /// shared kernel, and the intervals/density are re-derived with the
    /// construction-time expressions.
    pub fn extend_rows(
        &mut self,
        config: &SimConfig,
        new_sites: &[DeviceSite],
        gateways: &[Position],
        radius_m: f64,
    ) {
        self.attenuation.extend_rows(config, new_sites, gateways);
        self.beta.extend(
            new_sites
                .iter()
                .map(|site| config.betas.beta(site.environment)),
        );
        self.n_devices += new_sites.len();
        self.refresh_intervals(config);
        self.refresh_density(radius_m);
    }

    /// Drops the rows of leaving devices (a churn `Leave`) in one
    /// compaction pass, mirroring the population's own `retain_kept`
    /// compaction so row `i` keeps describing the `i`-th survivor.
    ///
    /// # Panics
    ///
    /// Panics when the mask length disagrees with the device count.
    pub fn retire_rows(&mut self, config: &SimConfig, leaving: &[bool], radius_m: f64) {
        assert_eq!(leaving.len(), self.n_devices, "leave mask shape");
        self.attenuation.retire_rows(leaving);
        let mut write = 0;
        for (i, &leaves) in leaving.iter().enumerate() {
            if leaves {
                continue;
            }
            self.beta[write] = self.beta[i];
            write += 1;
        }
        self.beta.truncate(write);
        self.n_devices = write;
        self.refresh_intervals(config);
        self.refresh_density(radius_m);
    }

    /// Recomputes one device's row for an updated site (a churn
    /// `Migrate` — the class move may change the propagation
    /// environment and always changes the reporting interval).
    pub fn patch_row(
        &mut self,
        config: &SimConfig,
        device: usize,
        site: &DeviceSite,
        gateways: &[Position],
    ) {
        self.attenuation.patch_row(config, device, site, gateways);
        self.beta[device] = config.betas.beta(site.environment);
        self.refresh_intervals(config);
    }

    /// Re-derives the deployment density with the construction-time
    /// expression (the population size just changed).
    fn refresh_density(&mut self, radius_m: f64) {
        let area = std::f64::consts::PI * radius_m.powi(2);
        self.density_per_m2 = if area > 0.0 {
            self.n_devices as f64 / area
        } else {
            0.0
        };
    }
}

/// An allocation bound to a [`NetworkModel`], with the aggregates needed to
/// evaluate single-device moves incrementally.
#[derive(Debug, Clone)]
pub struct ModelState<'m> {
    model: &'m NetworkModel,
    alloc: Vec<TxConfig>,
    /// Device ids per (SF, channel) group.
    members: Vec<Vec<usize>>,
    /// `Σ_{j∈group} p_j·a_{j,k}` per group and gateway, mW.
    power_sum: Vec<Vec<f64>>,
    /// `Σ_{j∈group} α_j` per group — the ALOHA contention load used by the
    /// heterogeneous-rates generalisation of Eq. (14).
    alpha_sum: Vec<f64>,
    /// Occupancy probability `q_{i,k}` per device and gateway.
    q: Vec<Vec<f64>>,
    /// Total expected occupancy `Λ_k` per gateway.
    lambda: Vec<f64>,
    /// Cached EE per device, bits/mJ.
    ee: Vec<f64>,
    /// Cached minimum EE per group (`∞` for empty groups).
    group_min: Vec<f64>,
    /// Cached capacity factor `θ_{i,k}`, flat `[device][gateway]`.
    ///
    /// `θ` depends only on `Λ` and `q` — not on the candidate being
    /// scanned — so it is recomputed exactly where `Λ`/`q` change
    /// ([`ModelState::build`] and [`ModelState::apply`]) and *read*
    /// everywhere else, eliminating the Poisson tail from the
    /// per-candidate inner loop while producing bit-identical values.
    theta_cache: Vec<f64>,
}

/// Per-device scratch for a candidate scan, produced by
/// [`ModelState::prepare_scan`].
///
/// During one scan of device `i` the allocation is fixed, so everything
/// that does not depend on the candidate configuration can be computed
/// once: the minimum EE of `i`'s old group after it leaves, and each
/// device's contention load and interference with its *own* contribution
/// removed. [`ModelState::min_ee_if_scanned`] then evaluates a candidate
/// in `O(new-group members × gateways)` with arithmetic expressions
/// identical to [`ModelState::min_ee_if`] — same values, fewer
/// recomputations. The cache is invalidated by any [`ModelState::apply`];
/// callers must re-prepare after committing a move.
#[derive(Debug, Clone)]
pub struct ScanCache {
    /// The device being scanned.
    device: usize,
    /// Minimum EE over the old group's other members after `device`
    /// leaves (`∞` when it is the sole member) — the candidate-independent
    /// part 2 of [`ModelState::min_ee_if`] for cross-group moves.
    exit_min: f64,
    /// `α_sum[group(j)] − α_j` per device `j`.
    base_load: Vec<f64>,
    /// `power_sum[group(j)][k] − p_j·a_{j,k}` per device and gateway,
    /// flat `[device][gateway]`.
    base_interf: Vec<f64>,
    /// Contention group of `device` at prepare time.
    g_old: usize,
    /// Smallest cached `group_min` over groups other than `g_old`, and
    /// its group index; `other_min2` is the runner-up. Together they
    /// answer [`ModelState::untouched_groups_min`] in O(1).
    other_min: f64,
    other_min_idx: usize,
    other_min2: f64,
}

impl<'m> ModelState<'m> {
    fn build(model: &'m NetworkModel, alloc: Vec<TxConfig>) -> Self {
        let n = model.device_count();
        let g = model.gateway_count();
        let n_groups = group_count(model.n_channels);
        let mut state = ModelState {
            model,
            alloc,
            members: vec![Vec::new(); n_groups],
            power_sum: vec![vec![0.0; g]; n_groups],
            alpha_sum: vec![0.0; n_groups],
            q: vec![vec![0.0; g]; n],
            lambda: vec![0.0; g],
            ee: vec![0.0; n],
            group_min: vec![f64::INFINITY; n_groups],
            theta_cache: Vec::new(),
        };
        if let Some(ambient) = &model.ambient {
            // Out-of-scope contributions seed the sums; the loop below
            // then accumulates local devices on top exactly as for a
            // self-contained deployment.
            for grp in 0..n_groups {
                state.alpha_sum[grp] = ambient.load[grp];
                state.power_sum[grp][..g].copy_from_slice(&ambient.power[grp * g..(grp + 1) * g]);
            }
            state.lambda.copy_from_slice(&ambient.lambda);
        }
        for i in 0..n {
            let cfg = state.alloc[i];
            let grp = state.group_of(&cfg);
            state.members[grp].push(i);
            state.alpha_sum[grp] += model.duty_of(i, cfg.sf);
            let p_mw = cfg.tp.milliwatts();
            for k in 0..g {
                state.power_sum[grp][k] += p_mw * model.attenuation.at(i, k);
                let q = model.occupancy_probability(i, &cfg, k);
                state.q[i][k] = q;
                state.lambda[k] += q;
            }
        }
        state.rebuild_theta();
        state.recompute_all_ee();
        state
    }

    /// Recomputes the cached `θ_{i,k}` for every device and gateway from
    /// the live `Λ`/`q` — called wherever those change so that reading
    /// the cache is indistinguishable from evaluating the Poisson tail
    /// on the fly.
    fn rebuild_theta(&mut self) {
        let g = self.model.gateway_count();
        self.theta_cache.clear();
        self.theta_cache.reserve(self.alloc.len() * g);
        for i in 0..self.alloc.len() {
            for k in 0..g {
                self.theta_cache.push(poisson_at_most(
                    (self.lambda[k] - self.q[i][k]).max(0.0),
                    OTHERS_BUDGET,
                ));
            }
        }
    }

    #[inline]
    fn group_of(&self, cfg: &TxConfig) -> usize {
        group_index(cfg.sf, cfg.channel, self.model.n_channels)
    }

    /// The bound allocation.
    pub fn alloc(&self) -> &[TxConfig] {
        &self.alloc
    }

    /// The model this state is bound to.
    pub fn model_ref(&self) -> &NetworkModel {
        self.model
    }

    /// Cached EE of device `i`, bits/mJ.
    pub fn ee(&self, i: usize) -> f64 {
        self.ee[i]
    }

    /// Cached EE of every device.
    pub fn ee_all(&self) -> &[f64] {
        &self.ee
    }

    /// The network minimum EE (the paper's fairness objective).
    pub fn min_ee(&self) -> f64 {
        self.ee
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::MAX)
    }

    /// The contention overlap probability `h_i` of device `i` under the
    /// bound allocation — `1 − exp(−Σ_{j∈group, j≠i} α_j)`, which reduces
    /// to the paper's Eq. (14) when all group members share one duty
    /// cycle.
    pub fn overlap_for(&self, i: usize) -> f64 {
        let cfg = &self.alloc[i];
        let grp = self.group_of(cfg);
        let load = (self.alpha_sum[grp] - self.model.duty_of(i, cfg.sf)).max(0.0);
        overlap_from_load(load)
    }

    /// Mean co-group interference power on device `i` at gateway `k`, mW.
    pub fn interference_on(&self, i: usize, k: usize) -> f64 {
        let cfg = &self.alloc[i];
        let grp = self.group_of(cfg);
        (self.power_sum[grp][k] - cfg.tp.milliwatts() * self.model.attenuation.at(i, k)).max(0.0)
    }

    /// The capacity factor `θ_{i,k}`: Poisson tail at the others' load
    /// (served from the cache maintained by [`ModelState::rebuild_theta`]).
    pub fn theta(&self, i: usize, k: usize) -> f64 {
        self.theta_cache[i * self.model.gateway_count() + k]
    }

    /// EE of device `i` under a hypothetical configuration and group shape:
    /// `load` is the summed duty cycle of its co-group contenders and
    /// `interference(k)` the mean co-group interference at each gateway.
    fn ee_raw(
        &self,
        i: usize,
        cfg: &TxConfig,
        load: f64,
        interference: impl Fn(usize) -> f64,
    ) -> f64 {
        let model = self.model;
        let sfi = cfg.sf.index();
        let h = overlap_from_load(load.max(0.0));
        let p_mw = cfg.tp.milliwatts();
        let per_gw = (0..model.gateway_count()).map(|k| {
            let mean_rx = p_mw * model.attenuation.at(i, k);
            let theta = self.theta(i, k);
            let p = pdr_with(
                model.pdr_form,
                mean_rx,
                model.th_lin[sfi],
                h,
                interference(k).max(0.0),
                model.noise_mw,
                model.sens_mw[sfi],
            );
            (theta, p)
        });
        model.payload_bits * prr(per_gw) / (model.cycle_energy_of(i, cfg) * 1_000.0)
    }

    fn current_ee(&self, i: usize) -> f64 {
        let cfg = self.alloc[i];
        let grp = self.group_of(&cfg);
        let load = self.alpha_sum[grp] - self.model.duty_of(i, cfg.sf);
        let own = cfg.tp.milliwatts();
        self.ee_raw(i, &cfg, load, |k| {
            self.power_sum[grp][k] - own * self.model.attenuation.at(i, k)
        })
    }

    fn recompute_all_ee(&mut self) {
        for i in 0..self.alloc.len() {
            self.ee[i] = self.current_ee(i);
        }
        for g in 0..self.members.len() {
            self.recompute_group_min(g);
        }
    }

    fn recompute_group_min(&mut self, grp: usize) {
        self.group_min[grp] = self.members[grp]
            .iter()
            .map(|&j| self.ee[j])
            .fold(f64::INFINITY, f64::min);
    }

    /// Exact upper bound on [`ModelState::ee_if`] for device `i` under
    /// `cfg`: the delivery ratio never exceeds 1, so the delivered bits
    /// over the cycle energy — a pure function of the device's reporting
    /// interval and the candidate's SF/TP, with no load or interference
    /// terms — caps the achievable EE. `O(1)`, used by the incremental
    /// scan to discard candidates without touching the contention model.
    pub fn own_ee_ceiling(&self, i: usize, cfg: TxConfig) -> f64 {
        self.model.payload_bits / (self.model.cycle_energy_of(i, &cfg) * 1_000.0)
    }

    /// The EE device `i` itself would have after moving to `cfg`
    /// (other devices unchanged). Cheap — `O(gateways)` — and used by the
    /// greedy allocator to break ties between moves that leave the
    /// network minimum unchanged.
    pub fn ee_if(&self, i: usize, cfg: TxConfig) -> f64 {
        let g_old = self.group_of(&self.alloc[i]);
        let g_new = self.group_of(&cfg);
        let same_group = g_old == g_new;
        let old_p = self.alloc[i].tp.milliwatts();
        // Same group implies same SF, hence the same α for device i.
        let load = if same_group {
            self.alpha_sum[g_old] - self.model.duty_of(i, cfg.sf)
        } else {
            self.alpha_sum[g_new]
        };
        self.ee_raw(i, &cfg, load, |k| {
            if same_group {
                self.power_sum[g_old][k] - old_p * self.model.attenuation.at(i, k)
            } else {
                self.power_sum[g_new][k]
            }
        })
    }

    /// The network minimum EE if device `i` moved to `cfg`, or `None` as
    /// soon as it can be shown not to exceed `floor` (pruning for the
    /// greedy scan). `floor = f64::NEG_INFINITY` disables pruning.
    pub fn min_ee_if(&self, i: usize, cfg: TxConfig, floor: f64) -> Option<f64> {
        let model = self.model;
        let g_old = self.group_of(&self.alloc[i]);
        let g_new = self.group_of(&cfg);
        let same_group = g_old == g_new;
        let old_cfg = self.alloc[i];
        let old_p = old_cfg.tp.milliwatts();
        let new_p = cfg.tp.milliwatts();

        let alpha_old = model.duty_of(i, old_cfg.sf);
        let alpha_new = model.duty_of(i, cfg.sf);

        // 1. The moved device itself.
        let load_i = if same_group {
            self.alpha_sum[g_old] - alpha_old
        } else {
            self.alpha_sum[g_new]
        };
        let ee_i = self.ee_raw(i, &cfg, load_i, |k| {
            if same_group {
                self.power_sum[g_old][k] - old_p * model.attenuation.at(i, k)
            } else {
                self.power_sum[g_new][k]
            }
        });
        if ee_i <= floor {
            return None;
        }
        let mut min = ee_i;

        // 2. Devices in the old group (losing i, or seeing its power change).
        for &j in &self.members[g_old] {
            if j == i {
                continue;
            }
            let jc = self.alloc[j];
            let jp = jc.tp.milliwatts();
            let load_j = if same_group {
                // Only i's power changed; its duty cycle is unchanged.
                self.alpha_sum[g_old] - model.duty_of(j, jc.sf)
            } else {
                self.alpha_sum[g_old] - model.duty_of(j, jc.sf) - alpha_old
            };
            let ee_j = self.ee_raw(j, &jc, load_j, |k| {
                let base = self.power_sum[g_old][k] - jp * model.attenuation.at(j, k);
                if same_group {
                    base - old_p * model.attenuation.at(i, k) + new_p * model.attenuation.at(i, k)
                } else {
                    base - old_p * model.attenuation.at(i, k)
                }
            });
            if ee_j <= floor {
                return None;
            }
            min = min.min(ee_j);
        }

        // 3. Devices in the new group (gaining i).
        if !same_group {
            for &j in &self.members[g_new] {
                let jc = self.alloc[j];
                let jp = jc.tp.milliwatts();
                let load_j = self.alpha_sum[g_new] - model.duty_of(j, jc.sf) + alpha_new;
                let ee_j = self.ee_raw(j, &jc, load_j, |k| {
                    self.power_sum[g_new][k] - jp * model.attenuation.at(j, k)
                        + new_p * model.attenuation.at(i, k)
                });
                if ee_j <= floor {
                    return None;
                }
                min = min.min(ee_j);
            }
        }

        // 4. Every other group, from the cached per-group minima.
        for (g, &gm) in self.group_min.iter().enumerate() {
            if g == g_old || g == g_new {
                continue;
            }
            if gm <= floor {
                return None;
            }
            min = min.min(gm);
        }

        if min > floor {
            Some(min)
        } else {
            None
        }
    }

    /// Commits the move of device `i` to `cfg`, updating all aggregates and
    /// the cached EE of every device in the two affected groups.
    pub fn apply(&mut self, i: usize, cfg: TxConfig) {
        let model = self.model;
        let g_old = self.group_of(&self.alloc[i]);
        let g_new = self.group_of(&cfg);
        let old_cfg = self.alloc[i];
        let old_p = old_cfg.tp.milliwatts();
        let new_p = cfg.tp.milliwatts();

        for k in 0..model.gateway_count() {
            self.power_sum[g_old][k] -= old_p * model.attenuation.at(i, k);
            let q_new = model.occupancy_probability(i, &cfg, k);
            self.lambda[k] += q_new - self.q[i][k];
            self.q[i][k] = q_new;
        }
        self.alpha_sum[g_old] -= model.duty_of(i, old_cfg.sf);
        self.alpha_sum[g_new] += model.duty_of(i, cfg.sf);
        if g_new != g_old {
            let pos = self.members[g_old]
                .iter()
                .position(|&j| j == i)
                .expect("device must be in its group");
            self.members[g_old].swap_remove(pos);
            self.members[g_new].push(i);
        }
        for k in 0..model.gateway_count() {
            self.power_sum[g_new][k] += new_p * model.attenuation.at(i, k);
        }
        self.alloc[i] = cfg;
        // Λ and q just moved, which shifts θ for every device; refresh
        // the cache before the EE refresh below reads it.
        self.rebuild_theta();

        // Refresh cached EEs in the affected groups.
        let affected: Vec<usize> = if g_new == g_old {
            self.members[g_old].clone()
        } else {
            self.members[g_old]
                .iter()
                .chain(&self.members[g_new])
                .copied()
                .collect()
        };
        for j in affected {
            self.ee[j] = self.current_ee(j);
        }
        self.recompute_group_min(g_old);
        if g_new != g_old {
            self.recompute_group_min(g_new);
        }
    }

    /// Recomputes every aggregate and cached value from scratch, flushing
    /// the θ/Λ drift accumulated across committed moves. The greedy
    /// allocator calls this between passes.
    pub fn refresh(&mut self) {
        let rebuilt = ModelState::build(self.model, std::mem::take(&mut self.alloc));
        *self = rebuilt;
    }

    /// Precomputes the candidate-independent parts of a full candidate
    /// scan of device `i` (see [`ScanCache`]). Invalidated by any
    /// [`ModelState::apply`] — prepare again after committing.
    pub fn prepare_scan(&self, i: usize) -> ScanCache {
        let model = self.model;
        let g = model.gateway_count();
        let n = self.alloc.len();
        let old_cfg = self.alloc[i];
        let g_old = self.group_of(&old_cfg);
        let old_p = old_cfg.tp.milliwatts();
        let alpha_old = model.duty_of(i, old_cfg.sf);

        let mut base_load = Vec::with_capacity(n);
        let mut base_interf = Vec::with_capacity(n * g);
        for j in 0..n {
            let jc = self.alloc[j];
            let jp = jc.tp.milliwatts();
            let grp = self.group_of(&jc);
            base_load.push(self.alpha_sum[grp] - model.duty_of(j, jc.sf));
            for k in 0..g {
                base_interf.push(self.power_sum[grp][k] - jp * model.attenuation.at(j, k));
            }
        }

        // Part 2 of `min_ee_if` for a cross-group move — identical
        // expressions, computed once instead of per candidate.
        let mut exit_min = f64::INFINITY;
        for &j in &self.members[g_old] {
            if j == i {
                continue;
            }
            let jc = self.alloc[j];
            let jp = jc.tp.milliwatts();
            let load_j = self.alpha_sum[g_old] - model.duty_of(j, jc.sf) - alpha_old;
            let ee_j = self.ee_raw(j, &jc, load_j, |k| {
                let base = self.power_sum[g_old][k] - jp * model.attenuation.at(j, k);
                base - old_p * model.attenuation.at(i, k)
            });
            exit_min = exit_min.min(ee_j);
        }

        let mut other_min = f64::INFINITY;
        let mut other_min_idx = usize::MAX;
        let mut other_min2 = f64::INFINITY;
        for (grp, &gm) in self.group_min.iter().enumerate() {
            if grp == g_old {
                continue;
            }
            if gm < other_min {
                other_min2 = other_min;
                other_min = gm;
                other_min_idx = grp;
            } else if gm < other_min2 {
                other_min2 = gm;
            }
        }

        ScanCache {
            device: i,
            exit_min,
            base_load,
            base_interf,
            g_old,
            other_min,
            other_min_idx,
            other_min2,
        }
    }

    /// Exact upper bound on [`ModelState::min_ee_if`] for moving the
    /// scanned device to `cfg`: the smallest cached `group_min` over
    /// every group the move leaves untouched. That value is literally
    /// one of the min components of the full evaluation (part 4), so the
    /// exact result can never exceed it — a caller whose acceptance test
    /// already fails at this bound can skip the exact evaluation without
    /// changing any decision.
    pub fn untouched_groups_min(&self, scan: &ScanCache, cfg: TxConfig) -> f64 {
        let g_new = self.group_of(&cfg);
        if g_new != scan.g_old && g_new == scan.other_min_idx {
            scan.other_min2
        } else {
            scan.other_min
        }
    }

    /// [`ModelState::min_ee_if`] served from a [`ScanCache`]: the same
    /// component EEs (bitwise — every arithmetic expression matches),
    /// hence the same pruning verdict and the same returned minimum,
    /// evaluated in `O(new-group members × gateways)` per candidate.
    ///
    /// Same-group candidates (only the transmit power changes) fall back
    /// to the plain path: their group shape is not covered by the cache.
    ///
    /// # Panics
    ///
    /// Panics when `scan` was prepared for a different allocation shape.
    pub fn min_ee_if_scanned(&self, scan: &ScanCache, cfg: TxConfig, floor: f64) -> Option<f64> {
        let i = scan.device;
        assert_eq!(scan.base_load.len(), self.alloc.len(), "stale scan cache");
        let g_old = self.group_of(&self.alloc[i]);
        let g_new = self.group_of(&cfg);
        if g_old == g_new {
            return self.min_ee_if(i, cfg, floor);
        }
        let model = self.model;
        let g = model.gateway_count();
        let new_p = cfg.tp.milliwatts();
        let alpha_new = model.duty_of(i, cfg.sf);

        // 1. The moved device itself (cross-group: joins g_new whole).
        let ee_i = self.ee_raw(i, &cfg, self.alpha_sum[g_new], |k| self.power_sum[g_new][k]);
        if ee_i <= floor {
            return None;
        }
        let mut min = ee_i;

        // 2. The old group after i leaves — precomputed.
        if scan.exit_min <= floor {
            return None;
        }
        min = min.min(scan.exit_min);

        // 3. Devices in the new group (gaining i).
        for &j in &self.members[g_new] {
            let jc = self.alloc[j];
            let ee_j = self.ee_raw(j, &jc, scan.base_load[j] + alpha_new, |k| {
                scan.base_interf[j * g + k] + new_p * model.attenuation.at(i, k)
            });
            if ee_j <= floor {
                return None;
            }
            min = min.min(ee_j);
        }

        // 4. Every other group, from the cached per-group minima.
        for (grp, &gm) in self.group_min.iter().enumerate() {
            if grp == g_old || grp == g_new {
                continue;
            }
            if gm <= floor {
                return None;
            }
            min = min.min(gm);
        }

        if min > floor {
            Some(min)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::path_loss::LinkEnvironment;
    use lora_sim::{DeviceSite, Position};

    fn line_topology(n: usize, spacing: f64, gws: usize) -> Topology {
        let devices = (0..n)
            .map(|i| DeviceSite {
                position: Position::new(200.0 + spacing * i as f64, 0.0),
                environment: LinkEnvironment::NonLineOfSight,
            })
            .collect();
        let gateways = (0..gws)
            .map(|k| Position::new(k as f64 * 1_000.0, 0.0))
            .collect();
        Topology::from_sites(devices, gateways, 5_000.0)
    }

    fn model_for(topo: &Topology) -> NetworkModel {
        NetworkModel::new(&SimConfig::default(), topo)
    }

    fn uniform_alloc(n: usize, sf: SpreadingFactor, ch: usize) -> Vec<TxConfig> {
        vec![TxConfig::new(sf, TxPowerDbm::new(14.0), ch); n]
    }

    #[test]
    fn oversize_payload_is_an_error_not_a_panic() {
        let topo = line_topology(3, 10.0, 1);
        let config = SimConfig {
            app_payload: 10_000,
            ..SimConfig::default()
        };
        match NetworkModel::try_new(&config, &topo) {
            Err(ModelError::PayloadTooLarge { len, max }) => {
                assert_eq!(len, config.phy_payload_len());
                assert!(len > max);
            }
            other => panic!("expected PayloadTooLarge, got {other:?}"),
        }
        assert!(NetworkModel::try_new(&SimConfig::default(), &topo).is_ok());
    }

    #[test]
    fn oversize_topology_is_an_error_not_an_abort() {
        let topo = line_topology(8, 50.0, 2);
        let config = SimConfig::default();
        match NetworkModel::try_new_with_budget(&config, &topo, 64) {
            Err(ModelError::TopologyTooLarge {
                devices,
                gateways,
                required_bytes,
                budget_bytes,
            }) => {
                assert_eq!((devices, gateways), (8, 2));
                assert_eq!(required_bytes, 8 * 2 * 8);
                assert_eq!(budget_bytes, 64);
            }
            other => panic!("expected TopologyTooLarge, got {other:?}"),
        }
        assert!(NetworkModel::try_new_with_budget(&config, &topo, 128).is_ok());
    }

    #[test]
    fn zero_ambient_is_bitwise_invisible() {
        let topo = line_topology(30, 40.0, 2);
        let plain = model_for(&topo);
        let groups = crate::contention::group_count(plain.channel_count());
        let zeroed = plain
            .clone()
            .with_ambient(Ambient::zeros(groups, plain.gateway_count()));
        let alloc: Vec<TxConfig> = (0..30)
            .map(|i| TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), i % 4))
            .collect();
        let a = plain.evaluate(&alloc);
        let b = zeroed.evaluate(&alloc);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn ambient_pressure_lowers_ee_and_survives_refresh() {
        let topo = line_topology(20, 40.0, 1);
        let plain = model_for(&topo);
        let groups = crate::contention::group_count(plain.channel_count());
        let mut offsets = Ambient::zeros(groups, 1);
        // Heavy out-of-scope traffic in every group: interference power,
        // contention load and demodulator occupancy all rise.
        for v in &mut offsets.power {
            *v = 1e-9;
        }
        for v in &mut offsets.load {
            *v = 0.05;
        }
        offsets.lambda[0] = 1.5;
        let loaded = plain.clone().with_ambient(offsets);
        let alloc = uniform_alloc(20, SpreadingFactor::Sf9, 0);
        let quiet = plain.evaluate(&alloc);
        let noisy = loaded.evaluate(&alloc);
        for (q, n) in quiet.iter().zip(&noisy) {
            assert!(n < q, "ambient pressure must cost EE: {n} vs {q}");
        }
        // refresh() rebuilds from the model, so the offsets persist.
        let mut state = loaded.state(alloc.clone()).unwrap();
        let before = state.min_ee();
        state.refresh();
        assert_eq!(state.min_ee().to_bits(), before.to_bits());
    }

    #[test]
    fn lone_device_ee_matches_hand_computation() {
        let topo = line_topology(1, 0.0, 1);
        let model = model_for(&topo);
        let alloc = uniform_alloc(1, SpreadingFactor::Sf7, 0);
        let ee = model.evaluate(&alloc);
        // Strong link, no contention: PRR ≈ 1, EE ≈ L / (E_s · 1000).
        let e_s = model.cycle_energy_j(&alloc[0]);
        let expected = 168.0 / (e_s * 1_000.0);
        assert!(
            (ee[0] - expected).abs() / expected < 0.01,
            "{} vs {expected}",
            ee[0]
        );
        assert!(
            (2.0..2.6).contains(&ee[0]),
            "paper-scale bits/mJ: {}",
            ee[0]
        );
    }

    #[test]
    fn contention_reduces_ee() {
        let topo = line_topology(40, 5.0, 1);
        let model = model_for(&topo);
        let together = model.evaluate(&uniform_alloc(40, SpreadingFactor::Sf7, 0));
        let spread: Vec<TxConfig> = (0..40)
            .map(|i| TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), i % 8))
            .collect();
        let spread_ee = model.evaluate(&spread);
        let min_together = together.iter().copied().fold(f64::INFINITY, f64::min);
        let min_spread = spread_ee.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            min_spread > min_together,
            "channel spreading must relieve contention: {min_spread} vs {min_together}"
        );
    }

    #[test]
    fn larger_sf_costs_energy_for_near_devices() {
        let topo = line_topology(1, 0.0, 1);
        let model = model_for(&topo);
        let sf7 = model.evaluate(&uniform_alloc(1, SpreadingFactor::Sf7, 0))[0];
        let sf12 = model.evaluate(&uniform_alloc(1, SpreadingFactor::Sf12, 0))[0];
        assert!(
            sf7 > 2.0 * sf12,
            "SF12 should waste energy up close: {sf7} vs {sf12}"
        );
    }

    #[test]
    fn distant_device_needs_large_sf() {
        // 5.5 km NLoS: SF7 is below sensitivity, SF12 reaches.
        let devices = vec![DeviceSite {
            position: Position::new(5_500.0, 0.0),
            environment: LinkEnvironment::NonLineOfSight,
        }];
        let topo = Topology::from_sites(devices, vec![Position::new(0.0, 0.0)], 6_000.0);
        let model = model_for(&topo);
        let sf7 = model.evaluate(&uniform_alloc(1, SpreadingFactor::Sf7, 0))[0];
        let sf12 = model.evaluate(&uniform_alloc(1, SpreadingFactor::Sf12, 0))[0];
        assert!(sf12 > sf7, "far out, SF12 must beat SF7: {sf12} vs {sf7}");
        assert_eq!(
            model.min_feasible_sf(0, TxPowerDbm::new(14.0)),
            Some(SpreadingFactor::Sf12)
        );
    }

    #[test]
    fn min_feasible_sf_none_when_unreachable() {
        let devices = vec![DeviceSite {
            position: Position::new(50_000.0, 0.0),
            environment: LinkEnvironment::NonLineOfSight,
        }];
        let topo = Topology::from_sites(devices, vec![Position::new(0.0, 0.0)], 60_000.0);
        let model = model_for(&topo);
        assert_eq!(model.min_feasible_sf(0, TxPowerDbm::new(14.0)), None);
    }

    #[test]
    fn more_gateways_improve_prr_and_ee() {
        let one = model_for(&line_topology(10, 300.0, 1));
        let three = model_for(&line_topology(10, 300.0, 3));
        let alloc = uniform_alloc(10, SpreadingFactor::Sf9, 0);
        let ee1 = one.evaluate(&alloc);
        let ee3 = three.evaluate(&alloc);
        for (a, b) in ee1.iter().zip(&ee3) {
            assert!(b >= a, "extra gateways can only help the model: {b} vs {a}");
        }
    }

    #[test]
    fn min_ee_if_matches_apply() {
        let topo = line_topology(20, 150.0, 2);
        let model = model_for(&topo);
        let alloc: Vec<TxConfig> = (0..20)
            .map(|i| {
                TxConfig::new(
                    if i % 2 == 0 {
                        SpreadingFactor::Sf7
                    } else {
                        SpreadingFactor::Sf8
                    },
                    TxPowerDbm::new(14.0),
                    i % 4,
                )
            })
            .collect();
        let mut state = model.state(alloc).unwrap();
        let candidates = [
            TxConfig::new(SpreadingFactor::Sf9, TxPowerDbm::new(8.0), 5),
            TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(2.0), 0),
            TxConfig::new(SpreadingFactor::Sf8, TxPowerDbm::new(14.0), 1),
        ];
        for (device, cfg) in [
            (3usize, candidates[0]),
            (7, candidates[1]),
            (12, candidates[2]),
        ] {
            let predicted = state
                .min_ee_if(device, cfg, f64::NEG_INFINITY)
                .expect("no pruning floor");
            state.apply(device, cfg);
            let actual = state.min_ee();
            assert!(
                (predicted - actual).abs() < 1e-9,
                "device {device}: predicted {predicted}, actual {actual}"
            );
        }
    }

    #[test]
    fn min_ee_if_identity_move_returns_current_min() {
        let topo = line_topology(15, 200.0, 2);
        let model = model_for(&topo);
        let alloc = uniform_alloc(15, SpreadingFactor::Sf8, 2);
        let state = model.state(alloc.clone()).unwrap();
        let current = state.min_ee();
        let same = state.min_ee_if(4, alloc[4], f64::NEG_INFINITY).unwrap();
        assert!((same - current).abs() < 1e-12, "{same} vs {current}");
    }

    #[test]
    fn pruning_floor_rejects_non_improving_moves() {
        let topo = line_topology(15, 200.0, 1);
        let model = model_for(&topo);
        let alloc = uniform_alloc(15, SpreadingFactor::Sf7, 0);
        let state = model.state(alloc.clone()).unwrap();
        let current = state.min_ee();
        // Moving a device to the same configuration cannot beat the
        // current minimum.
        assert_eq!(state.min_ee_if(0, alloc[0], current), None);
    }

    #[test]
    fn refresh_preserves_semantics() {
        let topo = line_topology(25, 120.0, 2);
        let model = model_for(&topo);
        let alloc = uniform_alloc(25, SpreadingFactor::Sf9, 3);
        let mut state = model.state(alloc).unwrap();
        state.apply(
            0,
            TxConfig::new(SpreadingFactor::Sf10, TxPowerDbm::new(4.0), 1),
        );
        state.apply(
            5,
            TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 0),
        );
        let before: Vec<f64> = state.ee_all().to_vec();
        state.refresh();
        let after: Vec<f64> = state.ee_all().to_vec();
        for (a, b) in before.iter().zip(&after) {
            // Λ was kept live through apply, so refresh should agree to
            // numerical noise.
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn exact_theta_agrees_with_poisson_at_scale() {
        let topo = line_topology(60, 60.0, 2);
        let model = model_for(&topo);
        let alloc: Vec<TxConfig> = (0..60)
            .map(|i| TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), i % 8))
            .collect();
        let approx = model.evaluate(&alloc);
        let exact = model.evaluate_exact_theta(&alloc);
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() / e.max(1e-9) < 0.05, "{a} vs {e}");
        }
    }

    #[test]
    fn laplace_variant_is_sane_and_cheaper_shaped() {
        let config = SimConfig::default();
        let topo = Topology::disc(80, 2, 4_000.0, &config, 11);
        let model = NetworkModel::new(&config, &topo);
        let alloc: Vec<TxConfig> = (0..80)
            .map(|i| TxConfig::new(SpreadingFactor::Sf8, TxPowerDbm::new(14.0), i % 8))
            .collect();
        let lap = model.evaluate_laplace(&alloc);
        let mf = model.evaluate(&alloc);
        assert_eq!(lap.len(), 80);
        for (l, m) in lap.iter().zip(&mf) {
            assert!(*l >= 0.0 && l.is_finite());
            // Same order of magnitude as the mean-field evaluation.
            if *m > 0.1 {
                assert!(*l < m * 10.0 + 1.0, "laplace {l} vs mean-field {m}");
            }
        }
    }

    #[test]
    fn scanned_min_ee_is_bitwise_equal_to_plain() {
        let config = SimConfig::default();
        let topo = Topology::disc(30, 2, 4_000.0, &config, 23);
        let model = NetworkModel::new(&config, &topo);
        let alloc: Vec<TxConfig> = (0..30)
            .map(|i| {
                TxConfig::new(
                    SpreadingFactor::ALL[i % 6],
                    TxPowerDbm::new(2.0 + (i % 7) as f64 * 2.0),
                    i % 8,
                )
            })
            .collect();
        let state = model.state(alloc).unwrap();
        for device in [0usize, 7, 19, 29] {
            let scan = state.prepare_scan(device);
            let mut floor = f64::NEG_INFINITY;
            for sf in SpreadingFactor::ALL {
                for ch in 0..8 {
                    for tp_i in 0..7 {
                        let cfg = TxConfig::new(sf, TxPowerDbm::new(2.0 + tp_i as f64 * 2.0), ch);
                        let plain = state.min_ee_if(device, cfg, floor);
                        let fast = state.min_ee_if_scanned(&scan, cfg, floor);
                        match (plain, fast) {
                            (Some(a), Some(b)) => assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "device {device} cfg {cfg:?}: {a} vs {b}"
                            ),
                            (None, None) => {}
                            other => panic!("device {device} cfg {cfg:?}: {other:?}"),
                        }
                        // Walk the floor the way the allocator does, so
                        // the pruning branches get exercised too.
                        if let Some(v) = plain {
                            floor = floor.max(v - 1e-9);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_network_model_matches_fresh_build() {
        let config = SimConfig::default();
        let full = Topology::disc(40, 3, 5_000.0, &config, 31);
        let radius = full.radius_m();

        // Join: grow 28 → 40 in one batch.
        let head = Topology::from_sites(
            full.devices()[..28].to_vec(),
            full.gateways().to_vec(),
            radius,
        );
        let mut grown = NetworkModel::new(&config, &head);
        grown.extend_rows(&config, &full.devices()[28..], full.gateways(), radius);
        assert_eq!(grown, NetworkModel::new(&config, &full));

        // Leave: retire every fourth device.
        let leaving: Vec<bool> = (0..40).map(|i| i % 4 == 2).collect();
        let mut shrunk = NetworkModel::new(&config, &full);
        shrunk.retire_rows(&config, &leaving, radius);
        let kept: Vec<DeviceSite> = full
            .devices()
            .iter()
            .zip(&leaving)
            .filter(|(_, &l)| !l)
            .map(|(s, _)| *s)
            .collect();
        let survivors = Topology::from_sites(kept, full.gateways().to_vec(), radius);
        assert_eq!(shrunk, NetworkModel::new(&config, &survivors));

        // Migrate: flip one device's propagation environment.
        let mut sites = full.devices().to_vec();
        sites[11].environment = match sites[11].environment {
            LinkEnvironment::LineOfSight => LinkEnvironment::NonLineOfSight,
            LinkEnvironment::NonLineOfSight => LinkEnvironment::LineOfSight,
        };
        let mut patched = NetworkModel::new(&config, &full);
        patched.patch_row(&config, 11, &sites[11], full.gateways());
        let moved = Topology::from_sites(sites, full.gateways().to_vec(), radius);
        assert_eq!(patched, NetworkModel::new(&config, &moved));
    }

    #[test]
    fn validation_errors() {
        let topo = line_topology(3, 100.0, 1);
        let model = model_for(&topo);
        assert!(matches!(
            model.validate(&uniform_alloc(2, SpreadingFactor::Sf7, 0)),
            Err(ModelError::AllocationLengthMismatch { .. })
        ));
        let mut bad = uniform_alloc(3, SpreadingFactor::Sf7, 0);
        bad[1].channel = 9;
        assert!(matches!(
            model.validate(&bad),
            Err(ModelError::ChannelOutOfRange {
                device: 1,
                channel: 9,
                ..
            })
        ));
    }
}
