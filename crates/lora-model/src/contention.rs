//! ALOHA contention within a (SF, channel) group.
//!
//! Under the paper's collision rule only devices sharing both the spreading
//! factor and the channel contend. With unslotted-ALOHA periodic reporting,
//! the probability that at least one of the `m` co-group devices overlaps a
//! given transmission is modelled as `h = 1 − e^{−α·m}` where `α = T/T_g`
//! is the common duty cycle of the group (paper Eq. 14–15; all group
//! members share the SF and therefore the time-on-air).

use lora_phy::{SpreadingFactor, TxConfig};

/// Number of (SF, channel) contention groups for a `channels`-channel plan.
#[inline]
pub fn group_count(channels: usize) -> usize {
    SpreadingFactor::COUNT * channels
}

/// Dense index of the (SF, channel) group.
#[inline]
pub fn group_index(sf: SpreadingFactor, channel: usize, channels: usize) -> usize {
    debug_assert!(channel < channels);
    sf.index() * channels + channel
}

/// Inverse of [`group_index`].
#[inline]
pub fn group_from_index(index: usize, channels: usize) -> (SpreadingFactor, usize) {
    let sf = SpreadingFactor::from_u8(7 + (index / channels) as u8).expect("valid index");
    (sf, index % channels)
}

/// Counts devices per (SF, channel) group — the paper's `N_{s,c}` table.
pub fn group_occupancy(alloc: &[TxConfig], channels: usize) -> Vec<usize> {
    let mut counts = vec![0usize; group_count(channels)];
    for cfg in alloc {
        counts[group_index(cfg.sf, cfg.channel, channels)] += 1;
    }
    counts
}

/// The overlap probability `h = 1 − e^{−α·m}` with duty cycle `alpha` and
/// `m` *other* contending devices (paper Eq. 14, applied to the contenders
/// of a tagged device).
///
/// ```
/// let h = lora_model::contention::overlap_probability(0.01, 50);
/// assert!((h - (1.0 - (-0.5f64).exp())).abs() < 1e-12);
/// assert_eq!(lora_model::contention::overlap_probability(0.01, 0), 0.0);
/// ```
#[inline]
pub fn overlap_probability(alpha: f64, contenders: usize) -> f64 {
    debug_assert!((0.0..=1.0).contains(&alpha), "duty cycle must be in [0, 1]");
    overlap_from_load(alpha * contenders as f64)
}

/// The overlap probability `1 − e^{−load}` for a summed contender duty
/// load `load = Σ_j α_j` — the heterogeneous-rates generalisation of
/// Eq. (14) (Section III-E): with equal duty cycles `load = α·m` and this
/// reduces to [`overlap_probability`].
///
/// ```
/// use lora_model::contention::{overlap_from_load, overlap_probability};
/// assert_eq!(overlap_from_load(0.01 * 50.0), overlap_probability(0.01, 50));
/// ```
#[inline]
pub fn overlap_from_load(load: f64) -> f64 {
    debug_assert!(load >= 0.0, "contention load must be non-negative");
    1.0 - (-load).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::TxPowerDbm;

    #[test]
    fn group_index_round_trips() {
        let channels = 8;
        for sf in SpreadingFactor::ALL {
            for ch in 0..channels {
                let idx = group_index(sf, ch, channels);
                assert!(idx < group_count(channels));
                assert_eq!(group_from_index(idx, channels), (sf, ch));
            }
        }
    }

    #[test]
    fn forty_eight_groups_for_eight_channels() {
        // "theoretically at most 48 LoRa signals (eight channels and six
        // spreading factors) can be decoded without interference"
        assert_eq!(group_count(8), 48);
    }

    #[test]
    fn occupancy_counts_by_group() {
        let alloc = vec![
            TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 0),
            TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(2.0), 0),
            TxConfig::new(SpreadingFactor::Sf8, TxPowerDbm::new(14.0), 0),
            TxConfig::new(SpreadingFactor::Sf7, TxPowerDbm::new(14.0), 1),
        ];
        let counts = group_occupancy(&alloc, 8);
        assert_eq!(counts[group_index(SpreadingFactor::Sf7, 0, 8)], 2);
        assert_eq!(counts[group_index(SpreadingFactor::Sf8, 0, 8)], 1);
        assert_eq!(counts[group_index(SpreadingFactor::Sf7, 1, 8)], 1);
        assert_eq!(counts.iter().sum::<usize>(), 4);
    }

    #[test]
    fn overlap_probability_is_monotone() {
        let mut last = 0.0;
        for m in [0, 1, 5, 20, 100, 1000] {
            let h = overlap_probability(0.005, m);
            assert!((0.0..=1.0).contains(&h));
            assert!(h >= last);
            last = h;
        }
    }

    #[test]
    fn overlap_probability_saturates() {
        assert!(overlap_probability(0.5, 1000) > 0.999_999);
    }
}
