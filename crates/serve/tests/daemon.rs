//! End-to-end daemon tests: spawn the real binaries, drive the wire
//! protocol, kill the process, and restore from the snapshot.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ef_lora::EfLora;
use ef_lora_serve::protocol::{encode, Request};
use ef_lora_serve::{loadgen, serve, ServeState, ServerOptions};
use lora_scenario::catalog;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ef-lora-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the daemon binary and scrapes the listen address from stdout.
fn spawn_daemon(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ef-lora-serve"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon must spawn");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// A raw protocol connection capturing response lines verbatim.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = loadgen::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        }
    }

    fn send_line(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(!response.is_empty(), "daemon closed the connection");
        response.trim_end().to_string()
    }

    fn send(&mut self, request: &Request) -> String {
        self.send_line(&encode(request))
    }
}

/// The query battery whose raw response bytes must survive a restart.
fn query_battery(client: &mut Client) -> Vec<String> {
    let mut lines = vec![
        client.send(&Request::Info),
        client.send(&Request::Metrics),
        client.send(&Request::Status),
    ];
    for index in [0usize, 7, 23] {
        lines.push(client.send(&Request::Device { index }));
    }
    lines
}

#[test]
fn kill_then_restore_resumes_with_byte_identical_queries() {
    let dir = tmp_dir("restore");
    let snap = dir.join("snap.json");
    let (mut child, addr) = spawn_daemon(&[
        "--name",
        "churn-heavy",
        "--scale",
        "0.2",
        "--snapshot",
        snap.to_str().unwrap(),
    ]);

    // Drive a churn burst, snapshot through the protocol, and record the
    // query battery.
    let report = loadgen::run_burst(&addr, 11, 40, true, false).unwrap();
    assert_eq!(report.events, 40);
    assert!(snap.exists(), "snapshot must land on disk");
    let mut client = Client::connect(&addr);
    let before = query_battery(&mut client);
    drop(client);

    // Crash the daemon (no clean shutdown) and restore from the snapshot.
    child.kill().unwrap();
    child.wait().unwrap();
    let (mut child, addr) = spawn_daemon(&["--restore", snap.to_str().unwrap()]);
    let mut client = Client::connect(&addr);
    let after = query_battery(&mut client);
    // The daemon serves one connection at a time: release it before the
    // load generator dials in.
    drop(client);
    assert_eq!(
        before, after,
        "every query response must be byte-identical after restore"
    );

    // The restored daemon keeps serving churn from the same stream
    // cursor; then shut it down cleanly.
    let resumed = loadgen::run_burst(&addr, 12, 10, false, true).unwrap();
    assert_eq!(resumed.events, 10);
    let status = child.wait().unwrap();
    assert!(status.success(), "clean shutdown must exit zero");
}

#[test]
fn malformed_lines_get_in_band_errors_and_the_connection_survives() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.1);
    let state = ServeState::new(spec, &EfLora::default()).unwrap();
    let server = std::thread::spawn(move || {
        serve(listener, state, &ServerOptions::default()).unwrap();
    });

    let mut client = Client::connect(&addr);
    let garbage = client.send_line("{definitely not json");
    assert!(garbage.contains("Error"), "got: {garbage}");
    let unknown = client.send_line(r#"{"Frobnicate":{}}"#);
    assert!(unknown.contains("Error"), "got: {unknown}");
    // Out-of-range device index: in-band error, connection stays open.
    let out_of_range = client.send(&Request::Device { index: 10_000 });
    assert!(out_of_range.contains("out of range"), "got: {out_of_range}");
    // Unconfigured snapshot path: in-band error.
    let no_snapshot = client.send(&Request::Snapshot);
    assert!(no_snapshot.contains("Error"), "got: {no_snapshot}");
    // The same connection still answers healthy requests.
    assert_eq!(client.send(&Request::Ping), r#""Pong""#);
    assert_eq!(client.send(&Request::Shutdown), r#""ShuttingDown""#);
    server.join().unwrap();
}

#[test]
fn measure_windows_feed_the_controller() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.1);
    let state = ServeState::new(spec, &EfLora::default()).unwrap();
    let server = std::thread::spawn(move || {
        serve(listener, state, &ServerOptions::default()).unwrap();
    });

    let mut client = Client::connect(&addr);
    let measured = client.send(&Request::Measure);
    assert!(measured.contains("Measured"), "got: {measured}");
    let status = client.send(&Request::Status);
    assert!(status.contains(r#""windows_observed":1"#), "got: {status}");
    client.send(&Request::Shutdown);
    server.join().unwrap();
}

#[test]
fn loadgen_burst_is_deterministic_in_effects() {
    // Two daemons fed the same seed apply the same events: identical
    // population effects (latencies differ, effects must not).
    let run = || {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.15);
        let state = ServeState::new(spec, &EfLora::default()).unwrap();
        let server = std::thread::spawn(move || {
            serve(listener, state, &ServerOptions::default()).unwrap();
        });
        let report = loadgen::run_burst(&addr, 21, 60, false, true).unwrap();
        server.join().unwrap();
        report
    };
    let (a, b) = (run(), run());
    assert_eq!(a.events, 60);
    assert_eq!(
        (a.joined, a.left, a.migrated, a.reconfigured, a.warnings),
        (b.joined, b.left, b.migrated, b.reconfigured, b.warnings)
    );
    assert!(
        a.events_per_sec > 0.0 && a.latency.p99_us > 0.0,
        "latency accounting must be populated"
    );
}
