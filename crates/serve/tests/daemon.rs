//! End-to-end daemon tests: spawn the real binaries, drive the wire
//! protocol, kill the process, and restore from the snapshot.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ef_lora::EfLora;
use ef_lora_serve::app::strategy_by_name;
use ef_lora_serve::journal::{self, JournalRecord};
use ef_lora_serve::protocol::{encode, Request};
use ef_lora_serve::reference::ReferenceState;
use ef_lora_serve::{loadgen, serve, RecoveryInfo, ServeState, ServerOptions};
use lora_scenario::catalog;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ef-lora-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the daemon binary and scrapes the listen address from stdout.
fn spawn_daemon(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ef-lora-serve"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon must spawn");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// A raw protocol connection capturing response lines verbatim.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = loadgen::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        }
    }

    fn send_line(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(!response.is_empty(), "daemon closed the connection");
        response.trim_end().to_string()
    }

    fn send(&mut self, request: &Request) -> String {
        self.send_line(&encode(request))
    }
}

/// The query battery whose raw response bytes must survive a restart.
fn query_battery(client: &mut Client) -> Vec<String> {
    let mut lines = vec![
        client.send(&Request::Info),
        client.send(&Request::Metrics),
        client.send(&Request::Status),
    ];
    for index in [0usize, 7, 23] {
        lines.push(client.send(&Request::Device { index }));
    }
    lines
}

#[test]
fn kill_then_restore_resumes_with_byte_identical_queries() {
    let dir = tmp_dir("restore");
    let snap = dir.join("snap.json");
    let (mut child, addr) = spawn_daemon(&[
        "--name",
        "churn-heavy",
        "--scale",
        "0.2",
        "--snapshot",
        snap.to_str().unwrap(),
    ]);

    // Drive a churn burst, snapshot through the protocol, and record the
    // query battery.
    let report = loadgen::run_burst(&addr, 11, 40, true, false).unwrap();
    assert_eq!(report.events, 40);
    assert!(snap.exists(), "snapshot must land on disk");
    let mut client = Client::connect(&addr);
    let before = query_battery(&mut client);
    drop(client);

    // Crash the daemon (no clean shutdown) and restore from the snapshot.
    child.kill().unwrap();
    child.wait().unwrap();
    let (mut child, addr) = spawn_daemon(&["--restore", snap.to_str().unwrap()]);
    let mut client = Client::connect(&addr);
    let after = query_battery(&mut client);
    // The daemon serves one connection at a time: release it before the
    // load generator dials in.
    drop(client);
    assert_eq!(
        before, after,
        "every query response must be byte-identical after restore"
    );

    // The restored daemon keeps serving churn from the same stream
    // cursor; then shut it down cleanly.
    let resumed = loadgen::run_burst(&addr, 12, 10, false, true).unwrap();
    assert_eq!(resumed.events, 10);
    let status = child.wait().unwrap();
    assert!(status.success(), "clean shutdown must exit zero");
}

#[test]
fn malformed_lines_get_in_band_errors_and_the_connection_survives() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.1);
    let state = ServeState::new(spec, &EfLora::default()).unwrap();
    let server = std::thread::spawn(move || {
        serve(listener, state, &ServerOptions::default()).unwrap();
    });

    let mut client = Client::connect(&addr);
    let garbage = client.send_line("{definitely not json");
    assert!(garbage.contains("Error"), "got: {garbage}");
    let unknown = client.send_line(r#"{"Frobnicate":{}}"#);
    assert!(unknown.contains("Error"), "got: {unknown}");
    // Out-of-range device index: in-band error, connection stays open.
    let out_of_range = client.send(&Request::Device { index: 10_000 });
    assert!(out_of_range.contains("out of range"), "got: {out_of_range}");
    // Unconfigured snapshot path: in-band error.
    let no_snapshot = client.send(&Request::Snapshot);
    assert!(no_snapshot.contains("Error"), "got: {no_snapshot}");
    // The same connection still answers healthy requests.
    assert_eq!(client.send(&Request::Ping), r#""Pong""#);
    assert_eq!(client.send(&Request::Shutdown), r#""ShuttingDown""#);
    server.join().unwrap();
}

#[test]
fn measure_windows_feed_the_controller() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.1);
    let state = ServeState::new(spec, &EfLora::default()).unwrap();
    let server = std::thread::spawn(move || {
        serve(listener, state, &ServerOptions::default()).unwrap();
    });

    let mut client = Client::connect(&addr);
    let measured = client.send(&Request::Measure);
    assert!(measured.contains("Measured"), "got: {measured}");
    let status = client.send(&Request::Status);
    assert!(status.contains(r#""windows_observed":1"#), "got: {status}");
    client.send(&Request::Shutdown);
    server.join().unwrap();
}

/// Waits until the journal file grows past `threshold` bytes (or a
/// generous deadline passes — assertions downstream will then explain
/// what went wrong instead of hanging the suite).
fn wait_for_journal_growth(path: &Path, threshold: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if std::fs::metadata(path).map(|m| m.len()).unwrap_or(0) > threshold {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The churn-heavy class names, in the daemon's `Info` order, for
/// generating an event stream without a handshake.
fn churn_heavy_classes(scale: f64) -> Vec<String> {
    catalog::scale_devices(&catalog::churn_heavy(), scale)
        .classes
        .map(|classes| classes.into_iter().map(|c| c.name).collect())
        .unwrap_or_default()
}

/// The process-level chaos acceptance test: SIGKILL the daemon in the
/// middle of a journaled churn burst — no snapshot request anywhere in
/// flight — restart from the journal alone, and demand the recovered
/// daemon serve **byte-identical** responses to a from-scratch
/// [`ReferenceState`] replay of the durable record prefix.
#[test]
fn sigkill_mid_burst_recovers_exactly_the_durable_journal_prefix() {
    let dir = tmp_dir("sigkill");
    let journal_path = dir.join("wal.journal");
    std::fs::remove_file(&journal_path).ok();
    let (mut child, addr) = spawn_daemon(&[
        "--name",
        "churn-heavy",
        "--scale",
        "0.2",
        "--journal",
        journal_path.to_str().unwrap(),
        "--fsync",
        "always",
    ]);
    // Journal size right after boot: magic + the genesis base record.
    let base_len = std::fs::metadata(&journal_path).unwrap().len();

    // Burst thread: synchronous churn round-trips, tolerant of the
    // daemon dying mid-exchange (that is the point).
    let classes = churn_heavy_classes(0.2);
    let events = loadgen::generate_events(31, 400, &classes);
    let total = events.len();
    let addr_burst = addr.clone();
    let burst = std::thread::spawn(move || {
        let stream = loadgen::connect_with_retry(&addr_burst, Duration::from_secs(10)).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut acked = 0usize;
        for event in &events {
            let line = encode(&Request::Churn(event.clone()));
            let sent = writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush());
            if sent.is_err() {
                break;
            }
            let mut response = String::new();
            match reader.read_line(&mut response) {
                Ok(n) if n > 0 && response.contains("Churned") => acked += 1,
                _ => break,
            }
        }
        acked
    });

    // SIGKILL once a few dozen mutation records are durable — a point
    // chosen by journal growth, not by any client-side coordination.
    wait_for_journal_growth(&journal_path, base_len + 4_000);
    child.kill().unwrap();
    child.wait().unwrap();
    let acked = burst.join().unwrap();
    assert!(acked > 0, "the daemon must have applied part of the burst");
    assert!(acked < total, "the kill must land mid-burst, not after it");

    // Ground truth: replay the durable journal prefix through the
    // independent reference oracle.
    let scanned = journal::scan(&journal_path).unwrap();
    let mut records = scanned.records.iter();
    let mut oracle = match records.next() {
        Some(JournalRecord::Genesis { strategy, spec }) => {
            let strategy = strategy_by_name(strategy).unwrap();
            ReferenceState::new(spec.clone(), strategy.as_ref()).unwrap()
        }
        other => panic!("journal must start with the genesis base, got {other:?}"),
    };
    let mut replayed = 0u64;
    for record in records {
        match record {
            JournalRecord::Mutation {
                request: Request::Churn(event),
                ..
            } => drop(oracle.apply_churn(event)),
            JournalRecord::Mutation {
                request: Request::Measure,
                ..
            } => drop(oracle.measure()),
            other => panic!("unexpected journal record {other:?}"),
        }
        replayed += 1;
    }
    // `--fsync always`: every acknowledged request was durable first.
    assert!(
        replayed as usize >= acked,
        "journal holds {replayed} mutations but {acked} were acked"
    );
    oracle.set_recovery(Some(RecoveryInfo {
        snapshot_loaded: false,
        replayed,
    }));

    // Restart from the journal alone and byte-compare the battery.
    let (mut child, addr) = spawn_daemon(&[
        "--journal",
        journal_path.to_str().unwrap(),
        "--fsync",
        "always",
    ]);
    let mut client = Client::connect(&addr);
    let live = query_battery(&mut client);
    let mut expected = vec![
        encode(&oracle.respond(Request::Info)),
        encode(&oracle.respond(Request::Metrics)),
        encode(&oracle.respond(Request::Status)),
    ];
    for index in [0usize, 7, 23] {
        expected.push(encode(&oracle.respond(Request::Device { index })));
    }
    assert_eq!(
        live, expected,
        "recovered daemon must serve the oracle's bytes for the durable prefix"
    );

    // The recovered daemon resumes appending: a continuation burst stays
    // in lockstep with the oracle, response by response.
    for event in loadgen::generate_events(32, 5, &classes) {
        let from_daemon = client.send(&Request::Churn(event.clone()));
        let from_oracle = encode(&oracle.respond(Request::Churn(event)));
        assert_eq!(from_daemon, from_oracle, "post-recovery churn diverged");
    }
    assert_eq!(client.send(&Request::Shutdown), r#""ShuttingDown""#);
    drop(client);
    let status = child.wait().unwrap();
    assert!(status.success(), "clean shutdown must exit zero");
}

#[test]
fn idle_connections_time_out_and_the_next_client_is_served() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.1);
    let state = ServeState::new(spec, &EfLora::default()).unwrap();
    let options = ServerOptions {
        read_timeout: Some(Duration::from_millis(60)),
        ..Default::default()
    };
    let server = std::thread::spawn(move || {
        serve(listener, state, &options).unwrap();
    });

    // A wedged client connects first and sends nothing. The daemon is
    // single-threaded: without the timeout this would starve everyone
    // behind it forever.
    let idle = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let mut client = Client::connect(&addr);
    assert_eq!(client.send(&Request::Ping), r#""Pong""#);
    // Only now release the idle connection: the Pong above proves the
    // *timeout* (not a client-side close) returned the loop to accept.
    drop(idle);
    assert_eq!(client.send(&Request::Shutdown), r#""ShuttingDown""#);
    server.join().unwrap();
}

#[test]
fn oversize_request_lines_get_an_in_band_error_and_the_connection_survives() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.1);
    let state = ServeState::new(spec, &EfLora::default()).unwrap();
    let options = ServerOptions {
        max_line_bytes: 1024,
        ..Default::default()
    };
    let server = std::thread::spawn(move || {
        serve(listener, state, &options).unwrap();
    });

    let mut client = Client::connect(&addr);
    let oversize = "x".repeat(8 * 1024);
    let response = client.send_line(&oversize);
    assert!(
        response.contains("exceeds 1024 bytes"),
        "oversize lines must be refused in-band, got: {response}"
    );
    // The line was drained, not buffered: the connection still serves.
    assert_eq!(client.send(&Request::Ping), r#""Pong""#);
    assert_eq!(client.send(&Request::Shutdown), r#""ShuttingDown""#);
    server.join().unwrap();
}

/// The chaos loadgen rides through a SIGKILL + journal restart on the
/// same port: seeded retry/backoff reconnects, the interrupted event is
/// re-sent, and every event of the burst is eventually acknowledged.
#[test]
fn chaos_loadgen_rides_through_a_sigkill_restart() {
    let dir = tmp_dir("chaos-loadgen");
    let journal_path = dir.join("wal.journal");
    std::fs::remove_file(&journal_path).ok();
    let (mut child, addr) = spawn_daemon(&[
        "--name",
        "churn-heavy",
        "--scale",
        "0.15",
        "--journal",
        journal_path.to_str().unwrap(),
        "--fsync",
        "always",
    ]);
    let port = addr.rsplit(':').next().unwrap().to_string();
    let base_len = std::fs::metadata(&journal_path).unwrap().len();

    let addr_burst = addr.clone();
    let burst = std::thread::spawn(move || {
        loadgen::run_chaos_burst(
            &addr_burst,
            41,
            300,
            &loadgen::ChaosOptions {
                retries: 12,
                backoff_ms: 20,
            },
        )
    });

    wait_for_journal_growth(&journal_path, base_len + 2_500);
    child.kill().unwrap();
    child.wait().unwrap();
    // Restart on the same port so the client's redial lands.
    let (mut child, _) = spawn_daemon(&[
        "--journal",
        journal_path.to_str().unwrap(),
        "--fsync",
        "always",
        "--port",
        &port,
    ]);

    let report = burst
        .join()
        .unwrap()
        .expect("chaos burst must survive the restart");
    assert_eq!(
        report.events_pre_restart + report.events_post_restart,
        300,
        "every event must eventually be acknowledged: {report:?}"
    );
    assert!(
        report.reconnects >= 1 && report.resent >= 1,
        "the kill must interrupt the burst: {report:?}"
    );
    assert!(
        report.events_post_restart > 0,
        "the recovered daemon must keep taking events: {report:?}"
    );

    let mut client = Client::connect(&addr);
    assert_eq!(client.send(&Request::Shutdown), r#""ShuttingDown""#);
    drop(client);
    let status = child.wait().unwrap();
    assert!(status.success(), "clean shutdown must exit zero");
}

#[test]
fn loadgen_burst_is_deterministic_in_effects() {
    // Two daemons fed the same seed apply the same events: identical
    // population effects (latencies differ, effects must not).
    let run = || {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.15);
        let state = ServeState::new(spec, &EfLora::default()).unwrap();
        let server = std::thread::spawn(move || {
            serve(listener, state, &ServerOptions::default()).unwrap();
        });
        let report = loadgen::run_burst(&addr, 21, 60, false, true).unwrap();
        server.join().unwrap();
        report
    };
    let (a, b) = (run(), run());
    assert_eq!(a.events, 60);
    assert_eq!(
        (a.joined, a.left, a.migrated, a.reconfigured, a.warnings),
        (b.joined, b.left, b.migrated, b.reconfigured, b.warnings)
    );
    assert!(
        a.events_per_sec > 0.0 && a.latency.p99_us > 0.0,
        "latency accounting must be populated"
    );
}
