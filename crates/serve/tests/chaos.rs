//! Chaos harness for the write-ahead journal: kill-at-any-byte recovery.
//!
//! A journaled daemon drives a deterministic mixed burst (churn +
//! measurement windows), then the journal file is truncated and
//! bit-flipped at hundreds of offsets. The invariant under attack:
//! recovery either rebuilds **exactly** the durable record prefix —
//! proven byte-identical, query by query, against a from-scratch
//! [`ReferenceState`] replay of that same prefix — or fails with a typed
//! [`JournalError`]. Never a panic, never a silently diverged state.
//!
//! The protocol-decode fuzz battery lives here too: hostile request
//! lines (random bytes, truncated JSON, pathological nesting) must come
//! back as in-band `Response::Error` without touching the state.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use ef_lora::EfLora;
use ef_lora_serve::journal::{recover, scan, FsyncPolicy, Journal, JournalError, JournalRecord};
use ef_lora_serve::protocol::{decode, encode, Request, Response};
use ef_lora_serve::reference::ReferenceState;
use ef_lora_serve::server::{handle_line, respond, respond_journaled};
use ef_lora_serve::{loadgen, RecoveryInfo, ServeState, ServerOptions, Snapshot};
use lora_scenario::catalog;
use lora_scenario::ScenarioSpec;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Seed of the fixture burst and of the offset/bit sampling streams.
const CHAOS_SEED: u64 = 0xC4A0_5EED;

/// Churn events in the fixture burst (plus two measurement windows).
const FIXTURE_EVENTS: usize = 30;

/// The pristine journaled run every corruption case perturbs.
struct Fixture {
    dir: PathBuf,
    /// Journal bytes after the full burst (synced, no torn tail).
    pristine: Vec<u8>,
    /// Scanned records of `pristine`: Genesis + one per mutation.
    records: Vec<JournalRecord>,
    /// The scenario spec (as embedded in the Genesis record).
    spec: ScenarioSpec,
    /// Snapshot of the live state after the full burst.
    live: Snapshot,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("ef-lora-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.15);
        let options = ServerOptions::default();
        let mut state = ServeState::new(spec.clone(), &EfLora::default()).unwrap();
        let path = dir.join("pristine.journal");
        let base = JournalRecord::Genesis {
            strategy: "ef-lora".to_string(),
            spec: spec.clone(),
        };
        let mut journal = Some(Journal::create(&path, FsyncPolicy::Never, &base).unwrap());

        let classes = state.class_names();
        for (i, event) in loadgen::generate_events(CHAOS_SEED, FIXTURE_EVENTS, &classes)
            .into_iter()
            .enumerate()
        {
            let (response, _) =
                respond_journaled(&mut state, &options, &mut journal, Request::Churn(event));
            assert!(
                matches!(response, Response::Churned { .. }),
                "fixture burst must apply cleanly, got {response:?}"
            );
            if i == 9 || i == 19 {
                let (response, _) =
                    respond_journaled(&mut state, &options, &mut journal, Request::Measure);
                assert!(
                    matches!(response, Response::Measured { .. }),
                    "got {response:?}"
                );
            }
        }
        journal.as_mut().unwrap().sync().unwrap();
        drop(journal);

        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.truncated_bytes, 0);
        assert_eq!(scanned.records.len(), FIXTURE_EVENTS + 2 + 1);
        Fixture {
            pristine: std::fs::read(&path).unwrap(),
            records: scanned.records,
            spec,
            live: state.snapshot(),
            dir,
        }
    })
}

/// A unique scratch path (tests and proptest cases run concurrently).
fn scratch_path(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    fixture().dir.join(format!(
        "{tag}-{}.journal",
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The query battery compared byte-for-byte between a recovered daemon
/// and the oracle.
fn battery_requests() -> Vec<Request> {
    vec![
        Request::Info,
        Request::Metrics,
        Request::Status,
        Request::Device { index: 0 },
        Request::Device { index: 7 },
    ]
}

/// What the oracle says a recovery to `prefix_len` records must serve.
#[derive(Clone)]
struct OracleExpect {
    snapshot: Snapshot,
    battery: Vec<String>,
    replayed: u64,
}

/// From-scratch [`ReferenceState`] replay of the first `prefix_len`
/// fixture records — the ground truth for kill-at-that-point recovery.
/// Memoised: the sweep hits the same prefix lengths repeatedly.
fn oracle_expect(prefix_len: usize) -> OracleExpect {
    static CACHE: OnceLock<Mutex<HashMap<usize, OracleExpect>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&prefix_len) {
        return hit.clone();
    }
    let fx = fixture();
    let mut oracle = ReferenceState::new(fx.spec.clone(), &EfLora::default()).unwrap();
    let mut replayed = 0u64;
    for record in &fx.records[..prefix_len] {
        if let JournalRecord::Mutation { request, .. } = record {
            match request {
                Request::Churn(event) => drop(oracle.apply_churn(event)),
                Request::Measure => drop(oracle.measure()),
                other => panic!("non-mutating {other:?} in fixture journal"),
            }
            replayed += 1;
        }
    }
    oracle.set_recovery(Some(RecoveryInfo {
        snapshot_loaded: false,
        replayed,
    }));
    let battery = battery_requests()
        .into_iter()
        .map(|request| encode(&oracle.respond(request)))
        .collect();
    let expect = OracleExpect {
        snapshot: oracle.snapshot(),
        battery,
        replayed,
    };
    cache.lock().unwrap().insert(prefix_len, expect.clone());
    expect
}

/// Asserts that recovering the journal at `path` lands on exactly the
/// durable record prefix (already verified to be `prefix_len` records
/// long) and serves the oracle's bytes.
fn assert_exact_prefix_recovery(path: &Path, prefix_len: usize) -> Result<(), TestCaseError> {
    let expect = oracle_expect(prefix_len);
    let recovered = recover(path, None, FsyncPolicy::Never)
        .map_err(|e| TestCaseError::fail(format!("prefix of {prefix_len} records: {e}")))?;
    prop_assert_eq!(
        recovered.info,
        RecoveryInfo {
            snapshot_loaded: false,
            replayed: expect.replayed
        }
    );
    let mut state = recovered.state;
    prop_assert_eq!(
        &state.snapshot(),
        &expect.snapshot,
        "recovered state diverged from the oracle at prefix {}",
        prefix_len
    );
    let options = ServerOptions::default();
    for (request, expected) in battery_requests().into_iter().zip(&expect.battery) {
        let (live, _) = respond(&mut state, &options, request.clone());
        prop_assert_eq!(
            &encode(&live),
            expected,
            "query {:?} diverged at prefix {}",
            request,
            prefix_len
        );
    }
    Ok(())
}

/// Frame end offsets of a journal image: magic end, then one per frame.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![8usize];
    let mut offset = 8usize;
    while offset + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        if offset + 8 + len > bytes.len() {
            break;
        }
        offset += 8 + len;
        boundaries.push(offset);
    }
    boundaries
}

/// Truncation or corruption must yield a prefix (checked against the
/// pristine records) or a typed error; returns the prefix length when
/// the file still scans.
fn scanned_prefix_len(path: &Path) -> Result<Option<usize>, TestCaseError> {
    let fx = fixture();
    match scan(path) {
        Ok(scanned) => {
            prop_assert!(
                scanned.records.len() <= fx.records.len(),
                "scan invented records"
            );
            prop_assert_eq!(
                scanned.records.as_slice(),
                &fx.records[..scanned.records.len()],
                "scan produced a non-prefix of the pristine history"
            );
            Ok(Some(scanned.records.len()))
        }
        Err(JournalError::Corrupt { .. }) => Ok(None),
        Err(e) => Err(TestCaseError::fail(format!("unexpected scan error: {e}"))),
    }
}

#[test]
fn full_journal_recovery_matches_the_live_state() {
    let fx = fixture();
    let path = scratch_path("full");
    std::fs::write(&path, &fx.pristine).unwrap();
    let recovered = recover(&path, None, FsyncPolicy::Never).unwrap();
    assert_eq!(recovered.state.snapshot(), fx.live);
    assert_eq!(recovered.truncated_bytes, 0);
    assert_eq!(
        recovered.info,
        RecoveryInfo {
            snapshot_loaded: false,
            replayed: FIXTURE_EVENTS as u64 + 2
        }
    );
    std::fs::remove_file(&path).ok();
}

/// The headline sweep: cut the journal at > 100 offsets — every record
/// boundary, its neighbourhood, and seeded random interior points — and
/// demand exact-prefix recovery (or a typed error for cuts that destroy
/// the header/base).
#[test]
fn truncation_sweep_recovers_the_exact_durable_prefix() {
    let fx = fixture();
    let total = fx.pristine.len();
    let mut offsets: Vec<usize> = vec![0, 1, 3, 7];
    for &boundary in &frame_boundaries(&fx.pristine) {
        for candidate in [
            boundary.saturating_sub(1),
            boundary,
            boundary + 1,
            boundary + 4,
        ] {
            offsets.push(candidate.min(total));
        }
    }
    let mut rng = ChaCha12Rng::seed_from_u64(CHAOS_SEED);
    for _ in 0..24 {
        offsets.push(rng.gen_range(0..total));
    }
    offsets.sort_unstable();
    offsets.dedup();
    assert!(
        offsets.len() > 100,
        "sweep must cover > 100 offsets, got {}",
        offsets.len()
    );

    let path = scratch_path("truncate");
    let mut recoveries = 0usize;
    let mut typed_errors = 0usize;
    for &cut in &offsets {
        std::fs::write(&path, &fx.pristine[..cut]).unwrap();
        match scanned_prefix_len(&path).unwrap() {
            Some(prefix_len) if prefix_len > 0 => {
                assert_exact_prefix_recovery(&path, prefix_len).unwrap();
                recoveries += 1;
            }
            // Too short for the magic (scan error) or for the base
            // record (scan finds nothing): recovery must refuse, typed.
            _ => match recover(&path, None, FsyncPolicy::Never) {
                Err(JournalError::Corrupt { .. }) => typed_errors += 1,
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            },
        }
    }
    assert!(recoveries > 80, "sweep exercised {recoveries} recoveries");
    assert!(typed_errors > 5, "sweep exercised {typed_errors} refusals");
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bit flips anywhere in the file: recovery lands on the record
    /// prefix before the damage (CRC32 catches every 1-bit error) or
    /// refuses with a typed error (magic/base damage). Never panics,
    /// never serves a diverged state.
    #[test]
    fn bit_flips_recover_a_prefix_or_fail_typed(pos in any::<u32>(), bit in 0..8u32) {
        let fx = fixture();
        let mut bytes = fx.pristine.clone();
        let pos = pos as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        let path = scratch_path("bitflip");
        std::fs::write(&path, &bytes).unwrap();
        match scanned_prefix_len(&path)? {
            Some(prefix_len) if prefix_len > 0 => {
                assert_exact_prefix_recovery(&path, prefix_len)?;
            }
            _ => {
                let refused = recover(&path, None, FsyncPolicy::Never);
                prop_assert!(
                    matches!(refused, Err(JournalError::Corrupt { .. })),
                    "expected a typed refusal, got {:?}",
                    refused
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Appending past a recovered prefix continues the history exactly:
    /// recover at a random boundary, drive fresh mutations through the
    /// resumed journal, recover *again* — the double-recovered daemon
    /// matches a continuation oracle byte for byte.
    #[test]
    fn resumed_journals_keep_accepting_and_recovering(boundary_index in any::<u16>()) {
        let fx = fixture();
        let boundaries = frame_boundaries(&fx.pristine);
        // Land on a boundary with at least the base record intact.
        let cut = boundaries[1 + boundary_index as usize % (boundaries.len() - 1)];
        let path = scratch_path("resume");
        std::fs::write(&path, &fx.pristine[..cut]).unwrap();

        let recovered = recover(&path, None, FsyncPolicy::Never)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut state = recovered.state;
        let mut journal = Some(recovered.journal);
        let options = ServerOptions::default();
        let classes = state.class_names();
        for event in loadgen::generate_events(CHAOS_SEED ^ 1, 4, &classes) {
            let (response, _) =
                respond_journaled(&mut state, &options, &mut journal, Request::Churn(event));
            prop_assert!(matches!(response, Response::Churned { .. }));
        }
        journal.as_mut().unwrap().sync().map_err(|e| TestCaseError::fail(e.to_string()))?;
        drop(journal);

        let again = recover(&path, None, FsyncPolicy::Never)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(again.state.snapshot(), state.snapshot());
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------
// Protocol decode fuzz: hostile lines never panic, never mutate.
// ---------------------------------------------------------------------

/// Shared daemon state for the fuzz battery (building one per case
/// would dominate the runtime); every case asserts it left the
/// mutation counters untouched.
fn fuzz_state() -> &'static Mutex<ServeState> {
    static STATE: OnceLock<Mutex<ServeState>> = OnceLock::new();
    STATE.get_or_init(|| {
        let spec = catalog::scale_devices(&catalog::churn_heavy(), 0.1);
        Mutex::new(ServeState::new(spec, &EfLora::default()).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random byte soup through the exact server line path: always an
    /// in-band error (or a non-mutating success for the astronomically
    /// unlikely valid request), counters untouched.
    #[test]
    fn random_bytes_get_in_band_errors_and_mutate_nothing(
        bytes in collection::vec(any::<u8>(), 0..200)
    ) {
        let line = String::from_utf8_lossy(&bytes).replace(['\n', '\r'], " ");
        let mut state = fuzz_state().lock().unwrap();
        let before = (state.events_applied(), state.windows_observed());
        let options = ServerOptions::default();
        let (response, shutdown) = handle_line(&mut state, &options, &mut None, &line);
        let after = (state.events_applied(), state.windows_observed());
        prop_assert_eq!(before, after, "hostile line mutated the state: {}", line);
        prop_assert!(!shutdown, "hostile line requested shutdown: {}", line);
        if !line.trim().is_empty() {
            prop_assert!(
                matches!(
                    response,
                    Response::Error { .. }
                        | Response::Pong
                        | Response::Info { .. }
                        | Response::Metrics { .. }
                        | Response::Status { .. }
                        | Response::Device { .. }
                ),
                "unexpected response to junk: {:?}",
                response
            );
        }
    }

    /// Truncating a valid request at any byte boundary decodes to a
    /// clean error (or the full request at full length) — no panic on
    /// half a JSON document.
    #[test]
    fn truncated_requests_decode_to_errors(cut in any::<u16>()) {
        let full = encode(&Request::Churn(lora_scenario::spec::ChurnEvent {
            epoch: 3,
            event: lora_scenario::spec::ChurnKind::Migrate {
                from: "bursty".to_string(),
                to: "steady".to_string(),
                count: 2,
            },
        }));
        let cut = cut as usize % full.len();
        let decoded = decode::<Request>(&full[..cut]);
        if cut == 0 {
            prop_assert!(decoded.is_err());
        } else {
            // Any strict prefix of this request is invalid JSON or an
            // incomplete schema.
            prop_assert!(decoded.is_err(), "prefix of {} bytes decoded", cut);
        }
    }
}

#[test]
fn deeply_nested_junk_is_rejected_without_overflowing_the_stack() {
    // 100k unclosed arrays: the recursive-descent parser must refuse at
    // its depth cap instead of exhausting the stack.
    let mut hostile = String::from("{\"Churn\":");
    hostile.push_str(&"[".repeat(100_000));
    assert!(decode::<Request>(&hostile).is_err());

    let mut closed = "[".repeat(5_000);
    closed.push_str(&"]".repeat(5_000));
    assert!(decode::<Request>(&closed).is_err());

    // The same lines through the server path: in-band error, counters
    // untouched.
    let mut state = fuzz_state().lock().unwrap();
    let before = (state.events_applied(), state.windows_observed());
    let options = ServerOptions::default();
    for line in [hostile, closed] {
        let (response, shutdown) = handle_line(&mut state, &options, &mut None, &line);
        assert!(
            matches!(response, Response::Error { .. }),
            "got {response:?}"
        );
        assert!(!shutdown);
    }
    assert_eq!(before, (state.events_applied(), state.windows_observed()));
}

#[test]
fn decode_fuzz_covers_the_documented_hostile_shapes() {
    // The satellite checklist's explicit shapes, deterministically.
    for line in [
        "",
        "   ",
        "null",
        "0",
        "\"\"",
        "{}",
        "[]",
        "{\"Churn\":}",
        "{\"Churn\":{\"epoch\":\"not a number\"}}",
        "{\"Device\":{\"index\":-1}}",
        "\u{1F980} not json at all",
        "{\"Churn\":{\"epoch\":1,\"event\":{\"Join\":{\"class\":4,\"count\":\"x\"}}}}",
    ] {
        assert!(
            decode::<Request>(line).is_err(),
            "hostile line decoded: {line:?}"
        );
    }
}
