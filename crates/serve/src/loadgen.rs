//! Seeded load generator: drives a running daemon with a deterministic
//! churn stream and reports request latencies.
//!
//! The event *sequence* is a pure function of the seed (and the class
//! list the daemon advertises), so soak runs are replayable; only the
//! measured latencies vary between runs.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

use lora_scenario::spec::{ChurnEvent, ChurnKind};

use crate::protocol::{decode, encode, Request, Response};

/// Seed tag of the load-generator stream ("loadgen").
const LOADGEN_TAG: u64 = 0x6c6f_6164_6765_6e00;

/// Seed tag of the chaos-mode jitter stream ("jitter").
const JITTER_TAG: u64 = 0x6a69_7474_6572_0000;

/// Latency percentiles of a burst, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencyProfile {
    /// Median request latency.
    pub p50_us: f64,
    /// 95th-percentile latency.
    pub p95_us: f64,
    /// 99th-percentile latency — the repair-latency headline.
    pub p99_us: f64,
    /// Worst observed latency.
    pub max_us: f64,
}

/// Outcome of one load-generation burst.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LoadReport {
    /// Churn events acknowledged by the daemon.
    pub events: usize,
    /// Devices joined across the burst.
    pub joined: usize,
    /// Devices left across the burst.
    pub left: usize,
    /// Devices migrated across the burst.
    pub migrated: usize,
    /// Over-the-air reconfigurations across the burst.
    pub reconfigured: usize,
    /// Typed warnings the daemon surfaced (clamped leaves).
    pub warnings: usize,
    /// Sustained event throughput, events per second.
    pub events_per_sec: f64,
    /// Per-request latency percentiles.
    pub latency: LatencyProfile,
}

/// Generates the deterministic event stream of `seed`: joins, leaves and
/// migrations with small counts, epoch-stamped by position.
pub fn generate_events(seed: u64, count: usize, classes: &[String]) -> Vec<ChurnEvent> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ LOADGEN_TAG);
    (0..count)
        .map(|i| {
            let kind = if classes.is_empty() {
                // No classes to join into or migrate between: all leaves.
                4
            } else {
                rng.gen_range(0..10)
            };
            let event = match kind {
                // 40% joins, 40% leaves, 20% migrations: population-
                // neutral in expectation, so long soaks hold steady
                // state instead of inflating the deployment (and with it
                // the per-event cost).
                0..=3 => ChurnKind::Join {
                    class: classes[rng.gen_range(0..classes.len())].clone(),
                    count: rng.gen_range(1..=4),
                },
                4..=7 => ChurnKind::Leave {
                    count: rng.gen_range(1..=4),
                },
                _ => ChurnKind::Migrate {
                    from: classes[rng.gen_range(0..classes.len())].clone(),
                    to: classes[rng.gen_range(0..classes.len())].clone(),
                    count: rng.gen_range(1..=4),
                },
            };
            ChurnEvent {
                epoch: i as u32 + 1,
                event,
            }
        })
        .collect()
}

/// Connects to `addr`, retrying until `timeout` elapses — the daemon may
/// still be allocating its initial deployment.
///
/// # Errors
///
/// The last connection error once the timeout is exhausted.
pub fn connect_with_retry(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(format!("cannot connect to {addr}: {e}")),
        }
    }
}

/// One protocol round trip.
fn round_trip(
    writer: &mut BufWriter<TcpStream>,
    reader: &mut BufReader<TcpStream>,
    request: &Request,
) -> Result<Response, String> {
    writer
        .write_all(encode(request).as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write failed: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read failed: {e}"))?;
    if line.is_empty() {
        return Err("daemon closed the connection".to_string());
    }
    decode(&line)
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Drives `events` churn events against the daemon at `addr` and
/// collects latency percentiles. `snapshot` additionally requests an
/// on-disk snapshot after the burst; `shutdown` asks the daemon to exit.
///
/// # Errors
///
/// Connection failures and any protocol violation — an unexpected or
/// `Error` response to a well-formed request (the load generator's exit
/// code is the CI smoke assertion).
pub fn run_burst(
    addr: &str,
    seed: u64,
    events: usize,
    snapshot: bool,
    shutdown: bool,
) -> Result<LoadReport, String> {
    let stream = connect_with_retry(addr, Duration::from_secs(10))?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("set_nodelay: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);

    let classes = match round_trip(&mut writer, &mut reader, &Request::Info)? {
        Response::Info { classes, .. } => classes,
        other => return Err(format!("expected Info response, got {other:?}")),
    };

    let stream_events = generate_events(seed, events, &classes);
    let mut report = LoadReport {
        events: 0,
        joined: 0,
        left: 0,
        migrated: 0,
        reconfigured: 0,
        warnings: 0,
        events_per_sec: 0.0,
        latency: LatencyProfile {
            p50_us: 0.0,
            p95_us: 0.0,
            p99_us: 0.0,
            max_us: 0.0,
        },
    };
    let mut latencies_us: Vec<f64> = Vec::with_capacity(events);
    let burst_start = Instant::now();
    for event in &stream_events {
        let start = Instant::now();
        let response = round_trip(&mut writer, &mut reader, &Request::Churn(event.clone()))?;
        latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
        match response {
            Response::Churned {
                joined,
                left,
                migrated,
                reconfigured,
                warning,
                ..
            } => {
                report.events += 1;
                report.joined += joined;
                report.left += left;
                report.migrated += migrated;
                report.reconfigured += reconfigured;
                report.warnings += usize::from(warning.is_some());
            }
            other => return Err(format!("expected Churned response, got {other:?}")),
        }
    }
    let elapsed = burst_start.elapsed().as_secs_f64();
    report.events_per_sec = if elapsed > 0.0 {
        report.events as f64 / elapsed
    } else {
        0.0
    };
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    report.latency = LatencyProfile {
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        p99_us: percentile(&latencies_us, 0.99),
        max_us: latencies_us.last().copied().unwrap_or(0.0),
    };

    if snapshot {
        match round_trip(&mut writer, &mut reader, &Request::Snapshot)? {
            Response::Snapshotted { .. } => {}
            other => return Err(format!("expected Snapshotted response, got {other:?}")),
        }
    }
    if shutdown {
        match round_trip(&mut writer, &mut reader, &Request::Shutdown)? {
            Response::ShuttingDown => {}
            other => return Err(format!("expected ShuttingDown response, got {other:?}")),
        }
    }
    Ok(report)
}

/// Chaos-mode knobs: how hard to try when the daemon disappears
/// mid-burst (the kill-and-recover CI scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosOptions {
    /// Reconnect attempts per event before giving up on the run.
    pub retries: u32,
    /// Base backoff between reconnect attempts; doubles per attempt,
    /// with seeded ±50% jitter so retry storms decorrelate.
    pub backoff_ms: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            retries: 8,
            backoff_ms: 50,
        }
    }
}

/// Outcome of a chaos burst: how the event stream landed around daemon
/// restarts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosReport {
    /// Events acknowledged before the first disconnect.
    pub events_pre_restart: usize,
    /// Events acknowledged after reconnecting (across all restarts).
    pub events_post_restart: usize,
    /// Reconnections that succeeded.
    pub reconnects: usize,
    /// Sends whose ack was lost and were re-sent on a fresh connection
    /// (the daemon may have applied them before dying — the journal,
    /// not this count, is the truth).
    pub resent: usize,
}

/// The seeded jittered backoff of chaos attempt `attempt` (0-based):
/// `backoff_ms × 2^attempt`, scaled by a deterministic factor in
/// `[0.5, 1.5)` drawn from `rng`.
fn jittered_backoff(rng: &mut ChaCha12Rng, backoff_ms: u64, attempt: u32) -> Duration {
    let base = backoff_ms.saturating_mul(1u64 << attempt.min(6)) as f64;
    let factor = 0.5 + rng.gen_range(0.0..1.0);
    Duration::from_millis((base * factor) as u64)
}

/// Drives `events` churn events against the daemon at `addr`, surviving
/// connect failures and mid-burst disconnects with seeded jittered
/// retry/backoff. Events whose ack was lost are re-sent on the new
/// connection (at-least-once delivery — exact recovery is proven
/// against the journal, not the client's view).
///
/// # Errors
///
/// Initial-connection exhaustion, protocol violations, and bursts where
/// every retry of an event failed.
pub fn run_chaos_burst(
    addr: &str,
    seed: u64,
    events: usize,
    chaos: &ChaosOptions,
) -> Result<ChaosReport, String> {
    let mut jitter = ChaCha12Rng::seed_from_u64(seed ^ JITTER_TAG);
    let connect = |jitter: &mut ChaCha12Rng,
                   retries: u32|
     -> Result<(BufWriter<TcpStream>, BufReader<TcpStream>), String> {
        let mut last = String::new();
        for attempt in 0..retries.max(1) {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream
                        .set_nodelay(true)
                        .map_err(|e| format!("set_nodelay: {e}"))?;
                    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                    return Ok((BufWriter::new(stream), reader));
                }
                Err(e) => {
                    last = e.to_string();
                    std::thread::sleep(jittered_backoff(jitter, chaos.backoff_ms, attempt));
                }
            }
        }
        Err(format!("cannot connect to {addr} after retries: {last}"))
    };

    let (mut writer, mut reader) = connect(&mut jitter, chaos.retries)?;
    let classes = match round_trip(&mut writer, &mut reader, &Request::Info)? {
        Response::Info { classes, .. } => classes,
        other => return Err(format!("expected Info response, got {other:?}")),
    };
    let stream_events = generate_events(seed, events, &classes);

    let mut report = ChaosReport {
        events_pre_restart: 0,
        events_post_restart: 0,
        reconnects: 0,
        resent: 0,
    };
    for event in &stream_events {
        let request = Request::Churn(event.clone());
        let mut attempt = 0u32;
        loop {
            match round_trip(&mut writer, &mut reader, &request) {
                Ok(Response::Churned { .. }) => {
                    if report.reconnects == 0 {
                        report.events_pre_restart += 1;
                    } else {
                        report.events_post_restart += 1;
                    }
                    break;
                }
                Ok(other) => return Err(format!("expected Churned response, got {other:?}")),
                Err(e) if attempt >= chaos.retries => {
                    return Err(format!("event lost after {attempt} retries: {e}"))
                }
                Err(_) => {
                    // Disconnected mid-burst: back off, redial, re-send
                    // the same event (its ack — and possibly its apply —
                    // was lost with the old connection).
                    std::thread::sleep(jittered_backoff(&mut jitter, chaos.backoff_ms, attempt));
                    let (w, r) = connect(&mut jitter, chaos.retries)?;
                    writer = w;
                    reader = r;
                    report.reconnects += 1;
                    report.resent += 1;
                    attempt += 1;
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_stream_is_seed_deterministic() {
        let classes = vec!["steady".to_string(), "bursty".to_string()];
        let a = generate_events(9, 50, &classes);
        let b = generate_events(9, 50, &classes);
        assert_eq!(a, b);
        let c = generate_events(10, 50, &classes);
        assert_ne!(a, c);
        for (i, e) in a.iter().enumerate() {
            assert_eq!(e.epoch, i as u32 + 1);
        }
    }

    #[test]
    fn empty_class_list_degrades_to_leaves() {
        for event in generate_events(3, 20, &[]) {
            assert!(matches!(event.event, ChurnKind::Leave { .. }));
        }
    }

    #[test]
    fn chaos_backoff_is_seeded_jittered_and_bounded() {
        let mut a = ChaCha12Rng::seed_from_u64(5 ^ JITTER_TAG);
        let mut b = ChaCha12Rng::seed_from_u64(5 ^ JITTER_TAG);
        for attempt in 0..8u32 {
            let da = jittered_backoff(&mut a, 50, attempt);
            let db = jittered_backoff(&mut b, 50, attempt);
            assert_eq!(da, db, "same seed, same backoff schedule");
            let base = 50u64 << attempt.min(6);
            assert!(da >= Duration::from_millis(base / 2), "attempt {attempt}");
            assert!(
                da <= Duration::from_millis(base + base / 2),
                "attempt {attempt}"
            );
        }
    }

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }
}
